#include "ingest/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/lockfree_queue.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "ingest/stream.hpp"

namespace rap::ingest {

namespace {

std::string
hex(std::uint64_t value)
{
    char buf[17];
    const auto result =
        std::to_chars(buf, buf + sizeof(buf), value, 16);
    return std::string(buf, result.ptr);
}

} // namespace

Json
IngestReport::toJson() const
{
    Json out = Json::object();
    out.set("events", Json(events));
    out.set("dropped", Json(dropped));
    out.set("spilled", Json(spilled));
    out.set("replayed", Json(replayed));
    out.set("batches", Json(batches));
    out.set("rows_staged", Json(rowsStaged));
    out.set("staging_p50_us", Json(p50 * 1e6));
    out.set("staging_p95_us", Json(p95 * 1e6));
    out.set("staging_p99_us", Json(p99 * 1e6));
    out.set("max_queue_depth",
            Json(static_cast<std::uint64_t>(maxQueueDepth)));
    out.set("last_ready_at", Json(lastReadyAt));
    out.set("checksum", Json(hex(checksum)));
    return out;
}

IngestPipeline::IngestPipeline(IngestConfig config)
    : config_(std::move(config)),
      schema_(data::makePresetSchema(config_.preset))
{
    const auto issues = validateIngestConfig(config_);
    if (!issues.empty()) {
        RAP_FATAL("invalid ingest config: ", issues.front().first,
                  ": ", issues.front().second);
    }
}

IngestReport
IngestPipeline::run(const BatchSink &sink,
                    obs::MetricRegistry *metrics,
                    const obs::Labels &labels)
{
    const auto streams = static_cast<std::size_t>(config_.streams);
    const std::size_t producers =
        config_.producers <= 0
            ? streams
            : std::min<std::size_t>(
                  static_cast<std::size_t>(config_.producers),
                  streams);

    IngestMetrics instruments;
    if (metrics != nullptr)
        instruments = IngestMetrics::create(*metrics, labels);

    std::vector<std::unique_ptr<SpscQueue<Event>>> rings;
    rings.reserve(streams);
    for (std::size_t s = 0; s < streams; ++s) {
        rings.push_back(std::make_unique<SpscQueue<Event>>(
            config_.ringCapacity));
    }
    const auto done =
        std::make_unique<std::atomic<bool>[]>(streams);
    for (std::size_t s = 0; s < streams; ++s)
        done[s].store(false, std::memory_order_relaxed);

    Stager stager(config_, schema_, sink, instruments);

    const auto wall_begin = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            // This thread's streams, each with a one-event lookahead
            // buffer so a full ring never blocks the other streams.
            struct Owned
            {
                std::size_t stream;
                StreamEmitter emitter;
                Event pending;
                bool hasPending = false;
                bool exhausted = false;
            };
            std::vector<Owned> owned;
            for (std::size_t s = p; s < streams; s += producers) {
                owned.push_back(
                    {s,
                     StreamEmitter(config_, schema_,
                                   static_cast<std::uint32_t>(s)),
                     Event{}});
            }
            obs::Counter *events = instruments.events;
            std::size_t live = owned.size();
            while (live > 0) {
                bool progressed = false;
                for (auto &o : owned) {
                    if (o.exhausted)
                        continue;
                    if (!o.hasPending) {
                        if (o.emitter.next(o.pending)) {
                            o.hasPending = true;
                            if (events != nullptr)
                                events->inc();
                        } else {
                            // Publish everything pushed so far, then
                            // mark the stream finished (release pairs
                            // with the consumer's acquire).
                            done[o.stream].store(
                                true, std::memory_order_release);
                            o.exhausted = true;
                            --live;
                            progressed = true;
                            continue;
                        }
                    }
                    if (rings[o.stream]->tryPush(
                            std::move(o.pending))) {
                        o.hasPending = false;
                        progressed = true;
                    }
                }
                if (!progressed)
                    std::this_thread::yield();
            }
        });
    }

    // Consumer: k-way merge on the event key. The minimum head can
    // only be committed once every non-exhausted stream has a head
    // buffered — an empty ring might still deliver an earlier event.
    // An exhausted stream, by construction, has no buffered head.
    std::vector<std::optional<Event>> heads(streams);
    std::vector<bool> exhausted(streams, false);
    std::size_t open = streams;
    while (open > 0) {
        for (std::size_t s = 0; s < streams; ++s) {
            if (exhausted[s] || heads[s].has_value())
                continue;
            Event event;
            if (rings[s]->tryPop(event)) {
                heads[s] = std::move(event);
                continue;
            }
            // Empty ring: final once the producer's done flag is
            // visible AND a re-pop (ordered after the acquire) still
            // finds nothing.
            if (done[s].load(std::memory_order_acquire)) {
                if (rings[s]->tryPop(event)) {
                    heads[s] = std::move(event);
                } else {
                    exhausted[s] = true;
                    --open;
                }
            }
        }
        std::size_t min_stream = streams;
        bool ready = true;
        for (std::size_t s = 0; s < streams; ++s) {
            if (heads[s].has_value()) {
                if (min_stream == streams ||
                    eventBefore(*heads[s], *heads[min_stream]))
                    min_stream = s;
            } else if (!exhausted[s]) {
                ready = false;
                break;
            }
        }
        if (ready && min_stream < streams) {
            stager.push(std::move(*heads[min_stream]));
            heads[min_stream].reset();
        } else if (!ready) {
            std::this_thread::yield();
        }
    }
    for (auto &thread : threads)
        thread.join();
    stager.finish();
    const auto wall_end = std::chrono::steady_clock::now();

    const auto &stats = stager.stats();
    IngestReport report;
    report.events = stats.arrived;
    report.dropped = stats.dropped;
    report.spilled = stats.spilled;
    report.replayed = stats.replayed;
    report.batches = stats.batches;
    report.rowsStaged = stats.rowsStaged;
    if (!stats.latencies.empty()) {
        report.p50 = percentile(stats.latencies, 50.0);
        report.p95 = percentile(stats.latencies, 95.0);
        report.p99 = percentile(stats.latencies, 99.0);
    }
    report.maxQueueDepth = stats.maxQueueDepth;
    report.lastReadyAt = stats.lastReadyAt;
    report.checksum = stats.checksum;
    report.wallMs =
        std::chrono::duration<double, std::milli>(wall_end -
                                                  wall_begin)
            .count();
    return report;
}

} // namespace rap::ingest
