/**
 * @file
 * The staging consumer: turns the globally-ordered event stream into
 * RecordBatches under a deterministic virtual-time service model.
 *
 * The stager models itself as a single server with a constant
 * per-event service time (1 / stagingEventsPerSec) on the same
 * virtual clock the emitters stamp events with. Every decision —
 * when an event completes staging, whether the queue is over
 * capacity, which event a policy drops or spills — is made in virtual
 * time on the merged stream, never from wall-clock races. That is the
 * whole determinism story: transport threads can jitter all they
 * want, the stager's inputs and therefore its outputs are fixed.
 *
 * Per-event staging latency (completion − emission) feeds the
 * ingest.staging_latency histogram; queue depth is sampled into the
 * ingest.queue_depth series; drops/spills/replays hit wait-free
 * counters (obs/metrics.hpp).
 */

#ifndef RAP_INGEST_STAGER_HPP
#define RAP_INGEST_STAGER_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "data/batch.hpp"
#include "data/schema.hpp"
#include "ingest/config.hpp"
#include "ingest/event.hpp"
#include "ingest/spill.hpp"
#include "obs/metrics.hpp"

namespace rap::ingest {

/** Histogram edges for ingest.staging_latency (seconds). */
const std::vector<double> &stagingLatencyEdges();

/** One assembled batch plus its place on the virtual clock. */
struct StagedBatch
{
    data::RecordBatch batch;
    /** 0-based emission ordinal. */
    std::uint64_t index = 0;
    /** Virtual time the last row finished staging. */
    Seconds readyAt = 0.0;
    /** FNV-1a digest over the batch's row contents. */
    std::uint64_t checksum = 0;
};

using BatchSink = std::function<void(StagedBatch &&)>;

/** Cached wait-free instrument references for the ingest hot path. */
struct IngestMetrics
{
    obs::Counter *events = nullptr;
    obs::Counter *dropped = nullptr;
    obs::Counter *spilled = nullptr;
    obs::Counter *spillFailed = nullptr;
    obs::Counter *replayed = nullptr;
    obs::Counter *batches = nullptr;
    obs::Histogram *stagingLatency = nullptr;
    obs::Series *queueDepth = nullptr;

    /** Resolve all instruments once (registry lookup takes a lock;
     *  the returned references are then update-wait-free). */
    static IngestMetrics create(obs::MetricRegistry &registry,
                                const obs::Labels &labels);
};

/** Accounting the stager keeps as it goes (all deterministic). */
struct StagerStats
{
    std::uint64_t arrived = 0;
    std::uint64_t stagedLive = 0;
    std::uint64_t dropped = 0;
    std::uint64_t spilled = 0;
    /**
     * Events the spill disk refused past the retry budget (or after
     * the log failed to open). They are dropped — counted here and in
     * `dropped`, mirrored to ingest.spill_failed — never silently
     * replayed short.
     */
    std::uint64_t spillFailed = 0;
    std::uint64_t replayed = 0;
    std::uint64_t batches = 0;
    std::uint64_t rowsStaged = 0;
    std::size_t maxQueueDepth = 0;
    Seconds lastReadyAt = 0.0;
    /** Running FNV-1a over per-batch checksums. */
    std::uint64_t checksum = 0;
    /** Per-staged-event latency samples (completion − emission). */
    std::vector<double> latencies;
};

class Stager
{
  public:
    /**
     * @param sink Receives each finished batch (may be empty).
     * @param metrics Optional hot-path instruments (may be empty).
     */
    Stager(const IngestConfig &config, data::Schema schema,
           BatchSink sink, IngestMetrics metrics = {});

    /** Feed the next event in global order (nondecreasing emitTime). */
    void push(Event &&event);

    /**
     * Drain the queue, replay the spill log (if any), and flush the
     * final partial batch. Call exactly once, after the last push.
     */
    void finish();

    const StagerStats &stats() const { return stats_; }

  private:
    struct Pending
    {
        Seconds arrival = 0.0;
        Seconds emit = 0.0;
        data::CriteoRow row;
    };

    /** Complete every queued event whose service ends by @p t. */
    void completeUntil(Seconds t);
    /** Account one staged row at virtual time @p done. */
    void complete(Pending &&pending, Seconds done, bool replay);
    void appendRow(const data::CriteoRow &row);
    void flushBatch(Seconds ready_at);

    IngestConfig config_;
    data::Schema schema_;
    BatchSink sink_;
    IngestMetrics metrics_;
    SpillLog spill_;

    Seconds serviceTime_;
    Seconds serverFreeAt_ = 0.0;
    std::deque<Pending> waiting_;
    std::uint64_t arrivalTick_ = 0;

    // Column builders for the batch under assembly.
    std::vector<std::vector<float>> denseValues_;
    std::vector<std::vector<std::uint8_t>> denseValid_;
    std::vector<data::SparseColumn> sparseCols_;
    std::size_t builderRows_ = 0;
    std::uint64_t batchHash_;

    StagerStats stats_;
    bool finished_ = false;
};

} // namespace rap::ingest

#endif // RAP_INGEST_STAGER_HPP
