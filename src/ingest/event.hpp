/**
 * @file
 * The streaming ingest event: one Criteo-like record emitted by a
 * logical stream at a point in (simulated) time.
 *
 * Events carry their total-order key explicitly: (emitTime, stream,
 * seq). Within one stream emit times are strictly increasing (the
 * emitter enforces it, mirroring serve/request.cpp); across streams
 * ties break on the stream id. The staging consumer k-way-merges
 * per-stream rings on this key, which is what makes every downstream
 * decision independent of how streams are packed onto producer
 * threads.
 */

#ifndef RAP_INGEST_EVENT_HPP
#define RAP_INGEST_EVENT_HPP

#include <cstdint>

#include "common/units.hpp"
#include "data/row_codec.hpp"

namespace rap::ingest {

/** One emitted record, self-identifying in the global event order. */
struct Event
{
    /** Logical stream ordinal in [0, IngestConfig::streams). */
    std::uint32_t stream = 0;
    /** Per-stream emission ordinal (0-based, gapless). */
    std::uint64_t seq = 0;
    /** Emission time on the shared virtual clock. */
    Seconds emitTime = 0.0;
    data::CriteoRow row;
};

/** @return True when @p a precedes @p b in the global event order. */
inline bool
eventBefore(const Event &a, const Event &b)
{
    if (a.emitTime != b.emitTime)
        return a.emitTime < b.emitTime;
    if (a.stream != b.stream)
        return a.stream < b.stream;
    return a.seq < b.seq;
}

} // namespace rap::ingest

#endif // RAP_INGEST_EVENT_HPP
