/**
 * @file
 * Time-varying per-stream emission rate profiles for the ingest
 * front-end: steady, diurnal (sinusoidal, the serve-layer idiom from
 * serve/request.hpp), and burst (square-wave on/off peaks). The
 * emitters sample arrivals against these via Lewis-Shedler thinning,
 * so the instantaneous rate can vary continuously while the draw
 * stays a pure function of (seed, stream).
 */

#ifndef RAP_INGEST_RATE_PROFILE_HPP
#define RAP_INGEST_RATE_PROFILE_HPP

#include <string>
#include <string_view>

#include "common/units.hpp"

namespace rap::ingest {

enum class RateProfileKind {
    Steady,
    Diurnal,
    Burst,
};

/** Per-stream emission rate as a function of time. */
struct RateProfile
{
    RateProfileKind kind = RateProfileKind::Steady;
    /** Base (off-peak) rate, events per second per stream. */
    double eventsPerSec = 200000.0;
    /** Diurnal swing fraction in [0, 1). */
    double amplitude = 0.6;
    /** Diurnal / burst cycle length. */
    Seconds period = 0.02;
    /** Burst peak rate as a multiple of the base rate (>= 1). */
    double burstFactor = 6.0;
    /** Fraction of each cycle spent at the burst peak, in (0, 1]. */
    double burstFraction = 0.15;
};

/** @return The instantaneous rate at time @p t (events/second). */
double rateAt(const RateProfile &profile, Seconds t);

/** @return The supremum of rateAt over all t (thinning envelope). */
double peakRate(const RateProfile &profile);

/** @return Stable lowercase id: "steady" / "diurnal" / "burst". */
std::string rateProfileId(RateProfileKind kind);

/** @return False when @p text names no profile (out untouched). */
bool parseRateProfileKind(std::string_view text, RateProfileKind &out);

} // namespace rap::ingest

#endif // RAP_INGEST_RATE_PROFILE_HPP
