#include "ingest/config.hpp"

#include "common/lockfree_queue.hpp"

namespace rap::ingest {

std::string
backpressurePolicyId(BackpressurePolicy policy)
{
    switch (policy) {
      case BackpressurePolicy::Block: return "block";
      case BackpressurePolicy::DropOldest: return "drop-oldest";
      case BackpressurePolicy::Spill: return "spill";
    }
    return "?";
}

bool
parseBackpressurePolicy(std::string_view text, BackpressurePolicy &out)
{
    if (text == "block") {
        out = BackpressurePolicy::Block;
        return true;
    }
    if (text == "drop-oldest") {
        out = BackpressurePolicy::DropOldest;
        return true;
    }
    if (text == "spill") {
        out = BackpressurePolicy::Spill;
        return true;
    }
    return false;
}

std::vector<ConfigIssue>
validateIngestConfig(const IngestConfig &config)
{
    std::vector<ConfigIssue> issues;
    if (config.streams < 1 || config.streams > 4096) {
        issues.emplace_back("streams",
                            "need 1..4096 logical streams");
    }
    if (config.producers < 0) {
        issues.emplace_back(
            "producers",
            "transport thread count cannot be negative "
            "(0 = one per stream)");
    }
    if (config.duration <= 0.0)
        issues.emplace_back("duration", "emission horizon must be > 0");
    if (config.batchRows < 1)
        issues.emplace_back("batchRows", "batches need at least 1 row");
    if (!isPowerOfTwo(config.ringCapacity) || config.ringCapacity < 2) {
        issues.emplace_back(
            "ringCapacity",
            "SPSC ring capacity must be a power of two >= 2");
    }
    if (config.stagingEventsPerSec <= 0.0) {
        issues.emplace_back("stagingEventsPerSec",
                            "staging service rate must be > 0");
    }
    if (config.policy != BackpressurePolicy::Block &&
        config.stagingQueueCap < 1) {
        issues.emplace_back(
            "stagingQueueCap",
            "drop/spill policies need a queue capacity >= 1");
    }
    if (config.depthSampleEvery < 1) {
        issues.emplace_back("depthSampleEvery",
                            "queue-depth sampling stride must be >= 1");
    }
    if (config.profile.eventsPerSec <= 0.0) {
        issues.emplace_back("profile.eventsPerSec",
                            "base emission rate must be > 0");
    }
    if (config.profile.kind == RateProfileKind::Diurnal &&
        (config.profile.amplitude < 0.0 ||
         config.profile.amplitude >= 1.0)) {
        issues.emplace_back(
            "profile.amplitude",
            "diurnal amplitude must be in [0, 1) so the rate stays "
            "positive");
    }
    if (config.profile.kind != RateProfileKind::Steady &&
        config.profile.period <= 0.0) {
        issues.emplace_back("profile.period",
                            "rate modulation needs a positive period");
    }
    if (config.profile.kind == RateProfileKind::Burst) {
        if (config.profile.burstFactor < 1.0) {
            issues.emplace_back("profile.burstFactor",
                                "burst peak multiplier must be >= 1");
        }
        if (config.profile.burstFraction <= 0.0 ||
            config.profile.burstFraction > 1.0) {
            issues.emplace_back("profile.burstFraction",
                                "burst duty cycle must be in (0, 1]");
        }
    }
    return issues;
}

} // namespace rap::ingest
