/**
 * @file
 * Configuration for the streaming ingest front-end: how many logical
 * streams emit, at what rate profile, how the staging consumer is
 * provisioned, and which backpressure policy governs overload.
 *
 * The determinism split that everything downstream relies on:
 *
 *  - `streams` is the *logical* knob. Every event is a pure function
 *    of (seed, stream), so changing the stream count changes the
 *    workload.
 *  - `producers` is the *transport* knob: how many OS threads carry
 *    the streams into the staging consumer. Any producer count yields
 *    byte-identical batches, metrics, and reports — the same contract
 *    `--jobs` / `--engine-jobs` keep elsewhere in the repo, and what
 *    CI's determinism job diffs for bench_ingest.
 */

#ifndef RAP_INGEST_CONFIG_HPP
#define RAP_INGEST_CONFIG_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/io.hpp"
#include "common/units.hpp"
#include "data/criteo.hpp"
#include "ingest/rate_profile.hpp"

namespace rap::ingest {

/** What the staging consumer does when its queue is at capacity. */
enum class BackpressurePolicy {
    /** Queue anyway: no loss, latency absorbs the overload. */
    Block,
    /** Drop the oldest queued event to admit the new one. */
    DropOldest,
    /** Divert the new event to a disk log, replay it after drain. */
    Spill,
};

/** @return Stable lowercase id: "block" / "drop-oldest" / "spill". */
std::string backpressurePolicyId(BackpressurePolicy policy);

/** @return False when @p text names no policy (out untouched). */
bool parseBackpressurePolicy(std::string_view text,
                             BackpressurePolicy &out);

struct IngestConfig
{
    /** Logical substream count (the workload knob, see file docs). */
    int streams = 4;
    /** Transport threads; 0 = one per stream. Never affects results. */
    int producers = 1;
    /** Root seed; stream s derives its own generator from (seed, s). */
    std::uint64_t seed = 20240408;
    /** Schema preset the synthetic events follow. */
    data::DatasetPreset preset = data::DatasetPreset::CriteoKaggle;
    /** Per-stream emission rate over time. */
    RateProfile profile;
    /** Emission horizon on the virtual clock. */
    Seconds duration = 0.05;
    /** Rows per assembled RecordBatch. */
    std::int64_t batchRows = 256;
    /** Per-stream SPSC ring capacity (power of two). */
    std::size_t ringCapacity = 1024;
    /** Staging queue capacity before the policy kicks in (0 = cap
     *  disabled; only meaningful with Block). */
    std::size_t stagingQueueCap = 512;
    /** Staging service rate: events the consumer stages per second. */
    double stagingEventsPerSec = 300000.0;
    BackpressurePolicy policy = BackpressurePolicy::Block;
    /** Spill log path; "" auto-creates one under the temp dir. */
    std::string spillPath;
    /** Sample ingest.queue_depth every N-th arrival. */
    int depthSampleEvery = 64;
    /**
     * Fault-injection context for the spill log (non-owning; null =
     * plain POSIX). When the spill disk dies past the retry budget,
     * the stager falls back to dropping — counted, never silent.
     */
    io::IoContext *io = nullptr;
};

/** One rejected knob: (field, why). Folded into core validation. */
using ConfigIssue = std::pair<std::string, std::string>;

/** @return Every invalid knob in @p config (empty = valid). */
std::vector<ConfigIssue> validateIngestConfig(
    const IngestConfig &config);

} // namespace rap::ingest

#endif // RAP_INGEST_CONFIG_HPP
