/**
 * @file
 * Deterministic per-stream event source. A StreamEmitter is a pure
 * function of (config.seed, stream): it owns a private Rng for
 * arrival thinning and a private CriteoGenerator for row content, so
 * the sequence it yields never depends on which transport thread
 * drives it, how fast the consumer drains, or what other streams do.
 */

#ifndef RAP_INGEST_STREAM_HPP
#define RAP_INGEST_STREAM_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "data/criteo.hpp"
#include "ingest/config.hpp"
#include "ingest/event.hpp"

namespace rap::ingest {

class StreamEmitter
{
  public:
    /** @param schema Shared event schema (copied into the generator). */
    StreamEmitter(const IngestConfig &config,
                  const data::Schema &schema, std::uint32_t stream);

    /**
     * Produce the stream's next event. Emit times are strictly
     * increasing within the stream (serve/request.cpp's thinning
     * loop, including the nextafter tie-break).
     *
     * @return False once the emission horizon is reached; the stream
     *         is then exhausted for good.
     */
    bool next(Event &out);

    std::uint32_t stream() const { return stream_; }

  private:
    RateProfile profile_;
    Seconds duration_;
    std::uint32_t stream_;
    Rng rng_;
    data::CriteoGenerator generator_;
    Seconds clock_ = 0.0;
    Seconds last_ = -1.0;
    std::uint64_t seq_ = 0;
    bool exhausted_ = false;
};

} // namespace rap::ingest

#endif // RAP_INGEST_STREAM_HPP
