#include "ingest/spill.hpp"

#include <atomic>
#include <bit>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <unistd.h>

#include "common/log.hpp"
#include "data/row_codec.hpp"

namespace rap::ingest {

namespace {

std::string
uniqueSpillPath()
{
    static std::atomic<std::uint64_t> next{0};
    const auto ordinal = next.fetch_add(1, std::memory_order_relaxed);
    const auto dir = std::filesystem::temp_directory_path();
    return (dir / ("rap_ingest_spill_" +
                   std::to_string(static_cast<long>(::getpid())) +
                   "_" + std::to_string(ordinal) + ".tsv"))
        .string();
}

void
appendHex(std::string &out, std::uint64_t value)
{
    char buf[17];
    const auto result =
        std::to_chars(buf, buf + sizeof(buf), value, 16);
    out.append(buf, result.ptr);
}

bool
parseU64(std::string_view field, std::uint64_t &value, int base = 10)
{
    const auto *begin = field.data();
    const auto *end = field.data() + field.size();
    const auto result = std::from_chars(begin, end, value, base);
    return result.ec == std::errc{} && result.ptr == end;
}

} // namespace

SpillLog::~SpillLog()
{
    removeFile();
}

bool
SpillLog::open(const std::string &path, io::IoContext *io)
{
    path_ = path.empty() ? uniqueSpillPath() : path;
    io_ = io;
    io::IoError error;
    out_ = io::openFile(io_, path_, io::OpenMode::Truncate, &error);
    if (out_ == nullptr) {
        logWarn("cannot open spill log: ", error.message());
        path_.clear();
        return false;
    }
    appended_ = 0;
    goodBytes_ = 0;
    return true;
}

bool
SpillLog::append(const Event &event)
{
    RAP_ASSERT(out_ != nullptr, "spill log not open");
    if (broken_)
        return false;
    line_.clear();
    appendHex(line_, event.stream);
    line_ += '\t';
    appendHex(line_, event.seq);
    line_ += '\t';
    appendHex(line_, std::bit_cast<std::uint64_t>(event.emitTime));
    line_ += '\t';
    data::encodeCriteoRow(event.row, line_);
    line_ += '\n';
    const auto status = io::writeFully(*out_, line_.data(),
                                       line_.size(), retry_,
                                       &ioStats_);
    if (!status.ok()) {
        // Roll back to the previous line boundary so the partial
        // write cannot corrupt the replay; the caller accounts the
        // event as dropped. When even the rollback fails, refuse all
        // later appends: the clean prefix (everything this log ever
        // acknowledged) still replays, because a partial line never
        // contains its trailing newline.
        if (!out_->truncate(goodBytes_).ok())
            broken_ = true;
        return false;
    }
    goodBytes_ += line_.size();
    ++appended_;
    return true;
}

void
SpillLog::replay(const data::Schema &schema,
                 const std::function<void(Event &&)> &fn)
{
    if (out_ == nullptr)
        return;
    out_.reset();
    std::string raw;
    const auto read = io::readFileBytes(io_, path_, &raw);
    if (!read.ok())
        RAP_FATAL("cannot reopen spill log for replay: ",
                  read.error->message());
    std::string_view rest(raw);
    std::uint64_t replayed = 0;
    data::RowError error;
    while (!rest.empty()) {
        const auto newline = rest.find('\n');
        if (newline == std::string_view::npos)
            break; // rollback failure left a torn final line
        std::string_view view = rest.substr(0, newline);
        rest.remove_prefix(newline + 1);
        // Three fixed metadata fields, then the row codec's TSV.
        std::uint64_t stream = 0, seq = 0, bits = 0;
        bool ok = true;
        for (int field = 0; ok && field < 3; ++field) {
            const auto tab = view.find('\t');
            ok = tab != std::string_view::npos;
            if (!ok)
                break;
            const auto token = view.substr(0, tab);
            view.remove_prefix(tab + 1);
            switch (field) {
              case 0: ok = parseU64(token, stream, 16); break;
              case 1: ok = parseU64(token, seq, 16); break;
              default: ok = parseU64(token, bits, 16); break;
            }
        }
        Event event;
        if (!ok ||
            !data::decodeCriteoRow(view, schema, event.row, error)) {
            RAP_FATAL("corrupt spill log line ", replayed, " in ",
                      path_);
        }
        event.stream = static_cast<std::uint32_t>(stream);
        event.seq = seq;
        event.emitTime = std::bit_cast<double>(bits);
        fn(std::move(event));
        ++replayed;
    }
    RAP_ASSERT(replayed == appended_,
               "spill replay saw ", replayed, " events, expected ",
               appended_);
}

void
SpillLog::removeFile()
{
    out_.reset();
    if (!path_.empty()) {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
        path_.clear();
    }
}

} // namespace rap::ingest
