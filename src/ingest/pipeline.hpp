/**
 * @file
 * The ingest front-end driver: spawns producer threads that run the
 * logical stream emitters, transports events over per-stream SPSC
 * rings (common/lockfree_queue.hpp), k-way-merges them back into the
 * global event order on the consumer, and feeds the Stager.
 *
 * Thread layout: `producers` transport threads (stream s belongs to
 * thread s mod producers), one consumer (the calling thread). A
 * producer owning several streams round-robins them and skips full
 * rings, which keeps it live while the consumer waits on a different
 * stream's head — the merge needs every non-exhausted ring non-empty
 * before it can commit the minimum, so a blocking producer would
 * deadlock the pipeline.
 *
 * Determinism: the merged order and everything the Stager derives
 * from it are functions of (seed, streams, profile, ...) only — the
 * producer count and all transport-level timing affect wall clock and
 * nothing else. bench_ingest's CI determinism diff holds the proof.
 */

#ifndef RAP_INGEST_PIPELINE_HPP
#define RAP_INGEST_PIPELINE_HPP

#include <cstdint>

#include "common/json.hpp"
#include "data/schema.hpp"
#include "ingest/config.hpp"
#include "ingest/stager.hpp"
#include "obs/metrics.hpp"

namespace rap::ingest {

/** Everything one ingest run produced (see Stager for semantics). */
struct IngestReport
{
    std::uint64_t events = 0;
    std::uint64_t dropped = 0;
    std::uint64_t spilled = 0;
    std::uint64_t replayed = 0;
    std::uint64_t batches = 0;
    std::uint64_t rowsStaged = 0;
    /** Staging-latency percentiles (seconds). */
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::size_t maxQueueDepth = 0;
    /** Virtual time the last batch became ready. */
    Seconds lastReadyAt = 0.0;
    /** FNV-1a digest over per-batch checksums. */
    std::uint64_t checksum = 0;
    /** Transport wall clock (stderr/bench-json only — NEVER in the
     *  deterministic report JSON). */
    double wallMs = 0.0;

    /** Deterministic fields only (checksum rendered as hex). */
    Json toJson() const;
};

class IngestPipeline
{
  public:
    /** @p config must be valid (validateIngestConfig empty). */
    explicit IngestPipeline(IngestConfig config);

    const data::Schema &schema() const { return schema_; }
    const IngestConfig &config() const { return config_; }

    /**
     * Run the full pipeline to completion on the calling thread
     * (consumer) plus config.producers transport threads.
     *
     * @param sink Receives every staged batch in order (optional).
     * @param metrics Registry for ingest.* instruments (optional).
     * @param labels Labels for those instruments.
     */
    IngestReport run(const BatchSink &sink = {},
                     obs::MetricRegistry *metrics = nullptr,
                     const obs::Labels &labels = {});

  private:
    IngestConfig config_;
    data::Schema schema_;
};

} // namespace rap::ingest

#endif // RAP_INGEST_PIPELINE_HPP
