#include "ingest/stager.hpp"

#include <bit>
#include <limits>
#include <utility>

#include "common/log.hpp"

namespace rap::ingest {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (byte * 8)) & 0xffULL;
        hash *= kFnvPrime;
    }
    return hash;
}

} // namespace

const std::vector<double> &
stagingLatencyEdges()
{
    static const std::vector<double> edges = {
        1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
        1e-3, 2e-3, 5e-3, 1e-2, 5e-2,
    };
    return edges;
}

IngestMetrics
IngestMetrics::create(obs::MetricRegistry &registry,
                      const obs::Labels &labels)
{
    IngestMetrics metrics;
    metrics.events = &registry.counter("ingest.events", labels);
    metrics.dropped = &registry.counter("ingest.dropped", labels);
    metrics.spilled = &registry.counter("ingest.spilled", labels);
    metrics.spillFailed =
        &registry.counter("ingest.spill_failed", labels);
    metrics.replayed = &registry.counter("ingest.replayed", labels);
    metrics.batches = &registry.counter("ingest.batches", labels);
    metrics.stagingLatency = &registry.histogram(
        "ingest.staging_latency", stagingLatencyEdges(), labels);
    metrics.queueDepth =
        &registry.series("ingest.queue_depth", labels);
    return metrics;
}

Stager::Stager(const IngestConfig &config, data::Schema schema,
               BatchSink sink, IngestMetrics metrics)
    : config_(config), schema_(std::move(schema)),
      sink_(std::move(sink)), metrics_(metrics),
      serviceTime_(1.0 / config.stagingEventsPerSec),
      denseValues_(schema_.denseCount()),
      denseValid_(schema_.denseCount()),
      sparseCols_(schema_.sparseCount()), batchHash_(kFnvOffset)
{
    stats_.checksum = kFnvOffset;
    if (config_.policy == BackpressurePolicy::Spill &&
        !spill_.open(config_.spillPath, config_.io)) {
        // No spill disk at all: run on, but overload now drops (and
        // every such drop is counted as a spill failure too).
        logWarn("spill log unavailable; overload events will be "
                "dropped and counted under ingest.spill_failed");
    }
}

void
Stager::push(Event &&event)
{
    RAP_ASSERT(!finished_, "push after finish");
    ++stats_.arrived;
    completeUntil(event.emitTime);

    ++arrivalTick_;
    if (metrics_.queueDepth != nullptr &&
        arrivalTick_ %
                static_cast<std::uint64_t>(config_.depthSampleEvery) ==
            0) {
        metrics_.queueDepth->append(
            event.emitTime, static_cast<double>(waiting_.size()));
    }

    if (config_.stagingQueueCap > 0 &&
        waiting_.size() >= config_.stagingQueueCap) {
        switch (config_.policy) {
          case BackpressurePolicy::Block:
            // Backpressure: the event queues anyway and the overload
            // shows up as staging latency, never as loss.
            break;
          case BackpressurePolicy::DropOldest:
            waiting_.pop_front();
            ++stats_.dropped;
            if (metrics_.dropped != nullptr)
                metrics_.dropped->inc();
            break;
          case BackpressurePolicy::Spill:
            if (spill_.isOpen() && spill_.append(event)) {
                ++stats_.spilled;
                if (metrics_.spilled != nullptr)
                    metrics_.spilled->inc();
            } else {
                // The spill disk refused the event: dropping loudly
                // beats replaying a log that silently lost it.
                ++stats_.spillFailed;
                ++stats_.dropped;
                if (metrics_.spillFailed != nullptr)
                    metrics_.spillFailed->inc();
                if (metrics_.dropped != nullptr)
                    metrics_.dropped->inc();
            }
            return; // diverted (or dropped); never queued live
        }
    }

    Pending pending;
    pending.arrival = event.emitTime;
    pending.emit = event.emitTime;
    pending.row = std::move(event.row);
    waiting_.push_back(std::move(pending));
    stats_.maxQueueDepth =
        std::max(stats_.maxQueueDepth, waiting_.size());
}

void
Stager::completeUntil(Seconds t)
{
    while (!waiting_.empty()) {
        Pending &front = waiting_.front();
        const Seconds start = std::max(serverFreeAt_, front.arrival);
        const Seconds done = start + serviceTime_;
        if (done > t)
            break;
        serverFreeAt_ = done;
        complete(std::move(front), done, /*replay=*/false);
        waiting_.pop_front();
    }
}

void
Stager::complete(Pending &&pending, Seconds done, bool replay)
{
    const double latency = done - pending.emit;
    stats_.latencies.push_back(latency);
    if (metrics_.stagingLatency != nullptr)
        metrics_.stagingLatency->observe(latency);
    if (replay) {
        ++stats_.replayed;
        if (metrics_.replayed != nullptr)
            metrics_.replayed->inc();
    } else {
        ++stats_.stagedLive;
    }
    appendRow(pending.row);
    ++stats_.rowsStaged;
    if (builderRows_ ==
        static_cast<std::size_t>(config_.batchRows))
        flushBatch(done);
}

void
Stager::appendRow(const data::CriteoRow &row)
{
    for (std::size_t f = 0; f < schema_.denseCount(); ++f) {
        denseValues_[f].push_back(row.dense[f]);
        denseValid_[f].push_back(row.denseValid[f]);
        batchHash_ = fnv1a(batchHash_, row.denseValid[f]);
        batchHash_ = fnv1a(
            batchHash_,
            row.denseValid[f] != 0
                ? std::bit_cast<std::uint32_t>(row.dense[f])
                : 0u);
    }
    for (std::size_t s = 0; s < schema_.sparseCount(); ++s) {
        sparseCols_[s].appendRow(row.sparse[s]);
        batchHash_ = fnv1a(batchHash_, row.sparse[s].size());
        for (const auto id : row.sparse[s]) {
            batchHash_ =
                fnv1a(batchHash_, static_cast<std::uint64_t>(id));
        }
    }
    ++builderRows_;
}

void
Stager::flushBatch(Seconds ready_at)
{
    data::RecordBatch batch(schema_, builderRows_);
    for (std::size_t f = 0; f < schema_.denseCount(); ++f) {
        batch.setDense(f,
                       data::DenseColumn(std::move(denseValues_[f]),
                                         std::move(denseValid_[f])));
        denseValues_[f] = {};
        denseValid_[f] = {};
    }
    for (std::size_t s = 0; s < schema_.sparseCount(); ++s) {
        batch.setSparse(s, std::move(sparseCols_[s]));
        sparseCols_[s] = {};
    }

    StagedBatch staged;
    staged.batch = std::move(batch);
    staged.index = stats_.batches;
    staged.readyAt = ready_at;
    staged.checksum = batchHash_;

    ++stats_.batches;
    stats_.lastReadyAt = ready_at;
    stats_.checksum = fnv1a(stats_.checksum, batchHash_);
    if (metrics_.batches != nullptr)
        metrics_.batches->inc();

    builderRows_ = 0;
    batchHash_ = kFnvOffset;
    if (sink_)
        sink_(std::move(staged));
}

void
Stager::finish()
{
    RAP_ASSERT(!finished_, "finish called twice");
    finished_ = true;
    completeUntil(std::numeric_limits<double>::infinity());
    RAP_ASSERT(waiting_.empty(), "stager drain left events behind");

    if (spill_.isOpen() && spill_.appended() > 0) {
        // Replay after the live drain: the server is free from
        // serverFreeAt_ on, so spilled events queue behind everything
        // live and their latency keeps counting from the original
        // emission — the cost of the detour is visible in the tail.
        spill_.replay(schema_, [this](Event &&event) {
            Pending pending;
            pending.arrival = event.emitTime;
            pending.emit = event.emitTime;
            pending.row = std::move(event.row);
            const Seconds start =
                std::max(serverFreeAt_, pending.arrival);
            const Seconds done = start + serviceTime_;
            serverFreeAt_ = done;
            complete(std::move(pending), done, /*replay=*/true);
        });
    }
    spill_.removeFile();

    if (builderRows_ > 0)
        flushBatch(serverFreeAt_);
}

} // namespace rap::ingest
