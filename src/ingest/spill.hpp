/**
 * @file
 * Disk spill log backing BackpressurePolicy::Spill: overload-diverted
 * events are appended as TSV lines and replayed in order once the
 * live queue has drained, so no event is lost — it just pays the
 * detour in staging latency.
 *
 * Line format: `<stream>\t<seq>\t<emit-bits-hex>\t<row TSV>`. The
 * emit time is persisted as the hex of its IEEE-754 bit pattern and
 * the row via data/row_codec.hpp's round-trip-exact encoder, so a
 * replayed event is bit-identical to the one spilled — checksums over
 * replayed batches stay producer-count-invariant.
 *
 * Writes go through common/io's File layer (short writes healed,
 * EINTR free, transient EIO retried within the budget). A write the
 * budget cannot save rolls the file back to the previous line
 * boundary and fails the append — the caller counts the event as
 * dropped instead of trusting a log that silently lost it.
 */

#ifndef RAP_INGEST_SPILL_HPP
#define RAP_INGEST_SPILL_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/io.hpp"
#include "data/schema.hpp"
#include "ingest/event.hpp"

namespace rap::ingest {

class SpillLog
{
  public:
    SpillLog() = default;
    ~SpillLog();

    SpillLog(const SpillLog &) = delete;
    SpillLog &operator=(const SpillLog &) = delete;

    /**
     * Open for writing (truncates). @p path may be empty: a unique
     * file under the system temp directory is created instead.
     * @p io is the optional fault-injection context (non-owning).
     * @return False when the disk refuses the open — the caller
     * decides the fallback (the stager downgrades to dropping).
     */
    [[nodiscard]] bool open(const std::string &path,
                            io::IoContext *io = nullptr);

    bool isOpen() const { return out_ != nullptr; }
    const std::string &path() const { return path_; }
    std::uint64_t appended() const { return appended_; }

    /** Retry/give-up tallies accumulated by this log. */
    const io::IoStats &ioStats() const { return ioStats_; }

    /**
     * Persist one event (append order = spill order). @return False
     * when the write failed past the retry budget; the log is rolled
     * back to the previous line so later appends stay parseable, and
     * the event is the caller's to account as lost.
     */
    [[nodiscard]] bool append(const Event &event);

    /**
     * Close the writer and stream every spilled event back through
     * @p fn in append order. Fatal on a malformed line — every
     * successful append ended on a line boundary, so the log is
     * either clean or our accounting is buggy.
     */
    void replay(const data::Schema &schema,
                const std::function<void(Event &&)> &fn);

    /** Best-effort unlink of the log file (idempotent). */
    void removeFile();

  private:
    std::unique_ptr<io::File> out_;
    io::IoContext *io_ = nullptr;
    io::IoRetryPolicy retry_;
    io::IoStats ioStats_;
    std::string path_;
    std::string line_;
    std::uint64_t appended_ = 0;
    /** Bytes confirmed on disk (the rollback point for append). */
    std::uint64_t goodBytes_ = 0;
    /**
     * Set when a failed append could not be rolled back: appending
     * after the torn bytes would corrupt the replay, so every later
     * append refuses immediately. The clean prefix still replays.
     */
    bool broken_ = false;
};

} // namespace rap::ingest

#endif // RAP_INGEST_SPILL_HPP
