/**
 * @file
 * Disk spill log backing BackpressurePolicy::Spill: overload-diverted
 * events are appended as TSV lines and replayed in order once the
 * live queue has drained, so no event is lost — it just pays the
 * detour in staging latency.
 *
 * Line format: `<stream>\t<seq>\t<emit-bits-hex>\t<row TSV>`. The
 * emit time is persisted as the hex of its IEEE-754 bit pattern and
 * the row via data/row_codec.hpp's round-trip-exact encoder, so a
 * replayed event is bit-identical to the one spilled — checksums over
 * replayed batches stay producer-count-invariant.
 */

#ifndef RAP_INGEST_SPILL_HPP
#define RAP_INGEST_SPILL_HPP

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "data/schema.hpp"
#include "ingest/event.hpp"

namespace rap::ingest {

class SpillLog
{
  public:
    SpillLog() = default;
    ~SpillLog();

    SpillLog(const SpillLog &) = delete;
    SpillLog &operator=(const SpillLog &) = delete;

    /**
     * Open for writing (truncates). @p path may be empty: a unique
     * file under the system temp directory is created instead.
     * Fatal on I/O failure.
     */
    void open(const std::string &path);

    bool isOpen() const { return out_.is_open(); }
    const std::string &path() const { return path_; }
    std::uint64_t appended() const { return appended_; }

    /** Persist one event (append order = spill order). */
    void append(const Event &event);

    /**
     * Close the writer and stream every spilled event back through
     * @p fn in append order. Fatal on a malformed line — the log is
     * ours, corruption means a bug.
     */
    void replay(const data::Schema &schema,
                const std::function<void(Event &&)> &fn);

    /** Best-effort unlink of the log file (idempotent). */
    void removeFile();

  private:
    std::ofstream out_;
    std::string path_;
    std::string line_;
    std::uint64_t appended_ = 0;
};

} // namespace rap::ingest

#endif // RAP_INGEST_SPILL_HPP
