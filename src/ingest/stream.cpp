#include "ingest/stream.hpp"

#include <cmath>
#include <limits>

namespace rap::ingest {

namespace {

/** Derive an independent per-stream seed from the root seed. */
std::uint64_t
streamSeed(std::uint64_t root, std::uint32_t stream,
           std::uint64_t salt)
{
    std::uint64_t v = root ^ salt;
    v += (static_cast<std::uint64_t>(stream) + 1) *
         0x9e3779b97f4a7c15ULL;
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return v;
}

} // namespace

StreamEmitter::StreamEmitter(const IngestConfig &config,
                             const data::Schema &schema,
                             std::uint32_t stream)
    : profile_(config.profile), duration_(config.duration),
      stream_(stream),
      rng_(streamSeed(config.seed, stream, 0x717261ULL)),
      generator_(schema, streamSeed(config.seed, stream, 0x726f77ULL))
{
}

bool
StreamEmitter::next(Event &out)
{
    if (exhausted_)
        return false;
    // Lewis-Shedler thinning against the profile's peak rate, the
    // same open-loop arrival model the serving layer uses.
    const double rate_max = peakRate(profile_);
    for (;;) {
        clock_ += exponentialGap(rng_.uniform(), 1.0 / rate_max);
        if (clock_ >= duration_) {
            exhausted_ = true;
            return false;
        }
        if (rng_.uniform() * rate_max > rateAt(profile_, clock_))
            continue; // thinned out
        if (clock_ <= last_) {
            clock_ = std::nextafter(
                last_, std::numeric_limits<double>::infinity());
            if (clock_ >= duration_) {
                exhausted_ = true;
                return false;
            }
        }
        last_ = clock_;
        out.stream = stream_;
        out.seq = seq_++;
        out.emitTime = clock_;
        generator_.generateRow(out.row);
        return true;
    }
}

} // namespace rap::ingest
