#include "ingest/rate_profile.hpp"

#include <cmath>

#include "common/log.hpp"

namespace rap::ingest {

double
rateAt(const RateProfile &profile, Seconds t)
{
    switch (profile.kind) {
      case RateProfileKind::Steady:
        return profile.eventsPerSec;
      case RateProfileKind::Diurnal:
        return profile.eventsPerSec *
               (1.0 + profile.amplitude *
                          std::sin(2.0 * M_PI * t / profile.period));
      case RateProfileKind::Burst: {
        const double phase =
            std::fmod(t, profile.period) / profile.period;
        return phase < profile.burstFraction
                   ? profile.eventsPerSec * profile.burstFactor
                   : profile.eventsPerSec;
      }
    }
    RAP_FATAL("unknown rate profile kind");
}

double
peakRate(const RateProfile &profile)
{
    switch (profile.kind) {
      case RateProfileKind::Steady:
        return profile.eventsPerSec;
      case RateProfileKind::Diurnal:
        return profile.eventsPerSec * (1.0 + profile.amplitude);
      case RateProfileKind::Burst:
        return profile.eventsPerSec * profile.burstFactor;
    }
    RAP_FATAL("unknown rate profile kind");
}

std::string
rateProfileId(RateProfileKind kind)
{
    switch (kind) {
      case RateProfileKind::Steady: return "steady";
      case RateProfileKind::Diurnal: return "diurnal";
      case RateProfileKind::Burst: return "burst";
    }
    return "?";
}

bool
parseRateProfileKind(std::string_view text, RateProfileKind &out)
{
    if (text == "steady") {
        out = RateProfileKind::Steady;
        return true;
    }
    if (text == "diurnal") {
        out = RateProfileKind::Diurnal;
        return true;
    }
    if (text == "burst") {
        out = RateProfileKind::Burst;
        return true;
    }
    return false;
}

} // namespace rap::ingest
