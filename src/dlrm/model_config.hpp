/**
 * @file
 * DLRM model configurations (paper Table 2).
 *
 * A DLRM couples a data-parallel bottom MLP over the dense features, a
 * model-parallel set of embedding tables over the sparse features, a
 * pairwise-dot feature interaction, and a data-parallel top MLP (§2.2).
 */

#ifndef RAP_DLRM_MODEL_CONFIG_HPP
#define RAP_DLRM_MODEL_CONFIG_HPP

#include <cstdint>
#include <vector>

#include "data/criteo.hpp"
#include "data/schema.hpp"

namespace rap::dlrm {

/** Complete model + training hyper-parameters. */
struct DlrmConfig
{
    /** Feature schema; its sparse features define the embedding tables. */
    data::Schema schema;
    /** Embedding vector dimension (128 for both Table-2 presets). */
    int embeddingDim = 128;
    /** Bottom ("dense arch") MLP hidden sizes. */
    std::vector<int> bottomMlp = {512, 256};
    /** Top MLP hidden sizes (output layer of size 1 appended). */
    std::vector<int> topMlp = {1024, 1024, 512};
    /** Per-GPU mini-batch size. */
    std::int64_t batchPerGpu = 4096;
    /**
     * Serve the model instead of training it: the iteration keeps
     * only the forward operations (embedding lookup, forward
     * all-to-all, MLPs, interaction) — no backward passes, no
     * embedding update, no gradient all-reduce. Inference batches
     * are embedding-lookup-dominated, which is exactly the resource
     * signature RAP-style envelope sharing co-locates well against
     * compute-heavy training residents.
     */
    bool inferenceOnly = false;

    /** @return Number of embedding tables. */
    std::size_t tableCount() const { return schema.sparseCount(); }

    /** @return Interaction feature count: tables + bottom output. */
    int interactionFeatures() const
    {
        return static_cast<int>(tableCount()) + 1;
    }

    /** @return Input width of the top MLP (pairs + bottom output). */
    int topMlpInputDim() const;

    /** @return Total data-parallel (MLP) parameter count. */
    double mlpParameterCount() const;
};

/**
 * Build the Table-2 configuration for @p preset over @p schema:
 * dense arch 512-256 for both; top arch 1024-1024-512 (Kaggle) or
 * 1024-1024-512-256 (Terabyte); dimension 128.
 */
DlrmConfig makeDlrmConfig(data::DatasetPreset preset, data::Schema schema,
                          std::int64_t batch_per_gpu = 4096);

} // namespace rap::dlrm

#endif // RAP_DLRM_MODEL_CONFIG_HPP
