/**
 * @file
 * Per-GPU training-iteration construction.
 *
 * One DLRM training iteration under hybrid parallelism is a fixed
 * sequence of 11 operations (lookup, all-to-all, MLP forward/backward,
 * embedding update, gradient all-reduce). This module turns a model
 * configuration into the concrete per-GPU operation list the simulator
 * executes, with per-op kernels or collective payloads attached.
 */

#ifndef RAP_DLRM_ITERATION_HPP
#define RAP_DLRM_ITERATION_HPP

#include <vector>

#include "dlrm/layer_cost.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/interconnect.hpp"

namespace rap::dlrm {

/** One operation of a training iteration on one GPU. */
struct TrainOp
{
    TrainOpKind kind = TrainOpKind::EmbeddingLookup;
    std::string name;
    bool comm = false;
    /** Compute kernel (valid when !comm). */
    sim::KernelDesc kernel;
    /** Collective payload per GPU (valid when comm). */
    Bytes commBytes = 0.0;
    sim::CollectiveKind collectiveKind = sim::CollectiveKind::AllToAll;
};

/**
 * Build the iteration operation list for @p gpu.
 */
std::vector<TrainOp> buildIteration(const DlrmConfig &config,
                                    const EmbeddingSharding &sharding,
                                    int gpu, int gpu_count,
                                    const sim::GpuSpec &spec);

/**
 * Analytic lower bound on the iteration latency of @p ops: the sum of
 * kernel exclusive latencies and collective durations (no overlap, no
 * contention, no launch overhead).
 */
Seconds iterationExclusiveLatency(const std::vector<TrainOp> &ops,
                                  const sim::ClusterSpec &cluster_spec,
                                  int gpu_count);

} // namespace rap::dlrm

#endif // RAP_DLRM_ITERATION_HPP
