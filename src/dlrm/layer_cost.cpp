#include "dlrm/layer_cost.hpp"

#include <algorithm>
#include <array>

#include "common/log.hpp"

namespace rap::dlrm {

namespace {

/** Per-layer execution assumptions. */
struct LayerAssumptions
{
    double occupancy;  ///< SM warp-slot fraction while resident
    double memEff;     ///< achievable fraction of peak DRAM bandwidth
};

LayerAssumptions
assumptionsFor(TrainOpKind kind)
{
    switch (kind) {
      case TrainOpKind::EmbeddingLookup: return {0.18, 0.62};
      case TrainOpKind::EmbeddingUpdate: return {0.25, 0.58};
      case TrainOpKind::BottomMlpForward: return {0.85, 0.95};
      case TrainOpKind::TopMlpForward: return {0.88, 0.95};
      case TrainOpKind::TopMlpBackward: return {0.92, 0.95};
      case TrainOpKind::BottomMlpBackward: return {0.90, 0.95};
      case TrainOpKind::Interaction: return {0.55, 0.95};
      case TrainOpKind::InteractionBackward: return {0.55, 0.95};
      default: return {0.0, 0.0};
    }
}

sim::KernelDesc
makeKernel(std::string name, double flops, Bytes bytes,
           const LayerAssumptions &a, const sim::GpuSpec &spec)
{
    const Seconds t_compute =
        flops > 0 ? flops / (spec.peakFlops * a.occupancy) : 0.0;
    const Seconds t_memory =
        bytes > 0 ? bytes / (spec.dramBandwidth * a.memEff) : 0.0;
    const Seconds latency =
        std::max({t_compute, t_memory, spec.minKernelLatency});

    sim::KernelDesc desc;
    desc.name = std::move(name);
    desc.profile = sim::KernelProfile{
        flops, bytes, a.occupancy * spec.totalWarpSlots()};
    desc.exclusiveLatency = latency;
    desc.demand.sm = a.occupancy;
    desc.demand.bw =
        std::min(a.memEff, bytes / latency / spec.dramBandwidth);
    return desc;
}

/** Forward flops of an MLP stack: 2 * B * sum(in*out). */
double
mlpForwardFlops(std::int64_t batch, int input_dim,
                const std::vector<int> &layers, bool final_scalar)
{
    double flops = 0.0;
    int in_dim = input_dim;
    for (int out_dim : layers) {
        flops += 2.0 * static_cast<double>(batch) * in_dim * out_dim;
        in_dim = out_dim;
    }
    if (final_scalar)
        flops += 2.0 * static_cast<double>(batch) * in_dim;
    return flops;
}

/** Activation + weight traffic of an MLP stack (one direction). */
Bytes
mlpBytes(std::int64_t batch, int input_dim,
         const std::vector<int> &layers)
{
    double act_units = input_dim;
    double weight_units = 0.0;
    int in_dim = input_dim;
    for (int out_dim : layers) {
        act_units += out_dim;
        weight_units += static_cast<double>(in_dim) * out_dim;
        in_dim = out_dim;
    }
    return 4.0 * (static_cast<double>(batch) * act_units + weight_units);
}

} // namespace

std::string
trainOpName(TrainOpKind kind)
{
    switch (kind) {
      case TrainOpKind::EmbeddingLookup: return "emb_lookup";
      case TrainOpKind::AllToAllForward: return "a2a_fwd";
      case TrainOpKind::BottomMlpForward: return "bottom_mlp_fwd";
      case TrainOpKind::Interaction: return "interaction";
      case TrainOpKind::TopMlpForward: return "top_mlp_fwd";
      case TrainOpKind::TopMlpBackward: return "top_mlp_bwd";
      case TrainOpKind::InteractionBackward: return "interaction_bwd";
      case TrainOpKind::BottomMlpBackward: return "bottom_mlp_bwd";
      case TrainOpKind::AllToAllBackward: return "a2a_bwd";
      case TrainOpKind::EmbeddingUpdate: return "emb_update";
      case TrainOpKind::GradAllReduce: return "grad_allreduce";
    }
    RAP_PANIC("unknown train op kind");
}

std::array<TrainOpKind, kTrainOpCount>
trainOpOrder()
{
    return {TrainOpKind::EmbeddingLookup,
            TrainOpKind::AllToAllForward,
            TrainOpKind::BottomMlpForward,
            TrainOpKind::Interaction,
            TrainOpKind::TopMlpForward,
            TrainOpKind::TopMlpBackward,
            TrainOpKind::InteractionBackward,
            TrainOpKind::BottomMlpBackward,
            TrainOpKind::AllToAllBackward,
            TrainOpKind::EmbeddingUpdate,
            TrainOpKind::GradAllReduce};
}

bool
isCommOp(TrainOpKind kind)
{
    return kind == TrainOpKind::AllToAllForward ||
           kind == TrainOpKind::AllToAllBackward ||
           kind == TrainOpKind::GradAllReduce;
}

bool
isForwardOp(TrainOpKind kind)
{
    switch (kind) {
      case TrainOpKind::EmbeddingLookup:
      case TrainOpKind::AllToAllForward:
      case TrainOpKind::BottomMlpForward:
      case TrainOpKind::Interaction:
      case TrainOpKind::TopMlpForward:
        return true;
      case TrainOpKind::TopMlpBackward:
      case TrainOpKind::InteractionBackward:
      case TrainOpKind::BottomMlpBackward:
      case TrainOpKind::AllToAllBackward:
      case TrainOpKind::EmbeddingUpdate:
      case TrainOpKind::GradAllReduce:
        return false;
    }
    RAP_PANIC("unknown train op kind");
}

sim::KernelDesc
makeTrainKernel(TrainOpKind kind, const DlrmConfig &config,
                const EmbeddingSharding &sharding, int gpu,
                int gpu_count, const sim::GpuSpec &spec)
{
    RAP_ASSERT(!isCommOp(kind), "comm ops have no compute kernel");
    const auto assumptions = assumptionsFor(kind);
    const double batch = static_cast<double>(config.batchPerGpu);
    const double global_rows = batch * gpu_count;
    const double dim = config.embeddingDim;
    const auto dense_dim = static_cast<int>(config.schema.denseCount());

    switch (kind) {
      case TrainOpKind::EmbeddingLookup: {
        const double local_work =
            sharding.lookupWorkPerGpu(config.schema)[
                static_cast<std::size_t>(gpu)];
        const double local_tables =
            static_cast<double>(sharding.tablesOf(gpu).size());
        const Bytes bytes =
            global_rows * (local_work * dim * 4.0 + // gathered rows
                           local_tables * dim * 4.0); // pooled output
        const double flops = global_rows * local_work * dim;
        return makeKernel(trainOpName(kind), flops, bytes, assumptions,
                          spec);
      }
      case TrainOpKind::EmbeddingUpdate: {
        const double local_work =
            sharding.lookupWorkPerGpu(config.schema)[
                static_cast<std::size_t>(gpu)];
        const double local_tables =
            static_cast<double>(sharding.tablesOf(gpu).size());
        const Bytes bytes =
            1.5 * global_rows * (local_work * dim * 4.0 +
                                 local_tables * dim * 4.0);
        const double flops = 2.0 * global_rows * local_work * dim;
        return makeKernel(trainOpName(kind), flops, bytes, assumptions,
                          spec);
      }
      case TrainOpKind::BottomMlpForward:
        return makeKernel(
            trainOpName(kind),
            mlpForwardFlops(config.batchPerGpu, dense_dim,
                            config.bottomMlp, false),
            mlpBytes(config.batchPerGpu, dense_dim, config.bottomMlp),
            assumptions, spec);
      case TrainOpKind::BottomMlpBackward:
        return makeKernel(
            trainOpName(kind),
            2.0 * mlpForwardFlops(config.batchPerGpu, dense_dim,
                                  config.bottomMlp, false),
            2.0 * mlpBytes(config.batchPerGpu, dense_dim,
                           config.bottomMlp),
            assumptions, spec);
      case TrainOpKind::TopMlpForward:
        return makeKernel(
            trainOpName(kind),
            mlpForwardFlops(config.batchPerGpu, config.topMlpInputDim(),
                            config.topMlp, true),
            mlpBytes(config.batchPerGpu, config.topMlpInputDim(),
                     config.topMlp),
            assumptions, spec);
      case TrainOpKind::TopMlpBackward:
        return makeKernel(
            trainOpName(kind),
            2.0 * mlpForwardFlops(config.batchPerGpu,
                                  config.topMlpInputDim(),
                                  config.topMlp, true),
            2.0 * mlpBytes(config.batchPerGpu, config.topMlpInputDim(),
                           config.topMlp),
            assumptions, spec);
      case TrainOpKind::Interaction:
      case TrainOpKind::InteractionBackward: {
        const double f = config.interactionFeatures();
        const double flops = batch * f * (f - 1.0) / 2.0 * dim * 2.0;
        const Bytes bytes = batch * f * dim * 4.0 * 2.0;
        const double scale =
            kind == TrainOpKind::InteractionBackward ? 2.0 : 1.0;
        return makeKernel(trainOpName(kind), scale * flops,
                          scale * bytes, assumptions, spec);
      }
      default:
        RAP_PANIC("unhandled train op kind");
    }
}

Bytes
commBytesPerGpu(TrainOpKind kind, const DlrmConfig &config, int gpu_count)
{
    const double batch = static_cast<double>(config.batchPerGpu);
    const double dim = config.embeddingDim;
    switch (kind) {
      case TrainOpKind::AllToAllForward:
      case TrainOpKind::AllToAllBackward:
        // Each GPU ends up with its own batch's pooled embeddings for
        // every table: B x T x dim floats exchanged per iteration.
        return batch * static_cast<double>(config.tableCount()) * dim *
               4.0;
      case TrainOpKind::GradAllReduce:
        return config.mlpParameterCount() * 4.0;
      default:
        return 0.0;
    }
}

} // namespace rap::dlrm
