#include "dlrm/trainer.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace rap::dlrm {

TrainingDriver::TrainingDriver(sim::Cluster &cluster, DlrmConfig config,
                               EmbeddingSharding sharding,
                               int launch_group)
    : cluster_(cluster), config_(std::move(config)),
      sharding_(std::move(sharding))
{
    const int gpus = cluster_.gpuCount();
    RAP_ASSERT(sharding_.gpuCount() == gpus,
               "sharding GPU count does not match the cluster");
    opsPerGpu_.reserve(static_cast<std::size_t>(gpus));
    iters_.resize(static_cast<std::size_t>(gpus));
    for (int g = 0; g < gpus; ++g) {
        opsPerGpu_.push_back(buildIteration(
            config_, sharding_, g, gpus, cluster_.spec().gpu));
        streams_.push_back(&cluster_.device(g).newStream(
            "gpu" + std::to_string(g) + ".train", launch_group));
    }
}

const std::vector<TrainOp> &
TrainingDriver::ops(int gpu) const
{
    RAP_ASSERT(gpu >= 0 &&
                   static_cast<std::size_t>(gpu) < opsPerGpu_.size(),
               "gpu ordinal out of range");
    return opsPerGpu_[static_cast<std::size_t>(gpu)];
}

sim::Stream &
TrainingDriver::trainStream(int gpu)
{
    RAP_ASSERT(gpu >= 0 &&
                   static_cast<std::size_t>(gpu) < streams_.size(),
               "gpu ordinal out of range");
    return *streams_[static_cast<std::size_t>(gpu)];
}

void
TrainingDriver::setCheckpoint(std::vector<Bytes> bytes_per_gpu,
                              int every_iterations)
{
    RAP_ASSERT(iterations_ == 0,
               "setCheckpoint must precede pushIterations");
    RAP_ASSERT(every_iterations >= 1,
               "checkpoint cadence must be >= 1 iteration");
    RAP_ASSERT(static_cast<int>(bytes_per_gpu.size()) ==
                   cluster_.gpuCount(),
               "need one checkpoint size per GPU");
    checkpointBytes_ = std::move(bytes_per_gpu);
    checkpointEvery_ = every_iterations;
}

void
TrainingDriver::pushIterations(int count)
{
    RAP_ASSERT(count >= 1, "must push at least one iteration");
    const std::size_t op_count = opsPerGpu_.front().size();
    for (int i = 0; i < count; ++i) {
        const int iter = iterations_++;
        // Collectives are shared across GPUs; payloads are uniform.
        std::vector<sim::CollectivePtr> colls(op_count);
        for (std::size_t k = 0; k < op_count; ++k) {
            const auto &op = opsPerGpu_.front()[k];
            if (op.comm) {
                colls[k] = cluster_.makeCollective(
                    op.collectiveKind, op.commBytes,
                    op.name + "#" + std::to_string(iter));
            }
        }
        pushOneIteration(iter, colls);
    }
}

void
TrainingDriver::pushOneIteration(
    int iter, const std::vector<sim::CollectivePtr> &colls)
{
    const int gpus = cluster_.gpuCount();
    for (int g = 0; g < gpus; ++g) {
        auto &per_gpu = iters_[static_cast<std::size_t>(g)];
        per_gpu.emplace_back();
        auto &rec = per_gpu.back();
        const auto &ops = opsPerGpu_[static_cast<std::size_t>(g)];
        rec.opSpans.resize(ops.size());
        rec.end = sim::makeEvent("iter_end.g" + std::to_string(g) + "." +
                                 std::to_string(iter));
        auto &stream = *streams_[static_cast<std::size_t>(g)];

        if (inputGate_) {
            auto gate = inputGate_(g, iter);
            if (gate)
                stream.pushWait(std::move(gate));
        }

        auto &engine = cluster_.engine();
        stream.pushCallback([this, g, iter, &engine] {
            iterationSpanMutable(g, iter).start = engine.now();
        });

        for (std::size_t k = 0; k < ops.size(); ++k) {
            auto start = sim::makeEvent(
                ops[k].name + ".start.g" + std::to_string(g) + "." +
                std::to_string(iter));
            rec.opStarts.push_back(start);
            stream.pushCallback([this, g, iter, k, &engine] {
                opSpanMutable(g, iter, k).start = engine.now();
            });
            stream.pushRecord(start);
            auto on_done = [this, g, iter, k, &engine] {
                opSpanMutable(g, iter, k).end = engine.now();
            };
            if (ops[k].comm) {
                stream.pushCollective(colls[k], on_done);
            } else {
                stream.pushKernel(ops[k].kernel, on_done);
            }
        }

        stream.pushCallback([this, g, iter, &engine] {
            iterationSpanMutable(g, iter).end = engine.now();
        });
        stream.pushRecord(rec.end);

        // The checkpoint drain sits behind the iteration-end record:
        // the iteration span stays checkpoint-free, but the next
        // iteration on this stream waits for the drain to finish.
        if (checkpointEvery_ > 0 &&
            (iter + 1) % checkpointEvery_ == 0) {
            if (g == 0)
                checkpointIters_.push_back(iter);
            stream.pushCallback([this, g, iter, &engine] {
                checkpointSpanMutable(g, iter).start = engine.now();
            });
            stream.pushCopy(sim::CopyKind::DeviceToHost,
                            checkpointBytes_[static_cast<std::size_t>(g)],
                            [this, g, iter, &engine] {
                                checkpointSpanMutable(g, iter).end =
                                    engine.now();
                            });
        }
    }
}

OpSpan &
TrainingDriver::opSpanMutable(int gpu, int iter, std::size_t op)
{
    return iters_[static_cast<std::size_t>(gpu)][
        static_cast<std::size_t>(iter)].opSpans[op];
}

OpSpan &
TrainingDriver::iterationSpanMutable(int gpu, int iter)
{
    return iters_[static_cast<std::size_t>(gpu)][
        static_cast<std::size_t>(iter)].span;
}

OpSpan &
TrainingDriver::checkpointSpanMutable(int gpu, int iter)
{
    return iters_[static_cast<std::size_t>(gpu)][
        static_cast<std::size_t>(iter)].checkpoint;
}

const OpSpan &
TrainingDriver::checkpointSpan(int gpu, int iter) const
{
    return iters_[static_cast<std::size_t>(gpu)][
        static_cast<std::size_t>(iter)].checkpoint;
}

Seconds
TrainingDriver::avgCheckpointCost() const
{
    RunningStat stat;
    for (int iter : checkpointIters_) {
        Seconds worst = -1.0;
        for (const auto &per_gpu : iters_) {
            const auto &span =
                per_gpu[static_cast<std::size_t>(iter)].checkpoint;
            if (span.valid())
                worst = std::max(worst, span.duration());
        }
        if (worst >= 0.0)
            stat.add(worst);
    }
    RAP_ASSERT(stat.count() > 0,
               "no completed checkpoints; did the simulation run?");
    return stat.mean();
}

sim::SimEventPtr
TrainingDriver::opStart(int gpu, int iter, std::size_t op) const
{
    const auto &rec =
        iters_[static_cast<std::size_t>(gpu)][
            static_cast<std::size_t>(iter)];
    RAP_ASSERT(op < rec.opStarts.size(), "op index out of range");
    return rec.opStarts[op];
}

sim::SimEventPtr
TrainingDriver::iterEnd(int gpu, int iter) const
{
    return iters_[static_cast<std::size_t>(gpu)][
        static_cast<std::size_t>(iter)].end;
}

const OpSpan &
TrainingDriver::opSpan(int gpu, int iter, std::size_t op) const
{
    return iters_[static_cast<std::size_t>(gpu)][
        static_cast<std::size_t>(iter)].opSpans[op];
}

const OpSpan &
TrainingDriver::iterationSpan(int gpu, int iter) const
{
    return iters_[static_cast<std::size_t>(gpu)][
        static_cast<std::size_t>(iter)].span;
}

Seconds
TrainingDriver::avgIterationLatency(int warmup) const
{
    RunningStat stat;
    for (const auto &per_gpu : iters_) {
        for (std::size_t i = static_cast<std::size_t>(warmup);
             i < per_gpu.size(); ++i) {
            const auto &span = per_gpu[i].span;
            if (span.valid())
                stat.add(span.duration());
        }
    }
    RAP_ASSERT(stat.count() > 0,
               "no completed iterations; did the simulation run?");
    return stat.mean();
}

Seconds
TrainingDriver::avgOpDuration(int gpu, std::size_t op, int warmup) const
{
    RunningStat stat;
    const auto &per_gpu = iters_[static_cast<std::size_t>(gpu)];
    for (std::size_t i = static_cast<std::size_t>(warmup);
         i < per_gpu.size(); ++i) {
        const auto &span = per_gpu[i].opSpans[op];
        if (span.valid())
            stat.add(span.duration());
    }
    RAP_ASSERT(stat.count() > 0, "no samples for op ", op);
    return stat.mean();
}

} // namespace rap::dlrm
