#include "dlrm/sharding.hpp"

#include <algorithm>
#include <numeric>

#include "common/log.hpp"

namespace rap::dlrm {

EmbeddingSharding
EmbeddingSharding::balanced(const data::Schema &schema, int gpu_count)
{
    RAP_ASSERT(gpu_count >= 1, "sharding needs at least one GPU");
    const std::size_t tables = schema.sparseCount();

    std::vector<std::size_t> order(tables);
    std::iota(order.begin(), order.end(), 0);
    auto weight = [&schema](std::size_t t) {
        const auto &spec = schema.sparse(t);
        // Lookup traffic scales with list length; capacity pressure with
        // hash size. Blend both so giant tables spread out.
        return spec.avgListLength +
               static_cast<double>(spec.hashSize) * 1e-8;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return weight(a) > weight(b);
                     });

    EmbeddingSharding sharding;
    sharding.gpuCount_ = gpu_count;
    sharding.owner_.assign(tables, 0);
    std::vector<double> load(static_cast<std::size_t>(gpu_count), 0.0);
    for (std::size_t t : order) {
        const auto g = static_cast<int>(
            std::min_element(load.begin(), load.end()) - load.begin());
        sharding.owner_[t] = g;
        load[static_cast<std::size_t>(g)] += weight(t);
    }
    return sharding;
}

EmbeddingSharding
EmbeddingSharding::roundRobin(const data::Schema &schema, int gpu_count)
{
    RAP_ASSERT(gpu_count >= 1, "sharding needs at least one GPU");
    EmbeddingSharding sharding;
    sharding.gpuCount_ = gpu_count;
    sharding.owner_.resize(schema.sparseCount());
    for (std::size_t t = 0; t < sharding.owner_.size(); ++t)
        sharding.owner_[t] = static_cast<int>(t % gpu_count);
    return sharding;
}

EmbeddingSharding
EmbeddingSharding::balancedWithRowWise(const data::Schema &schema,
                                       int gpu_count,
                                       std::int64_t row_wise_threshold)
{
    RAP_ASSERT(row_wise_threshold > 0,
               "row-wise threshold must be positive");
    auto sharding = balanced(schema, gpu_count);
    for (std::size_t t = 0; t < sharding.owner_.size(); ++t) {
        if (schema.sparse(t).hashSize >= row_wise_threshold)
            sharding.owner_[t] = kRowWise;
    }
    return sharding;
}

int
EmbeddingSharding::owner(std::size_t table) const
{
    RAP_ASSERT(table < owner_.size(), "table index out of range");
    RAP_ASSERT(owner_[table] != kRowWise,
               "row-wise table ", table, " has no single owner");
    return owner_[table];
}

bool
EmbeddingSharding::isRowWise(std::size_t table) const
{
    RAP_ASSERT(table < owner_.size(), "table index out of range");
    return owner_[table] == kRowWise;
}

std::vector<int>
EmbeddingSharding::consumersOf(std::size_t table) const
{
    if (isRowWise(table)) {
        std::vector<int> all(static_cast<std::size_t>(gpuCount_));
        std::iota(all.begin(), all.end(), 0);
        return all;
    }
    return {owner_[table]};
}

std::vector<std::size_t>
EmbeddingSharding::tablesOf(int gpu) const
{
    std::vector<std::size_t> result;
    for (std::size_t t = 0; t < owner_.size(); ++t) {
        if (owner_[t] == gpu || owner_[t] == kRowWise)
            result.push_back(t);
    }
    return result;
}

std::vector<double>
EmbeddingSharding::lookupWorkPerGpu(const data::Schema &schema) const
{
    std::vector<double> work(static_cast<std::size_t>(gpuCount_), 0.0);
    for (std::size_t t = 0; t < owner_.size(); ++t) {
        const double len = schema.sparse(t).avgListLength;
        if (owner_[t] == kRowWise) {
            // A row-wise table's gather traffic spreads over all GPUs.
            for (auto &w : work)
                w += len / static_cast<double>(gpuCount_);
        } else {
            work[static_cast<std::size_t>(owner_[t])] += len;
        }
    }
    return work;
}

} // namespace rap::dlrm
