/**
 * @file
 * Analytic cost models for DLRM training layers.
 *
 * Each training operation is characterised by flops, DRAM bytes, an SM
 * occupancy assumption and a memory-efficiency factor, from which a
 * simulator kernel (exclusive latency + resource demand) is derived.
 * The assumptions encode the well-known resource signatures the paper
 * exploits (Fig. 1a): MLP layers are compute-heavy with high SM
 * occupancy and modest bandwidth; embedding lookup/update are gather /
 * scatter streams with low SM occupancy and high — but not saturating,
 * due to random access — bandwidth use; collectives leave the GPU's
 * compute almost idle.
 */

#ifndef RAP_DLRM_LAYER_COST_HPP
#define RAP_DLRM_LAYER_COST_HPP

#include <array>
#include <string>

#include "dlrm/model_config.hpp"
#include "dlrm/sharding.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/kernel.hpp"

namespace rap::dlrm {

/** The per-iteration training operations, in execution order. */
enum class TrainOpKind {
    EmbeddingLookup,
    AllToAllForward,
    BottomMlpForward,
    Interaction,
    TopMlpForward,
    TopMlpBackward,
    InteractionBackward,
    BottomMlpBackward,
    AllToAllBackward,
    EmbeddingUpdate,
    GradAllReduce,
};

/** Number of operations in one training iteration. */
constexpr std::size_t kTrainOpCount = 11;

/** @return Human-readable operation name. */
std::string trainOpName(TrainOpKind kind);

/** @return All operation kinds in iteration order. */
std::array<TrainOpKind, kTrainOpCount> trainOpOrder();

/** @return True for the NVLink collectives (no GPU kernel resident). */
bool isCommOp(TrainOpKind kind);

/**
 * @return True for the forward-pass subset of the iteration — the ops
 * an inference batch executes (DlrmConfig::inferenceOnly).
 */
bool isForwardOp(TrainOpKind kind);

/**
 * Build the compute kernel for @p kind on GPU @p gpu.
 *
 * Comm ops have no kernel — query their payload via commBytesPerGpu.
 *
 * @param config Model configuration.
 * @param sharding Embedding-table placement (lookup/update work).
 * @param gpu GPU ordinal.
 * @param gpu_count Number of GPUs in the job.
 * @param spec GPU hardware spec.
 */
sim::KernelDesc makeTrainKernel(TrainOpKind kind,
                                const DlrmConfig &config,
                                const EmbeddingSharding &sharding,
                                int gpu, int gpu_count,
                                const sim::GpuSpec &spec);

/** @return Per-GPU payload of a comm op (0 for compute ops). */
Bytes commBytesPerGpu(TrainOpKind kind, const DlrmConfig &config,
                      int gpu_count);

} // namespace rap::dlrm

#endif // RAP_DLRM_LAYER_COST_HPP
