/**
 * @file
 * Embedding-table sharding across GPUs (model parallelism).
 *
 * The hybrid-parallel paradigm (§2.2) partitions the embedding tables
 * over GPUs while replicating the MLPs. The owner of a table is also
 * the consumer of that sparse feature's preprocessed output, which is
 * what makes preprocessing-graph mapping a locality problem.
 */

#ifndef RAP_DLRM_SHARDING_HPP
#define RAP_DLRM_SHARDING_HPP

#include <vector>

#include "data/schema.hpp"

namespace rap::dlrm {

/**
 * Assignment of each embedding table (sparse feature) to one GPU.
 */
class EmbeddingSharding
{
  public:
    EmbeddingSharding() = default;

    /**
     * Greedy longest-processing-time sharding: tables are sorted by
     * lookup work (hash size weighted by mean list length x dim) and
     * placed on the currently least-loaded GPU.
     */
    static EmbeddingSharding balanced(const data::Schema &schema,
                                      int gpu_count);

    /** Round-robin sharding in schema order (a simpler baseline). */
    static EmbeddingSharding roundRobin(const data::Schema &schema,
                                        int gpu_count);

    /**
     * Balanced sharding with row-wise parallelism: tables whose hash
     * size reaches @p row_wise_threshold are split row-wise across
     * every GPU (so every GPU consumes that feature's preprocessed
     * input — the duplication case of §7.2); the rest are placed
     * greedily as in balanced().
     */
    static EmbeddingSharding balancedWithRowWise(
        const data::Schema &schema, int gpu_count,
        std::int64_t row_wise_threshold);

    /**
     * @return GPU owning sparse feature @p table; must not be called
     *         for row-wise tables (they have no single owner).
     */
    int owner(std::size_t table) const;

    /** @return True when @p table is split row-wise over all GPUs. */
    bool isRowWise(std::size_t table) const;

    /** @return GPUs consuming feature @p table's preprocessed input. */
    std::vector<int> consumersOf(std::size_t table) const;

    /** @return Sparse feature indices owned by @p gpu. */
    std::vector<std::size_t> tablesOf(int gpu) const;

    int gpuCount() const { return gpuCount_; }
    std::size_t tableCount() const { return owner_.size(); }

    /**
     * @return Per-GPU embedding-lookup work weights (mean list length
     *         summed over owned tables), used by the layer cost model.
     */
    std::vector<double> lookupWorkPerGpu(
        const data::Schema &schema) const;

  private:
    /** Owner GPU per table; kRowWise marks a row-wise table. */
    static constexpr int kRowWise = -1;
    std::vector<int> owner_;
    int gpuCount_ = 0;
};

} // namespace rap::dlrm

#endif // RAP_DLRM_SHARDING_HPP
