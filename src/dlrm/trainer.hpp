/**
 * @file
 * The training driver: executes hybrid-parallel DLRM iterations on the
 * simulated cluster and exposes the synchronisation points that the
 * co-running scheduler hooks into (per-op start events, per-iteration
 * input gates and end events).
 */

#ifndef RAP_DLRM_TRAINER_HPP
#define RAP_DLRM_TRAINER_HPP

#include <functional>
#include <vector>

#include "dlrm/iteration.hpp"
#include "sim/cluster.hpp"

namespace rap::dlrm {

/** Observed execution span of one op instance. */
struct OpSpan
{
    Seconds start = -1.0;
    Seconds end = -1.0;

    Seconds duration() const { return end - start; }
    bool valid() const { return start >= 0.0 && end >= start; }
};

/**
 * Pushes training iterations onto per-GPU streams and records timing.
 *
 * The driver exposes:
 *  - opStart(gpu, iter, op): a SimEvent fired when the op begins, which
 *    preprocessing streams wait on to co-run with that layer;
 *  - iterEnd(gpu, iter): fired when the iteration finishes on the GPU;
 *  - an optional input gate per (gpu, iter) that must fire before the
 *    iteration may start (models waiting for preprocessed inputs).
 */
class TrainingDriver
{
  public:
    /** Gate factory: return the event iteration (gpu, iter) waits on. */
    using InputGate = std::function<sim::SimEventPtr(int gpu, int iter)>;

    /**
     * @param cluster Simulated node to run on.
     * @param config Model configuration.
     * @param sharding Embedding-table placement.
     * @param launch_group Launch group of the training streams.
     */
    TrainingDriver(sim::Cluster &cluster, DlrmConfig config,
                   EmbeddingSharding sharding, int launch_group = 0);

    /** Install an input gate; must be set before pushIterations. */
    void setInputGate(InputGate gate) { inputGate_ = std::move(gate); }

    /**
     * Enable checkpointing: after every @p every_iterations-th
     * iteration each GPU drains @p bytes_per_gpu[g] to the host over
     * its PCIe link (contending with input staging). The drain sits
     * behind the iteration-end record, so iteration *spans* stay
     * checkpoint-free while the interval to the next iteration is
     * charged. Must be called before pushIterations.
     */
    void setCheckpoint(std::vector<Bytes> bytes_per_gpu,
                       int every_iterations);

    /** Enqueue @p count training iterations on every GPU. */
    void pushIterations(int count);

    /** @return The op list executed by @p gpu each iteration. */
    const std::vector<TrainOp> &ops(int gpu) const;

    /** @return Event fired when op @p op of iteration @p iter starts. */
    sim::SimEventPtr opStart(int gpu, int iter, std::size_t op) const;

    /** @return Event fired when iteration @p iter ends on @p gpu. */
    sim::SimEventPtr iterEnd(int gpu, int iter) const;

    /** @return The training stream of @p gpu. */
    sim::Stream &trainStream(int gpu);

    int iterationsPushed() const { return iterations_; }

    /** @return Observed span of one op (valid after the sim ran). */
    const OpSpan &opSpan(int gpu, int iter, std::size_t op) const;

    /** @return Observed iteration span. */
    const OpSpan &iterationSpan(int gpu, int iter) const;

    /**
     * @return Mean iteration latency over all GPUs, skipping the first
     *         @p warmup iterations.
     */
    Seconds avgIterationLatency(int warmup = 1) const;

    /**
     * @return Mean observed wall duration of op @p op on @p gpu across
     *         iterations (after warmup).
     */
    Seconds avgOpDuration(int gpu, std::size_t op, int warmup = 1) const;

    /** @return Checkpoint drain span of (gpu, iter); invalid if none. */
    const OpSpan &checkpointSpan(int gpu, int iter) const;

    /** @return Iterations that had a checkpoint pushed after them. */
    const std::vector<int> &checkpointIterations() const
    {
        return checkpointIters_;
    }

    /**
     * @return Measured per-checkpoint cost: the mean over executed
     *         checkpoints of the slowest GPU's drain duration (GPUs
     *         drain concurrently, so the slowest gates the restart of
     *         training).
     */
    Seconds avgCheckpointCost() const;

  private:
    struct PerIter
    {
        std::vector<sim::SimEventPtr> opStarts;
        sim::SimEventPtr end;
        std::vector<OpSpan> opSpans;
        OpSpan span;
        OpSpan checkpoint;
    };

    void pushOneIteration(int iter,
                          const std::vector<sim::CollectivePtr> &colls);

    OpSpan &opSpanMutable(int gpu, int iter, std::size_t op);
    OpSpan &iterationSpanMutable(int gpu, int iter);
    OpSpan &checkpointSpanMutable(int gpu, int iter);

    sim::Cluster &cluster_;
    DlrmConfig config_;
    EmbeddingSharding sharding_;
    std::vector<std::vector<TrainOp>> opsPerGpu_;
    std::vector<sim::Stream *> streams_;
    std::vector<std::vector<PerIter>> iters_; // [gpu][iter]
    InputGate inputGate_;
    int iterations_ = 0;
    std::vector<Bytes> checkpointBytes_;
    int checkpointEvery_ = 0;
    std::vector<int> checkpointIters_;
};

} // namespace rap::dlrm

#endif // RAP_DLRM_TRAINER_HPP
