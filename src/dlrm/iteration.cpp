#include "dlrm/iteration.hpp"

#include "common/log.hpp"

namespace rap::dlrm {

std::vector<TrainOp>
buildIteration(const DlrmConfig &config, const EmbeddingSharding &sharding,
               int gpu, int gpu_count, const sim::GpuSpec &spec)
{
    RAP_ASSERT(gpu >= 0 && gpu < gpu_count, "gpu ordinal out of range");
    std::vector<TrainOp> ops;
    ops.reserve(kTrainOpCount);
    for (TrainOpKind kind : trainOpOrder()) {
        if (config.inferenceOnly && !isForwardOp(kind))
            continue;
        TrainOp op;
        op.kind = kind;
        op.name = trainOpName(kind);
        op.comm = isCommOp(kind);
        if (op.comm) {
            op.commBytes = commBytesPerGpu(kind, config, gpu_count);
            op.collectiveKind = kind == TrainOpKind::GradAllReduce
                                    ? sim::CollectiveKind::AllReduce
                                    : sim::CollectiveKind::AllToAll;
        } else {
            op.kernel = makeTrainKernel(kind, config, sharding, gpu,
                                        gpu_count, spec);
        }
        ops.push_back(std::move(op));
    }
    return ops;
}

Seconds
iterationExclusiveLatency(const std::vector<TrainOp> &ops,
                          const sim::ClusterSpec &cluster_spec,
                          int gpu_count)
{
    Seconds total = 0.0;
    for (const auto &op : ops) {
        if (op.comm) {
            sim::Engine scratch;
            sim::Collective collective(
                scratch, op.collectiveKind, op.commBytes, gpu_count,
                cluster_spec.nvlinkBandwidth, cluster_spec.nvlinkLatency,
                op.name);
            total += collective.duration();
        } else {
            total += op.kernel.exclusiveLatency +
                     cluster_spec.gpu.kernelLaunchOverhead;
        }
    }
    return total;
}

} // namespace rap::dlrm
