#include "dlrm/model_config.hpp"

#include "common/log.hpp"

namespace rap::dlrm {

int
DlrmConfig::topMlpInputDim() const
{
    const int f = interactionFeatures();
    return f * (f - 1) / 2 + (bottomMlp.empty() ? 0 : bottomMlp.back());
}

double
DlrmConfig::mlpParameterCount() const
{
    double params = 0.0;
    int in_dim = static_cast<int>(schema.denseCount());
    for (int out_dim : bottomMlp) {
        params += static_cast<double>(in_dim) * out_dim + out_dim;
        in_dim = out_dim;
    }
    in_dim = topMlpInputDim();
    for (int out_dim : topMlp) {
        params += static_cast<double>(in_dim) * out_dim + out_dim;
        in_dim = out_dim;
    }
    params += in_dim + 1; // final scalar output layer
    return params;
}

DlrmConfig
makeDlrmConfig(data::DatasetPreset preset, data::Schema schema,
               std::int64_t batch_per_gpu)
{
    RAP_ASSERT(batch_per_gpu > 0, "batch size must be positive");
    DlrmConfig config;
    config.schema = std::move(schema);
    config.embeddingDim = 128;
    config.bottomMlp = {512, 256};
    config.topMlp = preset == data::DatasetPreset::CriteoKaggle
                        ? std::vector<int>{1024, 1024, 512}
                        : std::vector<int>{1024, 1024, 512, 256};
    config.batchPerGpu = batch_per_gpu;
    return config;
}

} // namespace rap::dlrm
