/**
 * @file
 * Hardware descriptions for the simulated training node.
 *
 * The defaults model one NVIDIA DGX-A100: 8x A100-40GB GPUs fully
 * connected through NVSwitch, plus 2x 64-core host CPUs — the paper's
 * evaluation platform (§8.1).
 */

#ifndef RAP_SIM_GPU_SPEC_HPP
#define RAP_SIM_GPU_SPEC_HPP

#include <string>

#include "common/json.hpp"
#include "common/units.hpp"

namespace rap::sim {

/** Static description of a single simulated GPU. */
struct GpuSpec
{
    std::string name = "A100-SXM4-40GB";
    /** Peak single-precision throughput (FLOP/s). */
    double peakFlops = 19.5e12;
    /** HBM2e bandwidth. */
    BytesPerSecond dramBandwidth = 1555e9;
    /** Number of streaming multiprocessors. */
    int smCount = 108;
    /** Maximum resident warps per SM. */
    int warpSlotsPerSm = 64;
    /** CPU-side cost of launching one kernel. */
    Seconds kernelLaunchOverhead = 4e-6;
    /** Floor on any kernel's execution latency (scheduling overheads). */
    Seconds minKernelLatency = 2e-6;

    /** @return Total warp slots across all SMs. */
    int totalWarpSlots() const { return smCount * warpSlotsPerSm; }

    Json toJson() const;
    static GpuSpec fromJson(const Json &json);
};

/** Static description of the whole training node. */
struct ClusterSpec
{
    GpuSpec gpu;
    int gpuCount = 8;
    /** Per-GPU unidirectional NVLink/NVSwitch bandwidth. */
    BytesPerSecond nvlinkBandwidth = 300e9;
    /** Per-message NVLink latency. */
    Seconds nvlinkLatency = 3e-6;
    /** Per-GPU host-to-device (PCIe) bandwidth. */
    BytesPerSecond pcieBandwidth = 25e9;
    /** Per-transfer PCIe latency. */
    Seconds pcieLatency = 10e-6;
    /** Host CPU cores (2x AMD EPYC 7742). */
    int cpuCores = 128;

    Json toJson() const;
    static ClusterSpec fromJson(const Json &json);
};

/** @return The default single-A100 spec. */
GpuSpec a100Spec();

/** @return A DGX-A100-like node with @p gpu_count GPUs. */
ClusterSpec dgxA100Spec(int gpu_count = 8);

} // namespace rap::sim

#endif // RAP_SIM_GPU_SPEC_HPP
