/**
 * @file
 * Utilisation and kernel-timing traces recorded by each simulated GPU.
 *
 * The trace feeds the paper's profiling figures: the per-iteration
 * DRAM/SM utilisation curves of Figure 1(a) and the turning-point
 * utilisation numbers of Table 4.
 */

#ifndef RAP_SIM_TRACE_HPP
#define RAP_SIM_TRACE_HPP

#include <string>
#include <vector>

#include "common/units.hpp"

namespace rap::sim {

/** A period of constant resource usage on one GPU. */
struct UtilSegment
{
    Seconds begin = 0.0;
    Seconds end = 0.0;
    double smUsage = 0.0; ///< fraction of warp slots consumed
    double bwUsage = 0.0; ///< fraction of DRAM bandwidth consumed
    int residentKernels = 0;
};

/** Completion record of one simulated kernel. */
struct KernelRecord
{
    std::string name;
    std::string stream;
    Seconds start = 0.0;
    Seconds end = 0.0;
    Seconds exclusiveLatency = 0.0;

    /** @return Wall time the kernel actually took. */
    Seconds duration() const { return end - start; }

    /** @return Extra time caused by contention (>= 0). */
    Seconds stretch() const { return duration() - exclusiveLatency; }
};

/**
 * Per-device trace accumulating utilisation segments and kernel records.
 */
class Trace
{
  public:
    /** Enable/disable segment recording (kernel records always kept). */
    void setRecordSegments(bool on) { recordSegments_ = on; }

    /**
     * Enable/disable kernel-record keeping. Thousand-GPU scale runs
     * (bench_scale) switch records off so memory stays bounded by the
     * live simulation state; Device's counters (kernels retired,
     * contention stall) are unaffected.
     */
    void setRecordKernels(bool on) { recordKernels_ = on; }

    /** Append a utilisation segment (called by Device). */
    void addSegment(const UtilSegment &segment);

    /** Append a kernel record (called by Device). */
    void addKernel(KernelRecord record);

    const std::vector<UtilSegment> &segments() const { return segments_; }
    const std::vector<KernelRecord> &kernels() const { return kernels_; }

    /** Average SM usage over [t0, t1], weighting by segment length. */
    double avgSmUsage(Seconds t0, Seconds t1) const;

    /** Average DRAM-bandwidth usage over [t0, t1]. */
    double avgBwUsage(Seconds t0, Seconds t1) const;

    /** Fraction of [t0, t1] with at least one kernel resident. */
    double busyFraction(Seconds t0, Seconds t1) const;

    /** Drop all recorded data. */
    void clear();

  private:
    double integrate(Seconds t0, Seconds t1,
                     double (*value)(const UtilSegment &)) const;

    std::vector<UtilSegment> segments_;
    std::vector<KernelRecord> kernels_;
    bool recordSegments_ = true;
    bool recordKernels_ = true;
};

} // namespace rap::sim

#endif // RAP_SIM_TRACE_HPP
