#include "sim/cluster.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace rap::sim {

ClusterSpec
subsetSpec(const ClusterSpec &full, int gpu_count)
{
    RAP_ASSERT(gpu_count >= 1 && gpu_count <= full.gpuCount,
               "subset must take between 1 and ", full.gpuCount,
               " GPUs, got ", gpu_count);
    ClusterSpec subset = full;
    subset.gpuCount = gpu_count;
    subset.cpuCores = std::max(
        1, full.cpuCores * gpu_count / full.gpuCount);
    return subset;
}

Cluster::Cluster(ClusterSpec spec)
    : Cluster(std::move(spec), {})
{
}

Cluster::Cluster(ClusterSpec spec, std::vector<int> global_gpu_ids)
    : spec_(std::move(spec)), globalIds_(std::move(global_gpu_ids))
{
    RAP_ASSERT(spec_.gpuCount >= 1, "cluster needs at least one GPU");
    if (globalIds_.empty()) {
        for (int g = 0; g < spec_.gpuCount; ++g)
            globalIds_.push_back(g);
    }
    RAP_ASSERT(static_cast<int>(globalIds_.size()) == spec_.gpuCount,
               "subset labels must name every GPU: got ",
               globalIds_.size(), " labels for ", spec_.gpuCount,
               " GPUs");
    devices_.reserve(static_cast<std::size_t>(spec_.gpuCount));
    for (int g = 0; g < spec_.gpuCount; ++g) {
        devices_.push_back(std::make_unique<Device>(
            engine_, spec_.gpu, g, spec_.pcieBandwidth, spec_.pcieLatency,
            spec_.nvlinkBandwidth, spec_.nvlinkLatency));
    }
    host_ = std::make_unique<Host>(engine_, spec_.cpuCores);
}

int
Cluster::globalGpuId(int id) const
{
    RAP_ASSERT(id >= 0 && id < gpuCount(), "device id out of range: ", id);
    return globalIds_[static_cast<std::size_t>(id)];
}

Device &
Cluster::device(int id)
{
    RAP_ASSERT(id >= 0 && id < gpuCount(), "device id out of range: ", id);
    return *devices_[static_cast<std::size_t>(id)];
}

const Device &
Cluster::device(int id) const
{
    RAP_ASSERT(id >= 0 && id < gpuCount(), "device id out of range: ", id);
    return *devices_[static_cast<std::size_t>(id)];
}

void
Cluster::partitionZones(int zone_count, int jobs)
{
    if (zone_count == 0)
        zone_count = gpuCount();
    RAP_ASSERT(zone_count >= 1 && zone_count <= gpuCount(),
               "zone count must be in [1, ", gpuCount(), "], got ",
               zone_count);
    // The conservative lookahead is the soonest one device can make
    // its actions visible to another: the fastest interconnect's
    // per-message latency.
    const Seconds lookahead =
        std::min(spec_.nvlinkLatency, spec_.pcieLatency);
    engine_.configureZones(zone_count, lookahead);
    engine_.setJobs(jobs);
}

int
Cluster::deviceZone(int id) const
{
    RAP_ASSERT(id >= 0 && id < gpuCount(), "device id out of range: ", id);
    // Contiguous blocks: device d -> zone d * Z / N, matching the
    // engine's contiguous worker-to-zone assignment.
    return id * engine_.zoneCount() / gpuCount();
}

void
Cluster::setCollectiveBandwidthScale(double scale)
{
    RAP_ASSERT(scale > 0.0 && scale <= 1.0,
               "fabric bandwidth scale must be in (0, 1]");
    collectiveBandwidthScale_ = scale;
}

void
Cluster::exportMetrics(obs::MetricRegistry &registry,
                       const obs::Labels &base) const
{
    for (int g = 0; g < gpuCount(); ++g) {
        const Device &dev = device(g);
        obs::Labels labels = base;
        labels.set("gpu", std::to_string(globalGpuId(g)));
        registry.counter("sim.device.kernels_launched", labels)
            .inc(dev.kernelsLaunched());
        registry.counter("sim.device.kernels_retired", labels)
            .inc(dev.kernelsRetired());
        registry.counter("sim.device.kernel_retries", labels)
            .inc(dev.kernelRetries());
        registry.gauge("sim.device.contention_stall_seconds", labels)
            .set(dev.contentionStallSeconds());
        registry.gauge("sim.device.retry_backoff_seconds", labels)
            .set(dev.retryBackoffSeconds());
        registry.gauge("sim.device.max_resident_kernels", labels)
            .set(static_cast<double>(dev.maxResidentKernels()));
    }
    registry.counter("sim.engine.events", base)
        .inc(engine_.eventsExecuted());
    registry.counter("sim.engine.windows", base)
        .inc(engine_.windowsExecuted());
    registry.counter("sim.engine.cross_zone_events", base)
        .inc(engine_.crossZoneEvents());
    registry.gauge("sim.engine.zones", base)
        .max(static_cast<double>(engine_.zoneCount()));
    registry.gauge("sim.engine.max_queue_depth", base)
        .max(static_cast<double>(engine_.maxQueueDepth()));
    registry.gauge("sim.engine.end_time_seconds", base)
        .max(engine_.now());
}

CollectivePtr
Cluster::makeCollective(CollectiveKind kind, Bytes bytes_per_gpu,
                        std::string name)
{
    return std::make_shared<Collective>(
        engine_, kind, bytes_per_gpu, gpuCount(),
        spec_.nvlinkBandwidth * collectiveBandwidthScale_,
        spec_.nvlinkLatency, std::move(name));
}

} // namespace rap::sim
