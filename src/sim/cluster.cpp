#include "sim/cluster.hpp"

#include "common/log.hpp"

namespace rap::sim {

Cluster::Cluster(ClusterSpec spec)
    : spec_(std::move(spec))
{
    RAP_ASSERT(spec_.gpuCount >= 1, "cluster needs at least one GPU");
    devices_.reserve(static_cast<std::size_t>(spec_.gpuCount));
    for (int g = 0; g < spec_.gpuCount; ++g) {
        devices_.push_back(std::make_unique<Device>(
            engine_, spec_.gpu, g, spec_.pcieBandwidth, spec_.pcieLatency,
            spec_.nvlinkBandwidth, spec_.nvlinkLatency));
    }
    host_ = std::make_unique<Host>(engine_, spec_.cpuCores);
}

Device &
Cluster::device(int id)
{
    RAP_ASSERT(id >= 0 && id < gpuCount(), "device id out of range: ", id);
    return *devices_[static_cast<std::size_t>(id)];
}

const Device &
Cluster::device(int id) const
{
    RAP_ASSERT(id >= 0 && id < gpuCount(), "device id out of range: ", id);
    return *devices_[static_cast<std::size_t>(id)];
}

void
Cluster::setCollectiveBandwidthScale(double scale)
{
    RAP_ASSERT(scale > 0.0 && scale <= 1.0,
               "fabric bandwidth scale must be in (0, 1]");
    collectiveBandwidthScale_ = scale;
}

CollectivePtr
Cluster::makeCollective(CollectiveKind kind, Bytes bytes_per_gpu,
                        std::string name)
{
    return std::make_shared<Collective>(
        engine_, kind, bytes_per_gpu, gpuCount(),
        spec_.nvlinkBandwidth * collectiveBandwidthScale_,
        spec_.nvlinkLatency, std::move(name));
}

} // namespace rap::sim
