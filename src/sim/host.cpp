#include "sim/host.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rap::sim {

Host::Host(Engine &engine, int cores)
    : engine_(engine), cores_(cores), freeCores_(cores)
{
    RAP_ASSERT(cores_ >= 1, "host needs at least one core");
}

Stream &
Host::newStream(std::string name)
{
    streams_.push_back(std::make_unique<Stream>(
        engine_, std::move(name), nullptr, this, 0));
    return *streams_.back();
}

void
Host::submit(Seconds duration, int cores, std::function<void()> done)
{
    RAP_ASSERT(duration >= 0, "task duration must be >= 0");
    const int clamped = std::clamp(cores, 1, cores_);
    pending_.push_back(Task{duration, clamped, std::move(done)});
    tryStart();
}

void
Host::tryStart()
{
    while (!pending_.empty() && pending_.front().cores <= freeCores_) {
        Task task = std::move(pending_.front());
        pending_.pop_front();
        freeCores_ -= task.cores;
        coreSecondsUsed_ += task.duration * task.cores;
        engine_.scheduleAfter(
            task.duration,
            [this, cores = task.cores, done = std::move(task.done)] {
                freeCores_ += cores;
                if (done)
                    done();
                tryStart();
            });
    }
}

} // namespace rap::sim
