#include "sim/engine.hpp"

#include "common/log.hpp"

namespace rap::sim {

void
Engine::schedule(Seconds t, std::function<void()> fn)
{
    RAP_ASSERT(t >= now_ - 1e-12, "cannot schedule into the past: t=", t,
               " now=", now_);
    queue_.push(Item{std::max(t, now_), nextSeq_++, std::move(fn)});
    maxQueueDepth_ = std::max(maxQueueDepth_, queue_.size());
}

void
Engine::scheduleAfter(Seconds dt, std::function<void()> fn)
{
    schedule(now_ + dt, std::move(fn));
}

void
Engine::run()
{
    while (!queue_.empty()) {
        Item item = queue_.top();
        queue_.pop();
        now_ = item.time;
        ++executed_;
        item.fn();
    }
}

void
Engine::runUntil(Seconds t)
{
    while (!queue_.empty() && queue_.top().time <= t) {
        Item item = queue_.top();
        queue_.pop();
        now_ = item.time;
        ++executed_;
        item.fn();
    }
    now_ = std::max(now_, t);
}

void
SimEvent::addWaiter(Engine &engine, std::function<void()> fn)
{
    if (fired_) {
        engine.schedule(engine.now(), std::move(fn));
    } else {
        waiters_.push_back(std::move(fn));
    }
}

void
SimEvent::fire(Engine &engine)
{
    if (fired_)
        return;
    fired_ = true;
    fireTime_ = engine.now();
    for (auto &w : waiters_)
        engine.schedule(engine.now(), std::move(w));
    waiters_.clear();
}

SimEventPtr
makeEvent(std::string name)
{
    return std::make_shared<SimEvent>(std::move(name));
}

} // namespace rap::sim
