#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>

#include "common/log.hpp"

namespace rap::sim {

namespace {

constexpr Seconds kTimeEps = 1e-12;
constexpr Seconds kInfinity = std::numeric_limits<Seconds>::infinity();

/**
 * Which engine/zone the current thread is executing an event for.
 * Saved and restored around run(), so simulations nested inside an
 * event (the fleet scheduler's inner sims) resolve their own context.
 */
thread_local Engine *tlsEngine = nullptr;
thread_local int tlsZone = 0;

/**
 * Sense-reversing spin barrier for the window workers. Spins briefly,
 * then yields, so oversubscribed machines (CI runners) make progress.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(int parties) : parties_(parties) {}

    void
    arriveAndWait()
    {
        const std::uint32_t phase =
            phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            phase_.store(phase + 1, std::memory_order_release);
            return;
        }
        int spins = 0;
        while (phase_.load(std::memory_order_acquire) == phase) {
            if (++spins > 256) {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }

  private:
    const int parties_;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint32_t> phase_{0};
};

} // namespace

Engine::Engine()
{
    zones_.push_back(std::make_unique<Zone>(0));
}

Engine::~Engine() = default;

void
Engine::configureZones(int zone_count, Seconds lookahead)
{
    RAP_ASSERT(!running_, "cannot repartition a running engine");
    RAP_ASSERT(zone_count >= 1, "need at least one zone, got ",
               zone_count);
    RAP_ASSERT(zone_count == 1 || lookahead > 0.0,
               "multi-zone partitioning needs a positive lookahead "
               "(the minimum cross-zone latency), got ",
               lookahead);
    for (const auto &zone : zones_) {
        RAP_ASSERT(zone->executed == 0 && zone->queue.empty(),
                   "configure zones before scheduling any event");
    }
    zones_.clear();
    for (int z = 0; z < zone_count; ++z)
        zones_.push_back(std::make_unique<Zone>(z));
    lookahead_ = zone_count == 1 ? 0.0 : lookahead;
}

void
Engine::setJobs(int jobs)
{
    RAP_ASSERT(jobs >= 1, "engine jobs must be >= 1, got ", jobs);
    jobs_ = jobs;
}

int
Engine::currentZone() const
{
    return tlsEngine == this ? tlsZone : 0;
}

Seconds
Engine::now() const
{
    if (tlsEngine == this)
        return zones_[static_cast<std::size_t>(tlsZone)]->now;
    Seconds frontier = 0.0;
    for (const auto &zone : zones_)
        frontier = std::max(frontier, zone->now);
    return frontier;
}

std::uint64_t
Engine::eventsExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &zone : zones_)
        total += zone->executed;
    return total;
}

std::size_t
Engine::maxQueueDepth() const
{
    std::size_t depth = 0;
    for (const auto &zone : zones_)
        depth = std::max(depth, zone->maxDepth);
    return depth;
}

std::uint64_t
Engine::crossZoneEvents() const
{
    std::uint64_t total = 0;
    for (const auto &zone : zones_)
        total += zone->crossSent;
    return total;
}

Engine::Zone &
Engine::callerZone()
{
    const int zone = tlsEngine == this ? tlsZone : 0;
    return *zones_[static_cast<std::size_t>(zone)];
}

void
Engine::pushLocal(Zone &zone, Seconds t, EventCallback fn)
{
    RAP_ASSERT(t >= zone.now - kTimeEps,
               "cannot schedule into the past: t=", t,
               " now=", zone.now);
    const EventHandle handle = zone.pool.acquire(std::move(fn));
    zone.queue.push(
        Ref{std::max(t, zone.now), zone.nextSeq++, handle});
    zone.maxDepth = std::max(zone.maxDepth, zone.queue.size());
}

void
Engine::schedule(Seconds t, EventCallback fn)
{
    pushLocal(callerZone(), t, std::move(fn));
}

void
Engine::scheduleAfter(Seconds dt, EventCallback fn)
{
    Zone &zone = callerZone();
    pushLocal(zone, zone.now + dt, std::move(fn));
}

void
Engine::schedule(Seconds t, int zone, EventCallback fn)
{
    RAP_ASSERT(zone >= 0 && zone < zoneCount(),
               "zone out of range: ", zone, " of ", zoneCount());
    Zone &dst = *zones_[static_cast<std::size_t>(zone)];
    if (running_ && tlsEngine == this && tlsZone != zone) {
        // Cross-zone send from inside the window body: the target
        // zone may be executing concurrently, so the event goes
        // through its inbox and must respect the lookahead bound.
        Zone &src = *zones_[static_cast<std::size_t>(tlsZone)];
        RAP_ASSERT(t >= src.now + lookahead_ - kTimeEps,
                   "cross-zone event below the lookahead bound: t=", t,
                   " now=", src.now, " lookahead=", lookahead_);
        CrossMsg msg{t, static_cast<std::uint32_t>(tlsZone),
                     src.crossSent++, std::move(fn)};
        if (!dst.inbox.tryPush(std::move(msg))) {
            // Bounded fast path full: fall back to the mutex-guarded
            // overflow list. Delivery order is unaffected (drains
            // re-sort on the deterministic key).
            std::lock_guard<std::mutex> guard(dst.overflowMu);
            dst.overflow.push_back(std::move(msg));
        }
        return;
    }
    pushLocal(dst, t, std::move(fn));
}

void
Engine::execZone(Zone &zone, Seconds window_end)
{
    tlsZone = zone.index;
    while (!zone.queue.empty() &&
           zone.queue.top().time < window_end) {
        const Ref ref = zone.queue.top();
        zone.queue.pop();
        zone.now = ref.time;
        ++zone.executed;
        EventCallback fn = zone.pool.take(ref.handle);
        fn();
    }
}

void
Engine::drainInbox(Zone &zone)
{
    zone.drainBuf.clear();
    CrossMsg msg;
    while (zone.inbox.tryPop(msg))
        zone.drainBuf.push_back(std::move(msg));
    {
        std::lock_guard<std::mutex> guard(zone.overflowMu);
        for (auto &m : zone.overflow)
            zone.drainBuf.push_back(std::move(m));
        zone.overflow.clear();
    }
    if (zone.drainBuf.empty())
        return;
    // Deliver in the deterministic order (time, sender, sender seq):
    // the per-sender tags are themselves deterministic because every
    // zone executes its own events in a fixed order, so the delivered
    // sequence is independent of worker count and race outcomes.
    std::stable_sort(zone.drainBuf.begin(), zone.drainBuf.end(),
                     [](const CrossMsg &a, const CrossMsg &b) {
                         if (a.time != b.time)
                             return a.time < b.time;
                         if (a.srcZone != b.srcZone)
                             return a.srcZone < b.srcZone;
                         return a.srcSeq < b.srcSeq;
                     });
    for (auto &m : zone.drainBuf)
        pushLocal(zone, m.time, std::move(m.fn));
    zone.drainBuf.clear();
}

void
Engine::runSingleZone()
{
    Zone &zone = *zones_[0];
    Engine *prev_engine = tlsEngine;
    const int prev_zone = tlsZone;
    tlsEngine = this;
    running_ = true;
    execZone(zone, kInfinity);
    running_ = false;
    tlsEngine = prev_engine;
    tlsZone = prev_zone;
}

void
Engine::run()
{
    RAP_ASSERT(!running_, "Engine::run is not reentrant");
    if (zones_.size() == 1) {
        runSingleZone();
        return;
    }
    runWindows();
}

void
Engine::runUntil(Seconds t)
{
    RAP_ASSERT(zones_.size() == 1,
               "runUntil requires a single-zone engine");
    RAP_ASSERT(!running_, "Engine::run is not reentrant");
    Zone &zone = *zones_[0];
    Engine *prev_engine = tlsEngine;
    const int prev_zone = tlsZone;
    tlsEngine = this;
    running_ = true;
    while (!zone.queue.empty() && zone.queue.top().time <= t) {
        const Ref ref = zone.queue.top();
        zone.queue.pop();
        zone.now = ref.time;
        ++zone.executed;
        EventCallback fn = zone.pool.take(ref.handle);
        fn();
    }
    running_ = false;
    tlsEngine = prev_engine;
    tlsZone = prev_zone;
    zone.now = std::max(zone.now, t);
}

void
Engine::workerLoop(int worker, int worker_count, void *barrier_opaque)
{
    auto *barrier = static_cast<SpinBarrier *>(barrier_opaque);
    const int zone_count = zoneCount();
    const int begin = worker * zone_count / worker_count;
    const int end = (worker + 1) * zone_count / worker_count;

    Engine *prev_engine = tlsEngine;
    const int prev_zone = tlsZone;
    tlsEngine = this;

    for (;;) {
        // Phase 1: deliver pending cross-zone events, then report the
        // earliest pending timestamp across this worker's zones.
        Seconds local_min = kInfinity;
        for (int z = begin; z < end; ++z) {
            Zone &zone = *zones_[static_cast<std::size_t>(z)];
            drainInbox(zone);
            if (!zone.queue.empty())
                local_min =
                    std::min(local_min, zone.queue.top().time);
        }
        localMin_[static_cast<std::size_t>(worker)] = local_min;
        barrier->arriveAndWait();

        // Phase 2: worker 0 reduces the global minimum and publishes
        // the window bound (or the stop flag when everything drained).
        if (worker == 0) {
            Seconds global_min = kInfinity;
            for (const Seconds m : localMin_)
                global_min = std::min(global_min, m);
            if (global_min == kInfinity) {
                stopFlag_ = true;
            } else {
                windowEnd_ = global_min + lookahead_;
                ++windows_;
            }
        }
        barrier->arriveAndWait();
        if (stopFlag_)
            break;

        // Phase 3: execute the window body. Zones are independent
        // within the window, so this is the parallel section.
        for (int z = begin; z < end; ++z)
            execZone(*zones_[static_cast<std::size_t>(z)],
                     windowEnd_);
        barrier->arriveAndWait();
    }

    tlsEngine = prev_engine;
    tlsZone = prev_zone;
}

void
Engine::runWindows()
{
    const int zone_count = zoneCount();
    const int workers =
        std::max(1, std::min(jobs_, zone_count));
    running_ = true;
    stopFlag_ = false;
    localMin_.assign(static_cast<std::size_t>(workers), kInfinity);

    SpinBarrier barrier(workers);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w) {
        threads.emplace_back(
            [this, w, workers, &barrier] {
                workerLoop(w, workers, &barrier);
            });
    }
    workerLoop(0, workers, &barrier);
    for (auto &thread : threads)
        thread.join();
    running_ = false;
}

void
SimEvent::addWaiter(Engine &engine, std::function<void()> fn)
{
    if (fired_) {
        engine.schedule(engine.now(), std::move(fn));
    } else {
        waiters_.push_back(std::move(fn));
    }
}

void
SimEvent::fire(Engine &engine)
{
    if (fired_)
        return;
    fired_ = true;
    fireTime_ = engine.now();
    for (auto &w : waiters_)
        engine.schedule(engine.now(), std::move(w));
    waiters_.clear();
}

SimEventPtr
makeEvent(std::string name)
{
    return std::make_shared<SimEvent>(std::move(name));
}

} // namespace rap::sim
