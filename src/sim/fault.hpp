/**
 * @file
 * Deterministic fault injection for the simulated cluster.
 *
 * A FaultSpec is a seeded schedule of degradation events: a GPU's SM
 * capacity or HBM bandwidth drops at a given simulated time, an
 * interconnect link slows, or kernel launches start failing
 * transiently inside a time window. A FaultInjector armed on a
 * Cluster applies the schedule through the discrete-event engine, so
 * every fault scenario is reproducible from (spec, seed) alone.
 *
 * Transient kernel failures retry through the device's regular launch
 * path with capped exponential backoff: a failed attempt occupies the
 * device for the detection fraction of its work, waits out the
 * backoff, then relaunches (charging launch overhead again). The
 * final allowed attempt always succeeds, so simulations terminate.
 */

#ifndef RAP_SIM_FAULT_HPP
#define RAP_SIM_FAULT_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace rap::sim {

class Cluster;

/** What a fault event degrades. */
enum class FaultKind {
    /** SM capacity drops to `factor` (thermal throttle, dead SMs). */
    SmDegrade,
    /** HBM bandwidth drops to `factor`. */
    HbmDegrade,
    /** An interconnect link's bandwidth drops to `factor`. */
    LinkSlow,
    /** Kernel launches fail with `probability` inside [time, until). */
    TransientKernel,
    /** One GPU goes permanently offline (fail-stop). */
    DeviceCrash,
    /** The host dies, taking every GPU down with it (fail-stop). */
    HostCrash,
    /** The job is killed externally; all its devices stop (fail-stop). */
    JobKill,
};

/** @return Stable machine token ("sm_degrade") for JSON / labels. */
std::string faultKindId(FaultKind kind);

/** Inverse of faultKindId; RAP_FATALs on unknown tokens. */
FaultKind faultKindFromId(const std::string &id);

/** Which link a LinkSlow event targets. */
enum class FaultLink {
    /** The device's host-to-device (PCIe) link. */
    HostLink,
    /** The device's peer egress (NVLink) link. */
    PeerLink,
    /** Every peer link plus the collective fabric (NVSwitch). */
    Fabric,
};

/** @return Stable machine token ("fabric") for JSON / labels. */
std::string faultLinkId(FaultLink link);

/** Inverse of faultLinkId; RAP_FATALs on unknown tokens. */
FaultLink faultLinkFromId(const std::string &id);

/** Retry behaviour for transient kernel failures. */
struct RetryPolicy
{
    /** Launch attempts per kernel; the last one always succeeds. */
    int maxAttempts = 4;
    /** Backoff before retry k is backoffBase * 2^(k-1), capped. */
    Seconds backoffBase = 20e-6;
    Seconds backoffCap = 200e-6;
    /** Fraction of the kernel's work a failed attempt still runs. */
    double detectFraction = 0.25;

    Json toJson() const;
    static RetryPolicy fromJson(const Json &json);
};

/** One scheduled degradation. */
struct FaultEvent
{
    FaultKind kind = FaultKind::SmDegrade;
    /** Target GPU ordinal; -1 = every GPU (the fabric for LinkSlow). */
    int device = -1;
    /** Simulated time the event takes effect. */
    Seconds time = 0.0;
    /** TransientKernel only: end of the failure window. */
    Seconds until = std::numeric_limits<Seconds>::infinity();
    /** Capacity / bandwidth multiplier in (0, 1]. */
    double factor = 1.0;
    /** TransientKernel only: per-launch failure probability. */
    double probability = 0.0;
    /** LinkSlow only: which link slows. */
    FaultLink link = FaultLink::Fabric;

    static FaultEvent smDegrade(int device, Seconds time, double factor);
    static FaultEvent hbmDegrade(int device, Seconds time,
                                 double factor);
    static FaultEvent linkSlow(int device, FaultLink link, Seconds time,
                               double factor);
    static FaultEvent transientKernel(int device, Seconds from,
                                      Seconds until,
                                      double probability);
    static FaultEvent deviceCrash(int device, Seconds time);
    static FaultEvent hostCrash(Seconds time);
    static FaultEvent jobKill(Seconds time);

    /** @return True for DeviceCrash / HostCrash / JobKill. */
    bool isFailStop() const;

    /**
     * JsonSerializable (core/serial.hpp convention): exact doubles,
     * the infinite `until` window as JSON null.
     */
    Json toJson() const;
    static FaultEvent fromJson(const Json &json);
};

/** A complete seeded fault scenario. */
struct FaultSpec
{
    std::vector<FaultEvent> events;
    /** Seed of the transient-failure draws. */
    std::uint64_t seed = 0x5eedfa11u;
    RetryPolicy retry;

    /** @return True when any event is a TransientKernel fault. */
    bool hasTransientFaults() const;

    /** @return True when any event is fail-stop. */
    bool hasFailStop() const;

    /** @return A copy with every fail-stop event removed. */
    FaultSpec degradationOnly() const;

    /** @return Sorted times of the fail-stop events. */
    std::vector<Seconds> failStopTimes() const;

    /** Seeds serialize as decimal strings (exact for all 64 bits). */
    Json toJson() const;
    static FaultSpec fromJson(const Json &json);
};

/**
 * Draw a seeded fail-stop crash trace: inter-crash gaps are
 * exponential with mean @p mtbf and each crash hits a uniformly drawn
 * GPU in [0, gpu_count). Events stop at @p horizon, so the trace is
 * finite and every recovery composition terminates. Deterministic in
 * (mtbf, seed, horizon, gpu_count).
 */
std::vector<FaultEvent> makeCrashTrace(Seconds mtbf, std::uint64_t seed,
                                       Seconds horizon, int gpu_count);

/**
 * Applies a FaultSpec to a Cluster.
 *
 * The injector must outlive the cluster's simulation run: devices keep
 * a pointer to it for the transient-failure draws.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Schedule the spec's events on @p cluster's engine and install
     * the transient-failure hook on every device. Call once, before
     * the simulation runs.
     */
    void arm(Cluster &cluster);

    /**
     * Decide whether launch attempt @p attempt (1-based) of a kernel
     * on @p device fails at time @p now. The final allowed attempt
     * never fails. Draws are consumed in engine order, so equal seeds
     * yield equal failure schedules.
     */
    bool shouldFailLaunch(Seconds now, int device, int attempt);

    /** @return Backoff before the retry that follows attempt @p n. */
    Seconds backoff(int attempt) const;

    const RetryPolicy &retry() const { return spec_.retry; }
    const FaultSpec &spec() const { return spec_; }

    /** @return Total transient failures injected so far. */
    std::uint64_t injectedFailures() const { return injectedFailures_; }

  private:
    FaultSpec spec_;
    Rng rng_;
    std::uint64_t injectedFailures_ = 0;
    bool armed_ = false;
};

} // namespace rap::sim

#endif // RAP_SIM_FAULT_HPP
