/**
 * @file
 * JSON round-trips for the hardware and fault vocabulary (the
 * core/serial.hpp JsonSerializable convention). These are what lets
 * the durable fleet catalog persist a run's full configuration —
 * node spec and fault schedule included — and rebuild it bit-exactly
 * on resume: every double goes through the shortest-round-trip writer
 * and 64-bit seeds travel as decimal strings, so
 * fromJson(toJson(x)) == x for every field.
 */

#include <cmath>
#include <limits>

#include "common/log.hpp"
#include "sim/fault.hpp"
#include "sim/gpu_spec.hpp"

namespace rap::sim {

namespace {

constexpr std::pair<FaultKind, const char *> kFaultKindIds[] = {
    {FaultKind::SmDegrade, "sm_degrade"},
    {FaultKind::HbmDegrade, "hbm_degrade"},
    {FaultKind::LinkSlow, "link_slow"},
    {FaultKind::TransientKernel, "transient_kernel"},
    {FaultKind::DeviceCrash, "device_crash"},
    {FaultKind::HostCrash, "host_crash"},
    {FaultKind::JobKill, "job_kill"},
};

constexpr std::pair<FaultLink, const char *> kFaultLinkIds[] = {
    {FaultLink::HostLink, "host_link"},
    {FaultLink::PeerLink, "peer_link"},
    {FaultLink::Fabric, "fabric"},
};

/** 64-bit values as decimal strings: exact beyond double's 53 bits. */
Json
uint64Json(std::uint64_t value)
{
    return Json(std::to_string(value));
}

std::uint64_t
uint64FromJson(const Json &json)
{
    return std::stoull(json.asString());
}

} // namespace

std::string
faultKindId(FaultKind kind)
{
    for (const auto &[k, id] : kFaultKindIds) {
        if (k == kind)
            return id;
    }
    RAP_PANIC("unknown fault kind");
}

FaultKind
faultKindFromId(const std::string &id)
{
    for (const auto &[k, token] : kFaultKindIds) {
        if (id == token)
            return k;
    }
    RAP_FATAL("unknown fault-kind id '", id, "'");
}

std::string
faultLinkId(FaultLink link)
{
    for (const auto &[l, id] : kFaultLinkIds) {
        if (l == link)
            return id;
    }
    RAP_PANIC("unknown fault link");
}

FaultLink
faultLinkFromId(const std::string &id)
{
    for (const auto &[l, token] : kFaultLinkIds) {
        if (id == token)
            return l;
    }
    RAP_FATAL("unknown fault-link id '", id, "'");
}

Json
RetryPolicy::toJson() const
{
    Json json = Json::object();
    json.set("maxAttempts", Json(maxAttempts));
    json.set("backoffBase", Json(backoffBase));
    json.set("backoffCap", Json(backoffCap));
    json.set("detectFraction", Json(detectFraction));
    return json;
}

RetryPolicy
RetryPolicy::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("RetryPolicy JSON must be an object");
    RetryPolicy policy;
    policy.maxAttempts =
        static_cast<int>(json.at("maxAttempts").asDouble());
    policy.backoffBase = json.at("backoffBase").asDouble();
    policy.backoffCap = json.at("backoffCap").asDouble();
    policy.detectFraction = json.at("detectFraction").asDouble();
    return policy;
}

Json
FaultEvent::toJson() const
{
    Json json = Json::object();
    json.set("kind", Json(faultKindId(kind)));
    json.set("device", Json(device));
    json.set("time", Json(time));
    // JSON has no infinity literal; the open-ended window is null.
    json.set("until", std::isinf(until) ? Json() : Json(until));
    json.set("factor", Json(factor));
    json.set("probability", Json(probability));
    json.set("link", Json(faultLinkId(link)));
    return json;
}

FaultEvent
FaultEvent::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("FaultEvent JSON must be an object");
    FaultEvent event;
    event.kind = faultKindFromId(json.at("kind").asString());
    event.device = static_cast<int>(json.at("device").asDouble());
    event.time = json.at("time").asDouble();
    const Json &until = json.at("until");
    event.until = until.isNull()
                      ? std::numeric_limits<Seconds>::infinity()
                      : until.asDouble();
    event.factor = json.at("factor").asDouble();
    event.probability = json.at("probability").asDouble();
    event.link = faultLinkFromId(json.at("link").asString());
    return event;
}

Json
FaultSpec::toJson() const
{
    Json json = Json::object();
    Json event_array = Json::array();
    for (const auto &event : events)
        event_array.push(event.toJson());
    json.set("events", std::move(event_array));
    json.set("seed", uint64Json(seed));
    json.set("retry", retry.toJson());
    return json;
}

FaultSpec
FaultSpec::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("FaultSpec JSON must be an object");
    FaultSpec spec;
    for (const Json &event : json.at("events").elements())
        spec.events.push_back(FaultEvent::fromJson(event));
    spec.seed = uint64FromJson(json.at("seed"));
    spec.retry = RetryPolicy::fromJson(json.at("retry"));
    return spec;
}

Json
GpuSpec::toJson() const
{
    Json json = Json::object();
    json.set("name", Json(name));
    json.set("peakFlops", Json(peakFlops));
    json.set("dramBandwidth", Json(dramBandwidth));
    json.set("smCount", Json(smCount));
    json.set("warpSlotsPerSm", Json(warpSlotsPerSm));
    json.set("kernelLaunchOverhead", Json(kernelLaunchOverhead));
    json.set("minKernelLatency", Json(minKernelLatency));
    return json;
}

GpuSpec
GpuSpec::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("GpuSpec JSON must be an object");
    GpuSpec spec;
    spec.name = json.at("name").asString();
    spec.peakFlops = json.at("peakFlops").asDouble();
    spec.dramBandwidth = json.at("dramBandwidth").asDouble();
    spec.smCount = static_cast<int>(json.at("smCount").asDouble());
    spec.warpSlotsPerSm =
        static_cast<int>(json.at("warpSlotsPerSm").asDouble());
    spec.kernelLaunchOverhead =
        json.at("kernelLaunchOverhead").asDouble();
    spec.minKernelLatency = json.at("minKernelLatency").asDouble();
    return spec;
}

Json
ClusterSpec::toJson() const
{
    Json json = Json::object();
    json.set("gpu", gpu.toJson());
    json.set("gpuCount", Json(gpuCount));
    json.set("nvlinkBandwidth", Json(nvlinkBandwidth));
    json.set("nvlinkLatency", Json(nvlinkLatency));
    json.set("pcieBandwidth", Json(pcieBandwidth));
    json.set("pcieLatency", Json(pcieLatency));
    json.set("cpuCores", Json(cpuCores));
    return json;
}

ClusterSpec
ClusterSpec::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("ClusterSpec JSON must be an object");
    ClusterSpec spec;
    spec.gpu = GpuSpec::fromJson(json.at("gpu"));
    spec.gpuCount = static_cast<int>(json.at("gpuCount").asDouble());
    spec.nvlinkBandwidth = json.at("nvlinkBandwidth").asDouble();
    spec.nvlinkLatency = json.at("nvlinkLatency").asDouble();
    spec.pcieBandwidth = json.at("pcieBandwidth").asDouble();
    spec.pcieLatency = json.at("pcieLatency").asDouble();
    spec.cpuCores = static_cast<int>(json.at("cpuCores").asDouble());
    return spec;
}

} // namespace rap::sim
