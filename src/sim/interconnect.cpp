#include "sim/interconnect.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rap::sim {

LinkServer::LinkServer(Engine &engine, BytesPerSecond bandwidth,
                       Seconds latency, std::string name)
    : engine_(engine), bandwidth_(bandwidth), latency_(latency),
      name_(std::move(name))
{
    RAP_ASSERT(bandwidth_ > 0, "link bandwidth must be positive");
}

void
LinkServer::setRateScale(double scale)
{
    RAP_ASSERT(scale > 0.0 && scale <= 1.0,
               "link rate scale must be in (0, 1]");
    rateScale_ = scale;
}

Seconds
LinkServer::submit(Bytes bytes, std::function<void()> done)
{
    RAP_ASSERT(bytes >= 0, "cannot transfer negative bytes");
    const Seconds start = std::max(engine_.now(), nextFree_);
    const Seconds duration = latency_ + bytes / (bandwidth_ * rateScale_);
    nextFree_ = start + duration;
    totalBytes_ += bytes;
    if (done)
        engine_.schedule(nextFree_, std::move(done));
    return nextFree_;
}

Collective::Collective(Engine &engine, CollectiveKind kind,
                       Bytes bytes_per_gpu, int participants,
                       BytesPerSecond bandwidth, Seconds latency,
                       std::string name)
    : engine_(engine), kind_(kind), bytesPerGpu_(bytes_per_gpu),
      participants_(participants), bandwidth_(bandwidth),
      latency_(latency), name_(std::move(name))
{
    RAP_ASSERT(participants_ >= 1, "collective needs >= 1 participant");
    RAP_ASSERT(bytesPerGpu_ >= 0, "collective payload must be >= 0");
}

Seconds
Collective::duration() const
{
    if (participants_ == 1)
        return latency_;
    const double g = participants_;
    switch (kind_) {
      case CollectiveKind::AllToAll:
        // Each GPU sends (G-1)/G of its payload to peers.
        return latency_ + bytesPerGpu_ * (g - 1.0) / g / bandwidth_;
      case CollectiveKind::AllReduce:
        // Ring all-reduce: 2(G-1)/G payload volume, (G-1) latency hops.
        return latency_ * (g - 1.0) +
               2.0 * bytesPerGpu_ * (g - 1.0) / g / bandwidth_;
    }
    return latency_;
}

void
Collective::arrive(std::function<void()> done)
{
    RAP_ASSERT(arrived_ < participants_,
               "collective ", name_, " got more arrivals than participants");
    callbacks_.push_back(std::move(done));
    if (++arrived_ < participants_)
        return;
    const Seconds end = engine_.now() + duration();
    for (auto &cb : callbacks_) {
        if (cb)
            engine_.schedule(end, std::move(cb));
    }
    callbacks_.clear();
}

} // namespace rap::sim
