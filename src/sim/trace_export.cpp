#include "sim/trace_export.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace rap::sim {

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

bool
inWindow(const TraceExportOptions &options, Seconds start, Seconds end)
{
    if (end < options.begin)
        return false;
    if (options.end > 0.0 && start > options.end)
        return false;
    return true;
}

} // namespace

std::string
toChromeTraceJson(const Cluster &cluster, TraceExportOptions options)
{
    std::ostringstream oss;
    oss << "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string &event) {
        if (!first)
            oss << ",";
        first = false;
        oss << "\n" << event;
    };

    for (int g = 0; g < cluster.gpuCount(); ++g) {
        const auto &trace = cluster.device(g).trace();
        const int pid = g;

        // Process metadata: one "process" per GPU, named after the
        // physical ordinal so subset-cluster traces (fleet jobs) show
        // which GPUs of the node the job co-ran on.
        {
            std::ostringstream e;
            e << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
              << pid << ",\"args\":{\"name\":\"GPU "
              << cluster.globalGpuId(g) << "\"}}";
            emit(e.str());
        }

        // Kernel events: one thread track per stream.
        std::map<std::string, int> stream_tids;
        for (const auto &record : trace.kernels()) {
            if (!inWindow(options, record.start, record.end))
                continue;
            auto [it, inserted] = stream_tids.try_emplace(
                record.stream,
                static_cast<int>(stream_tids.size()) + 1);
            if (inserted) {
                std::ostringstream m;
                m << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                  << pid << ",\"tid\":" << it->second
                  << ",\"args\":{\"name\":\""
                  << escape(record.stream) << "\"}}";
                emit(m.str());
            }
            std::ostringstream e;
            e << "{\"name\":\"" << escape(record.name)
              << "\",\"ph\":\"X\",\"pid\":" << pid
              << ",\"tid\":" << it->second
              << ",\"ts\":" << record.start * 1e6
              << ",\"dur\":" << record.duration() * 1e6
              << ",\"args\":{\"exclusive_us\":"
              << record.exclusiveLatency * 1e6
              << ",\"stretch_us\":" << record.stretch() * 1e6 << "}}";
            emit(e.str());
        }

        if (!options.includeCounters)
            continue;
        for (const auto &segment : trace.segments()) {
            if (!inWindow(options, segment.begin, segment.end))
                continue;
            std::ostringstream e;
            e << "{\"name\":\"utilisation\",\"ph\":\"C\",\"pid\":"
              << pid << ",\"ts\":" << segment.begin * 1e6
              << ",\"args\":{\"sm\":" << segment.smUsage
              << ",\"bw\":" << segment.bwUsage << "}}";
            emit(e.str());
        }
    }

    if (options.spans != nullptr) {
        // Sim-time spans land on their GPU's process (track 0, which
        // stream tracks never use) or on a run-wide process; planner
        // wall-clock spans get their own host process past the GPUs.
        const int run_pid = cluster.gpuCount();
        const int planner_pid = cluster.gpuCount() + 1;
        std::set<std::pair<int, int>> named_tracks;
        auto nameTrack = [&](int pid, int tid, const std::string &name) {
            if (!named_tracks.insert({pid, tid}).second)
                return;
            std::ostringstream m;
            m << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
              << pid << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
              << escape(name) << "\"}}";
            emit(m.str());
        };
        auto nameProcess = [&](int pid, const std::string &name) {
            std::ostringstream m;
            m << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
              << pid << ",\"args\":{\"name\":\"" << escape(name)
              << "\"}}";
            emit(m.str());
        };
        bool run_named = false;
        bool planner_named = false;

        for (const auto &record : options.spans->spanRecords()) {
            const std::string title =
                record.name + record.labels.render();
            if (record.hasSim) {
                if (!inWindow(options, record.simBegin, record.simEnd))
                    continue;
                int pid = run_pid;
                for (const auto &[key, value] : record.labels.pairs()) {
                    if (key != "gpu")
                        continue;
                    for (int g = 0; g < cluster.gpuCount(); ++g) {
                        if (value ==
                            std::to_string(cluster.globalGpuId(g))) {
                            pid = g;
                            break;
                        }
                    }
                }
                if (pid == run_pid && !run_named) {
                    nameProcess(run_pid, "run");
                    run_named = true;
                }
                nameTrack(pid, 0, "phases");
                std::ostringstream e;
                e << "{\"name\":\"" << escape(title)
                  << "\",\"ph\":\"X\",\"pid\":" << pid
                  << ",\"tid\":0,\"ts\":" << record.simBegin * 1e6
                  << ",\"dur\":"
                  << (record.simEnd - record.simBegin) * 1e6 << "}";
                emit(e.str());
            } else if (record.hasWall) {
                if (!planner_named) {
                    nameProcess(planner_pid, "planner (host)");
                    planner_named = true;
                }
                const int tid = record.depth + 1;
                nameTrack(planner_pid, tid,
                          "depth " + std::to_string(record.depth));
                std::ostringstream e;
                e << "{\"name\":\"" << escape(title)
                  << "\",\"ph\":\"X\",\"pid\":" << planner_pid
                  << ",\"tid\":" << tid
                  << ",\"ts\":" << record.wallBegin * 1e6 << ",\"dur\":"
                  << (record.wallEnd - record.wallBegin) * 1e6 << "}";
                emit(e.str());
            }
        }
    }

    oss << "\n],\"displayTimeUnit\":\"ms\"}";
    return oss.str();
}

void
writeChromeTrace(const Cluster &cluster, const std::string &path,
                 TraceExportOptions options)
{
    std::ofstream out(path);
    if (!out)
        RAP_FATAL("cannot open trace output file: ", path);
    out << toChromeTraceJson(cluster, options);
    if (!out)
        RAP_FATAL("failed writing trace output file: ", path);
}

} // namespace rap::sim
