/**
 * @file
 * The simulated GPU: stream ownership, the kernel-launch path, and the
 * block-level proportional-share contention model.
 *
 * Contention model. Every resident kernel occupies a ResourceDemand
 * (fraction of SM warp slots, fraction of DRAM bandwidth). Resources
 * are granted by priority class: within a class, kernels share
 * proportionally (when the class's summed demand exceeds what is
 * available, every kernel in it scales by the oversubscription
 * factor); lower classes only receive what higher classes leave
 * unused. Equal-priority streams therefore model MPS-style fair
 * sharing — co-running stays free until summed demand crosses 1.0,
 * after which everyone slows (the paper's Figure 1c behaviour) —
 * while a lower-priority stream models CUDA stream priorities, whose
 * kernels are starved during heavy training layers instead of
 * slowing the trainer.
 */

#ifndef RAP_SIM_DEVICE_HPP
#define RAP_SIM_DEVICE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/interconnect.hpp"
#include "sim/kernel.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"

namespace rap::sim {

class FaultInjector;

/**
 * One simulated GPU.
 */
class Device
{
  public:
    /**
     * @param engine The simulation engine.
     * @param spec GPU hardware description.
     * @param id Device ordinal within the cluster.
     * @param h2d_bandwidth Host-to-device link bandwidth.
     * @param h2d_latency Host-to-device per-transfer latency.
     * @param p2p_bandwidth Peer egress (NVLink) bandwidth.
     * @param p2p_latency Peer per-transfer latency.
     */
    Device(Engine &engine, GpuSpec spec, int id,
           BytesPerSecond h2d_bandwidth, Seconds h2d_latency,
           BytesPerSecond p2p_bandwidth, Seconds p2p_latency);

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /**
     * Create a stream on this device.
     *
     * @param name Diagnostic name.
     * @param launch_group Kernel-launch serialisation group (streams
     *        of one process share a group).
     * @param priority 0 = highest; lower-priority streams' kernels
     *        only receive the resources higher classes leave unused.
     */
    Stream &newStream(std::string name, int launch_group = 0,
                      int priority = 0);

    /**
     * Launch @p desc from @p stream: the launch occupies the stream's
     * launch-group thread for the spec's launch overhead, after which
     * the kernel becomes resident; @p done fires at kernel completion.
     */
    void launchKernel(Stream &stream, KernelDesc desc,
                      std::function<void()> done);

    /** Submit a copy on the H2D or P2P link; @p done at completion. */
    void submitCopy(CopyKind kind, Bytes bytes, std::function<void()> done);

    int id() const { return id_; }
    const GpuSpec &spec() const { return spec_; }
    Trace &trace() { return trace_; }
    const Trace &trace() const { return trace_; }

    /** @return Number of kernels currently resident. */
    std::size_t residentCount() const { return resident_.size(); }

    /** @return Summed demand of the currently-resident kernels. */
    ResourceDemand residentDemand() const;

    /** @return H2D link (for tests and statistics). */
    LinkServer &h2dLink() { return h2d_; }

    /** @return P2P egress link (for tests and statistics). */
    LinkServer &p2pLink() { return p2p_; }

    /**
     * Degrade the device's SM capacity to @p capacity in (0, 1] of
     * the healthy device (thermal throttle, disabled SMs). Takes
     * effect immediately: resident kernels re-share the reduced
     * envelope from the current instant.
     */
    void degradeSm(double capacity);

    /** Degrade the device's HBM bandwidth to @p capacity in (0, 1]. */
    void degradeBw(double capacity);

    /**
     * Fail-stop the device: every resident kernel is discarded without
     * firing its completion callback, and all future launches and
     * copies are silently dropped. Work chained behind a discarded
     * kernel therefore stalls forever — exactly what a crashed GPU
     * does to its process — and recovery must come from outside the
     * simulation (checkpoint restore, fleet requeue).
     */
    void crash();

    /** @return False once crash() has been called. */
    bool isOnline() const { return !offline_; }

    /** @return Kernels discarded in-flight by crash(). */
    std::uint64_t discardedKernels() const { return discardedKernels_; }

    /** @return Current SM capacity (1.0 = healthy). */
    double smCapacity() const { return smCapacity_; }

    /** @return Current HBM-bandwidth capacity (1.0 = healthy). */
    double bwCapacity() const { return bwCapacity_; }

    /** Install the transient-kernel-failure hook (may be nullptr). */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** @return Failed launch attempts retried on this device. */
    std::uint64_t kernelRetries() const { return kernelRetries_; }

    /** @return Total retry-backoff delay charged to the timeline. */
    Seconds retryBackoffSeconds() const { return retryBackoff_; }

    /** @return Kernels launched (every attempt, including retries). */
    std::uint64_t kernelsLaunched() const { return kernelsLaunched_; }

    /** @return Kernels retired (ran to completion). */
    std::uint64_t kernelsRetired() const { return kernelsRetired_; }

    /**
     * @return Summed contention stretch of retired kernels: actual
     *         duration minus exclusive latency, i.e. time lost to
     *         sharing the device (or to degraded capacity).
     */
    Seconds contentionStallSeconds() const { return stallSeconds_; }

    /** @return Largest number of simultaneously-resident kernels. */
    std::size_t maxResidentKernels() const { return maxResident_; }

  private:
    struct Resident
    {
        KernelDesc desc;
        Seconds remaining = 0.0;
        double rate = 1.0;
        Seconds start = 0.0;
        std::string streamName;
        int priority = 0;
        std::function<void()> done;
        std::uint64_t id = 0;
    };

    /** Advance resident kernels' progress up to the current time. */
    void advanceToNow();

    /** Recompute rates, retire finished kernels, schedule next wake. */
    void refresh();

    void addResident(KernelDesc desc, const std::string &stream_name,
                     int priority, std::function<void()> done);

    /** Occupy the launch path, then admit attempt @p attempt. */
    void queueLaunch(int group, KernelDesc desc,
                     std::string stream_name, int priority,
                     std::function<void()> done, int attempt);

    /** Make the kernel resident, or fail it and chain the retry. */
    void admitKernel(int group, KernelDesc desc,
                     std::string stream_name, int priority,
                     std::function<void()> done, int attempt);

    Engine &engine_;
    GpuSpec spec_;
    int id_;
    std::vector<std::unique_ptr<Stream>> streams_;
    std::vector<Resident> resident_;
    std::map<int, Seconds> launchFree_;
    Seconds lastUpdate_ = 0.0;
    std::uint64_t wakeGeneration_ = 0;
    std::uint64_t nextKernelId_ = 0;
    double currentSmUsage_ = 0.0;
    double currentBwUsage_ = 0.0;
    double smCapacity_ = 1.0;
    double bwCapacity_ = 1.0;
    bool offline_ = false;
    std::uint64_t discardedKernels_ = 0;
    FaultInjector *injector_ = nullptr;
    std::uint64_t kernelRetries_ = 0;
    Seconds retryBackoff_ = 0.0;
    std::uint64_t kernelsLaunched_ = 0;
    std::uint64_t kernelsRetired_ = 0;
    Seconds stallSeconds_ = 0.0;
    std::size_t maxResident_ = 0;
    LinkServer h2d_;
    LinkServer p2p_;
    Trace trace_;
};

} // namespace rap::sim

#endif // RAP_SIM_DEVICE_HPP
