#include "sim/event_pool.hpp"

#include "common/log.hpp"

namespace rap::sim {

EventPool::Node &
EventPool::node(std::uint32_t index)
{
    return slabs_[index / kSlabSize][index % kSlabSize];
}

const EventPool::Node &
EventPool::node(std::uint32_t index) const
{
    return slabs_[index / kSlabSize][index % kSlabSize];
}

void
EventPool::addSlab()
{
    const std::uint32_t base =
        static_cast<std::uint32_t>(slabs_.size() * kSlabSize);
    slabs_.push_back(std::make_unique<Node[]>(kSlabSize));
    // Chain the fresh slab onto the free list back-to-front so nodes
    // hand out in ascending index order.
    for (std::size_t i = kSlabSize; i-- > 0;) {
        Node &n = slabs_.back()[i];
        n.nextFree = freeHead_;
        freeHead_ = base + static_cast<std::uint32_t>(i);
    }
}

EventHandle
EventPool::acquire(EventCallback fn)
{
    if (freeHead_ == EventHandle::kInvalidIndex)
        addSlab();
    const std::uint32_t index = freeHead_;
    Node &n = node(index);
    freeHead_ = n.nextFree;
    n.nextFree = EventHandle::kInvalidIndex;
    n.fn = std::move(fn);
    n.live = true;
    ++live_;
    return EventHandle{index, n.generation};
}

bool
EventPool::valid(EventHandle handle) const
{
    if (handle.isNull() || handle.index >= capacity())
        return false;
    const Node &n = node(handle.index);
    return n.live && n.generation == handle.generation;
}

EventCallback
EventPool::take(EventHandle handle)
{
    RAP_ASSERT(valid(handle),
               "stale or null event handle: index=", handle.index,
               " generation=", handle.generation);
    Node &n = node(handle.index);
    EventCallback fn = std::move(n.fn);
    // Reassigning (rather than destroying) n.fn on the next acquire
    // lets implementations reuse the node in place; bump the
    // generation now so any copy of this handle goes stale.
    n.fn = nullptr;
    n.live = false;
    ++n.generation;
    n.nextFree = freeHead_;
    freeHead_ = handle.index;
    --live_;
    return fn;
}

void
EventPool::release(EventHandle handle)
{
    RAP_ASSERT(valid(handle),
               "stale or null event handle: index=", handle.index,
               " generation=", handle.generation);
    Node &n = node(handle.index);
    n.fn = nullptr;
    n.live = false;
    ++n.generation;
    n.nextFree = freeHead_;
    freeHead_ = handle.index;
    --live_;
}

void
EventPool::reset()
{
    freeHead_ = EventHandle::kInvalidIndex;
    live_ = 0;
    for (std::size_t s = slabs_.size(); s-- > 0;) {
        const std::uint32_t base =
            static_cast<std::uint32_t>(s * kSlabSize);
        for (std::size_t i = kSlabSize; i-- > 0;) {
            Node &n = slabs_[s][i];
            n.fn = nullptr;
            if (n.live)
                ++n.generation;
            n.live = false;
            n.nextFree = freeHead_;
            freeHead_ = base + static_cast<std::uint32_t>(i);
        }
    }
}

} // namespace rap::sim
