#include "sim/kernel.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rap::sim {

KernelDesc
KernelDesc::fromProfile(std::string name, const KernelProfile &profile,
                        const GpuSpec &spec)
{
    RAP_ASSERT(profile.flops >= 0 && profile.bytes >= 0 &&
                   profile.warps >= 0,
               "kernel profile components must be non-negative");

    const double total_slots = spec.totalWarpSlots();
    const double sm_frac =
        std::clamp(profile.warps / total_slots, 0.0, 1.0);

    // Flop rate reachable with this warp footprint. Even a single-warp
    // kernel achieves a small fraction of peak, so floor at one SM.
    const double min_sm_frac = 1.0 / spec.smCount;
    const double flop_rate =
        spec.peakFlops * std::max(sm_frac, min_sm_frac);

    const Seconds t_compute =
        profile.flops > 0 ? profile.flops / flop_rate : 0.0;
    const Seconds t_memory =
        profile.bytes > 0 ? profile.bytes / spec.dramBandwidth : 0.0;

    KernelDesc desc;
    desc.name = std::move(name);
    desc.profile = profile;
    desc.exclusiveLatency =
        std::max({t_compute, t_memory, spec.minKernelLatency});
    desc.demand.sm = sm_frac;
    desc.demand.bw = desc.exclusiveLatency > 0
                         ? std::clamp(profile.bytes /
                                          desc.exclusiveLatency /
                                          spec.dramBandwidth,
                                      0.0, 1.0)
                         : 0.0;
    return desc;
}

KernelDesc
KernelDesc::synthetic(std::string name, Seconds latency,
                      ResourceDemand demand)
{
    RAP_ASSERT(latency > 0, "synthetic kernel needs positive latency");
    RAP_ASSERT(demand.sm >= 0 && demand.sm <= 1 && demand.bw >= 0 &&
                   demand.bw <= 1,
               "synthetic kernel demand must be within [0, 1]");
    KernelDesc desc;
    desc.name = std::move(name);
    desc.exclusiveLatency = latency;
    desc.demand = demand;
    return desc;
}

} // namespace rap::sim
