#include "sim/gpu_spec.hpp"

#include "common/log.hpp"

namespace rap::sim {

GpuSpec
a100Spec()
{
    return GpuSpec{};
}

ClusterSpec
dgxA100Spec(int gpu_count)
{
    RAP_ASSERT(gpu_count >= 1, "cluster needs at least one GPU");
    ClusterSpec spec;
    spec.gpuCount = gpu_count;
    return spec;
}

} // namespace rap::sim
