/**
 * @file
 * Chrome-tracing (about://tracing / Perfetto) export of simulation
 * traces: every kernel becomes a complete event on its stream's track,
 * grouped per GPU, with SM / DRAM-bandwidth counter tracks.
 */

#ifndef RAP_SIM_TRACE_EXPORT_HPP
#define RAP_SIM_TRACE_EXPORT_HPP

#include <string>

#include "sim/cluster.hpp"

namespace rap::obs {
class MetricRegistry;
}

namespace rap::sim {

/** Export options. */
struct TraceExportOptions
{
    /** Emit SM/BW counter tracks sampled from utilisation segments. */
    bool includeCounters = true;
    /** Drop events ending before this time. */
    Seconds begin = 0.0;
    /** Drop events starting after this time (0 = no limit). */
    Seconds end = 0.0;
    /**
     * Also render spans recorded in this registry: sim-time spans
     * appear on their GPU's process (a dedicated "phases" track, or
     * the run-wide process when the span has no `gpu` label), and
     * wall-clock spans (planner phases) on an extra "planner (host)"
     * process past the GPUs. Null = no span rendering.
     */
    const obs::MetricRegistry *spans = nullptr;
};

/**
 * Render the cluster's recorded traces as a Chrome trace-event JSON
 * document (the "traceEvents" array format). Timestamps are emitted
 * in microseconds as the format requires.
 */
std::string toChromeTraceJson(const Cluster &cluster,
                              TraceExportOptions options = {});

/** Convenience: write the JSON to @p path; fatal on I/O failure. */
void writeChromeTrace(const Cluster &cluster, const std::string &path,
                      TraceExportOptions options = {});

} // namespace rap::sim

#endif // RAP_SIM_TRACE_EXPORT_HPP
