/**
 * @file
 * Compatibility alias: the lock-free rings used for cross-zone event
 * handoff were hoisted to common/lockfree_queue.hpp so non-sim code
 * (the streaming ingest front-end) can use them without linking the
 * simulator. The engine drains inboxes only at window barriers, after
 * every producer has passed a synchronisation point, so pop order
 * never influences simulation results: messages are re-sorted by a
 * deterministic key before delivery.
 */

#ifndef RAP_SIM_LOCKFREE_QUEUE_HPP
#define RAP_SIM_LOCKFREE_QUEUE_HPP

#include "common/lockfree_queue.hpp"

namespace rap::sim {

using rap::isPowerOfTwo;
using rap::MpscQueue;
using rap::SpscQueue;

} // namespace rap::sim

#endif // RAP_SIM_LOCKFREE_QUEUE_HPP
