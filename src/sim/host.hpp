/**
 * @file
 * Host CPU model: a fixed pool of cores executing data-preparation
 * tasks (memory allocation, batch slicing, H2D staging) and the CPU
 * side of baseline preprocessing pipelines.
 */

#ifndef RAP_SIM_HOST_HPP
#define RAP_SIM_HOST_HPP

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/stream.hpp"

namespace rap::sim {

/**
 * A pool of CPU cores with FIFO task admission.
 *
 * A task occupies a fixed number of cores for a fixed wall duration.
 * Tasks are started strictly in submission order: the head of the queue
 * waits until enough cores are free (no overtaking), which models a
 * work queue with a fair scheduler.
 */
class Host
{
  public:
    /**
     * @param engine The simulation engine.
     * @param cores Number of CPU cores in the pool.
     */
    Host(Engine &engine, int cores);

    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    /** Create a host-side stream (for ordered CPU work). */
    Stream &newStream(std::string name);

    /**
     * Submit a task occupying @p cores cores for @p duration seconds;
     * @p done fires when the task completes.
     */
    void submit(Seconds duration, int cores, std::function<void()> done);

    int cores() const { return cores_; }
    int freeCores() const { return freeCores_; }

    /** @return Total CPU core-seconds consumed so far. */
    double coreSecondsUsed() const { return coreSecondsUsed_; }

  private:
    struct Task
    {
        Seconds duration;
        int cores;
        std::function<void()> done;
    };

    void tryStart();

    Engine &engine_;
    int cores_;
    int freeCores_;
    double coreSecondsUsed_ = 0.0;
    std::deque<Task> pending_;
    std::vector<std::unique_ptr<Stream>> streams_;
};

} // namespace rap::sim

#endif // RAP_SIM_HOST_HPP
