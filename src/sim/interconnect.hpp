/**
 * @file
 * Interconnect models: point-to-point link servers (PCIe / NVLink) and
 * synchronised multi-GPU collectives (all-to-all, all-reduce).
 */

#ifndef RAP_SIM_INTERCONNECT_HPP
#define RAP_SIM_INTERCONNECT_HPP

#include <functional>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace rap::sim {

/**
 * A FIFO transfer server with fixed bandwidth and per-transfer latency.
 *
 * Transfers submitted while the link is busy queue behind it; this
 * naturally serialises concurrent copies on the same physical link.
 */
class LinkServer
{
  public:
    /**
     * @param engine Owning simulation engine.
     * @param bandwidth Link bandwidth in bytes/second.
     * @param latency Fixed per-transfer startup latency.
     * @param name Diagnostic name.
     */
    LinkServer(Engine &engine, BytesPerSecond bandwidth, Seconds latency,
               std::string name);

    /**
     * Submit a transfer of @p bytes; @p done runs at completion.
     *
     * @return The absolute completion time.
     */
    Seconds submit(Bytes bytes, std::function<void()> done);

    /** @return Time the link next becomes free. */
    Seconds nextFree() const { return nextFree_; }

    /** @return Total bytes moved so far. */
    Bytes totalBytes() const { return totalBytes_; }

    /**
     * Scale the link's effective bandwidth (fault injection). Applies
     * to transfers submitted after the call; in-flight transfers keep
     * their already-scheduled completion.
     */
    void setRateScale(double scale);

    /** @return Current bandwidth scale (1.0 = healthy). */
    double rateScale() const { return rateScale_; }

    const std::string &name() const { return name_; }

  private:
    Engine &engine_;
    BytesPerSecond bandwidth_;
    Seconds latency_;
    std::string name_;
    Seconds nextFree_ = 0.0;
    Bytes totalBytes_ = 0.0;
    double rateScale_ = 1.0;
};

/** Kind of multi-GPU collective operation. */
enum class CollectiveKind {
    AllToAll,
    AllReduce,
};

/**
 * A single-use synchronised collective across N participants.
 *
 * Each participating stream calls arrive() when it reaches the
 * collective; once all participants have arrived, the collective runs
 * for its modelled duration and releases every participant at the same
 * completion instant (bulk-synchronous NCCL-style behaviour).
 */
class Collective
{
  public:
    /**
     * @param engine Owning simulation engine.
     * @param kind Collective flavour.
     * @param bytes_per_gpu Payload contributed by each GPU.
     * @param participants Number of GPUs taking part.
     * @param bandwidth Per-GPU unidirectional NVLink bandwidth.
     * @param latency Per-hop NVLink latency.
     * @param name Diagnostic name.
     */
    Collective(Engine &engine, CollectiveKind kind, Bytes bytes_per_gpu,
               int participants, BytesPerSecond bandwidth, Seconds latency,
               std::string name);

    /** Register one participant's arrival; @p done runs at completion. */
    void arrive(std::function<void()> done);

    /** @return The modelled busy duration of the collective. */
    Seconds duration() const;

    const std::string &name() const { return name_; }

  private:
    Engine &engine_;
    CollectiveKind kind_;
    Bytes bytesPerGpu_;
    int participants_;
    BytesPerSecond bandwidth_;
    Seconds latency_;
    std::string name_;
    int arrived_ = 0;
    std::vector<std::function<void()>> callbacks_;
};

using CollectivePtr = std::shared_ptr<Collective>;

} // namespace rap::sim

#endif // RAP_SIM_INTERCONNECT_HPP
