#include "sim/device.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "sim/fault.hpp"

namespace rap::sim {

namespace {

constexpr double kDemandEps = 1e-9;
constexpr Seconds kTimeEps = 1e-12;

} // namespace

Device::Device(Engine &engine, GpuSpec spec, int id,
               BytesPerSecond h2d_bandwidth, Seconds h2d_latency,
               BytesPerSecond p2p_bandwidth, Seconds p2p_latency)
    : engine_(engine), spec_(std::move(spec)), id_(id),
      h2d_(engine, h2d_bandwidth, h2d_latency,
           "gpu" + std::to_string(id) + ".h2d"),
      p2p_(engine, p2p_bandwidth, p2p_latency,
           "gpu" + std::to_string(id) + ".p2p")
{
}

Stream &
Device::newStream(std::string name, int launch_group, int priority)
{
    streams_.push_back(std::make_unique<Stream>(
        engine_, std::move(name), this, nullptr, launch_group,
        priority));
    return *streams_.back();
}

void
Device::launchKernel(Stream &stream, KernelDesc desc,
                     std::function<void()> done)
{
    queueLaunch(stream.launchGroup(), std::move(desc), stream.name(),
                stream.priority(), std::move(done), /*attempt=*/1);
}

void
Device::queueLaunch(int group, KernelDesc desc, std::string stream_name,
                    int priority, std::function<void()> done,
                    int attempt)
{
    if (offline_)
        return; // crashed devices drop launches on the floor
    auto &free_at = launchFree_[group];
    const Seconds start = std::max(engine_.now(), free_at);
    const Seconds resident_at = start + spec_.kernelLaunchOverhead;
    free_at = resident_at;
    engine_.schedule(resident_at,
                     [this, group, desc = std::move(desc),
                      stream_name = std::move(stream_name), priority,
                      done = std::move(done), attempt]() mutable {
                         admitKernel(group, std::move(desc),
                                     std::move(stream_name), priority,
                                     std::move(done), attempt);
                     });
}

void
Device::admitKernel(int group, KernelDesc desc, std::string stream_name,
                    int priority, std::function<void()> done,
                    int attempt)
{
    if (offline_)
        return; // crashed between launch and admission
    if (injector_ != nullptr &&
        injector_->shouldFailLaunch(engine_.now(), id_, attempt)) {
        // The attempt dies after the detection fraction of its work,
        // waits out the backoff, then relaunches through the regular
        // launch path (charging launch overhead again). All of it is
        // charged to the timeline, so faults are visible in makespan.
        KernelDesc probe = desc;
        probe.name += ".fault" + std::to_string(attempt);
        probe.exclusiveLatency *= injector_->retry().detectFraction;
        const Seconds backoff = injector_->backoff(attempt);
        ++kernelRetries_;
        retryBackoff_ += backoff;
        auto relaunch = [this, group, desc = std::move(desc),
                         stream_name, priority, done = std::move(done),
                         attempt, backoff]() mutable {
            engine_.scheduleAfter(
                backoff, [this, group, desc = std::move(desc),
                          stream_name = std::move(stream_name),
                          priority, done = std::move(done),
                          attempt]() mutable {
                    queueLaunch(group, std::move(desc),
                                std::move(stream_name), priority,
                                std::move(done), attempt + 1);
                });
        };
        addResident(std::move(probe), stream_name, priority,
                    std::move(relaunch));
        return;
    }
    addResident(std::move(desc), stream_name, priority,
                std::move(done));
}

void
Device::degradeSm(double capacity)
{
    RAP_ASSERT(capacity > 0.0 && capacity <= 1.0,
               "SM capacity must be in (0, 1]");
    advanceToNow();
    smCapacity_ = capacity;
    refresh();
}

void
Device::degradeBw(double capacity)
{
    RAP_ASSERT(capacity > 0.0 && capacity <= 1.0,
               "HBM capacity must be in (0, 1]");
    advanceToNow();
    bwCapacity_ = capacity;
    refresh();
}

void
Device::crash()
{
    if (offline_)
        return;
    advanceToNow();
    // Discard in-flight kernels without firing their completion
    // callbacks: dependent ops stall, mirroring a real fail-stop.
    discardedKernels_ += resident_.size();
    resident_.clear();
    ++wakeGeneration_; // invalidate any pending refresh wake
    currentSmUsage_ = 0.0;
    currentBwUsage_ = 0.0;
    offline_ = true;
}

void
Device::submitCopy(CopyKind kind, Bytes bytes, std::function<void()> done)
{
    if (offline_)
        return; // crashed devices drop copies on the floor
    switch (kind) {
      case CopyKind::HostToDevice:
      case CopyKind::DeviceToHost:
        // Checkpoint (D2H) traffic shares the PCIe link with input
        // staging, so checkpoints contend with H2D copies.
        h2d_.submit(bytes, std::move(done));
        return;
      case CopyKind::PeerToPeer:
        p2p_.submit(bytes, std::move(done));
        return;
    }
    RAP_PANIC("unknown copy kind");
}

ResourceDemand
Device::residentDemand() const
{
    ResourceDemand total;
    for (const auto &r : resident_)
        total = total + r.desc.demand;
    return total;
}

void
Device::advanceToNow()
{
    const Seconds now = engine_.now();
    const Seconds dt = now - lastUpdate_;
    if (dt > 0) {
        UtilSegment seg;
        seg.begin = lastUpdate_;
        seg.end = now;
        seg.smUsage = currentSmUsage_;
        seg.bwUsage = currentBwUsage_;
        seg.residentKernels = static_cast<int>(resident_.size());
        trace_.addSegment(seg);
        for (auto &r : resident_)
            r.remaining -= dt * r.rate;
    }
    lastUpdate_ = now;
}

void
Device::refresh()
{
    // Retire finished kernels (their remaining work hit zero).
    for (std::size_t i = 0; i < resident_.size();) {
        if (resident_[i].remaining <= kTimeEps) {
            Resident finished = std::move(resident_[i]);
            resident_.erase(resident_.begin() +
                            static_cast<std::ptrdiff_t>(i));
            KernelRecord record;
            record.name = finished.desc.name;
            record.stream = finished.streamName;
            record.start = finished.start;
            record.end = engine_.now();
            record.exclusiveLatency = finished.desc.exclusiveLatency;
            ++kernelsRetired_;
            stallSeconds_ += std::max(record.stretch(), 0.0);
            trace_.addKernel(std::move(record));
            if (finished.done) {
                // Completion callbacks may push more work; run them via
                // the engine at the current instant to keep refresh
                // non-reentrant.
                engine_.schedule(engine_.now(), std::move(finished.done));
            }
        } else {
            ++i;
        }
    }

    // Recompute progress rates: priority classes are served from
    // highest (0) to lowest; within a class kernels scale
    // proportionally when the class oversubscribes what is available.
    std::vector<int> classes;
    for (const auto &r : resident_) {
        if (std::find(classes.begin(), classes.end(), r.priority) ==
            classes.end()) {
            classes.push_back(r.priority);
        }
    }
    std::sort(classes.begin(), classes.end());

    // A degraded device starts the priority walk with less to give.
    double avail_sm = smCapacity_;
    double avail_bw = bwCapacity_;
    currentSmUsage_ = 0.0;
    currentBwUsage_ = 0.0;
    for (int cls : classes) {
        double class_sm = 0.0;
        double class_bw = 0.0;
        for (const auto &r : resident_) {
            if (r.priority != cls)
                continue;
            class_sm += r.desc.demand.sm;
            class_bw += r.desc.demand.bw;
        }
        const double scale_sm =
            class_sm > kDemandEps
                ? std::min(1.0, std::max(avail_sm, 0.0) / class_sm)
                : 1.0;
        const double scale_bw =
            class_bw > kDemandEps
                ? std::min(1.0, std::max(avail_bw, 0.0) / class_bw)
                : 1.0;
        for (auto &r : resident_) {
            if (r.priority != cls)
                continue;
            double rate = 1.0;
            if (r.desc.demand.sm > kDemandEps)
                rate = std::min(rate, scale_sm);
            if (r.desc.demand.bw > kDemandEps)
                rate = std::min(rate, scale_bw);
            // A fully starved kernel still trickles forward: the SM
            // scheduler interleaves some of its blocks eventually.
            r.rate = std::max(rate, 0.02);
            avail_sm -= r.desc.demand.sm * r.rate;
            avail_bw -= r.desc.demand.bw * r.rate;
            currentSmUsage_ += r.desc.demand.sm * r.rate;
            currentBwUsage_ += r.desc.demand.bw * r.rate;
        }
    }
    currentSmUsage_ = std::min(currentSmUsage_, 1.0);
    currentBwUsage_ = std::min(currentBwUsage_, 1.0);

    Seconds next_done = -1.0;
    for (const auto &r : resident_) {
        const Seconds t =
            std::max(r.remaining, 0.0) / std::max(r.rate, 1e-12);
        if (next_done < 0 || t < next_done)
            next_done = t;
    }

    if (next_done >= 0) {
        const std::uint64_t generation = ++wakeGeneration_;
        engine_.schedule(engine_.now() + next_done, [this, generation] {
            if (generation != wakeGeneration_)
                return;
            advanceToNow();
            refresh();
        });
    }
}

void
Device::addResident(KernelDesc desc, const std::string &stream_name,
                    int priority, std::function<void()> done)
{
    advanceToNow();
    Resident r;
    r.remaining = desc.exclusiveLatency;
    r.desc = std::move(desc);
    r.start = engine_.now();
    r.streamName = stream_name;
    r.priority = priority;
    r.done = std::move(done);
    r.id = nextKernelId_++;
    resident_.push_back(std::move(r));
    ++kernelsLaunched_;
    maxResident_ = std::max(maxResident_, resident_.size());
    refresh();
}

} // namespace rap::sim
