/**
 * @file
 * Kernel descriptors and the resource-envelope performance model.
 *
 * Every GPU kernel in the simulation — DLRM training layers as well as
 * input-preprocessing kernels — is characterised by a work profile
 * (flops, bytes moved, resident warps). From the profile and a GpuSpec
 * the model derives:
 *  - the exclusive latency: execution time when the kernel runs alone;
 *  - the resource demand: the fraction of SM warp slots and of DRAM
 *    bandwidth it occupies while resident.
 *
 * Co-running kernels whose summed demand stays below 1.0 on every
 * resource proceed at full speed; oversubscription throttles all
 * resident kernels proportionally (see Device). This is the block-level
 * sharing behaviour the paper's Figure 1(c) measures.
 */

#ifndef RAP_SIM_KERNEL_HPP
#define RAP_SIM_KERNEL_HPP

#include <string>

#include "common/units.hpp"
#include "sim/gpu_spec.hpp"

namespace rap::sim {

/** Raw work profile of a kernel. */
struct KernelProfile
{
    /** Floating-point operations executed. */
    double flops = 0.0;
    /** Bytes moved to/from DRAM. */
    Bytes bytes = 0.0;
    /** Warps resident while the kernel executes. */
    double warps = 0.0;
};

/** Fraction of each GPU resource a kernel occupies while resident. */
struct ResourceDemand
{
    double sm = 0.0; ///< fraction of warp slots
    double bw = 0.0; ///< fraction of DRAM bandwidth

    /** Component-wise sum. */
    ResourceDemand operator+(const ResourceDemand &o) const
    {
        return ResourceDemand{sm + o.sm, bw + o.bw};
    }
};

/**
 * A fully-characterised kernel ready for simulation.
 */
struct KernelDesc
{
    std::string name;
    KernelProfile profile;
    /** Latency when running alone on the GPU. */
    Seconds exclusiveLatency = 0.0;
    /** Resources occupied while resident. */
    ResourceDemand demand;

    /**
     * Build a kernel descriptor from a work profile under @p spec.
     *
     * Exclusive latency is the max of the compute time (flops over the
     * flop rate reachable with the kernel's warp footprint), the memory
     * time (bytes over DRAM bandwidth) and the spec's minimum kernel
     * latency. SM demand is the warp-slot fraction; bandwidth demand is
     * the achieved bytes rate divided by peak bandwidth.
     */
    static KernelDesc fromProfile(std::string name,
                                  const KernelProfile &profile,
                                  const GpuSpec &spec);

    /**
     * Build a kernel directly from a target latency and demand pair.
     * Used by tests and by synthetic probe kernels.
     */
    static KernelDesc synthetic(std::string name, Seconds latency,
                                ResourceDemand demand);
};

} // namespace rap::sim

#endif // RAP_SIM_KERNEL_HPP
