/**
 * @file
 * The simulated training node: engine + GPUs + host CPU + interconnect.
 */

#ifndef RAP_SIM_CLUSTER_HPP
#define RAP_SIM_CLUSTER_HPP

#include <memory>
#include <string>
#include <vector>

#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/host.hpp"
#include "sim/interconnect.hpp"

namespace rap::obs {
class Labels;
class MetricRegistry;
}

namespace rap::sim {

/**
 * Carve a @p gpu_count-GPU subset view out of @p full: per-GPU
 * resources are unchanged, while shared host resources (CPU cores)
 * scale with the subset's share of the node. The fleet scheduler uses
 * this to run one job's simulation on the slice of the cluster its
 * placement assigned (fleet/scheduler.hpp).
 */
ClusterSpec subsetSpec(const ClusterSpec &full, int gpu_count);

/**
 * A complete simulated multi-GPU training node (e.g. a DGX-A100).
 *
 * Owns the discrete-event engine, one Device per GPU, the Host CPU
 * pool, and manufactures collectives spanning the GPUs.
 */
class Cluster
{
  public:
    /** Build a node from @p spec. */
    explicit Cluster(ClusterSpec spec);

    /**
     * Build a subset view: the node's GPUs are a slice of a larger
     * physical cluster, with @p global_gpu_ids naming the physical
     * ordinal behind each local device. Only labelling (trace export,
     * diagnostics) changes; simulation behaviour is identical to the
     * plain constructor.
     */
    Cluster(ClusterSpec spec, std::vector<int> global_gpu_ids);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    Engine &engine() { return engine_; }
    const ClusterSpec &spec() const { return spec_; }

    int gpuCount() const { return static_cast<int>(devices_.size()); }

    Device &device(int id);
    const Device &device(int id) const;

    /** @return Physical GPU ordinal behind local device @p id. */
    int globalGpuId(int id) const;

    /** @return Physical ordinals of every local device, in order. */
    const std::vector<int> &globalGpuIds() const { return globalIds_; }

    Host &host() { return *host_; }

    /**
     * Create a single-use collective over all GPUs.
     *
     * @param kind Collective flavour.
     * @param bytes_per_gpu Payload contributed by each GPU.
     * @param name Diagnostic name.
     */
    CollectivePtr makeCollective(CollectiveKind kind, Bytes bytes_per_gpu,
                                 std::string name);

    /**
     * Scale the NVSwitch fabric bandwidth used by collectives created
     * after the call (fault injection; see sim/fault.hpp).
     */
    void setCollectiveBandwidthScale(double scale);

    /** @return Current fabric bandwidth scale (1.0 = healthy). */
    double collectiveBandwidthScale() const
    {
        return collectiveBandwidthScale_;
    }

    /**
     * Partition the node's devices into @p zone_count conservative
     * time zones executed by @p jobs worker threads (sim/engine.hpp).
     * The lookahead is the minimum interconnect latency of the spec —
     * the soonest one device can observe another's actions. Must be
     * called before any work is scheduled; zone_count 0 means one
     * zone per device. Simulation results are byte-identical at any
     * job count; only wall-clock changes.
     */
    void partitionZones(int zone_count, int jobs);

    /** @return Time zone executing device @p id's events. */
    int deviceZone(int id) const;

    /** Run the simulation until all queued work drains. */
    void run() { engine_.run(); }

    /**
     * Dump the node's simulation statistics into @p registry: per-GPU
     * kernel/launch/retry counters, contention-stall and max-residency
     * gauges (labelled with the physical GPU ordinal), and engine
     * queue statistics. Call after the simulation has drained; all
     * values are simulation-derived, so the export is deterministic.
     *
     * @param base Labels merged into every instrument — callers that
     *        share one registry across runs (sweep benches) pass their
     *        `run=` scope here so gauges stay run-private.
     */
    void exportMetrics(obs::MetricRegistry &registry,
                       const obs::Labels &base) const;

  private:
    ClusterSpec spec_;
    Engine engine_;
    std::vector<int> globalIds_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unique_ptr<Host> host_;
    double collectiveBandwidthScale_ = 1.0;
};

} // namespace rap::sim

#endif // RAP_SIM_CLUSTER_HPP
