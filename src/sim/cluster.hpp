/**
 * @file
 * The simulated training node: engine + GPUs + host CPU + interconnect.
 */

#ifndef RAP_SIM_CLUSTER_HPP
#define RAP_SIM_CLUSTER_HPP

#include <memory>
#include <string>
#include <vector>

#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpu_spec.hpp"
#include "sim/host.hpp"
#include "sim/interconnect.hpp"

namespace rap::sim {

/**
 * A complete simulated multi-GPU training node (e.g. a DGX-A100).
 *
 * Owns the discrete-event engine, one Device per GPU, the Host CPU
 * pool, and manufactures collectives spanning the GPUs.
 */
class Cluster
{
  public:
    /** Build a node from @p spec. */
    explicit Cluster(ClusterSpec spec);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    Engine &engine() { return engine_; }
    const ClusterSpec &spec() const { return spec_; }

    int gpuCount() const { return static_cast<int>(devices_.size()); }

    Device &device(int id);
    const Device &device(int id) const;

    Host &host() { return *host_; }

    /**
     * Create a single-use collective over all GPUs.
     *
     * @param kind Collective flavour.
     * @param bytes_per_gpu Payload contributed by each GPU.
     * @param name Diagnostic name.
     */
    CollectivePtr makeCollective(CollectiveKind kind, Bytes bytes_per_gpu,
                                 std::string name);

    /**
     * Scale the NVSwitch fabric bandwidth used by collectives created
     * after the call (fault injection; see sim/fault.hpp).
     */
    void setCollectiveBandwidthScale(double scale);

    /** @return Current fabric bandwidth scale (1.0 = healthy). */
    double collectiveBandwidthScale() const
    {
        return collectiveBandwidthScale_;
    }

    /** Run the simulation until all queued work drains. */
    void run() { engine_.run(); }

  private:
    ClusterSpec spec_;
    Engine engine_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unique_ptr<Host> host_;
    double collectiveBandwidthScale_ = 1.0;
};

} // namespace rap::sim

#endif // RAP_SIM_CLUSTER_HPP
