/**
 * @file
 * Discrete-event simulation core: the engine clock/queue and the
 * CUDA-event-like synchronisation primitive.
 */

#ifndef RAP_SIM_ENGINE_HPP
#define RAP_SIM_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rap::sim {

/**
 * The discrete-event engine: a time-ordered callback queue.
 *
 * Events scheduled for the same instant fire in scheduling order, which
 * keeps every simulation fully deterministic.
 */
class Engine
{
  public:
    /** @return Current simulated time. */
    Seconds now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p t (>= now()).
     */
    void schedule(Seconds t, std::function<void()> fn);

    /** Schedule @p fn to run @p dt seconds from now. */
    void scheduleAfter(Seconds dt, std::function<void()> fn);

    /** Run until the event queue drains. */
    void run();

    /** Run until the queue drains or the clock passes @p t. */
    void runUntil(Seconds t);

    /** @return Total number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** @return Largest pending-event queue depth observed so far. */
    std::size_t maxQueueDepth() const { return maxQueueDepth_; }

  private:
    struct Item
    {
        Seconds time;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct ItemCompare
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, ItemCompare> queue_;
    Seconds now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t maxQueueDepth_ = 0;
};

/**
 * One-shot synchronisation event, analogous to a cudaEvent_t.
 *
 * Streams wait on it (blocking their queue) and record it (firing it).
 * Once fired it stays fired; late waiters pass through immediately.
 */
class SimEvent
{
  public:
    explicit SimEvent(std::string name) : name_(std::move(name)) {}

    bool fired() const { return fired_; }

    /** @return The simulated time the event fired (valid once fired). */
    Seconds fireTime() const { return fireTime_; }

    const std::string &name() const { return name_; }

    /**
     * Register a continuation to run when the event fires. If already
     * fired, the continuation runs via the engine at the current time.
     */
    void addWaiter(Engine &engine, std::function<void()> fn);

    /** Fire the event now; releases all waiters through the engine. */
    void fire(Engine &engine);

  private:
    std::string name_;
    bool fired_ = false;
    Seconds fireTime_ = 0.0;
    std::vector<std::function<void()>> waiters_;
};

using SimEventPtr = std::shared_ptr<SimEvent>;

/** @return A fresh named SimEvent. */
SimEventPtr makeEvent(std::string name);

} // namespace rap::sim

#endif // RAP_SIM_ENGINE_HPP
