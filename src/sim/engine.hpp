/**
 * @file
 * Discrete-event simulation core: the engine clock/queue and the
 * CUDA-event-like synchronisation primitive.
 *
 * The engine supports two execution shapes behind one API:
 *
 *  - Single zone (the default): the classic serial DES loop. Every
 *    schedule() lands in one time-ordered queue and run() drains it.
 *    All existing simulations (trainer, fleet, serving) use this
 *    shape and behave exactly as before.
 *
 *  - Partitioned zones (configureZones): devices are grouped into
 *    time zones that advance in conservatively-synchronised lookahead
 *    windows. Per window, every zone independently executes its
 *    events with time < T_min + lookahead, where T_min is the global
 *    minimum pending timestamp and the lookahead is the minimum
 *    cross-zone notification latency (for a GPU fleet: the minimum
 *    interconnect latency). Cross-zone events — which must land at
 *    least one lookahead in the future — travel through bounded
 *    lock-free inboxes and are delivered at the window barrier,
 *    re-sorted by the deterministic key (time, source zone, source
 *    sequence number). Zones touch disjoint state, so the window body
 *    can run on worker threads (setJobs); event order within every
 *    zone — and therefore every simulation result — is byte-identical
 *    at any job count, including 1.
 *
 * Events scheduled for the same instant in the same zone fire in
 * scheduling order, which keeps every simulation fully deterministic.
 * Pending callbacks live in a per-zone EventPool (recycled slab
 * nodes), so the steady-state queue churn allocates nothing.
 */

#ifndef RAP_SIM_ENGINE_HPP
#define RAP_SIM_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/event_pool.hpp"
#include "sim/lockfree_queue.hpp"

namespace rap::sim {

/**
 * The discrete-event engine: one or more time-ordered callback
 * queues (see the file comment for the parallel-zone semantics).
 */
class Engine
{
  public:
    Engine();
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * @return Current simulated time: the executing zone's clock from
     * inside an event, the completed-time frontier (max zone clock)
     * from outside.
     */
    Seconds now() const;

    /**
     * Schedule @p fn to run at absolute time @p t (>= now()). From
     * inside an event the new event lands in the executing zone;
     * outside of run() it lands in zone 0.
     */
    void schedule(Seconds t, EventCallback fn);

    /** Schedule @p fn to run @p dt seconds from now. */
    void scheduleAfter(Seconds dt, EventCallback fn);

    /**
     * Schedule @p fn at time @p t in @p zone. From inside an event of
     * a *different* zone this is a cross-zone send and @p t must be at
     * least one lookahead past the sender's clock (panics otherwise —
     * that is the conservative-synchronisation contract). During
     * setup, or from the same zone, it is an ordinary schedule.
     */
    void schedule(Seconds t, int zone, EventCallback fn);

    /** Run until every zone's event queue drains. */
    void run();

    /**
     * Run until the queue drains or the clock passes @p t.
     * Single-zone engines only.
     */
    void runUntil(Seconds t);

    /**
     * Partition the engine into @p zone_count zones synchronised on
     * @p lookahead (must be > 0 for more than one zone). Must be
     * called before anything is scheduled.
     */
    void configureZones(int zone_count, Seconds lookahead);

    /**
     * Worker threads for multi-zone run() (1 = serial; values above
     * the zone count are clamped). Any value yields byte-identical
     * simulation results; single-zone engines ignore it.
     */
    void setJobs(int jobs);

    int zoneCount() const { return static_cast<int>(zones_.size()); }
    int jobs() const { return jobs_; }
    Seconds lookahead() const { return lookahead_; }

    /** @return Zone of the currently-executing event (0 outside). */
    int currentZone() const;

    /** @return Total number of events executed so far (all zones). */
    std::uint64_t eventsExecuted() const;

    /** @return Largest pending-event depth observed in any zone. */
    std::size_t maxQueueDepth() const;

    /** @return Conservative windows executed (0 for single zone). */
    std::uint64_t windowsExecuted() const { return windows_; }

    /** @return Cross-zone events sent through the zone inboxes. */
    std::uint64_t crossZoneEvents() const;

  private:
    struct Ref
    {
        Seconds time;
        std::uint64_t seq;
        EventHandle handle;
    };

    struct RefCompare
    {
        bool
        operator()(const Ref &a, const Ref &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    /** One cross-zone message; re-sorted on (time, srcZone, srcSeq). */
    struct CrossMsg
    {
        Seconds time = 0.0;
        std::uint32_t srcZone = 0;
        std::uint64_t srcSeq = 0;
        EventCallback fn;
    };

    /**
     * One time zone: a private queue/pool/clock plus the bounded
     * lock-free inbox other zones post into. Only the worker currently
     * executing the zone touches anything but the inbox.
     */
    struct Zone
    {
        explicit Zone(int index_) : index(index_), inbox(kInboxCapacity)
        {
        }

        int index;
        std::priority_queue<Ref, std::vector<Ref>, RefCompare> queue;
        EventPool pool;
        Seconds now = 0.0;
        std::uint64_t nextSeq = 0;
        std::uint64_t executed = 0;
        std::size_t maxDepth = 0;
        /** Monotone per-sender tag making inbox drains sortable. */
        std::uint64_t crossSent = 0;
        MpscQueue<CrossMsg> inbox;
        /** Overflow for a full inbox (rare; mutex-guarded). */
        std::mutex overflowMu;
        std::vector<CrossMsg> overflow;
        std::vector<CrossMsg> drainBuf;
    };

    static constexpr std::size_t kInboxCapacity = 128;

    Zone &callerZone();
    void pushLocal(Zone &zone, Seconds t, EventCallback fn);
    void execZone(Zone &zone, Seconds window_end);
    void drainInbox(Zone &zone);
    void runSingleZone();
    void runWindows();
    void workerLoop(int worker, int worker_count, void *barrier);

    std::vector<std::unique_ptr<Zone>> zones_;
    Seconds lookahead_ = 0.0;
    int jobs_ = 1;
    bool running_ = false;
    bool stopFlag_ = false;
    Seconds windowEnd_ = 0.0;
    std::uint64_t windows_ = 0;
    std::vector<Seconds> localMin_;
};

/**
 * One-shot synchronisation event, analogous to a cudaEvent_t.
 *
 * Streams wait on it (blocking their queue) and record it (firing it).
 * Once fired it stays fired; late waiters pass through immediately.
 * In a partitioned engine a SimEvent must stay zone-local: waiters are
 * released into the zone whose event fires it.
 */
class SimEvent
{
  public:
    explicit SimEvent(std::string name) : name_(std::move(name)) {}

    bool fired() const { return fired_; }

    /** @return The simulated time the event fired (valid once fired). */
    Seconds fireTime() const { return fireTime_; }

    const std::string &name() const { return name_; }

    /**
     * Register a continuation to run when the event fires. If already
     * fired, the continuation runs via the engine at the current time.
     */
    void addWaiter(Engine &engine, std::function<void()> fn);

    /** Fire the event now; releases all waiters through the engine. */
    void fire(Engine &engine);

  private:
    std::string name_;
    bool fired_ = false;
    Seconds fireTime_ = 0.0;
    std::vector<std::function<void()>> waiters_;
};

using SimEventPtr = std::shared_ptr<SimEvent>;

/** @return A fresh named SimEvent. */
SimEventPtr makeEvent(std::string name);

} // namespace rap::sim

#endif // RAP_SIM_ENGINE_HPP
