#include "sim/stream.hpp"

#include "common/log.hpp"
#include "sim/device.hpp"
#include "sim/host.hpp"

namespace rap::sim {

Stream::Stream(Engine &engine, std::string name, Device *device,
               Host *host, int launch_group, int priority)
    : engine_(engine), name_(std::move(name)), device_(device),
      host_(host), launchGroup_(launch_group), priority_(priority)
{
    RAP_ASSERT((device_ != nullptr) != (host_ != nullptr),
               "a stream belongs to exactly one of device/host");
}

void
Stream::pushKernel(KernelDesc desc, std::function<void()> on_done)
{
    RAP_ASSERT(device_, "kernels require a device stream");
    Op op;
    op.kind = Op::Kind::Kernel;
    op.kernel = std::move(desc);
    op.callback = std::move(on_done);
    push(std::move(op));
}

void
Stream::pushCopy(CopyKind kind, Bytes bytes, std::function<void()> on_done)
{
    RAP_ASSERT(device_, "copies require a device stream");
    Op op;
    op.kind = Op::Kind::Copy;
    op.copyKind = kind;
    op.bytes = bytes;
    op.callback = std::move(on_done);
    push(std::move(op));
}

void
Stream::pushCpuTask(Seconds cpu_seconds, int cores,
                    std::function<void()> on_done)
{
    RAP_ASSERT(host_, "CPU tasks require a host stream");
    Op op;
    op.kind = Op::Kind::CpuTask;
    op.cpuSeconds = cpu_seconds;
    op.cpuCores = cores;
    op.callback = std::move(on_done);
    push(std::move(op));
}

void
Stream::pushWait(SimEventPtr event)
{
    RAP_ASSERT(event, "cannot wait on a null event");
    Op op;
    op.kind = Op::Kind::Wait;
    op.event = std::move(event);
    push(std::move(op));
}

void
Stream::pushRecord(SimEventPtr event)
{
    RAP_ASSERT(event, "cannot record a null event");
    Op op;
    op.kind = Op::Kind::Record;
    op.event = std::move(event);
    push(std::move(op));
}

void
Stream::pushCallback(std::function<void()> fn)
{
    Op op;
    op.kind = Op::Kind::Callback;
    op.callback = std::move(fn);
    push(std::move(op));
}

void
Stream::pushDelay(Seconds duration)
{
    RAP_ASSERT(duration >= 0, "delay must be >= 0");
    Op op;
    op.kind = Op::Kind::Delay;
    op.delay = duration;
    push(std::move(op));
}

void
Stream::pushCollective(CollectivePtr collective,
                       std::function<void()> on_done)
{
    RAP_ASSERT(device_, "collectives require a device stream");
    RAP_ASSERT(collective, "cannot join a null collective");
    Op op;
    op.kind = Op::Kind::Collective;
    op.collective = std::move(collective);
    op.callback = std::move(on_done);
    push(std::move(op));
}

void
Stream::push(Op op)
{
    ++pushedOps_;
    queue_.push_back(std::move(op));
    maybeStart();
}

void
Stream::opDone(std::function<void()> user_cb)
{
    if (user_cb)
        user_cb();
    busy_ = false;
    maybeStart();
}

void
Stream::maybeStart()
{
    while (!busy_ && !queue_.empty()) {
        Op op = std::move(queue_.front());
        queue_.pop_front();

        switch (op.kind) {
          case Op::Kind::Callback:
            if (op.callback)
                op.callback();
            break;

          case Op::Kind::Record:
            op.event->fire(engine_);
            break;

          case Op::Kind::Wait:
            if (op.event->fired())
                break;
            busy_ = true;
            op.event->addWaiter(engine_, [this] {
                busy_ = false;
                maybeStart();
            });
            return;

          case Op::Kind::Kernel:
            busy_ = true;
            device_->launchKernel(*this, std::move(op.kernel),
                                  [this, cb = std::move(op.callback)] {
                                      opDone(cb);
                                  });
            return;

          case Op::Kind::Copy:
            busy_ = true;
            device_->submitCopy(op.copyKind, op.bytes,
                                [this, cb = std::move(op.callback)] {
                                    opDone(cb);
                                });
            return;

          case Op::Kind::CpuTask:
            busy_ = true;
            host_->submit(op.cpuSeconds, op.cpuCores,
                          [this, cb = std::move(op.callback)] {
                              opDone(cb);
                          });
            return;

          case Op::Kind::Collective:
            busy_ = true;
            op.collective->arrive([this, cb = std::move(op.callback)] {
                opDone(cb);
            });
            return;

          case Op::Kind::Delay:
            busy_ = true;
            engine_.scheduleAfter(op.delay, [this] { opDone({}); });
            return;
        }
    }
}

} // namespace rap::sim
