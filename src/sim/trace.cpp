#include "sim/trace.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rap::sim {

void
Trace::addSegment(const UtilSegment &segment)
{
    if (!recordSegments_)
        return;
    if (segment.end <= segment.begin)
        return;
    segments_.push_back(segment);
}

void
Trace::addKernel(KernelRecord record)
{
    if (!recordKernels_)
        return;
    kernels_.push_back(std::move(record));
}

double
Trace::integrate(Seconds t0, Seconds t1,
                 double (*value)(const UtilSegment &)) const
{
    if (t1 <= t0)
        return 0.0;
    double area = 0.0;
    for (const auto &seg : segments_) {
        const Seconds lo = std::max(t0, seg.begin);
        const Seconds hi = std::min(t1, seg.end);
        if (hi > lo)
            area += (hi - lo) * value(seg);
    }
    return area / (t1 - t0);
}

double
Trace::avgSmUsage(Seconds t0, Seconds t1) const
{
    return integrate(t0, t1,
                     [](const UtilSegment &s) { return s.smUsage; });
}

double
Trace::avgBwUsage(Seconds t0, Seconds t1) const
{
    return integrate(t0, t1,
                     [](const UtilSegment &s) { return s.bwUsage; });
}

double
Trace::busyFraction(Seconds t0, Seconds t1) const
{
    return integrate(t0, t1, [](const UtilSegment &s) {
        return s.residentKernels > 0 ? 1.0 : 0.0;
    });
}

void
Trace::clear()
{
    segments_.clear();
    kernels_.clear();
}

} // namespace rap::sim
