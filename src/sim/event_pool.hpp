/**
 * @file
 * Slab-backed event allocator for the DES engine.
 *
 * The engine used to carry each pending event's callback inside its
 * priority-queue node, so every push heap-allocated (the closure) and
 * every sift moved a std::function. EventPool hoists callbacks into
 * recycled slab nodes: the queue orders 24-byte {time, seq, handle}
 * records, and the closure storage — including any heap buffer a
 * previous std::function left behind in the node — is reused across
 * the simulation's lifetime.
 *
 * Handles are generation-tagged: releasing a node bumps its
 * generation, so a stale handle (the ABA hazard of index recycling)
 * is detected instead of silently aliasing a new event.
 *
 * A pool belongs to exactly one time zone and is only touched by the
 * thread currently executing that zone, so it needs no locks.
 */

#ifndef RAP_SIM_EVENT_POOL_HPP
#define RAP_SIM_EVENT_POOL_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace rap::sim {

using EventCallback = std::function<void()>;

/** Generation-tagged reference to a pooled event callback. */
struct EventHandle
{
    static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

    std::uint32_t index = kInvalidIndex;
    std::uint32_t generation = 0;

    bool isNull() const { return index == kInvalidIndex; }
};

/**
 * Fixed-slab arena of event nodes with a free-list and generation
 * counters. Slabs are never freed until reset()/destruction, so node
 * addresses stay stable and the steady-state simulation allocates
 * nothing per event beyond what the callbacks themselves capture.
 */
class EventPool
{
  public:
    EventPool() = default;
    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    /** Store @p fn in a recycled (or fresh) node. */
    EventHandle acquire(EventCallback fn);

    /**
     * Move the callback out of @p handle's node and release the node
     * back to the free list (generation bumped). Panics on a stale or
     * null handle — the no-ABA guarantee.
     */
    EventCallback take(EventHandle handle);

    /** Release @p handle's node without running it (cancelled event). */
    void release(EventHandle handle);

    /** @return True when @p handle still names a live node. */
    bool valid(EventHandle handle) const;

    /**
     * Return every live node to the free list and invalidate every
     * outstanding handle. Slab storage is kept for reuse.
     */
    void reset();

    /** @return Nodes currently holding a pending event. */
    std::size_t liveNodes() const { return live_; }

    /** @return Total nodes ever materialised across all slabs. */
    std::size_t capacity() const
    {
        return slabs_.size() * kSlabSize;
    }

  private:
    static constexpr std::size_t kSlabSize = 256;

    struct Node
    {
        EventCallback fn;
        std::uint32_t generation = 0;
        std::uint32_t nextFree = EventHandle::kInvalidIndex;
        bool live = false;
    };

    Node &node(std::uint32_t index);
    const Node &node(std::uint32_t index) const;
    void addSlab();

    std::vector<std::unique_ptr<Node[]>> slabs_;
    std::uint32_t freeHead_ = EventHandle::kInvalidIndex;
    std::size_t live_ = 0;
};

} // namespace rap::sim

#endif // RAP_SIM_EVENT_POOL_HPP
