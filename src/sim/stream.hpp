/**
 * @file
 * CUDA-stream-like in-order work queues.
 *
 * A Stream is an ordered queue of operations executed one at a time:
 * GPU kernels, host-to-device / peer-to-peer copies, host CPU tasks,
 * collectives, event waits/records, and zero-time callbacks. Streams on
 * the same device co-run: their resident kernels share the device's
 * resources through the contention model in Device.
 */

#ifndef RAP_SIM_STREAM_HPP
#define RAP_SIM_STREAM_HPP

#include <deque>
#include <functional>
#include <string>

#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/interconnect.hpp"
#include "sim/kernel.hpp"

namespace rap::sim {

class Device;
class Host;

/** Direction of a data copy. */
enum class CopyKind {
    HostToDevice,
    /** Checkpoint drain; shares the PCIe link with HostToDevice. */
    DeviceToHost,
    PeerToPeer,
};

/**
 * In-order operation queue bound to either a Device or the Host.
 *
 * The launch group models the CPU-side kernel-launch path: kernel
 * launches from streams sharing a group serialise behind each other
 * (same-process CUDA streams), while distinct groups launch
 * independently (separate MPS processes).
 */
class Stream
{
  public:
    /**
     * @param engine The simulation engine.
     * @param name Diagnostic name.
     * @param device Owning device, or nullptr for a host stream.
     * @param host Owning host, or nullptr for a device stream.
     * @param launch_group Kernel-launch serialisation group.
     * @param priority Resource priority: 0 is highest (CUDA's default
     *        stream); larger values receive only the resources higher
     *        classes leave unused (CUDA low-priority streams).
     */
    Stream(Engine &engine, std::string name, Device *device, Host *host,
           int launch_group, int priority = 0);

    Stream(const Stream &) = delete;
    Stream &operator=(const Stream &) = delete;

    /** Enqueue a GPU kernel; @p on_done runs at kernel completion. */
    void pushKernel(KernelDesc desc, std::function<void()> on_done = {});

    /** Enqueue a copy of @p bytes; device streams only. */
    void pushCopy(CopyKind kind, Bytes bytes,
                  std::function<void()> on_done = {});

    /**
     * Enqueue a host CPU task needing @p cores cores for @p cpu_seconds
     * wall seconds; host streams only.
     */
    void pushCpuTask(Seconds cpu_seconds, int cores,
                     std::function<void()> on_done = {});

    /** Enqueue a blocking wait on @p event. */
    void pushWait(SimEventPtr event);

    /** Enqueue a record (fire) of @p event. */
    void pushRecord(SimEventPtr event);

    /** Enqueue a zero-time host callback. */
    void pushCallback(std::function<void()> fn);

    /**
     * Enqueue a fixed in-stream delay (e.g. eager-framework dispatch
     * overhead between kernel launches).
     */
    void pushDelay(Seconds duration);

    /** Enqueue participation in @p collective; device streams only. */
    void pushCollective(CollectivePtr collective,
                        std::function<void()> on_done = {});

    /** @return True when no operation is queued or in flight. */
    bool idle() const { return !busy_ && queue_.empty(); }

    const std::string &name() const { return name_; }
    int launchGroup() const { return launchGroup_; }
    int priority() const { return priority_; }
    Device *device() const { return device_; }

    /** @return Number of operations ever pushed. */
    std::size_t pushedOps() const { return pushedOps_; }

  private:
    struct Op
    {
        enum class Kind {
            Kernel,
            Copy,
            CpuTask,
            Wait,
            Record,
            Callback,
            Collective,
            Delay,
        };
        Kind kind;
        KernelDesc kernel;
        CopyKind copyKind = CopyKind::HostToDevice;
        Bytes bytes = 0.0;
        Seconds cpuSeconds = 0.0;
        int cpuCores = 1;
        Seconds delay = 0.0;
        SimEventPtr event;
        CollectivePtr collective;
        std::function<void()> callback;
    };

    void push(Op op);
    void maybeStart();
    void opDone(std::function<void()> user_cb);

    Engine &engine_;
    std::string name_;
    Device *device_;
    Host *host_;
    int launchGroup_;
    int priority_;
    std::deque<Op> queue_;
    bool busy_ = false;
    std::size_t pushedOps_ = 0;
};

} // namespace rap::sim

#endif // RAP_SIM_STREAM_HPP
