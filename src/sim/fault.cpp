#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "sim/cluster.hpp"

namespace rap::sim {

FaultEvent
FaultEvent::smDegrade(int device, Seconds time, double factor)
{
    FaultEvent e;
    e.kind = FaultKind::SmDegrade;
    e.device = device;
    e.time = time;
    e.factor = factor;
    return e;
}

FaultEvent
FaultEvent::hbmDegrade(int device, Seconds time, double factor)
{
    FaultEvent e;
    e.kind = FaultKind::HbmDegrade;
    e.device = device;
    e.time = time;
    e.factor = factor;
    return e;
}

FaultEvent
FaultEvent::linkSlow(int device, FaultLink link, Seconds time,
                     double factor)
{
    FaultEvent e;
    e.kind = FaultKind::LinkSlow;
    e.device = device;
    e.link = link;
    e.time = time;
    e.factor = factor;
    return e;
}

FaultEvent
FaultEvent::transientKernel(int device, Seconds from, Seconds until,
                            double probability)
{
    FaultEvent e;
    e.kind = FaultKind::TransientKernel;
    e.device = device;
    e.time = from;
    e.until = until;
    e.probability = probability;
    return e;
}

FaultEvent
FaultEvent::deviceCrash(int device, Seconds time)
{
    FaultEvent e;
    e.kind = FaultKind::DeviceCrash;
    e.device = device;
    e.time = time;
    return e;
}

FaultEvent
FaultEvent::hostCrash(Seconds time)
{
    FaultEvent e;
    e.kind = FaultKind::HostCrash;
    e.device = -1;
    e.time = time;
    return e;
}

FaultEvent
FaultEvent::jobKill(Seconds time)
{
    FaultEvent e;
    e.kind = FaultKind::JobKill;
    e.device = -1;
    e.time = time;
    return e;
}

bool
FaultEvent::isFailStop() const
{
    return kind == FaultKind::DeviceCrash ||
           kind == FaultKind::HostCrash || kind == FaultKind::JobKill;
}

bool
FaultSpec::hasTransientFaults() const
{
    return std::any_of(events.begin(), events.end(),
                       [](const FaultEvent &e) {
                           return e.kind == FaultKind::TransientKernel;
                       });
}

bool
FaultSpec::hasFailStop() const
{
    return std::any_of(events.begin(), events.end(),
                       [](const FaultEvent &e) { return e.isFailStop(); });
}

FaultSpec
FaultSpec::degradationOnly() const
{
    FaultSpec out = *this;
    out.events.erase(std::remove_if(out.events.begin(),
                                    out.events.end(),
                                    [](const FaultEvent &e) {
                                        return e.isFailStop();
                                    }),
                     out.events.end());
    return out;
}

std::vector<Seconds>
FaultSpec::failStopTimes() const
{
    std::vector<Seconds> times;
    for (const auto &e : events)
        if (e.isFailStop())
            times.push_back(e.time);
    std::sort(times.begin(), times.end());
    return times;
}

std::vector<FaultEvent>
makeCrashTrace(Seconds mtbf, std::uint64_t seed, Seconds horizon,
               int gpu_count)
{
    RAP_ASSERT(mtbf > 0.0, "crash trace needs a positive MTBF");
    RAP_ASSERT(horizon > 0.0, "crash trace needs a positive horizon");
    RAP_ASSERT(gpu_count >= 1, "crash trace needs at least one GPU");
    Rng rng(seed);
    std::vector<FaultEvent> events;
    Seconds t = 0.0;
    for (;;) {
        t += -mtbf * std::log(1.0 - rng.uniform());
        if (t >= horizon)
            break;
        const int gpu = static_cast<int>(rng.uniformInt(0, gpu_count - 1));
        events.push_back(FaultEvent::deviceCrash(gpu, t));
    }
    return events;
}

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed)
{
    RAP_ASSERT(spec_.retry.maxAttempts >= 1,
               "retry policy needs at least one attempt");
    RAP_ASSERT(spec_.retry.detectFraction > 0.0 &&
                   spec_.retry.detectFraction <= 1.0,
               "detect fraction must be in (0, 1]");
    for (const auto &e : spec_.events) {
        switch (e.kind) {
          case FaultKind::SmDegrade:
          case FaultKind::HbmDegrade:
          case FaultKind::LinkSlow:
            RAP_ASSERT(e.factor > 0.0 && e.factor <= 1.0,
                       "degradation factor must be in (0, 1]");
            break;
          case FaultKind::TransientKernel:
            RAP_ASSERT(e.probability >= 0.0 && e.probability <= 1.0,
                       "failure probability must be in [0, 1]");
            RAP_ASSERT(e.until > e.time,
                       "failure window must have positive length");
            break;
          case FaultKind::DeviceCrash:
            RAP_ASSERT(e.device >= 0,
                       "a device crash must target one GPU");
            RAP_ASSERT(e.time >= 0.0, "crash time must be >= 0");
            break;
          case FaultKind::HostCrash:
          case FaultKind::JobKill:
            RAP_ASSERT(e.time >= 0.0, "crash time must be >= 0");
            break;
        }
    }
}

void
FaultInjector::arm(Cluster &cluster)
{
    RAP_ASSERT(!armed_, "fault injector armed twice");
    armed_ = true;
    if (spec_.hasTransientFaults()) {
        for (int g = 0; g < cluster.gpuCount(); ++g)
            cluster.device(g).setFaultInjector(this);
    }
    auto &engine = cluster.engine();
    for (const auto &e : spec_.events) {
        if (e.kind == FaultKind::TransientKernel)
            continue; // consulted live at launch time
        RAP_ASSERT(e.device < cluster.gpuCount(),
                   "fault event targets device ", e.device,
                   " but the cluster has ", cluster.gpuCount(), " GPUs");
        engine.schedule(e.time, [&cluster, e] {
            const int first = e.device < 0 ? 0 : e.device;
            const int last =
                e.device < 0 ? cluster.gpuCount() - 1 : e.device;
            for (int g = first; g <= last; ++g) {
                auto &device = cluster.device(g);
                switch (e.kind) {
                  case FaultKind::SmDegrade:
                    device.degradeSm(e.factor);
                    break;
                  case FaultKind::HbmDegrade:
                    device.degradeBw(e.factor);
                    break;
                  case FaultKind::LinkSlow:
                    if (e.link == FaultLink::HostLink) {
                        device.h2dLink().setRateScale(e.factor);
                    } else {
                        device.p2pLink().setRateScale(e.factor);
                    }
                    break;
                  case FaultKind::DeviceCrash:
                  case FaultKind::HostCrash:
                  case FaultKind::JobKill:
                    device.crash();
                    break;
                  case FaultKind::TransientKernel:
                    break;
                }
            }
            if (e.kind == FaultKind::LinkSlow &&
                e.link == FaultLink::Fabric) {
                cluster.setCollectiveBandwidthScale(e.factor);
            }
        });
    }
}

bool
FaultInjector::shouldFailLaunch(Seconds now, int device, int attempt)
{
    if (attempt >= spec_.retry.maxAttempts)
        return false; // the final allowed attempt always succeeds
    for (const auto &e : spec_.events) {
        if (e.kind != FaultKind::TransientKernel)
            continue;
        if (e.device >= 0 && e.device != device)
            continue;
        if (now < e.time || now >= e.until)
            continue;
        if (rng_.bernoulli(e.probability)) {
            ++injectedFailures_;
            return true;
        }
    }
    return false;
}

Seconds
FaultInjector::backoff(int attempt) const
{
    RAP_ASSERT(attempt >= 1, "backoff is defined for attempts >= 1");
    Seconds delay = spec_.retry.backoffBase;
    for (int i = 1; i < attempt && delay < spec_.retry.backoffCap; ++i)
        delay *= 2.0;
    return std::min(delay, spec_.retry.backoffCap);
}

} // namespace rap::sim
