/**
 * @file
 * Gradient-boosted decision trees for regression (squared loss).
 *
 * A from-scratch stand-in for XGBoost, which the paper uses as its
 * preprocessing-latency predictor (§5.2). Squared loss makes each
 * boosting round a tree fit to the current residuals with shrinkage.
 */

#ifndef RAP_ML_GBDT_HPP
#define RAP_ML_GBDT_HPP

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/tree.hpp"

namespace rap::ml {

/** Boosting hyper-parameters. */
struct GbdtParams
{
    int trees = 120;
    double learningRate = 0.12;
    TreeParams tree;
    /** Row subsample fraction per round (1.0 = none). */
    double subsample = 0.85;
    std::uint64_t seed = 17;
};

/**
 * Gradient-boosted regression model.
 */
class Gbdt
{
  public:
    explicit Gbdt(GbdtParams params = {});

    /** Fit on @p train (targets as-is; callers may pre-transform). */
    void fit(const MlDataset &train);

    /** @return Prediction for one feature row. */
    double predict(const std::vector<double> &row) const;

    /** @return Predictions for every row of @p data. */
    std::vector<double> predictAll(const MlDataset &data) const;

    bool fitted() const { return fitted_; }
    std::size_t treeCount() const { return trees_.size(); }

  private:
    GbdtParams params_;
    double bias_ = 0.0;
    std::vector<RegressionTree> trees_;
    bool fitted_ = false;
};

} // namespace rap::ml

#endif // RAP_ML_GBDT_HPP
