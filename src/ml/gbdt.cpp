#include "ml/gbdt.hpp"

#include <numeric>

#include "common/log.hpp"

namespace rap::ml {

Gbdt::Gbdt(GbdtParams params)
    : params_(std::move(params))
{
    RAP_ASSERT(params_.trees >= 1, "GBDT needs at least one tree");
    RAP_ASSERT(params_.learningRate > 0.0 && params_.learningRate <= 1.0,
               "learning rate must be in (0, 1]");
    RAP_ASSERT(params_.subsample > 0.0 && params_.subsample <= 1.0,
               "subsample must be in (0, 1]");
}

void
Gbdt::fit(const MlDataset &train)
{
    train.validate();
    RAP_ASSERT(train.size() >= 2, "need at least two training samples");

    const std::size_t n = train.size();
    bias_ = std::accumulate(train.y.begin(), train.y.end(), 0.0) /
            static_cast<double>(n);

    std::vector<double> prediction(n, bias_);
    std::vector<double> residual(n, 0.0);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0);

    Rng rng(params_.seed);
    trees_.clear();
    trees_.reserve(static_cast<std::size_t>(params_.trees));

    for (int round = 0; round < params_.trees; ++round) {
        for (std::size_t i = 0; i < n; ++i)
            residual[i] = train.y[i] - prediction[i];

        std::vector<std::size_t> sample;
        if (params_.subsample < 1.0) {
            sample.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                if (rng.bernoulli(params_.subsample))
                    sample.push_back(i);
            }
            if (sample.size() < 2 * params_.tree.minSamplesLeaf)
                sample = all;
        } else {
            sample = all;
        }

        RegressionTree tree;
        tree.fit(train.x, residual, sample, params_.tree);
        for (std::size_t i = 0; i < n; ++i)
            prediction[i] +=
                params_.learningRate * tree.predict(train.x[i]);
        trees_.push_back(std::move(tree));
    }
    fitted_ = true;
}

double
Gbdt::predict(const std::vector<double> &row) const
{
    RAP_ASSERT(fitted_, "predict on an unfitted GBDT");
    double value = bias_;
    for (const auto &tree : trees_)
        value += params_.learningRate * tree.predict(row);
    return value;
}

std::vector<double>
Gbdt::predictAll(const MlDataset &data) const
{
    std::vector<double> out;
    out.reserve(data.size());
    for (const auto &row : data.x)
        out.push_back(predict(row));
    return out;
}

} // namespace rap::ml
