/**
 * @file
 * Regression evaluation metrics, including the paper's within-10%
 * accuracy criterion (Table 5).
 */

#ifndef RAP_ML_METRICS_HPP
#define RAP_ML_METRICS_HPP

#include <vector>

namespace rap::ml {

/**
 * Fraction of samples whose prediction deviates from the actual value
 * by at most @p tolerance relatively (|pred - y| <= tolerance * |y|).
 */
double withinToleranceAccuracy(const std::vector<double> &predicted,
                               const std::vector<double> &actual,
                               double tolerance = 0.10);

/** Mean absolute error. */
double meanAbsoluteError(const std::vector<double> &predicted,
                         const std::vector<double> &actual);

/** Root mean squared error. */
double rootMeanSquaredError(const std::vector<double> &predicted,
                            const std::vector<double> &actual);

/** Coefficient of determination (R^2). */
double rSquared(const std::vector<double> &predicted,
                const std::vector<double> &actual);

} // namespace rap::ml

#endif // RAP_ML_METRICS_HPP
