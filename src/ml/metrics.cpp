#include "ml/metrics.hpp"

#include <cmath>
#include <numeric>

#include "common/log.hpp"

namespace rap::ml {

namespace {

void
checkLengths(const std::vector<double> &predicted,
             const std::vector<double> &actual)
{
    RAP_ASSERT(predicted.size() == actual.size(),
               "prediction/actual length mismatch");
    RAP_ASSERT(!predicted.empty(), "metrics need at least one sample");
}

} // namespace

double
withinToleranceAccuracy(const std::vector<double> &predicted,
                        const std::vector<double> &actual,
                        double tolerance)
{
    checkLengths(predicted, actual);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double scale = std::fabs(actual[i]);
        const double err = std::fabs(predicted[i] - actual[i]);
        if (err <= tolerance * std::max(scale, 1e-300))
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(predicted.size());
}

double
meanAbsoluteError(const std::vector<double> &predicted,
                  const std::vector<double> &actual)
{
    checkLengths(predicted, actual);
    double sum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
        sum += std::fabs(predicted[i] - actual[i]);
    return sum / static_cast<double>(predicted.size());
}

double
rootMeanSquaredError(const std::vector<double> &predicted,
                     const std::vector<double> &actual)
{
    checkLengths(predicted, actual);
    double sum = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double d = predicted[i] - actual[i];
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(predicted.size()));
}

double
rSquared(const std::vector<double> &predicted,
         const std::vector<double> &actual)
{
    checkLengths(predicted, actual);
    const double mean =
        std::accumulate(actual.begin(), actual.end(), 0.0) /
        static_cast<double>(actual.size());
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
        ss_tot += (actual[i] - mean) * (actual[i] - mean);
    }
    if (ss_tot <= 0.0)
        return ss_res <= 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace rap::ml
