#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"

namespace rap::ml {

namespace {

double
meanOf(const std::vector<double> &residual,
       const std::vector<std::size_t> &indices)
{
    double sum = 0.0;
    for (std::size_t i : indices)
        sum += residual[i];
    return indices.empty() ? 0.0
                           : sum / static_cast<double>(indices.size());
}

/** Best split of @p indices on @p feature by sum-of-squares reduction. */
struct SplitCandidate
{
    bool valid = false;
    double gain = 0.0;
    double threshold = 0.0;
};

SplitCandidate
bestSplitOnFeature(const std::vector<std::vector<double>> &x,
                   const std::vector<double> &residual,
                   std::vector<std::size_t> &indices, std::size_t feature,
                   std::size_t min_leaf)
{
    std::sort(indices.begin(), indices.end(),
              [&](std::size_t a, std::size_t b) {
                  return x[a][feature] < x[b][feature];
              });

    const std::size_t n = indices.size();
    double total_sum = 0.0;
    for (std::size_t i : indices)
        total_sum += residual[i];

    SplitCandidate best;
    double left_sum = 0.0;
    for (std::size_t k = 0; k + 1 < n; ++k) {
        left_sum += residual[indices[k]];
        const std::size_t left_n = k + 1;
        const std::size_t right_n = n - left_n;
        if (left_n < min_leaf || right_n < min_leaf)
            continue;
        // Can't split between equal feature values.
        if (x[indices[k]][feature] == x[indices[k + 1]][feature])
            continue;
        const double right_sum = total_sum - left_sum;
        // Variance-reduction gain (up to constants):
        // sum_l^2/n_l + sum_r^2/n_r - sum^2/n.
        const double gain =
            left_sum * left_sum / static_cast<double>(left_n) +
            right_sum * right_sum / static_cast<double>(right_n) -
            total_sum * total_sum / static_cast<double>(n);
        if (!best.valid || gain > best.gain) {
            best.valid = true;
            best.gain = gain;
            best.threshold = 0.5 * (x[indices[k]][feature] +
                                    x[indices[k + 1]][feature]);
        }
    }
    return best;
}

} // namespace

void
RegressionTree::fit(const std::vector<std::vector<double>> &x,
                    const std::vector<double> &residual,
                    const std::vector<std::size_t> &indices,
                    const TreeParams &params)
{
    RAP_ASSERT(!indices.empty(), "cannot fit a tree on zero samples");
    nodes_.clear();
    build(x, residual, indices, 0, params);
}

int
RegressionTree::build(const std::vector<std::vector<double>> &x,
                      const std::vector<double> &residual,
                      std::vector<std::size_t> indices, int node_depth,
                      const TreeParams &params)
{
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[static_cast<std::size_t>(node_id)].depth = node_depth;
    nodes_[static_cast<std::size_t>(node_id)].value =
        meanOf(residual, indices);

    if (node_depth >= params.maxDepth ||
        indices.size() < 2 * params.minSamplesLeaf) {
        return node_id;
    }

    const std::size_t features = x.front().size();
    SplitCandidate best;
    std::size_t best_feature = 0;
    for (std::size_t f = 0; f < features; ++f) {
        auto candidate = bestSplitOnFeature(x, residual, indices, f,
                                            params.minSamplesLeaf);
        if (candidate.valid &&
            (!best.valid || candidate.gain > best.gain)) {
            best = candidate;
            best_feature = f;
        }
    }
    if (!best.valid || best.gain < params.minGain)
        return node_id;

    std::vector<std::size_t> left, right;
    for (std::size_t i : indices) {
        (x[i][best_feature] <= best.threshold ? left : right)
            .push_back(i);
    }
    if (left.empty() || right.empty())
        return node_id;

    const int left_id =
        build(x, residual, std::move(left), node_depth + 1, params);
    const int right_id =
        build(x, residual, std::move(right), node_depth + 1, params);

    auto &node = nodes_[static_cast<std::size_t>(node_id)];
    node.leaf = false;
    node.feature = best_feature;
    node.threshold = best.threshold;
    node.left = left_id;
    node.right = right_id;
    return node_id;
}

double
RegressionTree::predict(const std::vector<double> &row) const
{
    RAP_ASSERT(!nodes_.empty(), "predict on an unfitted tree");
    int node_id = 0;
    for (;;) {
        const auto &node = nodes_[static_cast<std::size_t>(node_id)];
        if (node.leaf)
            return node.value;
        node_id = row[node.feature] <= node.threshold ? node.left
                                                      : node.right;
    }
}

int
RegressionTree::depth() const
{
    int max_depth = 0;
    for (const auto &node : nodes_)
        max_depth = std::max(max_depth, node.depth);
    return max_depth;
}

} // namespace rap::ml
