/**
 * @file
 * Tabular regression dataset used by the GBDT latency predictor.
 */

#ifndef RAP_ML_DATASET_HPP
#define RAP_ML_DATASET_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace rap::ml {

/** Row-major feature matrix plus targets. */
struct MlDataset
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;

    std::size_t size() const { return x.size(); }
    std::size_t featureCount() const
    {
        return x.empty() ? 0 : x.front().size();
    }

    /** Append one sample. */
    void add(std::vector<double> features, double target);

    /** Panic if rows are ragged or x/y lengths differ. */
    void validate() const;
};

/**
 * Deterministically shuffle and split into train/eval partitions.
 *
 * @param dataset Source samples.
 * @param train_fraction Fraction assigned to the train split (e.g. 0.9
 *        for the paper's 9:1 protocol).
 * @param seed Shuffle seed.
 */
std::pair<MlDataset, MlDataset> trainEvalSplit(const MlDataset &dataset,
                                               double train_fraction,
                                               std::uint64_t seed);

} // namespace rap::ml

#endif // RAP_ML_DATASET_HPP
