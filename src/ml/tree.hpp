/**
 * @file
 * CART-style regression tree with exact greedy variance-reduction
 * splits — the weak learner of the GBDT latency predictor.
 */

#ifndef RAP_ML_TREE_HPP
#define RAP_ML_TREE_HPP

#include <cstddef>
#include <vector>

namespace rap::ml {

/** Tree-growing hyper-parameters. */
struct TreeParams
{
    int maxDepth = 6;
    std::size_t minSamplesLeaf = 4;
    /** Minimum variance-reduction gain to accept a split. */
    double minGain = 1e-12;
};

/**
 * Regression tree stored as a flat node array.
 */
class RegressionTree
{
  public:
    /**
     * Fit to (x, residual) pairs restricted to @p indices.
     *
     * @param x Row-major feature matrix.
     * @param residual Regression targets (boosting residuals).
     * @param indices Row subset to fit on.
     * @param params Growing limits.
     */
    void fit(const std::vector<std::vector<double>> &x,
             const std::vector<double> &residual,
             const std::vector<std::size_t> &indices,
             const TreeParams &params);

    /** @return Prediction for one feature row. */
    double predict(const std::vector<double> &row) const;

    /** @return Number of nodes (leaves + internal). */
    std::size_t nodeCount() const { return nodes_.size(); }

    /** @return Depth of the deepest leaf. */
    int depth() const;

  private:
    struct Node
    {
        bool leaf = true;
        double value = 0.0;   ///< leaf prediction
        std::size_t feature = 0;
        double threshold = 0.0;
        int left = -1;
        int right = -1;
        int depth = 0;
    };

    int build(const std::vector<std::vector<double>> &x,
              const std::vector<double> &residual,
              std::vector<std::size_t> indices, int node_depth,
              const TreeParams &params);

    std::vector<Node> nodes_;
};

} // namespace rap::ml

#endif // RAP_ML_TREE_HPP
