#include "ml/dataset.hpp"

#include <numeric>

#include "common/log.hpp"

namespace rap::ml {

void
MlDataset::add(std::vector<double> features, double target)
{
    if (!x.empty()) {
        RAP_ASSERT(features.size() == x.front().size(),
                   "ragged feature row");
    }
    x.push_back(std::move(features));
    y.push_back(target);
}

void
MlDataset::validate() const
{
    RAP_ASSERT(x.size() == y.size(), "x/y length mismatch");
    for (const auto &row : x)
        RAP_ASSERT(row.size() == x.front().size(), "ragged feature row");
}

std::pair<MlDataset, MlDataset>
trainEvalSplit(const MlDataset &dataset, double train_fraction,
               std::uint64_t seed)
{
    RAP_ASSERT(train_fraction > 0.0 && train_fraction < 1.0,
               "train fraction must be in (0, 1)");
    dataset.validate();

    std::vector<std::size_t> order(dataset.size());
    std::iota(order.begin(), order.end(), 0);
    Rng rng(seed);
    rng.shuffle(order);

    const auto train_count = static_cast<std::size_t>(
        train_fraction * static_cast<double>(dataset.size()));
    MlDataset train, eval;
    for (std::size_t i = 0; i < order.size(); ++i) {
        auto &dst = i < train_count ? train : eval;
        dst.add(dataset.x[order[i]], dataset.y[order[i]]);
    }
    return {std::move(train), std::move(eval)};
}

} // namespace rap::ml
