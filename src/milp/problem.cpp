#include "milp/problem.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "common/log.hpp"

namespace rap::milp {

void
FusionProblem::validate() const
{
    const auto n = static_cast<int>(size());
    for (const auto &[op, pre] : deps) {
        RAP_ASSERT(op >= 0 && op < n, "dependency op out of range");
        RAP_ASSERT(pre >= 0 && pre < n,
                   "dependency prerequisite out of range");
        RAP_ASSERT(op != pre, "op cannot depend on itself");
    }
    (void)asapLevels(); // panics on cycles
}

std::vector<int>
FusionProblem::asapLevels() const
{
    const std::size_t n = size();
    std::vector<std::vector<int>> out(n);
    std::vector<int> indegree(n, 0);
    for (const auto &[op, pre] : deps) {
        out[static_cast<std::size_t>(pre)].push_back(op);
        ++indegree[static_cast<std::size_t>(op)];
    }
    std::queue<int> ready;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0)
            ready.push(static_cast<int>(i));
    }
    std::vector<int> level(n, 0);
    std::size_t visited = 0;
    while (!ready.empty()) {
        const int op = ready.front();
        ready.pop();
        ++visited;
        for (int next : out[static_cast<std::size_t>(op)]) {
            level[static_cast<std::size_t>(next)] =
                std::max(level[static_cast<std::size_t>(next)],
                         level[static_cast<std::size_t>(op)] + 1);
            if (--indegree[static_cast<std::size_t>(next)] == 0)
                ready.push(next);
        }
    }
    RAP_ASSERT(visited == n, "fusion problem dependency graph is cyclic");
    return level;
}

std::vector<std::vector<int>>
FusionProblem::successors() const
{
    std::vector<std::vector<int>> out(size());
    for (const auto &[op, pre] : deps)
        out[static_cast<std::size_t>(pre)].push_back(op);
    return out;
}

int
FusionProblem::typeCount() const
{
    int max_type = -1;
    for (int t : type)
        max_type = std::max(max_type, t);
    return max_type + 1;
}

std::vector<std::vector<int>>
FusionSolution::groups(const FusionProblem &problem) const
{
    RAP_ASSERT(step.size() == problem.size(),
               "solution size does not match problem");
    std::map<std::pair<int, int>, std::vector<int>> by_key;
    for (std::size_t i = 0; i < step.size(); ++i) {
        by_key[{step[i], problem.type[i]}].push_back(
            static_cast<int>(i));
    }
    std::vector<std::vector<int>> result;
    result.reserve(by_key.size());
    for (auto &[key, ops] : by_key)
        result.push_back(std::move(ops));
    return result;
}

double
fusionObjective(const FusionProblem &problem,
                const std::vector<int> &step)
{
    RAP_ASSERT(step.size() == problem.size(),
               "assignment size does not match problem");
    std::map<std::pair<int, int>, double> count;
    for (std::size_t i = 0; i < step.size(); ++i)
        count[{problem.type[i], step[i]}] += 1.0;
    double objective = 0.0;
    for (const auto &[key, c] : count)
        objective += c * c;
    return objective;
}

bool
isFeasible(const FusionProblem &problem, const std::vector<int> &step)
{
    if (step.size() != problem.size())
        return false;
    for (int s : step) {
        if (s < 0)
            return false;
    }
    for (const auto &[op, pre] : problem.deps) {
        if (step[static_cast<std::size_t>(op)] <
            step[static_cast<std::size_t>(pre)] + 1) {
            return false;
        }
    }
    return true;
}

} // namespace rap::milp
