#include "milp/solver.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace rap::milp {

namespace {

/**
 * Exact depth-first branch-and-bound.
 *
 * Operations are assigned in topological order, so every dependency of
 * the current op already has a step. Pruning uses an admissible
 * join-the-biggest-group bound; ops of singleton types are assigned
 * greedily (a dominance argument), and candidate steps are explored in
 * descending same-type-count order so good incumbents appear early.
 *
 * For the parallel search, a prefix of assignments (the first k ops in
 * topological order) can be replayed onto a fresh instance with
 * applyPrefix(), after which runFrom() explores only that subtree.
 * Subtrees are pruned against their own incumbents only; because an
 * incumbent-pruned subtree can never contain a strictly better
 * assignment, reducing subtree results in frontier order reproduces
 * the serial search's first-improvement tie-breaking exactly.
 */
class BranchBound
{
  public:
    BranchBound(const FusionProblem &problem, std::uint64_t max_nodes)
        : p_(problem), maxNodes_(max_nodes)
    {
        const std::size_t n = p_.size();
        horizon_ = static_cast<int>(n);
        deps_of_.resize(n);
        for (const auto &[op, pre] : p_.deps)
            deps_of_[static_cast<std::size_t>(op)].push_back(pre);

        // Topological order via ASAP levels (stable within a level).
        topo_.resize(n);
        std::iota(topo_.begin(), topo_.end(), 0);
        const auto levels = p_.asapLevels();
        std::stable_sort(topo_.begin(), topo_.end(),
                         [&](int a, int b) {
                             return levels[static_cast<std::size_t>(a)] <
                                    levels[static_cast<std::size_t>(b)];
                         });

        typeMultiplicity_.assign(
            static_cast<std::size_t>(p_.typeCount()), 0);
        for (int t : p_.type)
            ++typeMultiplicity_[static_cast<std::size_t>(t)];

        const auto types = static_cast<std::size_t>(p_.typeCount());
        counts_.assign(types, std::vector<int>(
                                  static_cast<std::size_t>(horizon_), 0));
        maxCount_.assign(types, 0);
        remaining_.assign(types, 0);
        for (int t : p_.type)
            ++remaining_[static_cast<std::size_t>(t)];
        assign_.assign(n, -1);
    }

    FusionSolution
    run()
    {
        return runFrom(0, 0.0);
    }

    /**
     * Start the search with an incumbent of @p bound without an
     * assignment. Seeding with (feasible objective - 0.5) is safe:
     * objectives are integral, so every assignment at least as good as
     * the seed still strictly improves it, and pruning against any
     * incumbent below the optimum never removes the optimum's first
     * attainment — the returned assignment is unchanged, only found
     * faster. Used to give every parallel subtree the pruning power
     * the serial search gets from carrying its incumbent across
     * subtrees.
     */
    void
    seedIncumbent(double bound)
    {
        best_ = bound;
    }

    /**
     * Replay @p prefix (steps of topo_[0..prefix.size())) onto this
     * instance and return the objective accumulated by it.
     */
    double
    applyPrefix(const std::vector<int> &prefix)
    {
        double objective = 0.0;
        for (std::size_t k = 0; k < prefix.size(); ++k) {
            const int op = topo_[k];
            const auto type = static_cast<std::size_t>(
                p_.type[static_cast<std::size_t>(op)]);
            const int s = prefix[k];
            auto &count = counts_[type][static_cast<std::size_t>(s)];
            objective += 2.0 * count + 1.0;
            ++count;
            maxCount_[type] = std::max(maxCount_[type], count);
            --remaining_[type];
            assign_[static_cast<std::size_t>(op)] = s;
        }
        return objective;
    }

    /** Explore the subtree below a replayed prefix of length @p k. */
    FusionSolution
    runFrom(std::size_t k, double objective)
    {
        dfs(k, objective);
        FusionSolution solution;
        // A seeded search that never beat its seed found nothing;
        // report that as objective -1 so reductions skip it.
        solution.step = found_ ? bestAssign_ : std::vector<int>{};
        solution.objective = found_ ? best_ : -1.0;
        solution.optimal = !budgetExhausted_;
        solution.nodesExplored = nodes_;
        return solution;
    }

    /**
     * Candidate steps of the op at topo position @p k, in the exact
     * order dfs() branches on them (shared with the parallel frontier
     * expansion so both searches walk the same tree).
     */
    std::vector<int>
    candidateStepsAt(std::size_t k) const
    {
        const int op = topo_[k];
        const auto type = static_cast<std::size_t>(
            p_.type[static_cast<std::size_t>(op)]);
        int lo = 0;
        for (int dep : deps_of_[static_cast<std::size_t>(op)])
            lo = std::max(lo,
                          assign_[static_cast<std::size_t>(dep)] + 1);
        // The full horizon must stay reachable: an op may need to jump
        // past currently-unused steps to meet future ops whose levels
        // force them high, so every step in [lo, horizon) is explored.
        const int hi = horizon_ - 1;
        std::vector<int> steps;
        if (lo > hi)
            return steps;

        // Dominance: an op whose type occurs once can never fuse, and
        // placing it at the earliest feasible step is maximally
        // permissive for its successors — no branching needed.
        if (typeMultiplicity_[type] == 1) {
            steps = {lo};
            return steps;
        }
        for (int s = lo; s <= hi; ++s)
            steps.push_back(s);
        // Try steps in descending same-type-count order so the best
        // groups are explored (and the incumbent raised) early.
        std::stable_sort(steps.begin(), steps.end(),
                         [&](int a, int b) {
                             return counts_[type][
                                        static_cast<std::size_t>(a)] >
                                    counts_[type][
                                        static_cast<std::size_t>(b)];
                         });
        return steps;
    }

    std::size_t size() const { return p_.size(); }

  private:
    double
    upperBound(double current) const
    {
        double bound = current;
        for (std::size_t t = 0; t < remaining_.size(); ++t) {
            const double c = maxCount_[t];
            const double r = remaining_[t];
            bound += 2.0 * c * r + r * r;
        }
        return bound;
    }

    void
    dfs(std::size_t k, double objective)
    {
        if (budgetExhausted_)
            return;
        if (++nodes_ > maxNodes_) {
            budgetExhausted_ = true;
            return;
        }
        if (k == p_.size()) {
            if (objective > best_) {
                best_ = objective;
                bestAssign_ = assign_;
                found_ = true;
            }
            return;
        }
        if (upperBound(objective) <= best_)
            return;

        const int op = topo_[k];
        const auto type = static_cast<std::size_t>(
            p_.type[static_cast<std::size_t>(op)]);
        const std::vector<int> steps = candidateStepsAt(k);
        if (steps.empty())
            return;

        --remaining_[type];
        for (int s : steps) {
            auto &count = counts_[type][static_cast<std::size_t>(s)];
            const double delta = 2.0 * count + 1.0;
            ++count;
            const int prev_max = maxCount_[type];
            maxCount_[type] = std::max(maxCount_[type], count);
            assign_[static_cast<std::size_t>(op)] = s;

            dfs(k + 1, objective + delta);

            assign_[static_cast<std::size_t>(op)] = -1;
            --count;
            maxCount_[type] = prev_max;
            if (budgetExhausted_)
                break;
        }
        ++remaining_[type];
    }

    const FusionProblem &p_;
    std::uint64_t maxNodes_;
    std::uint64_t nodes_ = 0;
    bool budgetExhausted_ = false;
    int horizon_ = 0;
    std::vector<std::vector<int>> deps_of_;
    std::vector<int> topo_;
    std::vector<std::vector<int>> counts_; // [type][step]
    std::vector<int> maxCount_;            // per type
    std::vector<int> remaining_;           // per type
    std::vector<int> typeMultiplicity_;    // per type
    std::vector<int> assign_;
    double best_ = -1.0;
    bool found_ = false;
    std::vector<int> bestAssign_;
};

/**
 * Expand the search tree breadth-first (in dfs branch order) until at
 * least @p target subtree roots exist. Each returned prefix assigns
 * the first `prefix.size()` ops in topological order.
 */
std::vector<std::vector<int>>
expandFrontier(const FusionProblem &problem, std::size_t target)
{
    std::vector<std::vector<int>> frontier(1);
    std::size_t depth = 0;
    while (depth < problem.size() && frontier.size() < target) {
        std::vector<std::vector<int>> next;
        for (const auto &prefix : frontier) {
            BranchBound scratch(problem, 1);
            scratch.applyPrefix(prefix);
            for (int s : scratch.candidateStepsAt(depth)) {
                next.push_back(prefix);
                next.back().push_back(s);
            }
        }
        if (next.empty())
            break;
        frontier = std::move(next);
        ++depth;
    }
    return frontier;
}

} // namespace

FusionSolver::FusionSolver(SolverOptions options)
    : options_(options)
{
}

FusionSolution
FusionSolver::solve(const FusionProblem &problem) const
{
    problem.validate();
    if (problem.size() == 0) {
        FusionSolution empty;
        empty.optimal = true;
        return empty;
    }
    if (problem.size() <= options_.exactLimit) {
        auto solution = solveExact(problem);
        if (solution.optimal)
            return solution;
        // Budget ran out: fall through and keep the better of the two.
        auto heuristic = solveHeuristic(problem);
        return heuristic.objective > solution.objective ? heuristic
                                                        : solution;
    }
    return solveHeuristic(problem);
}

FusionSolution
FusionSolver::solveExact(const FusionProblem &problem) const
{
    problem.validate();
    const int threads = options_.threads <= 0
                            ? ThreadPool::hardwareThreads()
                            : options_.threads;
    // Seed every search with the heuristic incumbent (minus 0.5 so
    // equally good assignments still strictly improve it). This gives
    // parallel subtrees the pruning power serial search accumulates by
    // carrying its incumbent across subtrees, and it cannot change the
    // returned assignment (see seedIncumbent()).
    const FusionSolution heuristic = solveHeuristic(problem);
    const double seed = heuristic.objective - 0.5;

    FusionSolution solution;
    if (threads <= 1 || problem.size() < 2) {
        BranchBound bnb(problem, options_.maxNodes);
        bnb.seedIncumbent(seed);
        solution = bnb.run();
    } else {
        // Split the tree at a breadth-first frontier enumerated in dfs
        // branch order and search the subtrees concurrently, each with
        // its own incumbent and node budget.
        const auto frontier = expandFrontier(
            problem, static_cast<std::size_t>(threads) * 4);
        ThreadPool pool(threads);
        const auto results = pool.parallelMap<FusionSolution>(
            frontier.size(), [&](std::size_t i) {
                BranchBound bnb(problem, options_.maxNodes);
                const double objective = bnb.applyPrefix(frontier[i]);
                bnb.seedIncumbent(seed);
                return bnb.runFrom(frontier[i].size(), objective);
            });
        // Deterministic reduction: taking the first strict improvement
        // in frontier order reproduces the serial search's
        // first-attainment tie-break (an incumbent-pruned subtree can
        // never hold a strictly better assignment).
        solution.objective = -1.0;
        solution.optimal = true;
        for (const auto &r : results) {
            if (r.objective > solution.objective) {
                solution.objective = r.objective;
                solution.step = r.step;
            }
            solution.optimal = solution.optimal && r.optimal;
            solution.nodesExplored += r.nodesExplored;
        }
    }
    if (solution.step.empty() && problem.size() > 0) {
        // Budget exhausted before any assignment beat the seed: the
        // heuristic's assignment is the best known.
        solution.step = heuristic.step;
        solution.objective = heuristic.objective;
        solution.optimal = false;
    }
    RAP_ASSERT(isFeasible(problem, solution.step),
               "exact solver produced an infeasible assignment");
    return solution;
}

FusionSolution
FusionSolver::solveHeuristic(const FusionProblem &problem) const
{
    problem.validate();
    const std::size_t n = problem.size();

    const std::vector<int> asap = problem.asapLevels();
    // Steps beyond the deepest level plus a small slack never help the
    // grouping objective; capping the horizon keeps relocation windows
    // small on large plans.
    int max_level = 0;
    for (int s : asap)
        max_level = std::max(max_level, s);
    const int horizon =
        std::min(static_cast<int>(n), max_level + 8);

    // Second restart seed: ALAP levels (chains aligned at their
    // tails), which often escapes the ASAP seed's local optimum.
    std::vector<int> alap(n, max_level);
    {
        const auto succ_levels = problem.successors();
        // Process in reverse topological order (ids ordered by level).
        std::vector<int> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return asap[static_cast<std::size_t>(a)] >
                   asap[static_cast<std::size_t>(b)];
        });
        for (int i : order) {
            for (int nxt : succ_levels[static_cast<std::size_t>(i)]) {
                alap[static_cast<std::size_t>(i)] = std::min(
                    alap[static_cast<std::size_t>(i)],
                    alap[static_cast<std::size_t>(nxt)] - 1);
            }
        }
    }

    std::vector<int> step = asap;
    const auto succ = problem.successors();
    std::vector<std::vector<int>> deps_of(n);
    for (const auto &[op, pre] : problem.deps)
        deps_of[static_cast<std::size_t>(op)].push_back(pre);

    // Per-(type, step) population for incremental objective deltas.
    std::map<std::pair<int, int>, int> count;
    for (std::size_t i = 0; i < n; ++i)
        ++count[{problem.type[i], step[i]}];

    // Jointly relocate a whole (type, step) group to another step.
    // Fixes coordination failures single-op moves cannot escape
    // (e.g. merging a pair into another pair).
    auto tryGroupMoves = [&]() {
        bool improved = false;
        std::map<std::pair<int, int>, std::vector<std::size_t>> groups;
        for (std::size_t i = 0; i < n; ++i)
            groups[{problem.type[i], step[i]}].push_back(i);
        for (auto &[key, members] : groups) {
            const auto [type, cur] = key;
            // Joint window of the whole group.
            int lo = 0;
            int hi = horizon - 1;
            for (std::size_t i : members) {
                for (int dep : deps_of[i])
                    lo = std::max(
                        lo, step[static_cast<std::size_t>(dep)] + 1);
                for (int nxt : succ[i])
                    hi = std::min(
                        hi, step[static_cast<std::size_t>(nxt)] - 1);
            }
            const auto size = static_cast<int>(members.size());
            double best_gain = 0.0;
            int best_step = cur;
            for (int s = lo; s <= hi; ++s) {
                if (s == cur)
                    continue;
                const auto it = count.find({type, s});
                const int target = it == count.end() ? 0 : it->second;
                // (target + size)^2 - target^2 - size^2 = 2*target*size.
                const double gain = 2.0 * target * size;
                if (gain > best_gain) {
                    best_gain = gain;
                    best_step = s;
                }
            }
            if (best_gain > 0.0) {
                count[{type, cur}] -= size;
                count[{type, best_step}] += size;
                for (std::size_t i : members)
                    step[i] = best_step;
                improved = true;
            }
        }
        return improved;
    };

    for (int round = 0; round < options_.localSearchRounds; ++round) {
        bool improved = tryGroupMoves();
        for (std::size_t i = 0; i < n; ++i) {
            const int type = problem.type[i];
            int lo = 0;
            for (int dep : deps_of[i])
                lo = std::max(lo,
                              step[static_cast<std::size_t>(dep)] + 1);
            int hi = horizon - 1;
            for (int nxt : succ[i])
                hi = std::min(hi,
                              step[static_cast<std::size_t>(nxt)] - 1);
            if (lo > hi)
                continue;

            const int cur = step[i];
            const int cur_count = count[{type, cur}];
            double best_gain = 0.0;
            int best_step = cur;
            for (int s = lo; s <= hi; ++s) {
                if (s == cur)
                    continue;
                const auto it = count.find({type, s});
                const int target = it == count.end() ? 0 : it->second;
                // Leaving a group of size c loses 2c-1; joining a group
                // of size c' gains 2c'+1.
                const double gain = 2.0 * (target - cur_count) + 2.0;
                if (gain > best_gain) {
                    best_gain = gain;
                    best_step = s;
                }
            }
            if (best_gain > 0.0) {
                --count[{type, cur}];
                ++count[{type, best_step}];
                step[i] = best_step;
                improved = true;
            }
        }
        if (!improved)
            break;
    }

    // Re-run the same local search from the ALAP seed and keep the
    // better of the two assignments.
    double best_objective = fusionObjective(problem, step);
    std::vector<int> best_step = step;
    {
        step = alap;
        count.clear();
        for (std::size_t i = 0; i < n; ++i)
            ++count[{problem.type[i], step[i]}];
        for (int round = 0; round < options_.localSearchRounds;
             ++round) {
            bool improved = tryGroupMoves();
            for (std::size_t i = 0; i < n; ++i) {
                const int type = problem.type[i];
                int lo = 0;
                for (int dep : deps_of[i])
                    lo = std::max(
                        lo, step[static_cast<std::size_t>(dep)] + 1);
                int hi = horizon - 1;
                for (int nxt : succ[i])
                    hi = std::min(
                        hi, step[static_cast<std::size_t>(nxt)] - 1);
                if (lo > hi)
                    continue;
                const int cur = step[i];
                const int cur_count = count[{type, cur}];
                double best_gain = 0.0;
                int to = cur;
                for (int s = lo; s <= hi; ++s) {
                    if (s == cur)
                        continue;
                    const auto it = count.find({type, s});
                    const int target =
                        it == count.end() ? 0 : it->second;
                    const double gain =
                        2.0 * (target - cur_count) + 2.0;
                    if (gain > best_gain) {
                        best_gain = gain;
                        to = s;
                    }
                }
                if (best_gain > 0.0) {
                    --count[{type, cur}];
                    ++count[{type, to}];
                    step[i] = to;
                    improved = true;
                }
            }
            if (!improved)
                break;
        }
        const double objective = fusionObjective(problem, step);
        if (objective > best_objective) {
            best_objective = objective;
            best_step = step;
        }
    }

    FusionSolution solution;
    solution.step = std::move(best_step);
    solution.objective = best_objective;
    solution.optimal = false;
    RAP_ASSERT(isFeasible(problem, solution.step),
               "heuristic solver produced an infeasible assignment");
    return solution;
}

} // namespace rap::milp
