/**
 * @file
 * The horizontal-fusion scheduling problem (paper §6.2, Eq. 1-4).
 *
 * Formulation. N operations each carry a type; a binary matrix
 * X[i][t] assigns operation i to time step t. Constraints:
 *   (Eq. 1) every operation is assigned exactly one step;
 *   (Eq. 2) an operation's step strictly exceeds its dependencies'.
 * Operations of the same type assigned to the same step fuse into one
 * kernel. The objective (Eq. 3-4) maximises the sum over types and
 * steps of the squared per-step type counts — i.e. it pushes same-type
 * operations together as hard as the dependencies allow.
 *
 * This module is substrate-generic: types are integers; the core
 * library maps preprocessing operator types onto them.
 */

#ifndef RAP_MILP_PROBLEM_HPP
#define RAP_MILP_PROBLEM_HPP

#include <cstdint>
#include <utility>
#include <vector>

namespace rap::milp {

/** A typed-DAG fusion-scheduling instance. */
struct FusionProblem
{
    /** Type id of each operation. */
    std::vector<int> type;
    /** Dependency pairs: (op, prerequisite). */
    std::vector<std::pair<int, int>> deps;

    std::size_t size() const { return type.size(); }

    /** Panic on out-of-range indices or dependency cycles. */
    void validate() const;

    /**
     * @return Longest-path level of each op (sources at 0); the
     *         earliest feasible time step under Eq. 2.
     */
    std::vector<int> asapLevels() const;

    /** @return Direct successors of each op. */
    std::vector<std::vector<int>> successors() const;

    /** @return Number of distinct type ids (max + 1). */
    int typeCount() const;
};

/** An assignment of every operation to a time step. */
struct FusionSolution
{
    /** Time step per operation. */
    std::vector<int> step;
    /** Objective value (Eq. 3-4). */
    double objective = 0.0;
    /** True when the solver proved optimality. */
    bool optimal = false;
    /** Branch-and-bound nodes explored (diagnostics). */
    std::uint64_t nodesExplored = 0;

    /**
     * Extract the fusion groups: ops sharing (type, step), ordered by
     * step then type. Singleton groups are included.
     */
    std::vector<std::vector<int>> groups(
        const FusionProblem &problem) const;
};

/** @return Eq. 3-4 objective of @p step for @p problem. */
double fusionObjective(const FusionProblem &problem,
                       const std::vector<int> &step);

/** @return True when @p step satisfies Eq. 1-2. */
bool isFeasible(const FusionProblem &problem,
                const std::vector<int> &step);

} // namespace rap::milp

#endif // RAP_MILP_PROBLEM_HPP
