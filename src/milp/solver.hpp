/**
 * @file
 * Solvers for the horizontal-fusion MILP.
 *
 * Two backends stand in for the paper's Gurobi call:
 *  - an exact depth-first branch-and-bound over time-step assignments
 *    with an admissible join-the-biggest-group bound, used for small
 *    instances (and to certify the heuristic in tests);
 *  - a level heuristic (ASAP layering, which aligns the identical
 *    per-feature chains common in real plans) refined by single-op
 *    relocation local search, used for large instances under a node
 *    budget — mirroring Gurobi-with-a-time-limit behaviour.
 *
 * FusionSolver::solve picks a backend by instance size.
 */

#ifndef RAP_MILP_SOLVER_HPP
#define RAP_MILP_SOLVER_HPP

#include "milp/problem.hpp"

namespace rap::milp {

/** Solver tuning knobs. */
struct SolverOptions
{
    /** Max op count for the exact branch-and-bound backend. */
    std::size_t exactLimit = 18;
    /** Branch-and-bound node budget (falls back to best-found). */
    std::uint64_t maxNodes = 3'000'000;
    /** Local-search sweeps for the heuristic backend. */
    int localSearchRounds = 40;
    /**
     * Worker threads for the branch-and-bound backend (1 = serial,
     * 0 = hardware concurrency). The parallel search splits the tree
     * at a breadth-first frontier and reduces subtree incumbents in
     * frontier order, so the returned assignment is bit-identical to
     * the serial search whenever the node budget is not exhausted
     * (each subtree carries its own budget, so exhaustion points can
     * differ between thread counts).
     */
    int threads = 1;
};

/**
 * Facade over the exact and heuristic fusion solvers.
 */
class FusionSolver
{
  public:
    explicit FusionSolver(SolverOptions options = {});

    /** Solve with the backend appropriate for the instance size. */
    FusionSolution solve(const FusionProblem &problem) const;

    /** Exact branch-and-bound (exponential; small instances only). */
    FusionSolution solveExact(const FusionProblem &problem) const;

    /** ASAP-level heuristic plus relocation local search. */
    FusionSolution solveHeuristic(const FusionProblem &problem) const;

    const SolverOptions &options() const { return options_; }

  private:
    SolverOptions options_;
};

} // namespace rap::milp

#endif // RAP_MILP_SOLVER_HPP
