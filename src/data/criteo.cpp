#include "data/criteo.hpp"

#include <cmath>

#include "common/log.hpp"

namespace rap::data {

namespace {

constexpr std::int64_t kKaggleTotalHash = 33'700'000;
constexpr std::int64_t kTerabyteTotalHash = 177'900'000;

/** Mix function that turns a small id into a raw-looking 64-bit value. */
std::int64_t
scramble(std::int64_t x)
{
    auto v = static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
    v ^= v >> 29;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 32;
    return static_cast<std::int64_t>(v & 0x7fffffffffffffffULL);
}

/**
 * Split @p total across @p n tables with zipf-style weights 1/(i+1)^1.2,
 * matching the long-tailed table-size distribution of real Criteo data.
 */
std::vector<std::int64_t>
skewedHashSizes(std::int64_t total, std::size_t n)
{
    std::vector<double> weights(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.2);
        sum += weights[i];
    }
    std::vector<std::int64_t> sizes(n);
    std::int64_t assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sizes[i] = std::max<std::int64_t>(
            2, static_cast<std::int64_t>(
                   std::floor(static_cast<double>(total) * weights[i] /
                              sum)));
        assigned += sizes[i];
    }
    // Put any rounding remainder on the largest table.
    if (assigned < total)
        sizes[0] += total - assigned;
    return sizes;
}

/** Deterministic per-feature mean list length: mostly one-hot, some long. */
double
presetListLength(std::size_t sparse_index)
{
    switch (sparse_index % 5) {
      case 0: return 1.0;
      case 1: return 1.0;
      case 2: return 2.0;
      case 3: return 4.0;
      default: return 8.0;
    }
}

Schema
buildSchema(std::int64_t total_hash, std::size_t dense_count,
            std::size_t sparse_count)
{
    Schema schema;
    for (std::size_t i = 0; i < dense_count; ++i)
        schema.addDense("int_" + std::to_string(i));
    const auto sizes = skewedHashSizes(total_hash, sparse_count);
    for (std::size_t i = 0; i < sparse_count; ++i) {
        schema.addSparse("cat_" + std::to_string(i), sizes[i],
                         presetListLength(i));
    }
    return schema;
}

} // namespace

std::string
datasetPresetName(DatasetPreset preset)
{
    switch (preset) {
      case DatasetPreset::CriteoKaggle: return "Criteo Kaggle";
      case DatasetPreset::CriteoTerabyte: return "Criteo Terabyte";
    }
    return "?";
}

Schema
makePresetSchema(DatasetPreset preset)
{
    return makeScaledSchema(preset, 13, 26);
}

Schema
makeScaledSchema(DatasetPreset preset, std::size_t dense_count,
                 std::size_t sparse_count)
{
    RAP_ASSERT(dense_count > 0 && sparse_count > 0,
               "schema needs at least one dense and one sparse feature");
    const std::int64_t total = preset == DatasetPreset::CriteoKaggle
                                   ? kKaggleTotalHash
                                   : kTerabyteTotalHash;
    return buildSchema(total, dense_count, sparse_count);
}

CriteoGenerator::CriteoGenerator(Schema schema, std::uint64_t seed)
    : schema_(std::move(schema)), rng_(seed)
{
}

void
CriteoGenerator::setNullProbability(double p)
{
    RAP_ASSERT(p >= 0.0 && p <= 1.0, "null probability out of range");
    nullProb_ = p;
}

void
CriteoGenerator::generateRow(CriteoRow &row)
{
    row.clear();
    if (row.sparse.size() != schema_.sparseCount())
        row.sparse.resize(schema_.sparseCount());
    for (std::size_t f = 0; f < schema_.denseCount(); ++f) {
        if (rng_.bernoulli(nullProb_)) {
            row.dense.push_back(0.0f);
            row.denseValid.push_back(0);
        } else {
            row.dense.push_back(
                static_cast<float>(rng_.logNormal(1.5, 1.0)));
            row.denseValid.push_back(1);
        }
    }
    for (std::size_t f = 0; f < schema_.sparseCount(); ++f) {
        const auto &spec = schema_.sparse(f);
        std::size_t len = 1;
        if (spec.avgListLength > 1.0) {
            len = static_cast<std::size_t>(rng_.uniformInt(
                1, static_cast<std::int64_t>(
                       2.0 * spec.avgListLength - 1.0)));
        }
        if (rng_.bernoulli(0.02))
            len = 0;
        auto &ids = row.sparse[f];
        for (std::size_t i = 0; i < len; ++i)
            ids.push_back(scramble(rng_.zipf(spec.hashSize, 1.05)));
    }
}

RecordBatch
CriteoGenerator::generate(std::size_t rows)
{
    RecordBatch batch(schema_, rows);

    for (std::size_t f = 0; f < schema_.denseCount(); ++f) {
        DenseColumn col(rows);
        for (std::size_t r = 0; r < rows; ++r) {
            if (rng_.bernoulli(nullProb_)) {
                col.setNull(r);
            } else {
                col.set(r, static_cast<float>(rng_.logNormal(1.5, 1.0)));
            }
        }
        batch.setDense(f, col);
    }

    std::vector<std::int64_t> ids;
    for (std::size_t f = 0; f < schema_.sparseCount(); ++f) {
        const auto &spec = schema_.sparse(f);
        SparseColumn col;
        for (std::size_t r = 0; r < rows; ++r) {
            // List length: geometric-ish around the spec mean, >= 1, with
            // a small chance of an empty (missing) list.
            std::size_t len = 1;
            if (spec.avgListLength > 1.0) {
                len = static_cast<std::size_t>(rng_.uniformInt(
                    1, static_cast<std::int64_t>(
                           2.0 * spec.avgListLength - 1.0)));
            }
            if (rng_.bernoulli(0.02))
                len = 0;
            ids.clear();
            for (std::size_t i = 0; i < len; ++i)
                ids.push_back(scramble(rng_.zipf(spec.hashSize, 1.05)));
            col.appendRow(ids);
        }
        batch.setSparse(f, std::move(col));
    }
    return batch;
}

} // namespace rap::data
