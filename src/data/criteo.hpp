/**
 * @file
 * Synthetic Criteo-like dataset presets and batch generator.
 *
 * The paper evaluates on Criteo Kaggle (33.7M total hash size) and Criteo
 * Terabyte (177.9M total hash size), both with 13 dense and 26 sparse
 * features (Table 2). Neither dataset ships with this repository, so a
 * seeded generator synthesises batches with the same shape: log-normal
 * dense values with injected nulls, and zipfian multi-hot sparse id lists
 * whose raw ids require hashing (SigridHash) before embedding lookup.
 */

#ifndef RAP_DATA_CRITEO_HPP
#define RAP_DATA_CRITEO_HPP

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "data/batch.hpp"
#include "data/row_codec.hpp"
#include "data/schema.hpp"

namespace rap::data {

/** Identifier of a built-in dataset preset. */
enum class DatasetPreset {
    CriteoKaggle,
    CriteoTerabyte,
};

/** @return Human-readable preset name ("Criteo Kaggle", ...). */
std::string datasetPresetName(DatasetPreset preset);

/**
 * Build the schema for a built-in preset: 13 dense + 26 sparse features,
 * per-table hash sizes skewed (zipf-style weights) so that they sum to
 * the paper's total hash size (33.7M Kaggle, 177.9M Terabyte).
 */
Schema makePresetSchema(DatasetPreset preset);

/**
 * Build a scaled variant of a preset schema with the given feature
 * counts, used by preprocessing Plans 2 and 3 (Table 3), which double and
 * quadruple the feature counts. Per-table hash sizes keep the preset's
 * total by splitting the skewed weights over more tables.
 */
Schema makeScaledSchema(DatasetPreset preset, std::size_t dense_count,
                        std::size_t sparse_count);

/**
 * Deterministic batch generator over a schema.
 */
class CriteoGenerator
{
  public:
    /** Construct for @p schema; all randomness derives from @p seed. */
    CriteoGenerator(Schema schema, std::uint64_t seed);

    /** Fraction of dense entries generated as null (default 5%). */
    void setNullProbability(double p);

    /** @return One fresh batch of @p rows rows. */
    RecordBatch generate(std::size_t rows);

    /**
     * Fill @p row with one synthetic record (the streaming ingest
     * event body). Draws row-major — all features of one row before
     * the next — so a given seed yields a different but equally
     * Criteo-shaped sequence than the column-major generate().
     */
    void generateRow(CriteoRow &row);

    const Schema &schema() const { return schema_; }

  private:
    Schema schema_;
    Rng rng_;
    double nullProb_ = 0.05;
};

} // namespace rap::data

#endif // RAP_DATA_CRITEO_HPP
