/**
 * @file
 * Feature schema for DLRM input batches.
 *
 * A schema lists the dense and sparse features of a dataset along with
 * the embedding hash size of each sparse feature (which determines the
 * embedding table row count and, through sharding, which GPU consumes
 * the preprocessed output of that feature).
 */

#ifndef RAP_DATA_SCHEMA_HPP
#define RAP_DATA_SCHEMA_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rap::data {

/** Whether a feature is continuous (dense) or categorical (sparse). */
enum class FeatureKind {
    Dense,
    Sparse,
};

/** Description of one input feature. */
struct FeatureSpec
{
    std::string name;
    FeatureKind kind = FeatureKind::Dense;
    /** Embedding hash space size; only meaningful for sparse features. */
    std::int64_t hashSize = 0;
    /** Mean multi-hot list length; only meaningful for sparse features. */
    double avgListLength = 1.0;
};

/**
 * Ordered collection of feature specs: all dense features first, then all
 * sparse features, matching the Criteo layout.
 */
class Schema
{
  public:
    Schema() = default;

    /** Append a dense feature named @p name. */
    void addDense(std::string name);

    /** Append a sparse feature with its hash size and mean list length. */
    void addSparse(std::string name, std::int64_t hash_size,
                   double avg_list_length = 1.0);

    std::size_t denseCount() const { return dense_.size(); }
    std::size_t sparseCount() const { return sparse_.size(); }
    std::size_t featureCount() const
    {
        return dense_.size() + sparse_.size();
    }

    const FeatureSpec &dense(std::size_t i) const;
    const FeatureSpec &sparse(std::size_t i) const;

    const std::vector<FeatureSpec> &denseFeatures() const { return dense_; }
    const std::vector<FeatureSpec> &sparseFeatures() const
    {
        return sparse_;
    }

    /** @return Sum of all sparse hash sizes (paper Table 2 "Total Hash"). */
    std::int64_t totalHashSize() const;

  private:
    std::vector<FeatureSpec> dense_;
    std::vector<FeatureSpec> sparse_;
};

} // namespace rap::data

#endif // RAP_DATA_SCHEMA_HPP
