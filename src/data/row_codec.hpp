/**
 * @file
 * Single-row Criteo TSV codec shared by the batch TSV reader
 * (data/criteo_tsv.hpp) and the streaming ingest spill log
 * (ingest/spill.hpp).
 *
 * A row is the unit both paths care about: the TSV reader stages one
 * row at a time and commits it to column builders only when the whole
 * row is clean, and the ingest spill log persists one event (= one
 * row) per line. Factoring the field parsing here keeps the two
 * on-disk formats byte-compatible by construction.
 */

#ifndef RAP_DATA_ROW_CODEC_HPP
#define RAP_DATA_ROW_CODEC_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/schema.hpp"

namespace rap::data {

/**
 * One decoded row in row-major form: parallel dense value/validity
 * arrays plus one id list per sparse feature. Reused across rows —
 * clear() keeps the allocated capacity.
 */
struct CriteoRow
{
    std::vector<float> dense;
    std::vector<std::uint8_t> denseValid;
    std::vector<std::vector<std::int64_t>> sparse;

    /** Drop contents, keep capacity (per-feature lists included). */
    void clear();
};

/** One malformed row diagnosed by decodeCriteoRow. */
struct RowError
{
    /** 0-based field ordinal (dense first, then sparse). */
    std::size_t field = 0;
    /** What was wrong, quoting the offending text. */
    std::string message;
};

/**
 * Decode one Criteo TSV line (no trailing newline/CR) against
 * @p schema into @p row. Whole-row semantics: on any malformed field
 * the function stops, fills @p error, and returns false — @p row then
 * holds partial content the caller must discard. Empty dense fields
 * decode as nulls; an empty sparse field is an empty list.
 */
bool decodeCriteoRow(std::string_view line, const Schema &schema,
                     CriteoRow &row, RowError &error);

/**
 * Append @p row to @p out as one TSV line (no trailing newline).
 * Dense values use the shortest round-trip decimal form
 * (std::to_chars), so decodeCriteoRow(encodeCriteoRow(r)) is
 * bit-exact — the property the ingest spill/replay path relies on.
 * (writeCriteoTsv keeps its historical 6-significant-digit ostream
 * formatting for interchange files; only this codec guarantees
 * round-trips.)
 */
void encodeCriteoRow(const CriteoRow &row, std::string &out);

} // namespace rap::data

#endif // RAP_DATA_ROW_CODEC_HPP
