#include "data/schema.hpp"

#include "common/log.hpp"

namespace rap::data {

void
Schema::addDense(std::string name)
{
    dense_.push_back(FeatureSpec{std::move(name), FeatureKind::Dense, 0,
                                 1.0});
}

void
Schema::addSparse(std::string name, std::int64_t hash_size,
                  double avg_list_length)
{
    RAP_ASSERT(hash_size > 0, "sparse feature needs a positive hash size");
    sparse_.push_back(FeatureSpec{std::move(name), FeatureKind::Sparse,
                                  hash_size, avg_list_length});
}

const FeatureSpec &
Schema::dense(std::size_t i) const
{
    RAP_ASSERT(i < dense_.size(), "dense feature index out of range");
    return dense_[i];
}

const FeatureSpec &
Schema::sparse(std::size_t i) const
{
    RAP_ASSERT(i < sparse_.size(), "sparse feature index out of range");
    return sparse_[i];
}

std::int64_t
Schema::totalHashSize() const
{
    std::int64_t total = 0;
    for (const auto &f : sparse_)
        total += f.hashSize;
    return total;
}

} // namespace rap::data
