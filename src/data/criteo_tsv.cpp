#include "data/criteo_tsv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.hpp"

namespace rap::data {

namespace {

/** Split a line into exactly the schema's field count, tab-separated. */
std::vector<std::string_view>
splitFields(std::string_view line)
{
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    for (;;) {
        const auto tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
parseId(std::string_view field, std::int64_t &value)
{
    const auto *begin = field.data();
    const auto *end = field.data() + field.size();
    const auto result = std::from_chars(begin, end, value);
    return result.ec == std::errc{} && result.ptr == end;
}

bool
parseDense(std::string_view field, float &value)
{
    const auto *begin = field.data();
    const auto *end = field.data() + field.size();
    const auto result = std::from_chars(begin, end, value);
    return result.ec == std::errc{} && result.ptr == end;
}

} // namespace

void
writeCriteoTsv(std::ostream &out, const RecordBatch &batch)
{
    for (std::size_t r = 0; r < batch.rows(); ++r) {
        for (std::size_t f = 0; f < batch.denseCount(); ++f) {
            if (f > 0)
                out << '\t';
            const auto &col = batch.dense(f);
            if (col.isValid(r))
                out << col.value(r);
        }
        for (std::size_t s = 0; s < batch.sparseCount(); ++s) {
            out << '\t';
            const auto &col = batch.sparse(s);
            for (std::size_t i = 0; i < col.listLength(r); ++i) {
                if (i > 0)
                    out << ',';
                out << col.value(r, i);
            }
        }
        out << '\n';
    }
}

TsvReadResult
readCriteoTsvChecked(std::istream &in, const Schema &schema,
                     std::size_t max_rows)
{
    std::vector<std::vector<float>> dense_values(schema.denseCount());
    std::vector<std::vector<std::uint8_t>> dense_valid(
        schema.denseCount());
    std::vector<SparseColumn> sparse_cols(schema.sparseCount());

    TsvReadResult result;
    std::string line;
    std::size_t committed = 0;
    // Row staging: parse into these temporaries and commit to the
    // column builders only once the whole row is clean, so a
    // malformed field never leaves a partial row behind.
    std::vector<float> row_dense;
    std::vector<std::uint8_t> row_valid;
    std::vector<std::vector<std::int64_t>> row_sparse(
        schema.sparseCount());

    while ((max_rows == 0 || committed < max_rows) &&
           std::getline(in, line)) {
        // CRLF input: getline keeps the '\r', which would otherwise
        // corrupt the last field.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        const std::size_t row = result.rowsScanned++;
        if (line.find('\0') != std::string::npos) {
            result.errors.push_back(
                {row, 0, "embedded NUL byte in TSV row"});
            continue;
        }
        const auto fields = splitFields(line);
        if (fields.size() != schema.featureCount()) {
            result.errors.push_back(
                {row, 0,
                 "has " + std::to_string(fields.size()) +
                     " fields, expected " +
                     std::to_string(schema.featureCount())});
            continue;
        }

        bool bad = false;
        row_dense.clear();
        row_valid.clear();
        for (std::size_t f = 0; !bad && f < schema.denseCount();
             ++f) {
            const auto field = fields[f];
            if (field.empty()) {
                row_dense.push_back(0.0f);
                row_valid.push_back(0);
                continue;
            }
            float value = 0.0f;
            if (parseDense(field, value)) {
                row_dense.push_back(value);
                row_valid.push_back(1);
            } else {
                result.errors.push_back(
                    {row, f,
                     "malformed dense value in TSV field: '" +
                         std::string(field) + "'"});
                bad = true;
            }
        }
        for (std::size_t s = 0; !bad && s < schema.sparseCount();
             ++s) {
            const auto field = fields[schema.denseCount() + s];
            auto &ids = row_sparse[s];
            ids.clear();
            std::size_t start = 0;
            while (!bad && !field.empty()) {
                const auto comma = field.find(',', start);
                const auto token =
                    comma == std::string_view::npos
                        ? field.substr(start)
                        : field.substr(start, comma - start);
                std::int64_t id = 0;
                if (parseId(token, id)) {
                    ids.push_back(id);
                } else {
                    result.errors.push_back(
                        {row, schema.denseCount() + s,
                         "malformed sparse id in TSV field: '" +
                             std::string(token) + "'"});
                    bad = true;
                }
                if (comma == std::string_view::npos)
                    break;
                start = comma + 1;
            }
        }
        if (bad)
            continue;

        for (std::size_t f = 0; f < schema.denseCount(); ++f) {
            dense_values[f].push_back(row_dense[f]);
            dense_valid[f].push_back(row_valid[f]);
        }
        for (std::size_t s = 0; s < schema.sparseCount(); ++s)
            sparse_cols[s].appendRow(row_sparse[s]);
        ++committed;
    }

    RecordBatch batch(schema, committed);
    for (std::size_t f = 0; f < schema.denseCount(); ++f) {
        batch.setDense(f, DenseColumn(std::move(dense_values[f]),
                                      std::move(dense_valid[f])));
    }
    for (std::size_t s = 0; s < schema.sparseCount(); ++s)
        batch.setSparse(s, std::move(sparse_cols[s]));
    result.batch = std::move(batch);
    return result;
}

RecordBatch
readCriteoTsv(std::istream &in, const Schema &schema,
              std::size_t max_rows)
{
    auto result = readCriteoTsvChecked(in, schema, max_rows);
    if (!result.ok()) {
        const auto &e = result.errors.front();
        RAP_FATAL("TSV row ", e.row, " ", e.message);
    }
    return std::move(result.batch);
}

void
writeCriteoTsvFile(const std::string &path, const RecordBatch &batch)
{
    std::ofstream out(path);
    if (!out)
        RAP_FATAL("cannot open TSV file for writing: ", path);
    writeCriteoTsv(out, batch);
    if (!out)
        RAP_FATAL("failed writing TSV file: ", path);
}

RecordBatch
readCriteoTsvFile(const std::string &path, const Schema &schema,
                  std::size_t max_rows)
{
    std::ifstream in(path);
    if (!in)
        RAP_FATAL("cannot open TSV file for reading: ", path);
    return readCriteoTsv(in, schema, max_rows);
}

} // namespace rap::data
