#include "data/criteo_tsv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.hpp"

namespace rap::data {

namespace {

/** Split a line into exactly the schema's field count, tab-separated. */
std::vector<std::string_view>
splitFields(std::string_view line)
{
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    for (;;) {
        const auto tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

std::int64_t
parseId(std::string_view field)
{
    std::int64_t value = 0;
    const auto *begin = field.data();
    const auto *end = field.data() + field.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc{} || result.ptr != end)
        RAP_FATAL("malformed sparse id in TSV field: '",
                  std::string(field), "'");
    return value;
}

float
parseDense(std::string_view field)
{
    float value = 0.0f;
    const auto *begin = field.data();
    const auto *end = field.data() + field.size();
    const auto result = std::from_chars(begin, end, value);
    if (result.ec != std::errc{} || result.ptr != end)
        RAP_FATAL("malformed dense value in TSV field: '",
                  std::string(field), "'");
    return value;
}

} // namespace

void
writeCriteoTsv(std::ostream &out, const RecordBatch &batch)
{
    for (std::size_t r = 0; r < batch.rows(); ++r) {
        for (std::size_t f = 0; f < batch.denseCount(); ++f) {
            if (f > 0)
                out << '\t';
            const auto &col = batch.dense(f);
            if (col.isValid(r))
                out << col.value(r);
        }
        for (std::size_t s = 0; s < batch.sparseCount(); ++s) {
            out << '\t';
            const auto &col = batch.sparse(s);
            for (std::size_t i = 0; i < col.listLength(r); ++i) {
                if (i > 0)
                    out << ',';
                out << col.value(r, i);
            }
        }
        out << '\n';
    }
}

RecordBatch
readCriteoTsv(std::istream &in, const Schema &schema,
              std::size_t max_rows)
{
    std::vector<std::vector<float>> dense_values(schema.denseCount());
    std::vector<std::vector<std::uint8_t>> dense_valid(
        schema.denseCount());
    std::vector<SparseColumn> sparse_cols(schema.sparseCount());

    std::string line;
    std::size_t rows = 0;
    std::vector<std::int64_t> ids;
    while ((max_rows == 0 || rows < max_rows) &&
           std::getline(in, line)) {
        // CRLF input: getline keeps the '\r', which would otherwise
        // corrupt the last field.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        const auto fields = splitFields(line);
        if (fields.size() != schema.featureCount()) {
            RAP_FATAL("TSV row ", rows, " has ", fields.size(),
                      " fields, expected ", schema.featureCount());
        }

        for (std::size_t f = 0; f < schema.denseCount(); ++f) {
            const auto field = fields[f];
            if (field.empty()) {
                dense_values[f].push_back(0.0f);
                dense_valid[f].push_back(0);
            } else {
                dense_values[f].push_back(parseDense(field));
                dense_valid[f].push_back(1);
            }
        }
        for (std::size_t s = 0; s < schema.sparseCount(); ++s) {
            const auto field = fields[schema.denseCount() + s];
            ids.clear();
            if (!field.empty()) {
                std::size_t start = 0;
                for (;;) {
                    const auto comma = field.find(',', start);
                    if (comma == std::string_view::npos) {
                        ids.push_back(
                            parseId(field.substr(start)));
                        break;
                    }
                    ids.push_back(parseId(
                        field.substr(start, comma - start)));
                    start = comma + 1;
                }
            }
            sparse_cols[s].appendRow(ids);
        }
        ++rows;
    }

    RecordBatch batch(schema, rows);
    for (std::size_t f = 0; f < schema.denseCount(); ++f) {
        batch.setDense(f, DenseColumn(std::move(dense_values[f]),
                                      std::move(dense_valid[f])));
    }
    for (std::size_t s = 0; s < schema.sparseCount(); ++s)
        batch.setSparse(s, std::move(sparse_cols[s]));
    return batch;
}

void
writeCriteoTsvFile(const std::string &path, const RecordBatch &batch)
{
    std::ofstream out(path);
    if (!out)
        RAP_FATAL("cannot open TSV file for writing: ", path);
    writeCriteoTsv(out, batch);
    if (!out)
        RAP_FATAL("failed writing TSV file: ", path);
}

RecordBatch
readCriteoTsvFile(const std::string &path, const Schema &schema,
                  std::size_t max_rows)
{
    std::ifstream in(path);
    if (!in)
        RAP_FATAL("cannot open TSV file for reading: ", path);
    return readCriteoTsv(in, schema, max_rows);
}

} // namespace rap::data
