#include "data/criteo_tsv.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.hpp"
#include "data/row_codec.hpp"

namespace rap::data {

void
writeCriteoTsv(std::ostream &out, const RecordBatch &batch)
{
    for (std::size_t r = 0; r < batch.rows(); ++r) {
        for (std::size_t f = 0; f < batch.denseCount(); ++f) {
            if (f > 0)
                out << '\t';
            const auto &col = batch.dense(f);
            if (col.isValid(r))
                out << col.value(r);
        }
        for (std::size_t s = 0; s < batch.sparseCount(); ++s) {
            out << '\t';
            const auto &col = batch.sparse(s);
            for (std::size_t i = 0; i < col.listLength(r); ++i) {
                if (i > 0)
                    out << ',';
                out << col.value(r, i);
            }
        }
        out << '\n';
    }
}

TsvReadResult
readCriteoTsvChecked(std::istream &in, const Schema &schema,
                     std::size_t max_rows)
{
    std::vector<std::vector<float>> dense_values(schema.denseCount());
    std::vector<std::vector<std::uint8_t>> dense_valid(
        schema.denseCount());
    std::vector<SparseColumn> sparse_cols(schema.sparseCount());

    TsvReadResult result;
    std::string line;
    std::size_t committed = 0;
    // Row staging (data/row_codec.hpp): decode into a reusable
    // CriteoRow and commit to the column builders only once the whole
    // row is clean, so a malformed field never leaves a partial row
    // behind. The same codec backs the ingest spill log.
    CriteoRow staged;
    RowError error;

    while ((max_rows == 0 || committed < max_rows) &&
           std::getline(in, line)) {
        // CRLF input: getline keeps the '\r', which would otherwise
        // corrupt the last field.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        const std::size_t row = result.rowsScanned++;
        if (!decodeCriteoRow(line, schema, staged, error)) {
            result.errors.push_back(
                {row, error.field, std::move(error.message)});
            continue;
        }

        for (std::size_t f = 0; f < schema.denseCount(); ++f) {
            dense_values[f].push_back(staged.dense[f]);
            dense_valid[f].push_back(staged.denseValid[f]);
        }
        for (std::size_t s = 0; s < schema.sparseCount(); ++s)
            sparse_cols[s].appendRow(staged.sparse[s]);
        ++committed;
    }

    RecordBatch batch(schema, committed);
    for (std::size_t f = 0; f < schema.denseCount(); ++f) {
        batch.setDense(f, DenseColumn(std::move(dense_values[f]),
                                      std::move(dense_valid[f])));
    }
    for (std::size_t s = 0; s < schema.sparseCount(); ++s)
        batch.setSparse(s, std::move(sparse_cols[s]));
    result.batch = std::move(batch);
    return result;
}

RecordBatch
readCriteoTsv(std::istream &in, const Schema &schema,
              std::size_t max_rows)
{
    auto result = readCriteoTsvChecked(in, schema, max_rows);
    if (!result.ok()) {
        const auto &e = result.errors.front();
        RAP_FATAL("TSV row ", e.row, " ", e.message);
    }
    return std::move(result.batch);
}

void
writeCriteoTsvFile(const std::string &path, const RecordBatch &batch)
{
    std::ofstream out(path);
    if (!out)
        RAP_FATAL("cannot open TSV file for writing: ", path);
    writeCriteoTsv(out, batch);
    if (!out)
        RAP_FATAL("failed writing TSV file: ", path);
}

RecordBatch
readCriteoTsvFile(const std::string &path, const Schema &schema,
                  std::size_t max_rows)
{
    std::ifstream in(path);
    if (!in)
        RAP_FATAL("cannot open TSV file for reading: ", path);
    return readCriteoTsv(in, schema, max_rows);
}

} // namespace rap::data
