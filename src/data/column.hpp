/**
 * @file
 * Columnar data containers for DLRM input batches.
 *
 * Raw training data arrives column-based (the paper stores it as Apache
 * Parquet). RAP's host-side operator implementations work on these two
 * column shapes:
 *  - DenseColumn: one float per row with a validity mask (nullable).
 *  - SparseColumn: one variable-length list of int64 ids per row, stored
 *    in Arrow style as an offsets array plus a flat values array.
 */

#ifndef RAP_DATA_COLUMN_HPP
#define RAP_DATA_COLUMN_HPP

#include <cstdint>
#include <vector>

namespace rap::data {

/**
 * Nullable column of 32-bit floats (one value per row).
 */
class DenseColumn
{
  public:
    DenseColumn() = default;

    /** Construct with @p rows entries, all valid and zero. */
    explicit DenseColumn(std::size_t rows);

    /** Construct from values; all entries valid. */
    explicit DenseColumn(std::vector<float> values);

    /** Construct from values and a validity mask of equal length. */
    DenseColumn(std::vector<float> values, std::vector<std::uint8_t> valid);

    std::size_t size() const { return values_.size(); }

    float value(std::size_t row) const { return values_[row]; }
    bool isValid(std::size_t row) const { return valid_[row] != 0; }

    /** Set @p row to @p v and mark it valid. */
    void set(std::size_t row, float v);

    /** Mark @p row as null. */
    void setNull(std::size_t row);

    /** @return Number of null entries. */
    std::size_t nullCount() const;

    const std::vector<float> &values() const { return values_; }
    const std::vector<std::uint8_t> &validity() const { return valid_; }

    /** @return Approximate in-memory footprint in bytes. */
    double byteSize() const;

  private:
    std::vector<float> values_;
    std::vector<std::uint8_t> valid_;
};

/**
 * Column of variable-length int64 id lists (Arrow list layout).
 *
 * Row r spans values()[offsets()[r] .. offsets()[r+1]). An empty list is
 * how a null/missing sparse entry is represented.
 */
class SparseColumn
{
  public:
    SparseColumn();

    /** Construct from raw Arrow-style arrays; offsets must be monotone. */
    SparseColumn(std::vector<std::int64_t> offsets,
                 std::vector<std::int64_t> values);

    /** @return Number of rows. */
    std::size_t size() const { return offsets_.size() - 1; }

    /** @return Length of the list at @p row. */
    std::size_t listLength(std::size_t row) const;

    /** @return Id at position @p i of the list at @p row. */
    std::int64_t value(std::size_t row, std::size_t i) const;

    /** Append one row given its id list. */
    void appendRow(const std::vector<std::int64_t> &ids);

    /** @return Total number of ids across all rows. */
    std::size_t totalValues() const { return values_.size(); }

    /** @return Mean list length (0 for an empty column). */
    double avgListLength() const;

    const std::vector<std::int64_t> &offsets() const { return offsets_; }
    const std::vector<std::int64_t> &values() const { return values_; }

    /** Mutable access used by in-place operators (e.g. SigridHash). */
    std::vector<std::int64_t> &mutableValues() { return values_; }

    /** @return Approximate in-memory footprint in bytes. */
    double byteSize() const;

  private:
    std::vector<std::int64_t> offsets_;
    std::vector<std::int64_t> values_;
};

} // namespace rap::data

#endif // RAP_DATA_COLUMN_HPP
