/**
 * @file
 * Criteo TSV interchange: reading and writing the click-log format
 * the public Criteo datasets ship in (label, 13 integer features, 26
 * hex categorical features per line, tab-separated, empty fields for
 * missing values). Multi-hot list features are encoded as
 * comma-separated ids within a field.
 *
 * This stands in for the paper's data-storage nodes: batches can be
 * round-tripped to disk and re-ingested by the preprocessing layer.
 */

#ifndef RAP_DATA_CRITEO_TSV_HPP
#define RAP_DATA_CRITEO_TSV_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "data/batch.hpp"
#include "data/schema.hpp"

namespace rap::data {

/** One malformed TSV row diagnosed by readCriteoTsvChecked. */
struct TsvError
{
    /** 0-based data-row ordinal in the stream (blank lines skipped). */
    std::size_t row = 0;
    /** 0-based field ordinal (dense first, then sparse). */
    std::size_t field = 0;
    /** What was wrong, quoting the offending text. */
    std::string message;
};

/**
 * Outcome of a checked TSV read: the batch holds every row that
 * parsed cleanly, in stream order; `errors` records every row that
 * did not — nothing is dropped silently and nothing is fatal.
 */
struct TsvReadResult
{
    RecordBatch batch;
    std::vector<TsvError> errors;
    /** Data rows scanned (valid + malformed; blank lines excluded). */
    std::size_t rowsScanned = 0;

    /** @return True when every scanned row parsed cleanly. */
    bool ok() const { return errors.empty(); }
};

/**
 * Write @p batch as Criteo-style TSV to @p out (one row per line:
 * dense fields first, then sparse fields; nulls/empty lists become
 * empty fields; multi-hot lists are comma-separated).
 */
void writeCriteoTsv(std::ostream &out, const RecordBatch &batch);

/**
 * Parse Criteo-style TSV from @p in against @p schema, tolerating
 * malformed input: a row with the wrong field count, an embedded NUL
 * byte, or an unparseable dense/sparse field is staged, rejected
 * whole, and reported as a TsvError — the reader never crashes on row
 * content and never skips a row without recording why.
 *
 * @param in Stream positioned at the first data line.
 * @param schema Expected column layout (field count is validated).
 * @param max_rows Stop after this many *valid* rows (0 = to EOF).
 */
TsvReadResult readCriteoTsvChecked(std::istream &in,
                                   const Schema &schema,
                                   std::size_t max_rows = 0);

/**
 * Parse Criteo-style TSV from @p in against @p schema.
 *
 * Strict wrapper over readCriteoTsvChecked: fatal on the first
 * malformed row (for callers that treat their input as trusted).
 *
 * @param in Stream positioned at the first data line.
 * @param schema Expected column layout (field count is validated).
 * @param max_rows Stop after this many rows (0 = read to EOF).
 * @return The parsed batch.
 */
RecordBatch readCriteoTsv(std::istream &in, const Schema &schema,
                          std::size_t max_rows = 0);

/** Convenience: write to a file path; fatal on I/O failure. */
void writeCriteoTsvFile(const std::string &path,
                        const RecordBatch &batch);

/** Convenience: read from a file path; fatal on I/O failure. */
RecordBatch readCriteoTsvFile(const std::string &path,
                              const Schema &schema,
                              std::size_t max_rows = 0);

} // namespace rap::data

#endif // RAP_DATA_CRITEO_TSV_HPP
