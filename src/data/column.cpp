#include "data/column.hpp"

#include "common/log.hpp"

namespace rap::data {

DenseColumn::DenseColumn(std::size_t rows)
    : values_(rows, 0.0f), valid_(rows, 1)
{
}

DenseColumn::DenseColumn(std::vector<float> values)
    : values_(std::move(values)), valid_(values_.size(), 1)
{
}

DenseColumn::DenseColumn(std::vector<float> values,
                         std::vector<std::uint8_t> valid)
    : values_(std::move(values)), valid_(std::move(valid))
{
    RAP_ASSERT(values_.size() == valid_.size(),
               "dense column values/validity size mismatch");
}

void
DenseColumn::set(std::size_t row, float v)
{
    RAP_ASSERT(row < values_.size(), "dense column row out of range");
    values_[row] = v;
    valid_[row] = 1;
}

void
DenseColumn::setNull(std::size_t row)
{
    RAP_ASSERT(row < values_.size(), "dense column row out of range");
    valid_[row] = 0;
}

std::size_t
DenseColumn::nullCount() const
{
    std::size_t n = 0;
    for (auto v : valid_)
        n += (v == 0);
    return n;
}

double
DenseColumn::byteSize() const
{
    return static_cast<double>(values_.size()) * (sizeof(float) + 1);
}

SparseColumn::SparseColumn()
    : offsets_{0}
{
}

SparseColumn::SparseColumn(std::vector<std::int64_t> offsets,
                           std::vector<std::int64_t> values)
    : offsets_(std::move(offsets)), values_(std::move(values))
{
    RAP_ASSERT(!offsets_.empty(), "sparse column offsets may not be empty");
    RAP_ASSERT(offsets_.front() == 0, "sparse offsets must start at 0");
    for (std::size_t i = 1; i < offsets_.size(); ++i) {
        RAP_ASSERT(offsets_[i] >= offsets_[i - 1],
                   "sparse offsets must be monotone");
    }
    RAP_ASSERT(static_cast<std::size_t>(offsets_.back()) == values_.size(),
               "sparse offsets must end at the value count");
}

std::size_t
SparseColumn::listLength(std::size_t row) const
{
    RAP_ASSERT(row + 1 < offsets_.size(), "sparse column row out of range");
    return static_cast<std::size_t>(offsets_[row + 1] - offsets_[row]);
}

std::int64_t
SparseColumn::value(std::size_t row, std::size_t i) const
{
    RAP_ASSERT(i < listLength(row), "sparse column index out of range");
    return values_[static_cast<std::size_t>(offsets_[row]) + i];
}

void
SparseColumn::appendRow(const std::vector<std::int64_t> &ids)
{
    values_.insert(values_.end(), ids.begin(), ids.end());
    offsets_.push_back(static_cast<std::int64_t>(values_.size()));
}

double
SparseColumn::avgListLength() const
{
    if (size() == 0)
        return 0.0;
    return static_cast<double>(values_.size()) /
           static_cast<double>(size());
}

double
SparseColumn::byteSize() const
{
    return static_cast<double>(offsets_.size() + values_.size()) *
           sizeof(std::int64_t);
}

} // namespace rap::data
