#include "data/batch.hpp"

#include "common/log.hpp"

namespace rap::data {

RecordBatch::RecordBatch(const Schema &schema, std::size_t rows)
    : rows_(rows)
{
    dense_.reserve(schema.denseCount());
    for (std::size_t i = 0; i < schema.denseCount(); ++i)
        dense_.emplace_back(rows);
    sparse_.resize(schema.sparseCount());
    for (auto &col : sparse_) {
        for (std::size_t r = 0; r < rows; ++r)
            col.appendRow({});
    }
}

DenseColumn &
RecordBatch::dense(std::size_t i)
{
    RAP_ASSERT(i < dense_.size(), "dense column index out of range");
    return dense_[i];
}

const DenseColumn &
RecordBatch::dense(std::size_t i) const
{
    RAP_ASSERT(i < dense_.size(), "dense column index out of range");
    return dense_[i];
}

SparseColumn &
RecordBatch::sparse(std::size_t i)
{
    RAP_ASSERT(i < sparse_.size(), "sparse column index out of range");
    return sparse_[i];
}

const SparseColumn &
RecordBatch::sparse(std::size_t i) const
{
    RAP_ASSERT(i < sparse_.size(), "sparse column index out of range");
    return sparse_[i];
}

void
RecordBatch::setDense(std::size_t i, DenseColumn col)
{
    RAP_ASSERT(i < dense_.size(), "dense column index out of range");
    RAP_ASSERT(col.size() == rows_, "dense column row-count mismatch");
    dense_[i] = std::move(col);
}

void
RecordBatch::setSparse(std::size_t i, SparseColumn col)
{
    RAP_ASSERT(i < sparse_.size(), "sparse column index out of range");
    RAP_ASSERT(col.size() == rows_, "sparse column row-count mismatch");
    sparse_[i] = std::move(col);
}

std::size_t
RecordBatch::appendDense(DenseColumn col)
{
    RAP_ASSERT(col.size() == rows_, "dense column row-count mismatch");
    dense_.push_back(std::move(col));
    return dense_.size() - 1;
}

std::size_t
RecordBatch::appendSparse(SparseColumn col)
{
    RAP_ASSERT(col.size() == rows_, "sparse column row-count mismatch");
    sparse_.push_back(std::move(col));
    return sparse_.size() - 1;
}

double
RecordBatch::byteSize() const
{
    double total = 0.0;
    for (const auto &c : dense_)
        total += c.byteSize();
    for (const auto &c : sparse_)
        total += c.byteSize();
    return total;
}

} // namespace rap::data
