#include "data/row_codec.hpp"

#include <charconv>
#include <system_error>

namespace rap::data {

namespace {

/** Split a line into tab-separated fields (always >= 1 field). */
std::vector<std::string_view>
splitFields(std::string_view line)
{
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    for (;;) {
        const auto tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
parseId(std::string_view field, std::int64_t &value)
{
    const auto *begin = field.data();
    const auto *end = field.data() + field.size();
    const auto result = std::from_chars(begin, end, value);
    return result.ec == std::errc{} && result.ptr == end;
}

bool
parseDense(std::string_view field, float &value)
{
    const auto *begin = field.data();
    const auto *end = field.data() + field.size();
    const auto result = std::from_chars(begin, end, value);
    return result.ec == std::errc{} && result.ptr == end;
}

void
appendNumber(std::string &out, float value)
{
    char buf[32];
    const auto result =
        std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, result.ptr);
}

void
appendNumber(std::string &out, std::int64_t value)
{
    char buf[32];
    const auto result =
        std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, result.ptr);
}

} // namespace

void
CriteoRow::clear()
{
    dense.clear();
    denseValid.clear();
    for (auto &ids : sparse)
        ids.clear();
}

bool
decodeCriteoRow(std::string_view line, const Schema &schema,
                CriteoRow &row, RowError &error)
{
    row.clear();
    if (row.sparse.size() != schema.sparseCount())
        row.sparse.resize(schema.sparseCount());
    if (line.find('\0') != std::string_view::npos) {
        error = {0, "embedded NUL byte in TSV row"};
        return false;
    }
    const auto fields = splitFields(line);
    if (fields.size() != schema.featureCount()) {
        error = {0, "has " + std::to_string(fields.size()) +
                        " fields, expected " +
                        std::to_string(schema.featureCount())};
        return false;
    }

    for (std::size_t f = 0; f < schema.denseCount(); ++f) {
        const auto field = fields[f];
        if (field.empty()) {
            row.dense.push_back(0.0f);
            row.denseValid.push_back(0);
            continue;
        }
        float value = 0.0f;
        if (!parseDense(field, value)) {
            error = {f, "malformed dense value in TSV field: '" +
                            std::string(field) + "'"};
            return false;
        }
        row.dense.push_back(value);
        row.denseValid.push_back(1);
    }
    for (std::size_t s = 0; s < schema.sparseCount(); ++s) {
        const auto field = fields[schema.denseCount() + s];
        auto &ids = row.sparse[s];
        std::size_t start = 0;
        while (!field.empty()) {
            const auto comma = field.find(',', start);
            const auto token =
                comma == std::string_view::npos
                    ? field.substr(start)
                    : field.substr(start, comma - start);
            std::int64_t id = 0;
            if (!parseId(token, id)) {
                error = {schema.denseCount() + s,
                         "malformed sparse id in TSV field: '" +
                             std::string(token) + "'"};
                return false;
            }
            ids.push_back(id);
            if (comma == std::string_view::npos)
                break;
            start = comma + 1;
        }
    }
    return true;
}

void
encodeCriteoRow(const CriteoRow &row, std::string &out)
{
    for (std::size_t f = 0; f < row.dense.size(); ++f) {
        if (f > 0)
            out += '\t';
        if (f < row.denseValid.size() && row.denseValid[f] != 0)
            appendNumber(out, row.dense[f]);
    }
    for (const auto &ids : row.sparse) {
        out += '\t';
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (i > 0)
                out += ',';
            appendNumber(out, ids[i]);
        }
    }
}

} // namespace rap::data
