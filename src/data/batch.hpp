/**
 * @file
 * A record batch: one micro-batch of raw or preprocessed DLRM input.
 */

#ifndef RAP_DATA_BATCH_HPP
#define RAP_DATA_BATCH_HPP

#include <cstddef>
#include <vector>

#include "data/column.hpp"
#include "data/schema.hpp"

namespace rap::data {

/**
 * Columnar micro-batch holding one DenseColumn per dense feature and one
 * SparseColumn per sparse feature, in schema order.
 */
class RecordBatch
{
  public:
    RecordBatch() = default;

    /** Construct an empty batch shaped after @p schema with @p rows rows. */
    RecordBatch(const Schema &schema, std::size_t rows);

    std::size_t rows() const { return rows_; }
    std::size_t denseCount() const { return dense_.size(); }
    std::size_t sparseCount() const { return sparse_.size(); }

    DenseColumn &dense(std::size_t i);
    const DenseColumn &dense(std::size_t i) const;

    SparseColumn &sparse(std::size_t i);
    const SparseColumn &sparse(std::size_t i) const;

    /** Replace dense column @p i (must keep the same row count). */
    void setDense(std::size_t i, DenseColumn col);

    /** Replace sparse column @p i (must keep the same row count). */
    void setSparse(std::size_t i, SparseColumn col);

    /** Append an extra dense column (feature-generation output). */
    std::size_t appendDense(DenseColumn col);

    /** Append an extra sparse column (feature-generation output). */
    std::size_t appendSparse(SparseColumn col);

    /** @return Approximate total footprint in bytes. */
    double byteSize() const;

  private:
    std::size_t rows_ = 0;
    std::vector<DenseColumn> dense_;
    std::vector<SparseColumn> sparse_;
};

} // namespace rap::data

#endif // RAP_DATA_BATCH_HPP
