#include "serve/slo.hpp"

#include "common/log.hpp"
#include "common/stats.hpp"

namespace rap::serve {

SloStats
computeSloStats(const std::vector<Seconds> &latencies,
                std::uint64_t batch_count, Seconds slo_latency)
{
    RAP_ASSERT(slo_latency > 0.0, "SLO latency must be positive");
    SloStats stats;
    stats.sloLatency = slo_latency;
    stats.batches = batch_count;
    stats.requests = latencies.size();
    for (Seconds latency : latencies) {
        if (latency <= slo_latency)
            ++stats.attained;
    }
    if (!latencies.empty()) {
        stats.p50 = rap::p50(latencies);
        stats.p95 = rap::p95(latencies);
        stats.p99 = rap::p99(latencies);
    }
    return stats;
}

} // namespace rap::serve
