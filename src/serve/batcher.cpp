#include "serve/batcher.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rap::serve {

Seconds
ServiceModel::serviceSeconds(int batch) const
{
    RAP_ASSERT(batch >= 1, "batches hold at least one request");
    RAP_ASSERT(fullBatchLatency > 0.0 && profileBatch >= 1,
               "service model needs a calibrated latency");
    RAP_ASSERT(fixedFraction >= 0.0 && fixedFraction <= 1.0,
               "fixed fraction is a share of the latency");
    const double fill = static_cast<double>(batch) /
                        static_cast<double>(profileBatch);
    return fullBatchLatency *
           (fixedFraction + (1.0 - fixedFraction) * fill);
}

BatchReplay
replayBatches(const std::vector<Seconds> &arrivals,
              const BatchingWindow &window, const ServiceModel &model,
              Seconds serve_start)
{
    RAP_ASSERT(window.maxBatch >= 1, "batching window needs maxBatch >= 1");
    RAP_ASSERT(window.maxWait >= 0.0, "maxWait cannot be negative");
    BatchReplay replay;
    replay.lastCompletion = serve_start;
    if (arrivals.empty())
        return replay;
    replay.latencies.reserve(arrivals.size());

    const std::size_t n = arrivals.size();
    const auto max_batch = static_cast<std::size_t>(window.maxBatch);
    std::size_t i = 0;
    Seconds free_at = serve_start;
    while (i < n) {
        const Seconds head = arrivals[i];
        // The batch launches at the latest of: executor free, head
        // arrived, and — when the executor would otherwise idle —
        // either the window filling to maxBatch or the head's wait
        // deadline, whichever comes first.
        Seconds start = std::max(free_at, head);
        const Seconds deadline = head + window.maxWait;
        if (start < deadline) {
            const std::size_t fill = i + max_batch - 1;
            if (fill < n && arrivals[fill] <= deadline)
                start = std::max(start, arrivals[fill]);
            else
                start = deadline;
        }
        std::size_t j = i;
        while (j < n && j - i < max_batch && arrivals[j] <= start)
            ++j;
        const auto batch = static_cast<int>(j - i);
        const Seconds done = start + model.serviceSeconds(batch);
        for (std::size_t k = i; k < j; ++k)
            replay.latencies.push_back(done - arrivals[k]);
        replay.batchSizes.push_back(batch);
        free_at = done;
        i = j;
    }
    replay.lastCompletion = free_at;
    return replay;
}

} // namespace rap::serve
