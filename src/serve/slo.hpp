/**
 * @file
 * SLO accounting over per-request latencies.
 *
 * Serving systems are judged by tail latency against a service-level
 * objective, not by mean throughput: the metrics here are the
 * p50/p95/p99 of the per-request latency distribution and the
 * fraction of requests finishing within the SLO (attainment). Goodput
 * — SLO-attained requests per second — is what the latency-vs-goodput
 * frontier in bench_inference plots.
 */

#ifndef RAP_SERVE_SLO_HPP
#define RAP_SERVE_SLO_HPP

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace rap::serve {

/** Latency/SLO summary of one serving window. */
struct SloStats
{
    /** Requests served. */
    std::uint64_t requests = 0;
    /** Batches launched. */
    std::uint64_t batches = 0;
    /** Requests that finished within the SLO. */
    std::uint64_t attained = 0;
    /** The latency objective the requests were judged against. */
    Seconds sloLatency = 0.0;
    /** Median request latency. */
    Seconds p50 = 0.0;
    /** 95th-percentile request latency. */
    Seconds p95 = 0.0;
    /** 99th-percentile (tail) request latency. */
    Seconds p99 = 0.0;

    /** @return Fraction of requests within the SLO (1 when empty). */
    double attainment() const
    {
        return requests == 0
                   ? 1.0
                   : static_cast<double>(attained) /
                         static_cast<double>(requests);
    }
};

/**
 * Summarise @p latencies against @p slo_latency. @p batch_count is
 * carried through for reporting.
 */
SloStats computeSloStats(const std::vector<Seconds> &latencies,
                         std::uint64_t batch_count, Seconds slo_latency);

} // namespace rap::serve

#endif // RAP_SERVE_SLO_HPP
