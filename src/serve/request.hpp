/**
 * @file
 * Open-loop inference request generation.
 *
 * An online recommendation service receives requests whose arrival
 * rate it does not control: the generator draws a time-varying Poisson
 * process (rate(t) = qps * (1 + amplitude * sin(2*pi*t / period))) via
 * Lewis-Shedler thinning, so load swings over a serving window the way
 * a diurnal traffic curve does, compressed to simulator timescales.
 * Requests are relative to the serving job's start; the fleet
 * scheduler offsets them onto its own clock when the job is placed.
 *
 * The process is seeded and fully deterministic: equal options yield
 * byte-equal traces on every platform and thread count.
 */

#ifndef RAP_SERVE_REQUEST_HPP
#define RAP_SERVE_REQUEST_HPP

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace rap::serve {

/** Tuning for one request trace. */
struct RequestTraceOptions
{
    /** Mean arrival rate (requests per second of simulated time). */
    double qps = 4000.0;
    /**
     * Relative swing of the sinusoidal rate modulation in [0, 1):
     * rate(t) peaks at qps * (1 + amplitude) and bottoms out at
     * qps * (1 - amplitude). 0 recovers a homogeneous Poisson process.
     */
    double qpsAmplitude = 0.5;
    /** Period of the rate modulation (seconds). */
    Seconds qpsPeriod = 0.02;
    /** Length of the serving window; arrivals stop at this time. */
    Seconds duration = 0.04;
    /** RNG seed; equal seeds yield equal traces. */
    std::uint64_t seed = 0x5e7e0001ULL;
};

/** @return The modulated arrival rate at time @p t. */
double rateAt(const RequestTraceOptions &options, Seconds t);

/**
 * Draw the request arrival times in [0, duration), strictly
 * increasing, relative to the serving window's start.
 */
std::vector<Seconds> makeRequestTrace(const RequestTraceOptions &options);

} // namespace rap::serve

#endif // RAP_SERVE_REQUEST_HPP
