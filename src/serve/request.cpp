#include "serve/request.hpp"

#include <cmath>
#include <limits>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace rap::serve {

double
rateAt(const RequestTraceOptions &options, Seconds t)
{
    return options.qps *
           (1.0 + options.qpsAmplitude *
                      std::sin(2.0 * M_PI * t / options.qpsPeriod));
}

std::vector<Seconds>
makeRequestTrace(const RequestTraceOptions &options)
{
    RAP_ASSERT(options.qps > 0.0, "request trace needs a positive QPS");
    RAP_ASSERT(options.qpsAmplitude >= 0.0 && options.qpsAmplitude < 1.0,
               "QPS amplitude must be in [0, 1) so the rate stays "
               "positive");
    RAP_ASSERT(options.qpsPeriod > 0.0,
               "QPS modulation needs a positive period");
    RAP_ASSERT(options.duration > 0.0,
               "request trace needs a positive duration");

    // Lewis-Shedler thinning: draw a homogeneous process at the peak
    // rate, keep each candidate with probability rate(t) / rateMax.
    // exponentialGap supplies the hardened inverse-transform gaps, so
    // no uniform draw can stall the candidate clock.
    const double rate_max = options.qps * (1.0 + options.qpsAmplitude);
    Rng rng(options.seed);
    std::vector<Seconds> arrivals;
    arrivals.reserve(static_cast<std::size_t>(
        options.qps * options.duration * 1.25) + 16);
    Seconds clock = 0.0;
    while (true) {
        clock += exponentialGap(rng.uniform(), 1.0 / rate_max);
        if (clock >= options.duration)
            break;
        if (rng.uniform() * rate_max > rateAt(options, clock))
            continue; // thinned out
        // Arrivals must be strictly increasing: a gap smaller than
        // the clock's ulp would stack two requests on one timestamp
        // and make batch boundaries ambiguous.
        if (!arrivals.empty() && clock <= arrivals.back()) {
            clock = std::nextafter(
                arrivals.back(), std::numeric_limits<double>::infinity());
            if (clock >= options.duration)
                break;
        }
        arrivals.push_back(clock);
    }
    return arrivals;
}

} // namespace rap::serve
