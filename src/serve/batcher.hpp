/**
 * @file
 * Analytic replay of a max-batch / max-wait batching window.
 *
 * Online recommendation inference amortises the embedding-lookup cost
 * by batching requests: a batch launches when either `maxBatch`
 * requests are waiting or the oldest waiting request has been held for
 * `maxWait`. The replay walks a request-arrival trace against a
 * service-time model calibrated from the simulated inference
 * iteration, producing per-request latencies (queueing + service) for
 * SLO accounting. Everything is closed-form and deterministic — no
 * event loop, no randomness.
 */

#ifndef RAP_SERVE_BATCHER_HPP
#define RAP_SERVE_BATCHER_HPP

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace rap::serve {

/** Batch-formation policy. */
struct BatchingWindow
{
    /** Launch as soon as this many requests are waiting. */
    int maxBatch = 64;
    /** Launch when the oldest waiting request has waited this long. */
    Seconds maxWait = 0.0005;
};

/**
 * Latency model for one served batch, calibrated from the simulated
 * forward-only iteration at the profiling batch size: a batch of b
 * requests costs fixedFraction of the full-batch latency (kernel
 * launches, collectives, MLP weight reads — work that does not shrink
 * with the batch) plus the remaining fraction scaled by b /
 * profileBatch (the per-row embedding-gather and activation work).
 */
struct ServiceModel
{
    /** Simulated iteration latency at profileBatch rows. */
    Seconds fullBatchLatency = 0.002;
    /** Batch size the latency was profiled at. */
    std::int64_t profileBatch = 256;
    /** Batch-size-independent share of the latency. */
    double fixedFraction = 0.35;

    /** @return Modelled service time for a batch of @p batch rows. */
    Seconds serviceSeconds(int batch) const;
};

/** Outcome of replaying one arrival trace through the batcher. */
struct BatchReplay
{
    /** Per-request latency (completion - arrival), arrival order. */
    std::vector<Seconds> latencies;
    /** Size of each launched batch, launch order. */
    std::vector<int> batchSizes;
    /** Completion time of the last batch (absolute clock). */
    Seconds lastCompletion = 0.0;
};

/**
 * Replay @p arrivals (absolute, strictly increasing) through a
 * single-executor batching window: batches run back-to-back, never
 * concurrently — the serving job owns one envelope slice.
 *
 * @param arrivals Absolute request arrival times.
 * @param window Batch-formation policy.
 * @param model Batch service-time model.
 * @param serve_start Executor availability (>= first placement time);
 *        requests arriving earlier queue until it.
 */
BatchReplay replayBatches(const std::vector<Seconds> &arrivals,
                          const BatchingWindow &window,
                          const ServiceModel &model, Seconds serve_start);

} // namespace rap::serve

#endif // RAP_SERVE_BATCHER_HPP
