/**
 * @file
 * Umbrella header: the multi-tenant fleet scheduling layer.
 */

#ifndef RAP_FLEET_FLEET_HPP
#define RAP_FLEET_FLEET_HPP

#include "fleet/job.hpp"
#include "fleet/placement.hpp"
#include "fleet/queue.hpp"
#include "fleet/report.hpp"
#include "fleet/request.hpp"
#include "fleet/scheduler.hpp"

#endif // RAP_FLEET_FLEET_HPP
