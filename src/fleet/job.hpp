/**
 * @file
 * Fleet job model: one RAP training job inside a multi-tenant cluster.
 *
 * A JobSpec is everything the fleet scheduler needs to run one
 * training job through the existing single-job pipeline — the
 * preprocessing-plan variant, the model/batch configuration, and the
 * job's arrival time on the fleet clock. makeArrivalTrace synthesises
 * a seeded stream of heterogeneous jobs (mixed GPU counts, plans,
 * batch sizes) whose arrivals follow a Poisson process, so every fleet
 * experiment is reproducible from (options, seed) alone.
 */

#ifndef RAP_FLEET_JOB_HPP
#define RAP_FLEET_JOB_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "preproc/plan.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"

namespace rap::fleet {

/** What a fleet job does with its GPUs. */
enum class JobKind {
    /** Batch training: runs `iterations` iterations, then finishes. */
    Training,
    /** Online inference: serves a request trace until it drains. */
    Inference,
};

/** @return Stable machine token ("training") for JSON / labels. */
std::string jobKindId(JobKind kind);

/** Inverse of jobKindId; RAP_FATALs on unknown tokens. */
JobKind jobKindFromId(const std::string &id);

/** One training or inference-serving job submitted to the fleet. */
struct JobSpec
{
    /** Dense ordinal within the arrival trace. */
    int id = 0;
    /** Diagnostic name ("job03.p1x2"). */
    std::string name;
    /** Submission time on the fleet clock. */
    Seconds arrival = 0.0;
    /** GPUs the job needs (placement grants all or none). */
    int gpusRequested = 1;
    /** preproc::makePlan variant (0-3). */
    int planId = 0;
    /** Extra n-gram stress features (0 = the plain plan). */
    int ngramStress = 0;
    std::int64_t batchPerGpu = 4096;
    int iterations = 12;
    core::System system = core::System::Rap;
    /**
     * Iterations between checkpoints (0 = no checkpointing). A
     * checkpointing job preempted by a crash resumes from its last
     * sealed checkpoint; without one it restarts from scratch.
     */
    int checkpointInterval = 0;
    /** Training (default) or online inference serving. */
    JobKind kind = JobKind::Training;
    /**
     * Inference only: the request-arrival trace (relative to the
     * job's arrival; the scheduler re-bases it when placing) and the
     * latency objective its requests are judged against. For
     * inference jobs, `iterations` / `batchPerGpu` describe the
     * profiling iteration the batch service model is calibrated from,
     * not a fixed amount of work.
     */
    serve::RequestTraceOptions requests;
    /** Batch-formation policy of the serving executor. */
    serve::BatchingWindow window;
    /** Per-request latency objective (inference only). */
    Seconds sloLatency = 0.004;

    /**
     * @return Key identifying the job's workload shape (everything
     * that affects its simulation except id/arrival). Jobs with equal
     * keys on equal envelopes share one memoised simulation.
     */
    std::string variantKey() const;

    /**
     * JsonSerializable (core/serial.hpp convention): round-trips
     * exactly — request seeds are masked to 53 bits at synthesis so
     * the double round trip is lossless. Shared by FleetReport
     * artifacts and the durable catalog's job records.
     */
    Json toJson() const;
    static JobSpec fromJson(const Json &json);
};

/** Inference-job synthesis knobs (ArrivalTraceOptions::serving). */
struct InferenceTraceOptions
{
    /** Inference jobs mixed into the trace (0 = training only). */
    int jobCount = 0;
    /**
     * Mean interarrival gap between inference job submissions. They
     * arrive on their own Poisson stream, merged with the training
     * stream by arrival time.
     */
    Seconds meanInterarrival = 0.008;
    /** Mean request rate of each serving window. */
    double qps = 4000.0;
    /** Relative swing of the time-varying QPS (see RequestTraceOptions). */
    double qpsAmplitude = 0.5;
    /** Period of the QPS modulation. */
    Seconds qpsPeriod = 0.02;
    /** Length of each serving window. */
    Seconds duration = 0.04;
    /** Per-request latency objective. */
    Seconds sloLatency = 0.004;
    /** Batch launch threshold. */
    int maxBatch = 64;
    /** Batch wait bound. */
    Seconds maxWait = 0.0005;
    /** Profiling batch size for the service model calibration. */
    std::int64_t batchPerGpu = 256;
    /** Profiling iterations (service model calibration run length). */
    int iterations = 8;
    /** GPUs per inference job (small partitions co-locate best). */
    int gpusPerJob = 1;
    /** Seed for the inference submission stream and request traces. */
    std::uint64_t seed = 0x5e7ef1ee7ULL;
};

/** Arrival-trace synthesis knobs. */
struct ArrivalTraceOptions
{
    int jobCount = 14;
    /**
     * Mean of the exponential interarrival gap. The default arrival
     * rate deliberately oversubscribes the node (jobs run for tens to
     * hundreds of milliseconds), so placement policy actually matters:
     * with no contention every policy produces the same schedule.
     */
    Seconds meanInterarrival = 0.005;
    std::uint64_t seed = 0xf1ee70001ULL;
    /** Largest GPU request a job may make (the node size). */
    int maxGpusPerJob = 8;
    /** Smaller jobs everywhere (CI determinism mode). */
    bool tiny = false;
    /** Checkpoint interval stamped on every synthesised job. */
    int checkpointInterval = 0;
    /** Online inference jobs mixed into the trace. */
    InferenceTraceOptions serving;
};

/**
 * Synthesise a seeded heterogeneous arrival trace: Poisson arrivals,
 * GPU requests skewed toward small jobs (the ParvaGPU co-location
 * sweet spot), mixed preprocessing plans and batch sizes. When
 * options.serving.jobCount > 0, an independent Poisson stream of
 * inference-serving jobs is merged in by arrival time. Jobs are
 * returned in arrival order with dense ids.
 */
std::vector<JobSpec> makeArrivalTrace(const ArrivalTraceOptions &options);

/** Materialise the job's preprocessing plan variant. */
preproc::PreprocPlan buildJobPlan(const JobSpec &spec);

/**
 * Base SystemConfig for the job — system, batch, iterations set;
 * placement fields (clusterSpec, gpuSubset, envelopes) left for the
 * scheduler to fill.
 */
core::SystemConfig makeJobConfig(const JobSpec &spec);

} // namespace rap::fleet

#endif // RAP_FLEET_JOB_HPP
