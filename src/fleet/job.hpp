/**
 * @file
 * Fleet job model: one RAP training job inside a multi-tenant cluster.
 *
 * A JobSpec is everything the fleet scheduler needs to run one
 * training job through the existing single-job pipeline — the
 * preprocessing-plan variant, the model/batch configuration, and the
 * job's arrival time on the fleet clock. makeArrivalTrace synthesises
 * a seeded stream of heterogeneous jobs (mixed GPU counts, plans,
 * batch sizes) whose arrivals follow a Poisson process, so every fleet
 * experiment is reproducible from (options, seed) alone.
 */

#ifndef RAP_FLEET_JOB_HPP
#define RAP_FLEET_JOB_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "preproc/plan.hpp"

namespace rap::fleet {

/** One training job submitted to the fleet. */
struct JobSpec
{
    /** Dense ordinal within the arrival trace. */
    int id = 0;
    /** Diagnostic name ("job03.p1x2"). */
    std::string name;
    /** Submission time on the fleet clock. */
    Seconds arrival = 0.0;
    /** GPUs the job needs (placement grants all or none). */
    int gpusRequested = 1;
    /** preproc::makePlan variant (0-3). */
    int planId = 0;
    /** Extra n-gram stress features (0 = the plain plan). */
    int ngramStress = 0;
    std::int64_t batchPerGpu = 4096;
    int iterations = 12;
    core::System system = core::System::Rap;
    /**
     * Iterations between checkpoints (0 = no checkpointing). A
     * checkpointing job preempted by a crash resumes from its last
     * sealed checkpoint; without one it restarts from scratch.
     */
    int checkpointInterval = 0;

    /**
     * @return Key identifying the job's workload shape (everything
     * that affects its simulation except id/arrival). Jobs with equal
     * keys on equal envelopes share one memoised simulation.
     */
    std::string variantKey() const;
};

/** Arrival-trace synthesis knobs. */
struct ArrivalTraceOptions
{
    int jobCount = 14;
    /**
     * Mean of the exponential interarrival gap. The default arrival
     * rate deliberately oversubscribes the node (jobs run for tens to
     * hundreds of milliseconds), so placement policy actually matters:
     * with no contention every policy produces the same schedule.
     */
    Seconds meanInterarrival = 0.005;
    std::uint64_t seed = 0xf1ee70001ULL;
    /** Largest GPU request a job may make (the node size). */
    int maxGpusPerJob = 8;
    /** Smaller jobs everywhere (CI determinism mode). */
    bool tiny = false;
    /** Checkpoint interval stamped on every synthesised job. */
    int checkpointInterval = 0;
};

/**
 * Synthesise a seeded heterogeneous arrival trace: Poisson arrivals,
 * GPU requests skewed toward small jobs (the ParvaGPU co-location
 * sweet spot), mixed preprocessing plans and batch sizes. Jobs are
 * returned in arrival order with dense ids.
 */
std::vector<JobSpec> makeArrivalTrace(const ArrivalTraceOptions &options);

/** Materialise the job's preprocessing plan variant. */
preproc::PreprocPlan buildJobPlan(const JobSpec &spec);

/**
 * Base SystemConfig for the job — system, batch, iterations set;
 * placement fields (clusterSpec, gpuSubset, envelopes) left for the
 * scheduler to fill.
 */
core::SystemConfig makeJobConfig(const JobSpec &spec);

} // namespace rap::fleet

#endif // RAP_FLEET_JOB_HPP
