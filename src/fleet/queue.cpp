#include "fleet/queue.hpp"

#include "common/log.hpp"

namespace rap::fleet {

QueuedJob
AdmissionQueue::take(std::size_t index)
{
    RAP_ASSERT(index < jobs_.size(), "queue index out of range: ",
               index);
    QueuedJob job = jobs_[index];
    jobs_.erase(jobs_.begin() +
                static_cast<std::deque<QueuedJob>::difference_type>(
                    index));
    return job;
}

} // namespace rap::fleet
