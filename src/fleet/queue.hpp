/**
 * @file
 * The fleet's admission queue.
 *
 * Jobs wait here between arrival (or preemption) and placement. The
 * discipline is FIFO with backfill: the scheduler scans the queue in
 * order and places every job that currently fits, so a small job may
 * overtake a blocked head-of-line job without ever reordering the
 * queue itself. Preempted jobs re-enter at the front (they keep their
 * seniority and their completed fraction).
 */

#ifndef RAP_FLEET_QUEUE_HPP
#define RAP_FLEET_QUEUE_HPP

#include <cstddef>
#include <deque>

#include "common/units.hpp"

namespace rap::fleet {

/** One waiting (or preempted) job. */
struct QueuedJob
{
    int jobId = 0;
    /** Work left, in (0, 1]; < 1 after a preemption. */
    double remainingFraction = 1.0;
    /** When the job (re-)entered the queue, fleet clock. */
    Seconds enqueuedAt = 0.0;
    /** Times this job was preempted and requeued. */
    int requeues = 0;
};

/** FIFO queue with front re-insertion and indexed removal. */
class AdmissionQueue
{
  public:
    /** Append a newly arrived job. */
    void push(QueuedJob job) { jobs_.push_back(job); }

    /** Re-insert a preempted job at the front (keeps seniority). */
    void pushFront(QueuedJob job) { jobs_.push_front(job); }

    bool empty() const { return jobs_.empty(); }
    std::size_t size() const { return jobs_.size(); }

    /** In-order view for the backfill scan. */
    const std::deque<QueuedJob> &jobs() const { return jobs_; }

    /** Remove and return the entry at @p index. */
    QueuedJob take(std::size_t index);

  private:
    std::deque<QueuedJob> jobs_;
};

} // namespace rap::fleet

#endif // RAP_FLEET_QUEUE_HPP
