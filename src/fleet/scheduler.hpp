/**
 * @file
 * The multi-tenant fleet scheduler: a discrete-event loop over job
 * arrivals, finishes, and GPU degradations on one simulated node.
 *
 * Each placed job runs through the existing single-job path —
 * core::planOffline plus the cluster simulator — on the GPU subset
 * its placement granted, with the subset's share of the host CPUs
 * (sim::subsetSpec) and the envelope slice its co-location left it
 * (SystemConfig::envelopes). The job's simulated makespan becomes its
 * fleet-clock service time. Simulations are memoised by (workload
 * variant, quantised envelope), so identical jobs on identical slices
 * cost one simulation.
 *
 * Fleet-scope faults reuse the PR 2 sim::FaultSpec vocabulary:
 * SmDegrade / HbmDegrade / DeviceCrash events, interpreted on the
 * fleet clock against physical GPU ordinals. When a GPU degrades or
 * crashes, every resident job is preempted, credited with its last
 * *durable* fraction (the most recent sealed checkpoint — a job that
 * never checkpoints restarts from scratch), requeued at the front,
 * and re-placed — replanning against the shrunken envelope
 * (planOffline re-derives its capacity profiles via degradeProfile).
 * Crashed GPUs are permanently excluded from placement.
 *
 * Determinism: the event loop is sequential with total (time, kind,
 * id) event ordering; the parallel phase — reference simulations of
 * each workload variant, fanned out over an optional ThreadPool — is
 * a submission-indexed parallelMap, so fleet reports are bit-identical
 * at any thread count.
 */

#ifndef RAP_FLEET_SCHEDULER_HPP
#define RAP_FLEET_SCHEDULER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "fleet/job.hpp"
#include "fleet/placement.hpp"
#include "fleet/queue.hpp"
#include "fleet/report.hpp"
#include "sim/fault.hpp"

namespace rap::obs {
class MetricRegistry;
}

namespace rap::ctrl {
class Catalog;
}

namespace rap::fleet {

/** What the scheduler does when it reaches stopAfterEvents. */
enum class StopMode {
    /**
     * raise(SIGKILL): the process dies mid-run with no destructors,
     * no flushes — the honest crash the resume gate recovers from.
     */
    HardKill,
    /**
     * Return from run() early (stopped() reports true, the partial
     * report is meaningless). Tests use this to sweep kill points
     * in-process; it is equivalent to HardKill for the catalog
     * because every commit is write-through before it applies.
     */
    Abandon,
};

/** Fleet-run configuration. */
struct FleetOptions
{
    PlacementOptions placement;
    /** The physical node jobs share. */
    sim::ClusterSpec node = sim::dgxA100Spec(8);
    /**
     * Fleet-scope fault schedule (SmDegrade / HbmDegrade /
     * DeviceCrash): event.time is fleet clock, event.device a
     * physical ordinal. A DeviceCrash takes the GPU permanently
     * offline; every resident job — including co-located survivors
     * sharing the device — is preempted through the same
     * requeue-and-replan path degradations use.
     */
    sim::FaultSpec faults;
    /** Preempt-and-requeue jobs whose GPUs degrade. */
    bool requeueOnDegrade = true;
    /**
     * Process-restart latency charged at the head of every segment
     * that resumes a preempted job (crash or degrade requeue).
     */
    Seconds restartOverhead = 0.0;
    /**
     * Envelope shares are floored to this quantum before simulation,
     * bounding the memo key space (and keeping keys exact).
     */
    double envelopeQuantum = 0.05;
    /**
     * When non-empty, every placed segment dumps its Chrome trace to
     * `<prefix>.job<id>.seg<n>.json` (disables memoisation so each
     * job gets its own trace).
     */
    std::string tracePrefix;
    /**
     * Optional scheduler-level metric registry (non-owning): admission
     * queue depth, placement outcomes, memo hit rates, and the
     * precompute/run wall spans. Inner job simulations NEVER see the
     * registry — their memoised reports must stay byte-identical
     * whether or not the fleet run is instrumented.
     */
    obs::MetricRegistry *metrics = nullptr;
    /**
     * When non-empty, every fleet instrument carries a `run=<scope>`
     * label; sweep benches sharing one registry across policies set a
     * per-point scope so instruments stay point-private.
     */
    std::string metricsScope;
    /**
     * DES engine workers inside each inner job simulation (1 = serial,
     * 0 = hardware concurrency). Reports are byte-identical at any
     * value, so memo keys stay valid; the knob only trades wall clock.
     * Trainer simulations run single-zone today, so this forwards the
     * configuration without changing scheduling behaviour.
     */
    int engineJobs = 1;
    /**
     * Optional durable catalog (non-owning). When attached, the run
     * commits a genesis transaction (config + job specs) and then one
     * transaction per event frame — admissions, placement decisions
     * with their envelope reservations, preemptions, checkpoint
     * seals, finishes — each durable in the WAL *before* the loop
     * proceeds past the frame. A catalog that already holds a genesis
     * switches the run into resume mode: the loop re-executes from
     * event zero, byte-verifies recomputed frames against the
     * recovered WAL tail instead of re-committing them, and commits
     * live again once past the durable prefix.
     */
    ctrl::Catalog *catalog = nullptr;
    /**
     * Stop after this many event frames have committed (0 = run to
     * completion). Requires a catalog — stopping without durable
     * state would just lose the run.
     */
    std::int64_t stopAfterEvents = 0;
    StopMode stopMode = StopMode::HardKill;
};

/**
 * The semantic subset of FleetOptions the catalog's genesis record
 * persists (placement policy, node, faults, fault handling, quantum,
 * trace prefix, engine jobs) — everything a resume needs to re-execute
 * the identical run. Runtime attachments (metrics, catalog pointer,
 * stop knobs) stay out: they never influence the report bytes.
 */
Json fleetOptionsToJson(const FleetOptions &options);
FleetOptions fleetOptionsFromJson(const Json &json);

/** Runs one arrival trace to completion under one placement policy. */
class FleetScheduler
{
  public:
    /**
     * @param jobs Arrival trace (ids dense, arrival-ordered).
     * @param options Fleet configuration.
     * @param pool Optional pool for the reference-simulation fan-out;
     *        results are identical for any thread count.
     */
    FleetScheduler(std::vector<JobSpec> jobs, FleetOptions options,
                   ThreadPool *pool = nullptr);

    /** Run the discrete-event loop until every job finishes. */
    FleetReport run();

    /**
     * @return True when run() returned early because it reached
     * stopAfterEvents under StopMode::Abandon; the returned report is
     * partial and must be discarded.
     */
    bool stopped() const { return stopped_; }

  private:
    struct RunningJob
    {
        Placement placement;
        Seconds segmentStart = 0.0;
        Seconds segmentDuration = 0.0;
        /** Restart latency charged at this segment's head (resume). */
        Seconds restartCharge = 0.0;
        /** Remaining work when this segment started, in (0, 1]. */
        double remainingAtStart = 1.0;
        /** Invalidates stale finish events after a preemption. */
        int generation = 0;
        /**
         * Inference only: the serving window's batch replay on this
         * segment's envelope. Latencies/SLO are accounted at the
         * Finish event; a preempted segment's replay is discarded —
         * the re-placed job re-serves its whole trace (buffered
         * requests, no durable serving state).
         */
        serve::BatchReplay replay;
    };

    Json genesisTransaction() const;
    core::RunReport simulate(const JobSpec &spec,
                             const Placement &placement,
                             int segment_index);
    serve::BatchReplay replayServe(const JobSpec &spec,
                                   const core::RunReport &report,
                                   Seconds serve_start) const;
    Placement quantised(Placement placement) const;
    void precomputeReferences();
    void applyReservation(const JobSpec &spec,
                          const Placement &placement, int direction);
    void tryPlaceQueued(Seconds now);
    void accumulateBusy(Seconds until);

    std::vector<JobSpec> jobs_;
    FleetOptions options_;
    ThreadPool *pool_;
    std::vector<GpuState> gpus_;
    std::vector<DemandEstimate> demand_;
    AdmissionQueue queue_;
    std::map<int, RunningJob> running_;
    std::map<std::string, core::RunReport> memo_;
    std::map<std::string, preproc::PreprocPlan> planCache_;
    FleetReport report_;
    Seconds lastBusyUpdate_ = 0.0;
    /**
     * Per-job request arrivals on the fleet clock (empty vectors for
     * training jobs), synthesised once in the constructor so every
     * re-placement replays the same trace.
     */
    std::vector<std::vector<Seconds>> requestArrivals_;
    /** Per-request latencies pooled across finished inference jobs. */
    std::vector<Seconds> pooledLatencies_;
    /**
     * Catalog bookkeeping: last sealed (durable) fraction and seal
     * sequence per job, for checkpoint-manifest records. Never read
     * by scheduling decisions — report bytes are identical with or
     * without a catalog attached.
     */
    std::vector<double> lastDurable_;
    std::vector<int> sealCount_;
    bool stopped_ = false;
};

/**
 * Deprecated: thin shim over fleet::FleetRequest (fleet/request.hpp),
 * kept so pre-redesign call sites compile. It routes through the same
 * validation, so invalid options fail with the full structured error
 * list. New code should build a FleetRequest.
 */
FleetReport runFleet(std::vector<JobSpec> jobs, FleetOptions options,
                     ThreadPool *pool = nullptr);

} // namespace rap::fleet

#endif // RAP_FLEET_SCHEDULER_HPP
