/**
 * @file
 * FleetOptions <-> JSON for the catalog's genesis record. Only the
 * semantic fields travel: a resume rebuilt from this JSON must
 * re-execute the identical run, so everything that shapes scheduling
 * (or the report bytes — tracePrefix flips memoisation and therefore
 * simulationsRun) is here, and runtime attachments (metrics, catalog
 * pointer, stop knobs) are not.
 */

#include "core/serial.hpp"
#include "fleet/scheduler.hpp"

namespace rap::fleet {

Json
fleetOptionsToJson(const FleetOptions &options)
{
    Json json = Json::object();
    json.set("placement", options.placement.toJson());
    json.set("node", options.node.toJson());
    json.set("faults", options.faults.toJson());
    json.set("requeueOnDegrade", Json(options.requeueOnDegrade));
    json.set("restartOverhead", Json(options.restartOverhead));
    json.set("envelopeQuantum", Json(options.envelopeQuantum));
    json.set("tracePrefix", Json(options.tracePrefix));
    json.set("engineJobs", Json(options.engineJobs));
    return json;
}

FleetOptions
fleetOptionsFromJson(const Json &json)
{
    FleetOptions options;
    options.placement =
        PlacementOptions::fromJson(json.at("placement"));
    options.node = sim::ClusterSpec::fromJson(json.at("node"));
    options.faults = sim::FaultSpec::fromJson(json.at("faults"));
    options.requeueOnDegrade = json.at("requeueOnDegrade").asBool();
    options.restartOverhead = json.at("restartOverhead").asDouble();
    options.envelopeQuantum = json.at("envelopeQuantum").asDouble();
    options.tracePrefix = json.at("tracePrefix").asString();
    options.engineJobs = serial::getInt(json, "engineJobs");
    return options;
}

} // namespace rap::fleet
