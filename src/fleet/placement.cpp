#include "fleet/placement.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rap::fleet {

namespace {

/** Candidate GPU with its deterministic ranking score. */
struct Candidate
{
    int id = 0;
    double score = 0.0; // smaller ranks first
};

std::optional<Placement>
pickTop(std::vector<Candidate> candidates, int count,
        const std::vector<GpuState> &gpus, bool shared)
{
    if (static_cast<int>(candidates.size()) < count)
        return std::nullopt;
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         if (a.score != b.score)
                             return a.score < b.score;
                         return a.id < b.id;
                     });
    candidates.resize(static_cast<std::size_t>(count));
    Placement placement;
    for (const auto &c : candidates)
        placement.gpuIds.push_back(c.id);
    std::sort(placement.gpuIds.begin(), placement.gpuIds.end());
    for (int id : placement.gpuIds) {
        const auto &gpu = gpus[static_cast<std::size_t>(id)];
        core::GpuEnvelope env;
        env.sm = shared ? gpu.freeSm() : gpu.healthSm;
        env.bw = shared ? gpu.freeBw() : gpu.healthBw;
        placement.envelopes.push_back(env);
    }
    return placement;
}

} // namespace

std::string
policyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::ExclusiveFirstFit:
        return "exclusive first-fit";
      case PlacementPolicy::ExclusiveBestFit:
        return "exclusive best-fit";
      case PlacementPolicy::RapShared:
        return "RAP envelope-shared";
    }
    RAP_PANIC("unknown placement policy");
}

std::string
policyId(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::ExclusiveFirstFit:
        return "exclusive_first_fit";
      case PlacementPolicy::ExclusiveBestFit:
        return "exclusive_best_fit";
      case PlacementPolicy::RapShared:
        return "rap_shared";
    }
    RAP_PANIC("unknown placement policy");
}

Json
Placement::toJson() const
{
    Json json = Json::object();
    Json ids = Json::array();
    for (int id : gpuIds)
        ids.push(Json(id));
    json.set("gpuIds", std::move(ids));
    Json envs = Json::array();
    for (const auto &env : envelopes) {
        Json entry = Json::object();
        entry.set("sm", Json(env.sm));
        entry.set("bw", Json(env.bw));
        envs.push(std::move(entry));
    }
    json.set("envelopes", std::move(envs));
    return json;
}

Placement
Placement::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("Placement JSON must be an object");
    Placement placement;
    for (const Json &id : json.at("gpuIds").elements())
        placement.gpuIds.push_back(static_cast<int>(id.asDouble()));
    for (const Json &entry : json.at("envelopes").elements()) {
        core::GpuEnvelope env;
        env.sm = entry.at("sm").asDouble();
        env.bw = entry.at("bw").asDouble();
        placement.envelopes.push_back(env);
    }
    return placement;
}

Json
PlacementOptions::toJson() const
{
    Json json = Json::object();
    json.set("policy", Json(policyId(policy)));
    json.set("headroom", Json(headroom));
    json.set("minEnvelope", Json(minEnvelope));
    json.set("demandScale", Json(demandScale));
    return json;
}

PlacementOptions
PlacementOptions::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("PlacementOptions JSON must be an object");
    PlacementOptions options;
    options.policy = policyFromId(json.at("policy").asString());
    options.headroom = json.at("headroom").asDouble();
    options.minEnvelope = json.at("minEnvelope").asDouble();
    options.demandScale = json.at("demandScale").asDouble();
    return options;
}

PlacementPolicy
policyFromId(const std::string &id)
{
    if (id == "exclusive_first_fit")
        return PlacementPolicy::ExclusiveFirstFit;
    if (id == "exclusive_best_fit")
        return PlacementPolicy::ExclusiveBestFit;
    if (id == "rap_shared")
        return PlacementPolicy::RapShared;
    RAP_FATAL("unknown placement-policy id '", id, "'");
}

std::optional<Placement>
placeJob(const PlacementOptions &options,
         const std::vector<GpuState> &gpus, int gpus_requested,
         const DemandEstimate &demand)
{
    RAP_ASSERT(gpus_requested >= 1, "job needs at least one GPU");
    if (gpus_requested > static_cast<int>(gpus.size()))
        return std::nullopt;

    std::vector<Candidate> candidates;
    switch (options.policy) {
      case PlacementPolicy::ExclusiveFirstFit:
      case PlacementPolicy::ExclusiveBestFit:
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            const auto &gpu = gpus[g];
            if (!gpu.alive || gpu.residents > 0)
                continue;
            const bool best_fit =
                options.policy == PlacementPolicy::ExclusiveBestFit;
            // First-fit ranks by ordinal alone; best-fit prefers the
            // healthiest devices so degraded GPUs are used last.
            const double score =
                best_fit ? -(gpu.healthSm + gpu.healthBw) : 0.0;
            candidates.push_back({static_cast<int>(g), score});
        }
        return pickTop(std::move(candidates), gpus_requested, gpus,
                       /*shared=*/false);

      case PlacementPolicy::RapShared:
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            const auto &gpu = gpus[g];
            if (!gpu.alive)
                continue;
            // Admission: the newcomer's discounted reservation must
            // fit in what is still reservable under the headroom
            // bound, and the slice it would run in must be worth
            // having. Both checks go through the clamped reservable*
            // helpers, so they share one notion of capacity — the
            // *current* (possibly degraded) health minus incumbent
            // reservations — instead of the headroom bound seeing
            // degraded health while the envelope floor read raw
            // free share.
            const double reservable_sm =
                gpu.reservableSm(options.headroom);
            const double reservable_bw =
                gpu.reservableBw(options.headroom);
            if (options.demandScale * demand.sm > reservable_sm ||
                options.demandScale * demand.bw > reservable_bw) {
                continue;
            }
            if (reservable_sm < options.minEnvelope ||
                reservable_bw < options.minEnvelope) {
                continue;
            }
            // Prefer the largest feasible envelope: a job takes whole
            // free GPUs when they exist (running at full speed, same
            // as exclusive) and squeezes into the roomiest leftover
            // slice only when the alternative is queueing. Packing
            // tighter than that trades the newcomer's speed for
            // nothing while free devices sit idle.
            candidates.push_back(
                {static_cast<int>(g), -(gpu.freeSm() + gpu.freeBw())});
        }
        return pickTop(std::move(candidates), gpus_requested, gpus,
                       /*shared=*/true);
    }
    RAP_PANIC("unknown placement policy");
}

} // namespace rap::fleet
