/**
 * @file
 * FleetReport serialization: toJson()/fromJson() round-trip exactly
 * under the core/serial.hpp JsonSerializable convention (schema token
 * "rap.fleet_report.v1"). The CI determinism job diffs these
 * artifacts across thread counts, and the resume gate diffs them
 * across kill/recover cycles, so every field — per-job specs,
 * outcomes, and the aggregates — is serialized from the exact doubles
 * the scheduler computed.
 *
 * Optional SLO columns serialize as explicit JSON null and read back
 * through the absent-tolerant helpers: "never measured" round-trips
 * as std::nullopt, distinct from a measured zero.
 */

#include "fleet/report.hpp"

#include "common/log.hpp"
#include "core/serial.hpp"

namespace rap::fleet {

namespace {

constexpr const char *kFleetReportSchema = "rap.fleet_report.v1";

using core::serial::getOptionalNumber;
using core::serial::setOptionalNumber;

Json
outcomeJson(const JobOutcome &outcome)
{
    Json json = Json::object();
    json.set("spec", outcome.spec.toJson());
    json.set("firstStart", Json(outcome.firstStart));
    json.set("finish", Json(outcome.finish));
    json.set("placements", Json(outcome.placements));
    json.set("requeues", Json(outcome.requeues));
    json.set("crashRequeues", Json(outcome.crashRequeues));
    json.set("serviceTime", Json(outcome.serviceTime));
    json.set("lostWork", Json(outcome.lostWork));
    Json gpus = Json::array();
    for (int id : outcome.lastGpus)
        gpus.push(Json(id));
    json.set("lastGpus", std::move(gpus));
    Json demand = Json::object();
    demand.set("sm", Json(outcome.demand.sm));
    demand.set("bw", Json(outcome.demand.bw));
    json.set("demand", std::move(demand));
    json.set("report", outcome.report.toJson());
    if (outcome.serve) {
        Json serve = Json::object();
        serve.set("requests", Json(outcome.serve->requests));
        serve.set("batches", Json(outcome.serve->batches));
        serve.set("attained", Json(outcome.serve->attained));
        serve.set("sloLatency", Json(outcome.serve->sloLatency));
        serve.set("p50", Json(outcome.serve->p50));
        serve.set("p95", Json(outcome.serve->p95));
        serve.set("p99", Json(outcome.serve->p99));
        json.set("serve", std::move(serve));
    } else {
        json.set("serve", Json());
    }
    return json;
}

JobOutcome
outcomeFromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("JobOutcome JSON must be an object");
    JobOutcome outcome;
    outcome.spec = JobSpec::fromJson(json.at("spec"));
    outcome.firstStart = json.at("firstStart").asDouble();
    outcome.finish = json.at("finish").asDouble();
    outcome.placements = core::serial::getInt(json, "placements");
    outcome.requeues = core::serial::getInt(json, "requeues");
    outcome.crashRequeues =
        core::serial::getInt(json, "crashRequeues");
    outcome.serviceTime = json.at("serviceTime").asDouble();
    outcome.lostWork = json.at("lostWork").asDouble();
    for (const Json &id : json.at("lastGpus").elements())
        outcome.lastGpus.push_back(static_cast<int>(id.asDouble()));
    const Json &demand = json.at("demand");
    outcome.demand.sm = demand.at("sm").asDouble();
    outcome.demand.bw = demand.at("bw").asDouble();
    outcome.report = core::RunReport::fromJson(json.at("report"));
    const Json *serve_json = json.find("serve");
    if (serve_json != nullptr && !serve_json->isNull()) {
        rap::serve::SloStats stats;
        stats.requests =
            core::serial::getUint64(*serve_json, "requests");
        stats.batches =
            core::serial::getUint64(*serve_json, "batches");
        stats.attained =
            core::serial::getUint64(*serve_json, "attained");
        stats.sloLatency = serve_json->at("sloLatency").asDouble();
        stats.p50 = serve_json->at("p50").asDouble();
        stats.p95 = serve_json->at("p95").asDouble();
        stats.p99 = serve_json->at("p99").asDouble();
        outcome.serve = stats;
    }
    return outcome;
}

} // namespace

Json
FleetReport::toJson() const
{
    Json json = Json::object();
    core::serial::stampSchema(json, kFleetReportSchema);
    json.set("policy", Json(policyId(policy)));
    json.set("gpuCount", Json(gpuCount));
    Json job_array = Json::array();
    for (const auto &job : jobs)
        job_array.push(outcomeJson(job));
    json.set("jobs", std::move(job_array));
    json.set("makespan", Json(makespan));
    json.set("requeues", Json(requeues));
    json.set("crashRequeues", Json(crashRequeues));
    json.set("simulationsRun", Json(simulationsRun));
    json.set("busyGpuSeconds", Json(busyGpuSeconds));
    json.set("catalogDegraded", Json(catalogDegraded));
    json.set("meanJct", Json(meanJct));
    json.set("p50Jct", Json(p50Jct));
    json.set("p95Jct", Json(p95Jct));
    json.set("maxJct", Json(maxJct));
    json.set("meanQueueingDelay", Json(meanQueueingDelay));
    json.set("clusterSmUtil", Json(clusterSmUtil));
    json.set("clusterBwUtil", Json(clusterBwUtil));
    json.set("gpuOccupancy", Json(gpuOccupancy));
    json.set("lostWork", Json(lostWork));
    json.set("goodputSeconds", Json(goodputSeconds));
    json.set("serveRequests", Json(serveRequests));
    json.set("serveBatches", Json(serveBatches));
    json.set("serveAttained", Json(serveAttained));
    setOptionalNumber(json, "serveAttainment", serveAttainment);
    setOptionalNumber(json, "serveGoodputRps", serveGoodputRps);
    setOptionalNumber(json, "serveP50Latency", serveP50Latency);
    setOptionalNumber(json, "serveP95Latency", serveP95Latency);
    setOptionalNumber(json, "serveP99Latency", serveP99Latency);
    return json;
}

FleetReport
FleetReport::fromJson(const Json &json)
{
    core::serial::requireSchema(json, kFleetReportSchema);
    FleetReport report;
    report.policy = policyFromId(json.at("policy").asString());
    report.gpuCount = core::serial::getInt(json, "gpuCount");
    for (const Json &job : json.at("jobs").elements())
        report.jobs.push_back(outcomeFromJson(job));
    report.makespan = json.at("makespan").asDouble();
    report.requeues = core::serial::getInt(json, "requeues");
    report.crashRequeues =
        core::serial::getInt(json, "crashRequeues");
    report.simulationsRun =
        core::serial::getInt(json, "simulationsRun");
    report.busyGpuSeconds = json.at("busyGpuSeconds").asDouble();
    // Reports serialized before the flag existed read as not-degraded.
    if (const Json *degraded = json.find("catalogDegraded"))
        report.catalogDegraded = degraded->asBool();
    report.meanJct = json.at("meanJct").asDouble();
    report.p50Jct = json.at("p50Jct").asDouble();
    report.p95Jct = json.at("p95Jct").asDouble();
    report.maxJct = json.at("maxJct").asDouble();
    report.meanQueueingDelay =
        json.at("meanQueueingDelay").asDouble();
    report.clusterSmUtil = json.at("clusterSmUtil").asDouble();
    report.clusterBwUtil = json.at("clusterBwUtil").asDouble();
    report.gpuOccupancy = json.at("gpuOccupancy").asDouble();
    report.lostWork = json.at("lostWork").asDouble();
    report.goodputSeconds = json.at("goodputSeconds").asDouble();
    report.serveRequests =
        core::serial::getUint64(json, "serveRequests");
    report.serveBatches =
        core::serial::getUint64(json, "serveBatches");
    report.serveAttained =
        core::serial::getUint64(json, "serveAttained");
    // Absent and null both mean "never measured": these columns only
    // exist for traces with inference jobs, and defaulting them to
    // zero would fabricate a measurement.
    report.serveAttainment = getOptionalNumber(json, "serveAttainment");
    report.serveGoodputRps = getOptionalNumber(json, "serveGoodputRps");
    report.serveP50Latency = getOptionalNumber(json, "serveP50Latency");
    report.serveP95Latency = getOptionalNumber(json, "serveP95Latency");
    report.serveP99Latency = getOptionalNumber(json, "serveP99Latency");
    return report;
}

} // namespace rap::fleet
