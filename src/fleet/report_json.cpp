/**
 * @file
 * FleetReport serialization: toJson()/fromJson() round-trip exactly.
 * The CI determinism job diffs these artifacts across thread counts,
 * so every field — per-job specs, outcomes, and the aggregates — is
 * serialized from the exact doubles the scheduler computed.
 */

#include "fleet/report.hpp"

#include "common/log.hpp"

namespace rap::fleet {

namespace {

/**
 * Absent optional fields serialize as JSON null — never as 0.0 or a
 * stale placeholder — so a round trip preserves "never measured"
 * exactly (the same convention core::RunReport uses for its lifecycle
 * timestamps).
 */
void
setOptionalNumber(Json &json, const std::string &key,
                  const std::optional<double> &value)
{
    json.set(key, value ? Json(*value) : Json());
}

std::optional<double>
getOptionalNumber(const Json &json, const std::string &key)
{
    const Json &field = json.at(key);
    if (field.isNull())
        return std::nullopt;
    return field.asDouble();
}

Json
specJson(const JobSpec &spec)
{
    Json json = Json::object();
    json.set("id", Json(spec.id));
    json.set("name", Json(spec.name));
    json.set("arrival", Json(spec.arrival));
    json.set("gpusRequested", Json(spec.gpusRequested));
    json.set("planId", Json(spec.planId));
    json.set("ngramStress", Json(spec.ngramStress));
    json.set("batchPerGpu", Json(spec.batchPerGpu));
    json.set("iterations", Json(spec.iterations));
    json.set("system", Json(core::systemId(spec.system)));
    json.set("checkpointInterval", Json(spec.checkpointInterval));
    json.set("kind", Json(jobKindId(spec.kind)));
    Json requests = Json::object();
    requests.set("qps", Json(spec.requests.qps));
    requests.set("qpsAmplitude", Json(spec.requests.qpsAmplitude));
    requests.set("qpsPeriod", Json(spec.requests.qpsPeriod));
    requests.set("duration", Json(spec.requests.duration));
    // Request seeds are masked to 53 bits at synthesis, so the double
    // round trip below is exact.
    requests.set("seed", Json(spec.requests.seed));
    json.set("requests", std::move(requests));
    Json window = Json::object();
    window.set("maxBatch", Json(spec.window.maxBatch));
    window.set("maxWait", Json(spec.window.maxWait));
    json.set("window", std::move(window));
    json.set("sloLatency", Json(spec.sloLatency));
    return json;
}

JobSpec
specFromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("JobSpec JSON must be an object");
    JobSpec spec;
    spec.id = static_cast<int>(json.at("id").asDouble());
    spec.name = json.at("name").asString();
    spec.arrival = json.at("arrival").asDouble();
    spec.gpusRequested =
        static_cast<int>(json.at("gpusRequested").asDouble());
    spec.planId = static_cast<int>(json.at("planId").asDouble());
    spec.ngramStress =
        static_cast<int>(json.at("ngramStress").asDouble());
    spec.batchPerGpu =
        static_cast<std::int64_t>(json.at("batchPerGpu").asDouble());
    spec.iterations =
        static_cast<int>(json.at("iterations").asDouble());
    const auto system =
        core::systemFromId(json.at("system").asString());
    if (!system) {
        RAP_FATAL("unknown system id '", json.at("system").asString(),
                  "' in JobSpec JSON");
    }
    spec.system = *system;
    spec.checkpointInterval =
        static_cast<int>(json.at("checkpointInterval").asDouble());
    spec.kind = jobKindFromId(json.at("kind").asString());
    const Json &requests = json.at("requests");
    spec.requests.qps = requests.at("qps").asDouble();
    spec.requests.qpsAmplitude =
        requests.at("qpsAmplitude").asDouble();
    spec.requests.qpsPeriod = requests.at("qpsPeriod").asDouble();
    spec.requests.duration = requests.at("duration").asDouble();
    spec.requests.seed = static_cast<std::uint64_t>(
        requests.at("seed").asDouble());
    const Json &window = json.at("window");
    spec.window.maxBatch =
        static_cast<int>(window.at("maxBatch").asDouble());
    spec.window.maxWait = window.at("maxWait").asDouble();
    spec.sloLatency = json.at("sloLatency").asDouble();
    return spec;
}

Json
outcomeJson(const JobOutcome &outcome)
{
    Json json = Json::object();
    json.set("spec", specJson(outcome.spec));
    json.set("firstStart", Json(outcome.firstStart));
    json.set("finish", Json(outcome.finish));
    json.set("placements", Json(outcome.placements));
    json.set("requeues", Json(outcome.requeues));
    json.set("crashRequeues", Json(outcome.crashRequeues));
    json.set("serviceTime", Json(outcome.serviceTime));
    json.set("lostWork", Json(outcome.lostWork));
    Json gpus = Json::array();
    for (int id : outcome.lastGpus)
        gpus.push(Json(id));
    json.set("lastGpus", std::move(gpus));
    Json demand = Json::object();
    demand.set("sm", Json(outcome.demand.sm));
    demand.set("bw", Json(outcome.demand.bw));
    json.set("demand", std::move(demand));
    json.set("report", outcome.report.toJson());
    if (outcome.serve) {
        Json serve = Json::object();
        serve.set("requests", Json(outcome.serve->requests));
        serve.set("batches", Json(outcome.serve->batches));
        serve.set("attained", Json(outcome.serve->attained));
        serve.set("sloLatency", Json(outcome.serve->sloLatency));
        serve.set("p50", Json(outcome.serve->p50));
        serve.set("p95", Json(outcome.serve->p95));
        serve.set("p99", Json(outcome.serve->p99));
        json.set("serve", std::move(serve));
    } else {
        json.set("serve", Json());
    }
    return json;
}

JobOutcome
outcomeFromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("JobOutcome JSON must be an object");
    JobOutcome outcome;
    outcome.spec = specFromJson(json.at("spec"));
    outcome.firstStart = json.at("firstStart").asDouble();
    outcome.finish = json.at("finish").asDouble();
    outcome.placements =
        static_cast<int>(json.at("placements").asDouble());
    outcome.requeues =
        static_cast<int>(json.at("requeues").asDouble());
    outcome.crashRequeues =
        static_cast<int>(json.at("crashRequeues").asDouble());
    outcome.serviceTime = json.at("serviceTime").asDouble();
    outcome.lostWork = json.at("lostWork").asDouble();
    for (const Json &id : json.at("lastGpus").elements())
        outcome.lastGpus.push_back(static_cast<int>(id.asDouble()));
    const Json &demand = json.at("demand");
    outcome.demand.sm = demand.at("sm").asDouble();
    outcome.demand.bw = demand.at("bw").asDouble();
    outcome.report = core::RunReport::fromJson(json.at("report"));
    const Json &serve_json = json.at("serve");
    if (!serve_json.isNull()) {
        rap::serve::SloStats stats;
        stats.requests = static_cast<std::uint64_t>(
            serve_json.at("requests").asDouble());
        stats.batches = static_cast<std::uint64_t>(
            serve_json.at("batches").asDouble());
        stats.attained = static_cast<std::uint64_t>(
            serve_json.at("attained").asDouble());
        stats.sloLatency = serve_json.at("sloLatency").asDouble();
        stats.p50 = serve_json.at("p50").asDouble();
        stats.p95 = serve_json.at("p95").asDouble();
        stats.p99 = serve_json.at("p99").asDouble();
        outcome.serve = stats;
    }
    return outcome;
}

} // namespace

Json
FleetReport::toJson() const
{
    Json json = Json::object();
    json.set("policy", Json(policyId(policy)));
    json.set("gpuCount", Json(gpuCount));
    Json job_array = Json::array();
    for (const auto &job : jobs)
        job_array.push(outcomeJson(job));
    json.set("jobs", std::move(job_array));
    json.set("makespan", Json(makespan));
    json.set("requeues", Json(requeues));
    json.set("crashRequeues", Json(crashRequeues));
    json.set("simulationsRun", Json(simulationsRun));
    json.set("busyGpuSeconds", Json(busyGpuSeconds));
    json.set("meanJct", Json(meanJct));
    json.set("p50Jct", Json(p50Jct));
    json.set("p95Jct", Json(p95Jct));
    json.set("maxJct", Json(maxJct));
    json.set("meanQueueingDelay", Json(meanQueueingDelay));
    json.set("clusterSmUtil", Json(clusterSmUtil));
    json.set("clusterBwUtil", Json(clusterBwUtil));
    json.set("gpuOccupancy", Json(gpuOccupancy));
    json.set("lostWork", Json(lostWork));
    json.set("goodputSeconds", Json(goodputSeconds));
    json.set("serveRequests", Json(serveRequests));
    json.set("serveBatches", Json(serveBatches));
    json.set("serveAttained", Json(serveAttained));
    setOptionalNumber(json, "serveAttainment", serveAttainment);
    setOptionalNumber(json, "serveGoodputRps", serveGoodputRps);
    setOptionalNumber(json, "serveP50Latency", serveP50Latency);
    setOptionalNumber(json, "serveP95Latency", serveP95Latency);
    setOptionalNumber(json, "serveP99Latency", serveP99Latency);
    return json;
}

FleetReport
FleetReport::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("FleetReport JSON must be an object");
    FleetReport report;
    report.policy = policyFromId(json.at("policy").asString());
    report.gpuCount =
        static_cast<int>(json.at("gpuCount").asDouble());
    for (const Json &job : json.at("jobs").elements())
        report.jobs.push_back(outcomeFromJson(job));
    report.makespan = json.at("makespan").asDouble();
    report.requeues =
        static_cast<int>(json.at("requeues").asDouble());
    report.crashRequeues =
        static_cast<int>(json.at("crashRequeues").asDouble());
    report.simulationsRun =
        static_cast<int>(json.at("simulationsRun").asDouble());
    report.busyGpuSeconds = json.at("busyGpuSeconds").asDouble();
    report.meanJct = json.at("meanJct").asDouble();
    report.p50Jct = json.at("p50Jct").asDouble();
    report.p95Jct = json.at("p95Jct").asDouble();
    report.maxJct = json.at("maxJct").asDouble();
    report.meanQueueingDelay =
        json.at("meanQueueingDelay").asDouble();
    report.clusterSmUtil = json.at("clusterSmUtil").asDouble();
    report.clusterBwUtil = json.at("clusterBwUtil").asDouble();
    report.gpuOccupancy = json.at("gpuOccupancy").asDouble();
    report.lostWork = json.at("lostWork").asDouble();
    report.goodputSeconds = json.at("goodputSeconds").asDouble();
    report.serveRequests = static_cast<std::uint64_t>(
        json.at("serveRequests").asDouble());
    report.serveBatches = static_cast<std::uint64_t>(
        json.at("serveBatches").asDouble());
    report.serveAttained = static_cast<std::uint64_t>(
        json.at("serveAttained").asDouble());
    report.serveAttainment = getOptionalNumber(json, "serveAttainment");
    report.serveGoodputRps = getOptionalNumber(json, "serveGoodputRps");
    report.serveP50Latency = getOptionalNumber(json, "serveP50Latency");
    report.serveP95Latency = getOptionalNumber(json, "serveP95Latency");
    report.serveP99Latency = getOptionalNumber(json, "serveP99Latency");
    return report;
}

} // namespace rap::fleet
