/**
 * @file
 * FleetReport serialization: toJson()/fromJson() round-trip exactly.
 * The CI determinism job diffs these artifacts across thread counts,
 * so every field — per-job specs, outcomes, and the aggregates — is
 * serialized from the exact doubles the scheduler computed.
 */

#include "fleet/report.hpp"

#include "common/log.hpp"

namespace rap::fleet {

namespace {

Json
specJson(const JobSpec &spec)
{
    Json json = Json::object();
    json.set("id", Json(spec.id));
    json.set("name", Json(spec.name));
    json.set("arrival", Json(spec.arrival));
    json.set("gpusRequested", Json(spec.gpusRequested));
    json.set("planId", Json(spec.planId));
    json.set("ngramStress", Json(spec.ngramStress));
    json.set("batchPerGpu", Json(spec.batchPerGpu));
    json.set("iterations", Json(spec.iterations));
    json.set("system", Json(core::systemId(spec.system)));
    json.set("checkpointInterval", Json(spec.checkpointInterval));
    return json;
}

JobSpec
specFromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("JobSpec JSON must be an object");
    JobSpec spec;
    spec.id = static_cast<int>(json.at("id").asDouble());
    spec.name = json.at("name").asString();
    spec.arrival = json.at("arrival").asDouble();
    spec.gpusRequested =
        static_cast<int>(json.at("gpusRequested").asDouble());
    spec.planId = static_cast<int>(json.at("planId").asDouble());
    spec.ngramStress =
        static_cast<int>(json.at("ngramStress").asDouble());
    spec.batchPerGpu =
        static_cast<std::int64_t>(json.at("batchPerGpu").asDouble());
    spec.iterations =
        static_cast<int>(json.at("iterations").asDouble());
    const auto system =
        core::systemFromId(json.at("system").asString());
    if (!system) {
        RAP_FATAL("unknown system id '", json.at("system").asString(),
                  "' in JobSpec JSON");
    }
    spec.system = *system;
    spec.checkpointInterval =
        static_cast<int>(json.at("checkpointInterval").asDouble());
    return spec;
}

Json
outcomeJson(const JobOutcome &outcome)
{
    Json json = Json::object();
    json.set("spec", specJson(outcome.spec));
    json.set("firstStart", Json(outcome.firstStart));
    json.set("finish", Json(outcome.finish));
    json.set("placements", Json(outcome.placements));
    json.set("requeues", Json(outcome.requeues));
    json.set("crashRequeues", Json(outcome.crashRequeues));
    json.set("serviceTime", Json(outcome.serviceTime));
    json.set("lostWork", Json(outcome.lostWork));
    Json gpus = Json::array();
    for (int id : outcome.lastGpus)
        gpus.push(Json(id));
    json.set("lastGpus", std::move(gpus));
    Json demand = Json::object();
    demand.set("sm", Json(outcome.demand.sm));
    demand.set("bw", Json(outcome.demand.bw));
    json.set("demand", std::move(demand));
    json.set("report", outcome.report.toJson());
    return json;
}

JobOutcome
outcomeFromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("JobOutcome JSON must be an object");
    JobOutcome outcome;
    outcome.spec = specFromJson(json.at("spec"));
    outcome.firstStart = json.at("firstStart").asDouble();
    outcome.finish = json.at("finish").asDouble();
    outcome.placements =
        static_cast<int>(json.at("placements").asDouble());
    outcome.requeues =
        static_cast<int>(json.at("requeues").asDouble());
    outcome.crashRequeues =
        static_cast<int>(json.at("crashRequeues").asDouble());
    outcome.serviceTime = json.at("serviceTime").asDouble();
    outcome.lostWork = json.at("lostWork").asDouble();
    for (const Json &id : json.at("lastGpus").elements())
        outcome.lastGpus.push_back(static_cast<int>(id.asDouble()));
    const Json &demand = json.at("demand");
    outcome.demand.sm = demand.at("sm").asDouble();
    outcome.demand.bw = demand.at("bw").asDouble();
    outcome.report = core::RunReport::fromJson(json.at("report"));
    return outcome;
}

} // namespace

Json
FleetReport::toJson() const
{
    Json json = Json::object();
    json.set("policy", Json(policyId(policy)));
    json.set("gpuCount", Json(gpuCount));
    Json job_array = Json::array();
    for (const auto &job : jobs)
        job_array.push(outcomeJson(job));
    json.set("jobs", std::move(job_array));
    json.set("makespan", Json(makespan));
    json.set("requeues", Json(requeues));
    json.set("crashRequeues", Json(crashRequeues));
    json.set("simulationsRun", Json(simulationsRun));
    json.set("busyGpuSeconds", Json(busyGpuSeconds));
    json.set("meanJct", Json(meanJct));
    json.set("p50Jct", Json(p50Jct));
    json.set("p95Jct", Json(p95Jct));
    json.set("maxJct", Json(maxJct));
    json.set("meanQueueingDelay", Json(meanQueueingDelay));
    json.set("clusterSmUtil", Json(clusterSmUtil));
    json.set("clusterBwUtil", Json(clusterBwUtil));
    json.set("gpuOccupancy", Json(gpuOccupancy));
    json.set("lostWork", Json(lostWork));
    json.set("goodputSeconds", Json(goodputSeconds));
    return json;
}

FleetReport
FleetReport::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("FleetReport JSON must be an object");
    FleetReport report;
    report.policy = policyFromId(json.at("policy").asString());
    report.gpuCount =
        static_cast<int>(json.at("gpuCount").asDouble());
    for (const Json &job : json.at("jobs").elements())
        report.jobs.push_back(outcomeFromJson(job));
    report.makespan = json.at("makespan").asDouble();
    report.requeues =
        static_cast<int>(json.at("requeues").asDouble());
    report.crashRequeues =
        static_cast<int>(json.at("crashRequeues").asDouble());
    report.simulationsRun =
        static_cast<int>(json.at("simulationsRun").asDouble());
    report.busyGpuSeconds = json.at("busyGpuSeconds").asDouble();
    report.meanJct = json.at("meanJct").asDouble();
    report.p50Jct = json.at("p50Jct").asDouble();
    report.p95Jct = json.at("p95Jct").asDouble();
    report.maxJct = json.at("maxJct").asDouble();
    report.meanQueueingDelay =
        json.at("meanQueueingDelay").asDouble();
    report.clusterSmUtil = json.at("clusterSmUtil").asDouble();
    report.clusterBwUtil = json.at("clusterBwUtil").asDouble();
    report.gpuOccupancy = json.at("gpuOccupancy").asDouble();
    report.lostWork = json.at("lostWork").asDouble();
    report.goodputSeconds = json.at("goodputSeconds").asDouble();
    return report;
}

} // namespace rap::fleet
