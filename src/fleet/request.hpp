/**
 * @file
 * The validated fleet API: FleetRequest is a fluent builder over
 * FleetOptions that validates at run() time and returns structured
 * errors (core/validation.hpp) instead of asserting mid-run — the
 * fleet-level twin of core::RunRequest.
 *
 *   auto request = FleetRequest(makeArrivalTrace(trace))
 *                      .policy(PlacementPolicy::RapShared)
 *                      .restartOverhead(2.0)
 *                      .catalogDir("runs/fleet.catalog");
 *   if (auto result = request.validate(); !result.ok())
 *       die(result.render());          // every problem, at once
 *   FleetReport report = request.run(&pool);
 *
 * Bad combinations are rejected, never silently clamped: a
 * non-positive crash MTBF, a negative restart overhead, a stop point
 * without a catalog, a catalog directory *and* an adopted catalog
 * handle — each comes back as a ConfigError naming the field.
 *
 * The legacy entry point (runFleet) remains as a thin shim routed
 * through the same validation, so existing call sites keep compiling
 * and misconfigurations fail with the full error list either way.
 */

#ifndef RAP_FLEET_REQUEST_HPP
#define RAP_FLEET_REQUEST_HPP

#include "core/validation.hpp"
#include "ctrl/catalog.hpp"
#include "fleet/scheduler.hpp"

namespace rap::fleet {

/** Fluent, validated builder for one fleet run. */
class FleetRequest
{
  public:
    /** @param jobs Arrival trace (ids dense, arrival-ordered). */
    explicit FleetRequest(std::vector<JobSpec> jobs)
        : jobs_(std::move(jobs))
    {
    }

    /** Synthesize the trace from generator options. */
    explicit FleetRequest(const ArrivalTraceOptions &trace)
        : jobs_(makeArrivalTrace(trace))
    {
    }

    FleetRequest &
    policy(PlacementPolicy policy)
    {
        options_.placement.policy = policy;
        return *this;
    }

    FleetRequest &
    placement(PlacementOptions placement)
    {
        options_.placement = std::move(placement);
        return *this;
    }

    FleetRequest &
    node(sim::ClusterSpec spec)
    {
        options_.node = std::move(spec);
        return *this;
    }

    FleetRequest &
    faults(sim::FaultSpec spec)
    {
        options_.faults = std::move(spec);
        return *this;
    }

    FleetRequest &
    addFault(sim::FaultEvent event)
    {
        options_.faults.events.push_back(event);
        return *this;
    }

    /**
     * Synthesize seeded DeviceCrash events (sim::makeCrashTrace) at
     * run() time. validate() rejects a non-positive MTBF or horizon —
     * the crash schedule is Poisson with mean @p mtbf, so clamping
     * would silently change the experiment.
     */
    FleetRequest &
    crashFaults(Seconds mtbf, std::uint64_t seed, Seconds horizon)
    {
        crashMtbf_ = mtbf;
        crashSeed_ = seed;
        crashHorizon_ = horizon;
        crashFaults_ = true;
        return *this;
    }

    FleetRequest &
    requeueOnDegrade(bool on)
    {
        options_.requeueOnDegrade = on;
        return *this;
    }

    FleetRequest &
    restartOverhead(Seconds seconds)
    {
        options_.restartOverhead = seconds;
        return *this;
    }

    FleetRequest &
    envelopeQuantum(double quantum)
    {
        options_.envelopeQuantum = quantum;
        return *this;
    }

    FleetRequest &
    tracePrefix(std::string prefix)
    {
        options_.tracePrefix = std::move(prefix);
        return *this;
    }

    /** Attach an observability registry and this run's scope label. */
    FleetRequest &
    metrics(obs::MetricRegistry *registry, std::string scope = "")
    {
        options_.metrics = registry;
        options_.metricsScope = std::move(scope);
        return *this;
    }

    /** DES engine worker threads per inner simulation. */
    FleetRequest &
    engineJobs(int jobs)
    {
        options_.engineJobs = jobs;
        return *this;
    }

    /** Adopt an already-open catalog (non-owning). */
    FleetRequest &
    catalog(ctrl::Catalog *catalog)
    {
        options_.catalog = catalog;
        return *this;
    }

    /**
     * Open (or recover) a catalog at @p dir inside run(), owned by
     * the request. Mutually exclusive with catalog().
     */
    FleetRequest &
    catalogDir(std::string dir)
    {
        catalogDir_ = std::move(dir);
        return *this;
    }

    /** fsync the catalog WAL inside every commit. */
    FleetRequest &
    fsyncOnCommit(bool on)
    {
        fsyncOnCommit_ = on;
        return *this;
    }

    /** Compact the catalog every N commits (0 = never). */
    FleetRequest &
    compactEvery(int commits)
    {
        compactEvery_ = commits;
        return *this;
    }

    /**
     * Stop after @p events committed frames: HardKill raises SIGKILL
     * (the resume gate's crash), Abandon returns early from run().
     * Requires a catalog.
     */
    FleetRequest &
    stopAfterEvents(std::int64_t events,
                    StopMode mode = StopMode::HardKill)
    {
        options_.stopAfterEvents = events;
        options_.stopMode = mode;
        return *this;
    }

    /** Direct access for knobs without a dedicated setter. */
    FleetOptions &options() { return options_; }
    const FleetOptions &options() const { return options_; }

    const std::vector<JobSpec> &jobs() const { return jobs_; }

    /** @return The validation outcome for the current request. */
    core::ValidationResult validate() const;

    /**
     * Validate and execute; fatal (with the full rendered error list)
     * when invalid. Opens the catalogDir() catalog first when one was
     * requested.
     */
    FleetReport run(ThreadPool *pool = nullptr);

    /**
     * @return True when the last run() returned early because it
     * reached stopAfterEvents under StopMode::Abandon (the returned
     * report was partial and must be discarded).
     */
    bool stopped() const { return stopped_; }

  private:
    std::vector<JobSpec> jobs_;
    FleetOptions options_;
    std::string catalogDir_;
    bool fsyncOnCommit_ = false;
    int compactEvery_ = 0;
    bool crashFaults_ = false;
    Seconds crashMtbf_ = 0.0;
    std::uint64_t crashSeed_ = 0;
    Seconds crashHorizon_ = 0.0;
    /** Catalog opened by run() for catalogDir() requests. */
    std::unique_ptr<ctrl::Catalog> ownedCatalog_;
    bool stopped_ = false;
};

/**
 * Resume the run persisted in @p catalog_options's directory: rebuild
 * the job trace and options from the genesis record, re-execute the
 * event loop (byte-verifying the durable frames), and finish the run
 * — committing live past the crash point. The final FleetReport is
 * byte-identical to the uninterrupted run's.
 */
FleetReport resumeFleet(const ctrl::CatalogOptions &catalog_options,
                        ThreadPool *pool = nullptr);

/** resumeFleet over an already-open catalog. */
FleetReport resumeFleet(ctrl::Catalog &catalog,
                        ThreadPool *pool = nullptr);

} // namespace rap::fleet

#endif // RAP_FLEET_REQUEST_HPP
