#include "fleet/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace rap::fleet {

void
FleetReport::finalize()
{
    requeues = 0;
    crashRequeues = 0;
    lostWork = 0.0;
    goodputSeconds = 0.0;
    serveRequests = 0;
    serveBatches = 0;
    serveAttained = 0;
    std::vector<Seconds> jcts;
    Seconds queueing_sum = 0.0;
    double sm_gpu_seconds = 0.0;
    double bw_gpu_seconds = 0.0;
    for (const auto &job : jobs) {
        RAP_ASSERT(job.finish >= 0.0, "job ", job.spec.id,
                   " never finished");
        jcts.push_back(job.jobCompletionTime());
        queueing_sum += job.queueingDelay();
        requeues += job.requeues;
        crashRequeues += job.crashRequeues;
        lostWork += job.lostWork;
        goodputSeconds += job.serviceTime - job.lostWork;
        const auto gpus = static_cast<double>(job.spec.gpusRequested);
        sm_gpu_seconds += job.demand.sm * job.serviceTime * gpus;
        bw_gpu_seconds += job.demand.bw * job.serviceTime * gpus;
        if (job.serve) {
            serveRequests += job.serve->requests;
            serveBatches += job.serve->batches;
            serveAttained += job.serve->attained;
        }
    }
    serveAttainment.reset();
    serveGoodputRps.reset();
    if (serveRequests > 0) {
        serveAttainment = static_cast<double>(serveAttained) /
                          static_cast<double>(serveRequests);
        if (makespan > 0.0) {
            serveGoodputRps =
                static_cast<double>(serveAttained) / makespan;
        }
    }
    if (jcts.empty() || makespan <= 0.0)
        return;
    std::sort(jcts.begin(), jcts.end());
    const auto n = static_cast<double>(jcts.size());
    Seconds jct_sum = 0.0;
    for (Seconds jct : jcts)
        jct_sum += jct;
    meanJct = jct_sum / n;
    // The shared interpolating percentile replaced a local
    // nearest-rank copy whose ceil(q * n) rank drifted one index high
    // whenever q * n rounded just above an integer (0.95 * 20 =
    // 19.000000000000004).
    p50Jct = rap::p50(jcts);
    p95Jct = rap::p95(jcts);
    maxJct = jcts.back();
    meanQueueingDelay = queueing_sum / n;
    const double gpu_seconds =
        makespan * static_cast<double>(gpuCount);
    clusterSmUtil = sm_gpu_seconds / gpu_seconds;
    clusterBwUtil = bw_gpu_seconds / gpu_seconds;
    gpuOccupancy = busyGpuSeconds / gpu_seconds;
}

std::string
FleetReport::renderSummary() const
{
    std::ostringstream oss;
    oss << "policy: " << policyName(policy) << " (" << jobs.size()
        << " jobs on " << gpuCount << " GPUs)\n"
        << "  makespan        " << formatSeconds(makespan) << "\n"
        << "  mean JCT        " << formatSeconds(meanJct) << "\n"
        << "  p50 / p95 JCT   " << formatSeconds(p50Jct) << " / "
        << formatSeconds(p95Jct) << "\n"
        << "  max JCT         " << formatSeconds(maxJct) << "\n"
        << "  mean queueing   " << formatSeconds(meanQueueingDelay)
        << "\n"
        << "  cluster SM util " << AsciiTable::num(clusterSmUtil, 4)
        << "\n"
        << "  cluster BW util " << AsciiTable::num(clusterBwUtil, 4)
        << "\n"
        << "  GPU occupancy   " << AsciiTable::num(gpuOccupancy, 4)
        << "\n"
        << "  requeues        " << requeues << " (" << crashRequeues
        << " from crashes)\n"
        << "  lost work       " << formatSeconds(lostWork) << "\n"
        << "  goodput         " << formatSeconds(goodputSeconds)
        << "\n";
    if (serveRequests > 0) {
        oss << "  serve requests  " << serveRequests << " in "
            << serveBatches << " batches\n"
            << "  SLO attainment  "
            << AsciiTable::num(serveAttainment.value_or(0.0), 4)
            << "\n"
            << "  serve goodput   "
            << AsciiTable::num(serveGoodputRps.value_or(0.0), 1)
            << " req/s\n"
            << "  serve p50/95/99 "
            << formatSeconds(serveP50Latency.value_or(0.0)) << " / "
            << formatSeconds(serveP95Latency.value_or(0.0)) << " / "
            << formatSeconds(serveP99Latency.value_or(0.0)) << "\n";
    }
    if (catalogDegraded)
        oss << "  catalog         DEGRADED (run not resumable)\n";
    return oss.str();
}

std::string
FleetReport::renderJobs() const
{
    AsciiTable table({"job", "gpus", "demand sm/bw", "arrival",
                      "start", "finish", "queued", "JCT", "placed on",
                      "requeues", "p99 lat", "SLO"});
    for (const auto &job : jobs) {
        std::string gpu_list;
        for (std::size_t i = 0; i < job.lastGpus.size(); ++i) {
            if (i > 0)
                gpu_list += ",";
            gpu_list += std::to_string(job.lastGpus[i]);
        }
        table.addRow({
            job.spec.name,
            std::to_string(job.spec.gpusRequested),
            AsciiTable::num(job.demand.sm, 2) + "/" +
                AsciiTable::num(job.demand.bw, 2),
            formatSeconds(job.spec.arrival),
            formatSeconds(job.firstStart),
            formatSeconds(job.finish),
            formatSeconds(job.queueingDelay()),
            formatSeconds(job.jobCompletionTime()),
            gpu_list,
            std::to_string(job.requeues),
            job.serve ? formatSeconds(job.serve->p99) : "-",
            job.serve ? AsciiTable::num(job.serve->attainment(), 4)
                      : "-",
        });
    }
    return table.render();
}

} // namespace rap::fleet
