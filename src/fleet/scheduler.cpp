#include "fleet/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <queue>
#include <set>
#include <tuple>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "core/checkpoint.hpp"
#include "ctrl/catalog.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/slo.hpp"
#include "sim/cluster.hpp"

namespace rap::fleet {

namespace {

/** Scheduler-level instrument labels: policy plus the run scope. */
obs::Labels
fleetLabels(const FleetOptions &options)
{
    obs::Labels labels;
    labels.set("policy", policyId(options.placement.policy));
    if (!options.metricsScope.empty())
        labels.set("run", options.metricsScope);
    return labels;
}

/**
 * Event kinds in processing order at equal timestamps: finishes free
 * capacity before degradations preempt, and both precede arrivals, so
 * a job arriving the instant another finishes sees the freed GPUs.
 */
enum class EventKind { Finish = 0, Degrade = 1, Arrival = 2 };

struct Event
{
    Seconds time = 0.0;
    EventKind kind = EventKind::Arrival;
    /** Job id (Arrival/Finish) or fault-event index (Degrade). */
    int id = 0;
    /** Finish only: segment generation (stale after preemption). */
    int generation = 0;
};

struct EventAfter
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        return std::tie(a.time, a.kind, a.id) >
               std::tie(b.time, b.kind, b.id);
    }
};

/** @return True when every granted envelope is the whole device. */
bool
wholeDevices(const Placement &placement)
{
    return std::all_of(placement.envelopes.begin(),
                       placement.envelopes.end(),
                       [](const core::GpuEnvelope &env) {
                           return env.sm >= 1.0 && env.bw >= 1.0;
                       });
}

} // namespace

FleetScheduler::FleetScheduler(std::vector<JobSpec> jobs,
                               FleetOptions options, ThreadPool *pool)
    : jobs_(std::move(jobs)), options_(std::move(options)), pool_(pool)
{
    RAP_ASSERT(!jobs_.empty(), "fleet needs at least one job");
    RAP_ASSERT(options_.envelopeQuantum > 0.0 &&
                   options_.envelopeQuantum <= 1.0,
               "envelope quantum must be in (0, 1]");
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        RAP_ASSERT(jobs_[j].id == static_cast<int>(j),
                   "job ids must be dense and ordered");
        RAP_ASSERT(jobs_[j].gpusRequested >= 1 &&
                       jobs_[j].gpusRequested <= options_.node.gpuCount,
                   "job ", jobs_[j].id, " requests ",
                   jobs_[j].gpusRequested, " GPUs on a ",
                   options_.node.gpuCount, "-GPU node");
    }
    RAP_ASSERT(options_.restartOverhead >= 0.0,
               "restart overhead cannot be negative");
    for (const auto &e : options_.faults.events) {
        RAP_ASSERT(e.kind == sim::FaultKind::SmDegrade ||
                       e.kind == sim::FaultKind::HbmDegrade ||
                       e.kind == sim::FaultKind::DeviceCrash,
                   "fleet-scope faults support SmDegrade/HbmDegrade/"
                   "DeviceCrash only");
        RAP_ASSERT(e.device < options_.node.gpuCount,
                   "fleet fault targets GPU ", e.device, " on a ",
                   options_.node.gpuCount, "-GPU node");
    }
    requestArrivals_.resize(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        if (jobs_[j].kind != JobKind::Inference)
            continue;
        RAP_ASSERT(jobs_[j].checkpointInterval == 0,
                   "inference job ", jobs_[j].id,
                   " has no training state to checkpoint");
        RAP_ASSERT(jobs_[j].sloLatency > 0.0, "inference job ",
                   jobs_[j].id, " needs a positive SLO latency");
        // Requests are generated relative to the job's submission and
        // re-based onto the fleet clock here, once: every
        // re-placement after a preemption re-serves this same trace.
        auto arrivals = serve::makeRequestTrace(jobs_[j].requests);
        for (Seconds &t : arrivals)
            t += jobs_[j].arrival;
        requestArrivals_[j] = std::move(arrivals);
    }
    RAP_ASSERT(options_.stopAfterEvents >= 0,
               "stopAfterEvents cannot be negative");
    RAP_ASSERT(options_.stopAfterEvents == 0 ||
                   options_.catalog != nullptr,
               "stopAfterEvents without a catalog would just lose "
               "the run");
    lastDurable_.assign(jobs_.size(), 0.0);
    sealCount_.assign(jobs_.size(), 0);
    gpus_.resize(static_cast<std::size_t>(options_.node.gpuCount));
    report_.policy = options_.placement.policy;
    report_.gpuCount = options_.node.gpuCount;
    report_.jobs.resize(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j)
        report_.jobs[j].spec = jobs_[j];
}

Json
FleetScheduler::genesisTransaction() const
{
    // The catalog's first record (LSN 1): everything a resume needs
    // to re-execute the identical run — the semantic options plus the
    // full job trace. Event frames then commit as LSN frame + 2.
    Json txn = Json::object();
    txn.set("kind", Json("genesis"));
    txn.set("config", fleetOptionsToJson(options_));
    Json specs = Json::array();
    for (const auto &spec : jobs_)
        specs.push(spec.toJson());
    txn.set("jobs", std::move(specs));
    return txn;
}

Placement
FleetScheduler::quantised(Placement placement) const
{
    const double quantum = options_.envelopeQuantum;
    auto snap = [quantum](double share) {
        const double floored =
            std::floor(share / quantum + 1e-9) * quantum;
        return std::min(1.0, std::max(quantum, floored));
    };
    for (auto &env : placement.envelopes) {
        env.sm = snap(env.sm);
        env.bw = snap(env.bw);
    }
    return placement;
}

core::RunReport
FleetScheduler::simulate(const JobSpec &spec, const Placement &placement,
                         int segment_index)
{
    // Memo key: workload variant x quantised envelope (as exact grid
    // indices, never formatted floats). Physical GPU ids are excluded
    // on purpose — the simulation is identical on any subset of equal
    // size, only trace labels differ.
    std::string key = spec.variantKey();
    for (const auto &env : placement.envelopes) {
        key += "|" +
               std::to_string(static_cast<long long>(
                   std::llround(env.sm / options_.envelopeQuantum))) +
               "," +
               std::to_string(static_cast<long long>(
                   std::llround(env.bw / options_.envelopeQuantum)));
    }
    const bool tracing = !options_.tracePrefix.empty();
    if (!tracing) {
        const auto it = memo_.find(key);
        if (it != memo_.end()) {
            if (options_.metrics != nullptr) {
                options_.metrics
                    ->counter("fleet.memo.hit", fleetLabels(options_))
                    .inc();
            }
            return it->second;
        }
    }

    auto config = makeJobConfig(spec);
    // Inner simulations are memoised and must stay byte-identical
    // whether or not the fleet run is instrumented: never hand them
    // the scheduler's registry.
    config.metrics = nullptr;
    // Safe under memoisation: reports are byte-identical at any
    // engine job count, so the memo key need not mention it.
    config.engineJobs = options_.engineJobs;
    config.clusterSpec =
        sim::subsetSpec(options_.node, spec.gpusRequested);
    config.gpuSubset = placement.gpuIds;
    if (!wholeDevices(placement))
        config.envelopes = placement.envelopes;
    if (tracing) {
        config.tracePath = options_.tracePrefix + ".job" +
                           std::to_string(spec.id) + ".seg" +
                           std::to_string(segment_index) + ".json";
    }

    const std::string plan_key = "p" + std::to_string(spec.planId) +
                                 ".s" +
                                 std::to_string(spec.ngramStress);
    auto plan_it = planCache_.find(plan_key);
    if (plan_it == planCache_.end()) {
        plan_it =
            planCache_.emplace(plan_key, buildJobPlan(spec)).first;
    }
    const auto report = core::runSystem(config, plan_it->second);
    ++report_.simulationsRun;
    memo_[key] = report;
    if (options_.metrics != nullptr) {
        options_.metrics
            ->counter("fleet.memo.miss", fleetLabels(options_))
            .inc();
    }
    return report;
}

serve::BatchReplay
FleetScheduler::replayServe(const JobSpec &spec,
                            const core::RunReport &report,
                            Seconds serve_start) const
{
    // The batch service model is calibrated from the simulated
    // forward-only iteration on this placement's envelope: the
    // steady-state iteration latency at the profiling batch size is
    // the full-batch cost; smaller batches shed the per-row share.
    serve::ServiceModel model;
    model.fullBatchLatency = report.avgIterationLatency;
    model.profileBatch = spec.batchPerGpu;
    return serve::replayBatches(
        requestArrivals_[static_cast<std::size_t>(spec.id)],
        spec.window, model, serve_start);
}

void
FleetScheduler::precomputeReferences()
{
    obs::Span span(options_.metrics, "fleet.precompute",
                   fleetLabels(options_));
    // One exclusive whole-device reference run per distinct workload
    // variant: it yields both the demand estimate placement reserves
    // (mean SM/BW utilisation) and the healthy-exclusive service time.
    // The fan-out over the pool is a submission-indexed parallelMap,
    // so results are bit-identical at any thread count.
    std::vector<std::size_t> unique_jobs;
    std::set<std::string> seen;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        if (seen.insert(jobs_[j].variantKey()).second)
            unique_jobs.push_back(j);
        const std::string plan_key =
            "p" + std::to_string(jobs_[j].planId) + ".s" +
            std::to_string(jobs_[j].ngramStress);
        if (planCache_.find(plan_key) == planCache_.end())
            planCache_.emplace(plan_key, buildJobPlan(jobs_[j]));
    }

    auto referenceRun = [&](std::size_t u) {
        const auto &spec = jobs_[unique_jobs[u]];
        auto config = makeJobConfig(spec);
        config.engineJobs = options_.engineJobs;
        config.clusterSpec =
            sim::subsetSpec(options_.node, spec.gpusRequested);
        const std::string plan_key =
            "p" + std::to_string(spec.planId) + ".s" +
            std::to_string(spec.ngramStress);
        return core::runSystem(config, planCache_.at(plan_key));
    };
    if (options_.metrics != nullptr) {
        options_.metrics
            ->counter("fleet.reference_sims", fleetLabels(options_))
            .inc(unique_jobs.size());
    }
    std::vector<core::RunReport> references;
    if (pool_ != nullptr && pool_->threadCount() > 1) {
        references = pool_->parallelMap<core::RunReport>(
            unique_jobs.size(), referenceRun);
    } else {
        for (std::size_t u = 0; u < unique_jobs.size(); ++u)
            references.push_back(referenceRun(u));
    }

    std::map<std::string, DemandEstimate> demand_by_key;
    for (std::size_t u = 0; u < unique_jobs.size(); ++u) {
        const auto &spec = jobs_[unique_jobs[u]];
        const auto &report = references[u];
        ++report_.simulationsRun;
        // Seed the memo with the whole-device entry so an exclusive
        // healthy placement reuses the reference run.
        std::string key = spec.variantKey();
        const auto whole = static_cast<long long>(
            std::llround(1.0 / options_.envelopeQuantum));
        for (int g = 0; g < spec.gpusRequested; ++g) {
            key += "|" + std::to_string(whole) + "," +
                   std::to_string(whole);
        }
        memo_[key] = report;
        DemandEstimate demand;
        demand.sm = std::clamp(report.avgSmUtil, 0.05, 1.0);
        demand.bw = std::clamp(report.avgBwUtil, 0.05, 1.0);
        demand_by_key[spec.variantKey()] = demand;
    }
    demand_.resize(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j)
        demand_[j] = demand_by_key.at(jobs_[j].variantKey());
}

void
FleetScheduler::applyReservation(const JobSpec &spec,
                                 const Placement &placement,
                                 int direction)
{
    // Reservations use the same discounted demand the admission check
    // compares against, so bookkeeping and placement stay consistent.
    const auto &demand = demand_[static_cast<std::size_t>(spec.id)];
    const double scale = options_.placement.demandScale;
    for (int id : placement.gpuIds) {
        auto &gpu = gpus_[static_cast<std::size_t>(id)];
        gpu.smUsed += direction * scale * demand.sm;
        gpu.bwUsed += direction * scale * demand.bw;
        gpu.residents += direction;
        RAP_ASSERT(gpu.residents >= 0, "negative residency on GPU ",
                   id);
        if (gpu.residents == 0) {
            // Clear reservation dust so exact emptiness is restored.
            gpu.smUsed = 0.0;
            gpu.bwUsed = 0.0;
        }
    }
}

void
FleetScheduler::accumulateBusy(Seconds until)
{
    int occupied = 0;
    for (const auto &gpu : gpus_) {
        if (gpu.residents > 0)
            ++occupied;
    }
    report_.busyGpuSeconds +=
        static_cast<double>(occupied) * (until - lastBusyUpdate_);
    lastBusyUpdate_ = until;
}

FleetReport
FleetScheduler::run()
{
    obs::Span run_span(options_.metrics, "fleet.run",
                      fleetLabels(options_));
    precomputeReferences();

    // Catalog attachment. A fresh catalog gets the genesis record
    // committed before any event takes effect; a catalog that already
    // holds one switches this run into resume mode — the loop
    // re-executes every frame from event zero and byte-verifies the
    // recomputed transactions against the durable prefix instead of
    // re-committing them.
    std::uint64_t durable_lsn = 0;
    if (options_.catalog != nullptr) {
        const Json genesis = genesisTransaction();
        if (options_.catalog->state().hasGenesis()) {
            durable_lsn = options_.catalog->state().lastLsn;
            RAP_ASSERT(
                options_.catalog->state().genesis.dump() ==
                    ctrl::Catalog::serializeTransaction(genesis, 1),
                "catalog genesis does not match this run's trace and "
                "options — resuming a different run?");
        } else {
            options_.catalog->commit(genesis);
        }
    }
    const bool logging = options_.catalog != nullptr;
    Json frame_ops = Json::array();
    std::int64_t frame = 0;

    std::priority_queue<Event, std::vector<Event>, EventAfter> events;
    for (const auto &spec : jobs_)
        events.push({spec.arrival, EventKind::Arrival, spec.id, 0});
    for (std::size_t e = 0; e < options_.faults.events.size(); ++e) {
        events.push({options_.faults.events[e].time, EventKind::Degrade,
                     static_cast<int>(e), 0});
    }

    auto startSegment = [&](QueuedJob queued, Placement placement,
                            Seconds now) {
        const auto ji = static_cast<std::size_t>(queued.jobId);
        const auto &spec = jobs_[ji];
        auto &outcome = report_.jobs[ji];
        placement = quantised(std::move(placement));
        const auto report =
            simulate(spec, placement, outcome.placements);
        // A resumed segment pays the process-restart latency before
        // any useful iteration runs (restore cost is already inside
        // the job's composed makespan when it checkpoints).
        const Seconds charge =
            queued.requeues > 0 ? options_.restartOverhead : 0.0;
        RunningJob running;
        Seconds duration = 0.0;
        if (spec.kind == JobKind::Inference) {
            // A serving segment runs until its request trace drains:
            // the batch replay on this envelope's service model sets
            // both the per-request latencies and the finish time.
            running.replay = replayServe(spec, report, now + charge);
            duration =
                std::max(running.replay.lastCompletion - now, charge);
        } else {
            duration = queued.remainingFraction * report.makespan +
                       charge;
        }
        applyReservation(spec, placement, +1);
        running.placement = placement;
        running.segmentStart = now;
        running.segmentDuration = duration;
        running.restartCharge = charge;
        running.remainingAtStart = queued.remainingFraction;
        running.generation = outcome.placements;
        running_[queued.jobId] = running;
        if (logging) {
            // The placement-decision record: granted devices plus the
            // exact (quantised) envelope reservation the job holds.
            Json op = Json::object();
            op.set("op", Json("place"));
            op.set("job", Json(spec.id));
            op.set("segment", Json(running.generation));
            op.set("start", Json(now));
            op.set("duration", Json(duration));
            op.set("remaining", Json(queued.remainingFraction));
            op.set("placement", placement.toJson());
            frame_ops.push(std::move(op));
        }
        if (options_.metrics != nullptr) {
            options_.metrics
                ->counter("fleet.placements", fleetLabels(options_))
                .inc();
            obs::Labels seg_labels = fleetLabels(options_);
            seg_labels.set("job", std::to_string(spec.id));
            options_.metrics->recordSimSpan(
                "fleet.segment", seg_labels, now, now + duration);
        }
        ++outcome.placements;
        if (outcome.firstStart < 0.0)
            outcome.firstStart = now;
        outcome.requeues = queued.requeues;
        outcome.lastGpus = placement.gpuIds;
        outcome.demand = demand_[ji];
        outcome.report = report;
        events.push({now + duration, EventKind::Finish, queued.jobId,
                     running.generation});
    };

    auto placeScan = [&](Seconds now, const PlacementOptions &opts,
                         bool enforce_slo) {
        std::size_t i = 0;
        while (i < queue_.size()) {
            const auto &queued = queue_.jobs()[i];
            const auto ji = static_cast<std::size_t>(queued.jobId);
            const auto &spec = jobs_[ji];
            const auto placement = placeJob(
                opts, gpus_, spec.gpusRequested, demand_[ji]);
            if (!placement) {
                ++i; // backfill: later jobs may still fit
                continue;
            }
            if (enforce_slo && spec.kind == JobKind::Inference) {
                // SLO admission gate: project the serving replay on
                // the candidate envelope; a placement whose projected
                // tail latency violates the SLO is skipped — the job
                // stays queued and is re-planned on a later scan,
                // exactly like a degraded training job. Whole-device
                // grants are never gated (nothing shares them), and
                // the final relaxed scan bypasses the gate so the
                // fleet always drains.
                const auto candidate = quantised(*placement);
                if (!wholeDevices(candidate)) {
                    const auto projection = simulate(
                        spec, candidate, report_.jobs[ji].placements);
                    const Seconds charge =
                        queued.requeues > 0 ? options_.restartOverhead
                                            : 0.0;
                    const auto replay =
                        replayServe(spec, projection, now + charge);
                    if (!replay.latencies.empty() &&
                        rap::p99(replay.latencies) > spec.sloLatency) {
                        if (options_.metrics != nullptr) {
                            options_.metrics
                                ->counter("fleet.slo_rejections",
                                          fleetLabels(options_))
                                .inc();
                        }
                        ++i;
                        continue;
                    }
                }
            }
            startSegment(queue_.take(i), *placement, now);
        }
    };

    while (!events.empty()) {
        const Event event = events.top();
        events.pop();
        frame_ops = Json::array();
        accumulateBusy(event.time);
        switch (event.kind) {
          case EventKind::Arrival: {
            queue_.push({event.id, 1.0, event.time, 0});
            if (logging) {
                Json op = Json::object();
                op.set("op", Json("admit"));
                op.set("job", Json(event.id));
                frame_ops.push(std::move(op));
            }
            break;
          }
          case EventKind::Finish: {
            const auto it = running_.find(event.id);
            if (it == running_.end() ||
                it->second.generation != event.generation) {
                break; // stale: the segment was preempted
            }
            const auto ji = static_cast<std::size_t>(event.id);
            auto &outcome = report_.jobs[ji];
            outcome.serviceTime += it->second.segmentDuration;
            outcome.finish = event.time;
            outcome.report.submittedAt = jobs_[ji].arrival;
            outcome.report.startedAt = outcome.firstStart;
            outcome.report.finishedAt = event.time;
            if (jobs_[ji].kind == JobKind::Inference) {
                const auto &replay = it->second.replay;
                outcome.serve = serve::computeSloStats(
                    replay.latencies, replay.batchSizes.size(),
                    jobs_[ji].sloLatency);
                pooledLatencies_.insert(pooledLatencies_.end(),
                                        replay.latencies.begin(),
                                        replay.latencies.end());
                if (options_.metrics != nullptr) {
                    const auto labels = fleetLabels(options_);
                    options_.metrics->counter("serve.requests", labels)
                        .inc(outcome.serve->requests);
                    options_.metrics->counter("serve.batches", labels)
                        .inc(outcome.serve->batches);
                    options_.metrics
                        ->counter("serve.slo_attained", labels)
                        .inc(outcome.serve->attained);
                    // Bucket edges span the sub-millisecond service
                    // floor up to SLO-busting tails (100 us .. 100 ms).
                    static const std::vector<double> kLatencyEdges{
                        0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005,
                        0.01,   0.02,   0.05,   0.1};
                    auto &latency_hist = options_.metrics->histogram(
                        "serve.request_latency_seconds", kLatencyEdges,
                        labels);
                    for (Seconds latency : replay.latencies)
                        latency_hist.observe(latency);
                    static const std::vector<double> kBatchEdges{
                        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                        256.0};
                    auto &batch_hist = options_.metrics->histogram(
                        "serve.batch_size", kBatchEdges, labels);
                    for (int batch : replay.batchSizes)
                        batch_hist.observe(static_cast<double>(batch));
                }
            }
            applyReservation(jobs_[ji], it->second.placement, -1);
            running_.erase(it);
            if (logging) {
                Json op = Json::object();
                op.set("op", Json("finish"));
                op.set("job", Json(event.id));
                frame_ops.push(std::move(op));
            }
            break;
          }
          case EventKind::Degrade: {
            const auto &fault =
                options_.faults
                    .events[static_cast<std::size_t>(event.id)];
            const bool crash =
                fault.kind == sim::FaultKind::DeviceCrash;
            const int first = fault.device < 0 ? 0 : fault.device;
            const int last = fault.device < 0
                                 ? options_.node.gpuCount - 1
                                 : fault.device;
            for (int g = first; g <= last; ++g) {
                auto &gpu = gpus_[static_cast<std::size_t>(g)];
                if (crash) {
                    gpu.alive = false;
                } else if (fault.kind == sim::FaultKind::SmDegrade) {
                    // Degradations compose by min: plain assignment
                    // let a later, milder fault *raise* an already
                    // worse device back to stale healthier capacity,
                    // which admission would then happily fill.
                    gpu.healthSm = std::min(gpu.healthSm, fault.factor);
                } else {
                    gpu.healthBw = std::min(gpu.healthBw, fault.factor);
                }
            }
            if (logging) {
                Json op = Json::object();
                op.set("op", Json("fault"));
                op.set("fault", Json(sim::faultKindId(fault.kind)));
                op.set("device", Json(fault.device));
                op.set("factor", Json(fault.factor));
                frame_ops.push(std::move(op));
            }
            // A crash always evicts residents (the device is gone);
            // degradations only preempt when the policy says so.
            if (!crash && !options_.requeueOnDegrade)
                break;
            // Preempt every job resident on an affected GPU —
            // including co-located survivors sharing a crashed
            // device: credit the last *durable* fraction, requeue at
            // the front (highest id first, so the lowest id ends up
            // frontmost), and let the placement scan re-place — and
            // thereby replan — it against the surviving envelopes.
            std::vector<int> affected;
            for (const auto &[job_id, running] : running_) {
                for (int id : running.placement.gpuIds) {
                    if (id >= first && id <= last) {
                        affected.push_back(job_id);
                        break;
                    }
                }
            }
            for (auto it = affected.rbegin(); it != affected.rend();
                 ++it) {
                const int job_id = *it;
                const auto ji = static_cast<std::size_t>(job_id);
                auto &running = running_.at(job_id);
                const auto &spec = jobs_[ji];
                auto &outcome = report_.jobs[ji];
                const Seconds elapsed =
                    event.time - running.segmentStart;
                // Fraction of this segment's *work* completed; the
                // restart charge at its head advances nothing.
                const Seconds work_time =
                    running.segmentDuration - running.restartCharge;
                const double per =
                    work_time > 0.0
                        ? std::clamp(
                              (elapsed - running.restartCharge) /
                                  work_time,
                              0.0, 1.0)
                        : 1.0;
                // Progress only survives preemption once a checkpoint
                // seals it: round the completed fraction down to the
                // last checkpoint boundary. A job that never
                // checkpoints has no durable point and restarts from
                // scratch — crediting the raw elapsed fraction would
                // resume from state nobody saved.
                const double before = 1.0 - running.remainingAtStart;
                const double progress =
                    before + running.remainingAtStart * per;
                double durable = 0.0;
                if (spec.checkpointInterval > 0) {
                    const double chk_frac =
                        static_cast<double>(spec.checkpointInterval) /
                        static_cast<double>(spec.iterations);
                    durable = std::min(
                        progress, std::floor(progress / chk_frac +
                                             1e-9) *
                                      chk_frac);
                }
                if (logging && durable > lastDurable_[ji]) {
                    // The durable fraction advanced: seal a manifest
                    // so the catalog records exactly which checkpoint
                    // the requeued job restarts from.
                    core::CheckpointManifest manifest;
                    manifest.jobId = spec.id;
                    manifest.sequence = sealCount_[ji];
                    manifest.fraction = durable;
                    manifest.sealedAt = event.time;
                    manifest.segment = running.generation;
                    ++sealCount_[ji];
                    lastDurable_[ji] = durable;
                    Json op = Json::object();
                    op.set("op", Json("seal"));
                    op.set("job", Json(spec.id));
                    op.set("manifest", manifest.toJson());
                    frame_ops.push(std::move(op));
                }
                // The segment slice that advanced the job from
                // `before` to `durable` is kept; everything else it
                // ran here — volatile iterations plus the restart
                // charge — is lost and will be re-run.
                const Seconds credited =
                    running.remainingAtStart > 0.0
                        ? std::max(0.0, durable - before) /
                              running.remainingAtStart * work_time
                        : elapsed;
                outcome.lostWork +=
                    std::max(0.0, elapsed - credited);
                QueuedJob queued;
                queued.jobId = job_id;
                queued.remainingFraction = 1.0 - durable;
                queued.enqueuedAt = event.time;
                queued.requeues = outcome.requeues + 1;
                outcome.serviceTime += elapsed;
                if (crash)
                    ++outcome.crashRequeues;
                applyReservation(spec, running.placement, -1);
                running_.erase(job_id);
                if (queued.remainingFraction <= 0.0) {
                    // Preempted at the exact finish instant with
                    // every iteration sealed: done.
                    outcome.finish = event.time;
                    outcome.report.submittedAt = spec.arrival;
                    outcome.report.startedAt = outcome.firstStart;
                    outcome.report.finishedAt = event.time;
                    if (logging) {
                        Json op = Json::object();
                        op.set("op", Json("finish"));
                        op.set("job", Json(job_id));
                        frame_ops.push(std::move(op));
                    }
                    continue;
                }
                queue_.pushFront(queued);
                if (logging) {
                    Json op = Json::object();
                    op.set("op", Json("preempt"));
                    op.set("job", Json(job_id));
                    op.set("remaining",
                           Json(queued.remainingFraction));
                    frame_ops.push(std::move(op));
                }
                if (options_.metrics != nullptr) {
                    options_.metrics
                        ->counter("fleet.requeues",
                                  fleetLabels(options_))
                        .inc();
                    if (crash) {
                        options_.metrics
                            ->counter("fleet.crash_requeues",
                                      fleetLabels(options_))
                            .inc();
                    }
                }
            }
            break;
          }
        }
        if (options_.metrics != nullptr) {
            // Pre-scan depth: the backlog this event left to admit.
            options_.metrics
                ->gauge("fleet.queue.max_depth", fleetLabels(options_))
                .max(static_cast<double>(queue_.size()));
        }
        placeScan(event.time, options_.placement,
                  /*enforce_slo=*/true);
        if (events.empty() && running_.empty() && !queue_.empty()) {
            // Every remaining event has drained but jobs are still
            // queued: the cluster is idle yet no GPU passes the
            // admission bar (e.g. degraded below minEnvelope). Relax
            // the co-location guards so the fleet always drains.
            auto relaxed = options_.placement;
            relaxed.minEnvelope = 0.0;
            relaxed.headroom = 1.0;
            if (options_.metrics != nullptr) {
                options_.metrics
                    ->counter("fleet.relaxed_scans",
                              fleetLabels(options_))
                    .inc();
            }
            placeScan(event.time, relaxed, /*enforce_slo=*/false);
            RAP_ASSERT(queue_.empty() || !running_.empty(),
                       "fleet deadlock: ", queue_.size(),
                       " jobs unplaceable on an idle cluster");
        }
        if (options_.metrics != nullptr) {
            // Post-scan depth: jobs the policy could not admit yet.
            options_.metrics
                ->series("fleet.queue_depth", fleetLabels(options_))
                .append(event.time,
                        static_cast<double>(queue_.size()));
        }
        if (options_.catalog != nullptr) {
            Json txn = Json::object();
            txn.set("kind", Json("frame"));
            txn.set("frame", Json(frame));
            txn.set("time", Json(event.time));
            Json ev = Json::object();
            ev.set("kind", Json(static_cast<int>(event.kind)));
            ev.set("id", Json(event.id));
            ev.set("generation", Json(event.generation));
            txn.set("event", std::move(ev));
            txn.set("ops", std::move(frame_ops));
            const auto lsn = static_cast<std::uint64_t>(frame) + 2;
            if (lsn <= durable_lsn) {
                // This frame was durable before the crash; the
                // resumed loop must recompute it bit-for-bit.
                // Compacted frames left no bytes to compare — the
                // recovered WAL tail did.
                const auto &tail = options_.catalog->recoveredTail();
                const auto it = tail.find(lsn);
                RAP_ASSERT(
                    it == tail.end() ||
                        ctrl::Catalog::serializeTransaction(txn, lsn) ==
                            it->second,
                    "resume diverged from the committed WAL at frame ",
                    frame);
            } else {
                // Commit-before-effect: the record is in the log (and
                // fsync'd when configured) before the loop moves past
                // this event — a kill here replays the frame, never
                // invents or loses one.
                options_.catalog->commit(std::move(txn));
            }
            ++frame;
            if (options_.stopAfterEvents > 0 &&
                frame >= options_.stopAfterEvents &&
                !events.empty()) {
                if (options_.stopMode == StopMode::HardKill) {
                    // The deterministic "power cut" the resume gate
                    // exercises: no destructors, no flushes, exit
                    // code 137.
                    std::raise(SIGKILL);
                }
                stopped_ = true;
                report_.catalogDegraded = options_.catalog->degraded();
                return report_;
            }
        }
    }

    RAP_ASSERT(queue_.empty() && running_.empty(),
               "fleet drained with work outstanding");
    if (options_.catalog != nullptr && options_.catalog->degraded()) {
        // The run itself is fine — the numbers below are exact — but
        // nothing past the last durable commit survives a restart.
        report_.catalogDegraded = true;
        logWarn("fleet run finished with a degraded catalog: results "
                "are complete but the run is not resumable");
    }
    Seconds makespan = 0.0;
    for (const auto &outcome : report_.jobs)
        makespan = std::max(makespan, outcome.finish);
    report_.makespan = makespan;
    // Pooled request-latency percentiles need the raw latencies, which
    // only the scheduler holds — finalize() recomputes everything else
    // and leaves these intact.
    if (!pooledLatencies_.empty()) {
        report_.serveP50Latency = rap::p50(pooledLatencies_);
        report_.serveP95Latency = rap::p95(pooledLatencies_);
        report_.serveP99Latency = rap::p99(pooledLatencies_);
    }
    return report_;
}

} // namespace rap::fleet
