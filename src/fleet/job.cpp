#include "fleet/job.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace rap::fleet {

namespace {

/** Pick a GPU request: skewed toward small jobs, capped at the node. */
int
drawGpuRequest(Rng &rng, int max_gpus)
{
    // Weights over {1, 2, 4, 8}: most jobs are small, which is where
    // envelope-shared placement wins; the occasional full-node job
    // keeps the queue honest.
    static constexpr int kSizes[] = {1, 2, 4, 8};
    static constexpr double kWeights[] = {0.40, 0.30, 0.20, 0.10};
    const double u = rng.uniform();
    double acc = 0.0;
    int pick = 1;
    for (std::size_t i = 0; i < 4; ++i) {
        acc += kWeights[i];
        if (u < acc) {
            pick = kSizes[i];
            break;
        }
    }
    return std::min(pick, max_gpus);
}

} // namespace

std::string
jobKindId(JobKind kind)
{
    switch (kind) {
      case JobKind::Training:
        return "training";
      case JobKind::Inference:
        return "inference";
    }
    RAP_PANIC("unknown job kind");
}

JobKind
jobKindFromId(const std::string &id)
{
    if (id == "training")
        return JobKind::Training;
    if (id == "inference")
        return JobKind::Inference;
    RAP_FATAL("unknown job-kind id '", id, "'");
}

std::string
JobSpec::variantKey() const
{
    // The request trace / batching window are replayed analytically
    // outside the inner simulation, so they stay out of the key; the
    // kind is in because it flips the iteration to forward-only.
    return "sys" + std::to_string(static_cast<int>(system)) + ".p" +
           std::to_string(planId) + ".s" + std::to_string(ngramStress) +
           ".b" + std::to_string(batchPerGpu) + ".i" +
           std::to_string(iterations) + ".g" +
           std::to_string(gpusRequested) + ".c" +
           std::to_string(checkpointInterval) + ".k" +
           std::to_string(static_cast<int>(kind));
}

Json
JobSpec::toJson() const
{
    Json json = Json::object();
    json.set("id", Json(id));
    json.set("name", Json(name));
    json.set("arrival", Json(arrival));
    json.set("gpusRequested", Json(gpusRequested));
    json.set("planId", Json(planId));
    json.set("ngramStress", Json(ngramStress));
    json.set("batchPerGpu", Json(batchPerGpu));
    json.set("iterations", Json(iterations));
    json.set("system", Json(core::systemId(system)));
    json.set("checkpointInterval", Json(checkpointInterval));
    json.set("kind", Json(jobKindId(kind)));
    Json requests_json = Json::object();
    requests_json.set("qps", Json(requests.qps));
    requests_json.set("qpsAmplitude", Json(requests.qpsAmplitude));
    requests_json.set("qpsPeriod", Json(requests.qpsPeriod));
    requests_json.set("duration", Json(requests.duration));
    // Request seeds are masked to 53 bits at synthesis, so the double
    // round trip below is exact.
    requests_json.set("seed", Json(requests.seed));
    json.set("requests", std::move(requests_json));
    Json window_json = Json::object();
    window_json.set("maxBatch", Json(window.maxBatch));
    window_json.set("maxWait", Json(window.maxWait));
    json.set("window", std::move(window_json));
    json.set("sloLatency", Json(sloLatency));
    return json;
}

JobSpec
JobSpec::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("JobSpec JSON must be an object");
    JobSpec spec;
    spec.id = static_cast<int>(json.at("id").asDouble());
    spec.name = json.at("name").asString();
    spec.arrival = json.at("arrival").asDouble();
    spec.gpusRequested =
        static_cast<int>(json.at("gpusRequested").asDouble());
    spec.planId = static_cast<int>(json.at("planId").asDouble());
    spec.ngramStress =
        static_cast<int>(json.at("ngramStress").asDouble());
    spec.batchPerGpu =
        static_cast<std::int64_t>(json.at("batchPerGpu").asDouble());
    spec.iterations =
        static_cast<int>(json.at("iterations").asDouble());
    const auto system =
        core::systemFromId(json.at("system").asString());
    if (!system) {
        RAP_FATAL("unknown system id '", json.at("system").asString(),
                  "' in JobSpec JSON");
    }
    spec.system = *system;
    spec.checkpointInterval =
        static_cast<int>(json.at("checkpointInterval").asDouble());
    spec.kind = jobKindFromId(json.at("kind").asString());
    const Json &requests = json.at("requests");
    spec.requests.qps = requests.at("qps").asDouble();
    spec.requests.qpsAmplitude =
        requests.at("qpsAmplitude").asDouble();
    spec.requests.qpsPeriod = requests.at("qpsPeriod").asDouble();
    spec.requests.duration = requests.at("duration").asDouble();
    spec.requests.seed = static_cast<std::uint64_t>(
        requests.at("seed").asDouble());
    const Json &window = json.at("window");
    spec.window.maxBatch =
        static_cast<int>(window.at("maxBatch").asDouble());
    spec.window.maxWait = window.at("maxWait").asDouble();
    spec.sloLatency = json.at("sloLatency").asDouble();
    return spec;
}

std::vector<JobSpec>
makeArrivalTrace(const ArrivalTraceOptions &options)
{
    RAP_ASSERT(options.jobCount >= 1, "trace needs at least one job");
    RAP_ASSERT(options.maxGpusPerJob >= 1,
               "jobs need at least one GPU");
    Rng rng(options.seed);
    std::vector<JobSpec> jobs;
    jobs.reserve(static_cast<std::size_t>(options.jobCount));
    Seconds clock = 0.0;
    for (int j = 0; j < options.jobCount; ++j) {
        JobSpec spec;
        spec.id = j;
        // Poisson arrivals: exponential gaps via inverse transform,
        // hardened so a u == 0 draw or a denormal gap absorbed by the
        // running sum can never stack two jobs on one timestamp —
        // downstream event ordering keys on (time, kind, id) and a
        // collapsed clock silently reorders admissions.
        const Seconds prev = clock;
        clock += exponentialGap(rng.uniform(), options.meanInterarrival);
        if (clock <= prev)
            clock = std::nextafter(
                prev, std::numeric_limits<double>::infinity());
        spec.arrival = clock;
        spec.gpusRequested = drawGpuRequest(rng, options.maxGpusPerJob);
        spec.planId = static_cast<int>(
            rng.uniformInt(0, options.tiny ? 1 : 3));
        spec.batchPerGpu = rng.bernoulli(0.5) ? 2048 : 4096;
        spec.iterations =
            options.tiny ? 8 : 10 + static_cast<int>(rng.uniformInt(0, 8));
        spec.ngramStress = 0;
        spec.system = core::System::Rap;
        spec.checkpointInterval = options.checkpointInterval;
        spec.name = "job" + std::to_string(j) + ".p" +
                    std::to_string(spec.planId) + "x" +
                    std::to_string(spec.gpusRequested);
        jobs.push_back(std::move(spec));
    }

    if (options.serving.jobCount > 0) {
        const auto &serving = options.serving;
        RAP_ASSERT(serving.gpusPerJob >= 1 &&
                       serving.gpusPerJob <= options.maxGpusPerJob,
                   "inference jobs must fit the node");
        // Inference submissions ride their own Poisson stream (own
        // seed, own clock) and are merged by arrival: the serving mix
        // can be scaled up or down without perturbing the training
        // trace.
        Rng srng(serving.seed);
        Seconds sclock = 0.0;
        for (int j = 0; j < serving.jobCount; ++j) {
            JobSpec spec;
            const Seconds prev = sclock;
            sclock +=
                exponentialGap(srng.uniform(), serving.meanInterarrival);
            if (sclock <= prev)
                sclock = std::nextafter(
                    prev, std::numeric_limits<double>::infinity());
            spec.arrival = sclock;
            spec.kind = JobKind::Inference;
            spec.gpusRequested = serving.gpusPerJob;
            spec.planId = static_cast<int>(
                srng.uniformInt(0, options.tiny ? 1 : 3));
            spec.batchPerGpu = serving.batchPerGpu;
            spec.iterations = serving.iterations;
            spec.ngramStress = 0;
            spec.system = core::System::Rap;
            spec.checkpointInterval = 0;
            spec.requests.qps = serving.qps;
            spec.requests.qpsAmplitude = serving.qpsAmplitude;
            spec.requests.qpsPeriod = serving.qpsPeriod;
            spec.requests.duration = serving.duration;
            // Per-job request seed, masked to 53 bits so it survives
            // the JSON round trip (numbers are doubles) exactly.
            spec.requests.seed = srng.next() & ((1ULL << 53) - 1);
            spec.window.maxBatch = serving.maxBatch;
            spec.window.maxWait = serving.maxWait;
            spec.sloLatency = serving.sloLatency;
            spec.name = "srv" + std::to_string(j) + ".p" +
                        std::to_string(spec.planId) + "x" +
                        std::to_string(spec.gpusRequested);
            jobs.push_back(std::move(spec));
        }
        // Stable merge: the training stream sits first, so it wins
        // the (practically impossible) arrival tie deterministically.
        std::stable_sort(jobs.begin(), jobs.end(),
                         [](const JobSpec &a, const JobSpec &b) {
                             return a.arrival < b.arrival;
                         });
        for (std::size_t j = 0; j < jobs.size(); ++j)
            jobs[j].id = static_cast<int>(j);
    }
    return jobs;
}

preproc::PreprocPlan
buildJobPlan(const JobSpec &spec)
{
    auto plan = preproc::makePlan(spec.planId);
    if (spec.ngramStress > 0)
        preproc::addNgramStress(plan, spec.ngramStress);
    return plan;
}

core::SystemConfig
makeJobConfig(const JobSpec &spec)
{
    core::SystemConfig config;
    config.system = spec.system;
    config.gpuCount = spec.gpusRequested;
    config.batchPerGpu = spec.batchPerGpu;
    config.iterations = spec.iterations;
    config.warmup = std::min(3, spec.iterations - 2);
    config.inference = spec.kind == JobKind::Inference;
    // Inner simulations stay serial (engineJobs 1): they are memoised
    // on workload/envelope keys that must not depend on execution
    // machinery, and fleet-level parallelism already comes from the
    // memo cache plus the planning pool. The DES engine would produce
    // byte-identical reports at any job count regardless — this keeps
    // the memo keys' meaning unchanged.
    config.engineJobs = 1;
    if (spec.checkpointInterval > 0) {
        // The inner simulation measures the drain cost and composes
        // the checkpoint overhead into its makespan; fleet crash
        // events themselves stay on the fleet clock.
        config.checkpoint.mode = core::CheckpointMode::FixedInterval;
        config.checkpoint.interval = spec.checkpointInterval;
    }
    return config;
}

} // namespace rap::fleet
