#include "fleet/job.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace rap::fleet {

namespace {

/** Pick a GPU request: skewed toward small jobs, capped at the node. */
int
drawGpuRequest(Rng &rng, int max_gpus)
{
    // Weights over {1, 2, 4, 8}: most jobs are small, which is where
    // envelope-shared placement wins; the occasional full-node job
    // keeps the queue honest.
    static constexpr int kSizes[] = {1, 2, 4, 8};
    static constexpr double kWeights[] = {0.40, 0.30, 0.20, 0.10};
    const double u = rng.uniform();
    double acc = 0.0;
    int pick = 1;
    for (std::size_t i = 0; i < 4; ++i) {
        acc += kWeights[i];
        if (u < acc) {
            pick = kSizes[i];
            break;
        }
    }
    return std::min(pick, max_gpus);
}

} // namespace

std::string
JobSpec::variantKey() const
{
    return "sys" + std::to_string(static_cast<int>(system)) + ".p" +
           std::to_string(planId) + ".s" + std::to_string(ngramStress) +
           ".b" + std::to_string(batchPerGpu) + ".i" +
           std::to_string(iterations) + ".g" +
           std::to_string(gpusRequested) + ".c" +
           std::to_string(checkpointInterval);
}

std::vector<JobSpec>
makeArrivalTrace(const ArrivalTraceOptions &options)
{
    RAP_ASSERT(options.jobCount >= 1, "trace needs at least one job");
    RAP_ASSERT(options.maxGpusPerJob >= 1,
               "jobs need at least one GPU");
    Rng rng(options.seed);
    std::vector<JobSpec> jobs;
    jobs.reserve(static_cast<std::size_t>(options.jobCount));
    Seconds clock = 0.0;
    for (int j = 0; j < options.jobCount; ++j) {
        JobSpec spec;
        spec.id = j;
        // Poisson arrivals: exponential gaps via inverse transform.
        clock += -options.meanInterarrival *
                 std::log(1.0 - rng.uniform());
        spec.arrival = clock;
        spec.gpusRequested = drawGpuRequest(rng, options.maxGpusPerJob);
        spec.planId = static_cast<int>(
            rng.uniformInt(0, options.tiny ? 1 : 3));
        spec.batchPerGpu = rng.bernoulli(0.5) ? 2048 : 4096;
        spec.iterations =
            options.tiny ? 8 : 10 + static_cast<int>(rng.uniformInt(0, 8));
        spec.ngramStress = 0;
        spec.system = core::System::Rap;
        spec.checkpointInterval = options.checkpointInterval;
        spec.name = "job" + std::to_string(j) + ".p" +
                    std::to_string(spec.planId) + "x" +
                    std::to_string(spec.gpusRequested);
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

preproc::PreprocPlan
buildJobPlan(const JobSpec &spec)
{
    auto plan = preproc::makePlan(spec.planId);
    if (spec.ngramStress > 0)
        preproc::addNgramStress(plan, spec.ngramStress);
    return plan;
}

core::SystemConfig
makeJobConfig(const JobSpec &spec)
{
    core::SystemConfig config;
    config.system = spec.system;
    config.gpuCount = spec.gpusRequested;
    config.batchPerGpu = spec.batchPerGpu;
    config.iterations = spec.iterations;
    config.warmup = std::min(3, spec.iterations - 2);
    if (spec.checkpointInterval > 0) {
        // The inner simulation measures the drain cost and composes
        // the checkpoint overhead into its makespan; fleet crash
        // events themselves stay on the fleet clock.
        config.checkpoint.mode = core::CheckpointMode::FixedInterval;
        config.checkpoint.interval = spec.checkpointInterval;
    }
    return config;
}

} // namespace rap::fleet
