/**
 * @file
 * Fleet-level metrics: per-job outcomes and their aggregation.
 *
 * The scheduler fills one JobOutcome per job (lifecycle timestamps,
 * placements, the last segment's RunReport) and FleetReport::finalize
 * reduces them into the numbers a cluster operator compares policies
 * by: the JCT distribution, queueing delay, makespan, and cluster-wide
 * resource utilisation. Everything is computed in job-id order from
 * exact doubles, so equal schedules render byte-identical summaries.
 */

#ifndef RAP_FLEET_REPORT_HPP
#define RAP_FLEET_REPORT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "fleet/job.hpp"
#include "fleet/placement.hpp"
#include "serve/slo.hpp"

namespace rap::fleet {

/** Lifecycle record of one job. */
struct JobOutcome
{
    JobSpec spec;
    /** First placement time; < 0 while never started. */
    Seconds firstStart = -1.0;
    /** Completion time; < 0 while unfinished. */
    Seconds finish = -1.0;
    /** Times the job was placed (1 + requeues). */
    int placements = 0;
    /** Preemptions caused by GPU degradation or crashes. */
    int requeues = 0;
    /** Preemptions caused by fail-stop GPU crashes specifically. */
    int crashRequeues = 0;
    /** Total time spent actually running, across segments. */
    Seconds serviceTime = 0.0;
    /**
     * Service time discarded at preemptions: work past the last
     * durable checkpoint, plus wasted restart charges.
     */
    Seconds lostWork = 0.0;
    /** Physical GPUs of the final placement. */
    std::vector<int> lastGpus;
    /** Estimated per-GPU demand used by placement. */
    DemandEstimate demand;
    /**
     * The final segment's single-job report, with the fleet lifecycle
     * timestamps (submittedAt / startedAt / finishedAt) filled in.
     */
    core::RunReport report;
    /**
     * Inference jobs only: the serving window's latency/SLO summary
     * (absent for training jobs and for inference jobs that never
     * completed a serving segment).
     */
    std::optional<serve::SloStats> serve;

    /** @return Arrival-to-finish time on the fleet clock. */
    Seconds jobCompletionTime() const { return finish - spec.arrival; }

    /** @return Time spent waiting before the first placement. */
    Seconds queueingDelay() const { return firstStart - spec.arrival; }
};

/** Aggregated outcome of one fleet run. */
struct FleetReport
{
    PlacementPolicy policy = PlacementPolicy::RapShared;
    /** Physical GPUs in the node. */
    int gpuCount = 0;
    /** Outcomes in job-id order. */
    std::vector<JobOutcome> jobs;
    /** Fleet clock when the last job finished. */
    Seconds makespan = 0.0;
    /** Total preemptions across jobs. */
    int requeues = 0;
    /** Preemptions caused by fail-stop crashes, across jobs. */
    int crashRequeues = 0;
    /** Distinct single-job simulations executed (memo misses). */
    int simulationsRun = 0;
    /**
     * Integrated GPU-seconds with at least one resident job, filled
     * by the scheduler's event loop (drives gpuOccupancy).
     */
    Seconds busyGpuSeconds = 0.0;
    /**
     * True when the catalog disk died past its retry budget mid-run
     * and the scheduler finished in flagged in-memory mode: the
     * numbers are real, but the run is not resumable.
     */
    bool catalogDegraded = false;

    // Aggregates, valid after finalize().
    Seconds meanJct = 0.0;
    Seconds p50Jct = 0.0;
    Seconds p95Jct = 0.0;
    Seconds maxJct = 0.0;
    Seconds meanQueueingDelay = 0.0;
    /** Demand-weighted SM utilisation of the whole node over the run. */
    double clusterSmUtil = 0.0;
    /** Demand-weighted bandwidth utilisation of the node. */
    double clusterBwUtil = 0.0;
    /** Mean fraction of GPUs hosting at least one job. */
    double gpuOccupancy = 0.0;
    /** Service time that was discarded and re-run, across jobs. */
    Seconds lostWork = 0.0;
    /** Service time that advanced durable progress (service - lost). */
    Seconds goodputSeconds = 0.0;

    // Serving aggregates across inference jobs; the counts are 0 and
    // the optionals absent when the trace had no inference jobs.
    /** Requests served, across inference jobs. */
    std::uint64_t serveRequests = 0;
    /** Batches launched, across inference jobs. */
    std::uint64_t serveBatches = 0;
    /** Requests that finished within their SLO, across jobs. */
    std::uint64_t serveAttained = 0;
    /** Fraction of requests within SLO (absent without requests). */
    std::optional<double> serveAttainment;
    /** SLO-attained requests per second of makespan. */
    std::optional<double> serveGoodputRps;
    /** Pooled median request latency across inference jobs. */
    std::optional<Seconds> serveP50Latency;
    /** Pooled 95th-percentile request latency. */
    std::optional<Seconds> serveP95Latency;
    /** Pooled 99th-percentile (tail) request latency. */
    std::optional<Seconds> serveP99Latency;

    /**
     * Reduce per-job outcomes into the aggregate fields. The pooled
     * serve percentiles are filled by the scheduler (it holds the
     * per-request latencies); finalize recomputes every aggregate
     * derivable from the outcomes alone and leaves them intact.
     */
    void finalize();

    /** @return Deterministic multi-line summary (bench/CI diffable). */
    std::string renderSummary() const;

    /** @return Deterministic per-job table. */
    std::string renderJobs() const;

    /**
     * Serialize the whole report (specs, outcomes, aggregates) — the
     * single source of truth for fleet artifacts; CI determinism diffs
     * read this, never scraped stdout. Round-trips with fromJson.
     */
    Json toJson() const;

    /** Rebuild a report from toJson() output; fatal on bad shape. */
    static FleetReport fromJson(const Json &json);
};

} // namespace rap::fleet

#endif // RAP_FLEET_REPORT_HPP
