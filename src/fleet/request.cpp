#include "fleet/request.hpp"

#include <cmath>

#include "common/log.hpp"

namespace rap::fleet {

core::ValidationResult
FleetRequest::validate() const
{
    core::ValidationResult result;
    const int gpu_count = options_.node.gpuCount;
    if (gpu_count < 1)
        result.addError("node.gpuCount", "node needs at least one GPU");
    if (jobs_.empty())
        result.addError("jobs", "fleet needs at least one job");
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        const auto &spec = jobs_[j];
        const std::string field = "jobs[" + std::to_string(j) + "]";
        if (spec.id != static_cast<int>(j)) {
            result.addError(field + ".id",
                            "job ids must be dense and ordered "
                            "(expected " +
                                std::to_string(j) + ", found " +
                                std::to_string(spec.id) + ")");
        }
        if (spec.gpusRequested < 1 ||
            (gpu_count >= 1 && spec.gpusRequested > gpu_count)) {
            result.addError(field + ".gpusRequested",
                            "requests " +
                                std::to_string(spec.gpusRequested) +
                                " GPUs on a " +
                                std::to_string(gpu_count) +
                                "-GPU node");
        }
        if (spec.kind == JobKind::Inference) {
            if (!(spec.sloLatency > 0.0)) {
                result.addError(field + ".sloLatency",
                                "inference jobs need a positive SLO "
                                "latency");
            }
            if (spec.checkpointInterval != 0) {
                result.addError(field + ".checkpointInterval",
                                "inference jobs have no training "
                                "state to checkpoint");
            }
        }
    }
    if (!(options_.envelopeQuantum > 0.0 &&
          options_.envelopeQuantum <= 1.0)) {
        result.addError("envelopeQuantum", "must be in (0, 1]");
    }
    if (!(options_.restartOverhead >= 0.0) ||
        !std::isfinite(options_.restartOverhead)) {
        result.addError("restartOverhead",
                        "must be finite and non-negative");
    }
    if (!(options_.placement.headroom > 0.0 &&
          options_.placement.headroom <= 1.0)) {
        result.addError("placement.headroom", "must be in (0, 1]");
    }
    if (!(options_.placement.minEnvelope >= 0.0 &&
          options_.placement.minEnvelope <= 1.0)) {
        result.addError("placement.minEnvelope", "must be in [0, 1]");
    }
    if (!(options_.placement.demandScale > 0.0 &&
          options_.placement.demandScale <= 1.0)) {
        result.addError("placement.demandScale", "must be in (0, 1]");
    }
    if (options_.engineJobs < 0) {
        result.addError("engineJobs",
                        "must be >= 0 (0 = hardware concurrency)");
    }
    for (std::size_t e = 0; e < options_.faults.events.size(); ++e) {
        const auto &event = options_.faults.events[e];
        const std::string field =
            "faults.events[" + std::to_string(e) + "]";
        const bool fleet_kind =
            event.kind == sim::FaultKind::SmDegrade ||
            event.kind == sim::FaultKind::HbmDegrade ||
            event.kind == sim::FaultKind::DeviceCrash;
        if (!fleet_kind) {
            result.addError(field + ".kind",
                            "fleet-scope faults support SmDegrade/"
                            "HbmDegrade/DeviceCrash only (found " +
                                sim::faultKindId(event.kind) + ")");
        }
        if (event.device >= gpu_count) {
            result.addError(field + ".device",
                            "targets GPU " +
                                std::to_string(event.device) +
                                " on a " + std::to_string(gpu_count) +
                                "-GPU node");
        }
        if (!(event.time >= 0.0)) {
            result.addError(field + ".time",
                            "must be a non-negative fleet-clock time");
        }
        if (fleet_kind && event.kind != sim::FaultKind::DeviceCrash &&
            !(event.factor > 0.0 && event.factor <= 1.0)) {
            result.addError(field + ".factor",
                            "degradation factor must be in (0, 1]");
        }
    }
    if (crashFaults_) {
        if (!(crashMtbf_ > 0.0)) {
            result.addError("crashFaults.mtbf",
                            "crash schedule needs a positive MTBF");
        }
        if (!(crashHorizon_ > 0.0)) {
            result.addError("crashFaults.horizon",
                            "crash schedule needs a positive horizon");
        }
    }
    if (compactEvery_ < 0)
        result.addError("compactEvery", "must be >= 0 (0 = never)");
    if (options_.stopAfterEvents < 0)
        result.addError("stopAfterEvents", "cannot be negative");
    if (options_.stopAfterEvents > 0 &&
        options_.catalog == nullptr && catalogDir_.empty()) {
        result.addError("stopAfterEvents",
                        "stopping without a catalog would just lose "
                        "the run");
    }
    if (options_.catalog != nullptr && !catalogDir_.empty()) {
        result.addError("catalogDir",
                        "mutually exclusive with an adopted catalog "
                        "handle");
    }
    if ((fsyncOnCommit_ || compactEvery_ > 0) &&
        options_.catalog == nullptr && catalogDir_.empty()) {
        result.addError("catalogDir",
                        "fsyncOnCommit/compactEvery need a catalog "
                        "to act on");
    }
    return result;
}

FleetReport
FleetRequest::run(ThreadPool *pool)
{
    const auto result = validate();
    if (!result.ok())
        RAP_FATAL("invalid fleet request:\n", result.render());
    FleetOptions options = options_;
    if (crashFaults_) {
        const auto crashes =
            sim::makeCrashTrace(crashMtbf_, crashSeed_, crashHorizon_,
                                options.node.gpuCount);
        options.faults.events.insert(options.faults.events.end(),
                                     crashes.begin(), crashes.end());
    }
    if (!catalogDir_.empty()) {
        ctrl::CatalogOptions catalog_options;
        catalog_options.dir = catalogDir_;
        catalog_options.fsyncOnCommit = fsyncOnCommit_;
        catalog_options.compactEvery = compactEvery_;
        catalog_options.metrics = options.metrics;
        ownedCatalog_ = ctrl::Catalog::open(std::move(catalog_options));
        options.catalog = ownedCatalog_.get();
    }
    FleetScheduler scheduler(jobs_, std::move(options), pool);
    auto report = scheduler.run();
    stopped_ = scheduler.stopped();
    // An abandoned run's report is partial by design; finalizing it
    // would dress it up as a finished one.
    if (!stopped_)
        report.finalize();
    return report;
}

FleetReport
resumeFleet(ctrl::Catalog &catalog, ThreadPool *pool)
{
    const auto &state = catalog.state();
    RAP_ASSERT(state.hasGenesis(),
               "catalog has no genesis record — nothing to resume");
    FleetOptions options =
        fleetOptionsFromJson(state.genesis.at("config"));
    std::vector<JobSpec> jobs;
    for (const Json &spec : state.genesis.at("jobs").elements())
        jobs.push_back(JobSpec::fromJson(spec));
    options.catalog = &catalog;
    options.metrics = catalog.options().metrics;
    FleetScheduler scheduler(std::move(jobs), std::move(options), pool);
    auto report = scheduler.run();
    report.finalize();
    return report;
}

FleetReport
resumeFleet(const ctrl::CatalogOptions &catalog_options,
            ThreadPool *pool)
{
    auto catalog = ctrl::Catalog::open(catalog_options);
    return resumeFleet(*catalog, pool);
}

FleetReport
runFleet(std::vector<JobSpec> jobs, FleetOptions options,
         ThreadPool *pool)
{
    // Deprecated thin shim kept for pre-redesign call sites: routes
    // through the same validation as FleetRequest::run, so bad
    // configurations fail with the full error list either way.
    FleetRequest request(std::move(jobs));
    request.options() = std::move(options);
    return request.run(pool);
}

} // namespace rap::fleet
