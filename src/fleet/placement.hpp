/**
 * @file
 * Capacity-envelope-aware placement policies for the fleet scheduler.
 *
 * Placement chooses which GPUs of the node a queued job runs on.
 * Exclusive policies grant whole devices only (the classic cluster
 * scheduler). RapShared additionally co-locates jobs on GPUs whose
 * resource envelopes have headroom: each resident job reserves its
 * estimated SM/bandwidth demand, and a newcomer may take the leftover
 * slice as its GpuEnvelope — the fleet-level generalisation of RAP's
 * within-job overlapping-capacity sharing (and the spatial-sharing
 * idea ParvaGPU applies across DNN jobs).
 *
 * All policies are deterministic: candidates are ranked by exact
 * (score, gpu-id) order, so equal cluster states always produce equal
 * placements.
 */

#ifndef RAP_FLEET_PLACEMENT_HPP
#define RAP_FLEET_PLACEMENT_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace rap::fleet {

/** How jobs map onto GPUs. */
enum class PlacementPolicy {
    /** Whole free GPUs, lowest ordinals first. */
    ExclusiveFirstFit,
    /** Whole free GPUs, healthiest (largest envelope) first. */
    ExclusiveBestFit,
    /** Envelope sharing: co-locate onto GPUs with headroom. */
    RapShared,
};

/** @return Human-readable policy name. */
std::string policyName(PlacementPolicy policy);

/** @return Stable machine token ("rap_shared") for JSON / labels. */
std::string policyId(PlacementPolicy policy);

/** Inverse of policyId; RAP_FATALs on unknown tokens. */
PlacementPolicy policyFromId(const std::string &id);

/** Fleet-side view of one physical GPU's occupancy. */
struct GpuState
{
    /** False after a fail-stop crash: permanently unplaceable. */
    bool alive = true;
    /** Current SM capacity (1.0 healthy; fleet faults shrink it). */
    double healthSm = 1.0;
    /** Current HBM-bandwidth capacity. */
    double healthBw = 1.0;
    /** SM share reserved by resident jobs. */
    double smUsed = 0.0;
    /** Bandwidth share reserved by resident jobs. */
    double bwUsed = 0.0;
    /** Jobs currently placed on this GPU. */
    int residents = 0;

    /** @return Unreserved SM share still available. */
    double freeSm() const
    {
        return healthSm > smUsed ? healthSm - smUsed : 0.0;
    }

    /** @return Unreserved bandwidth share still available. */
    double freeBw() const
    {
        return healthBw > bwUsed ? healthBw - bwUsed : 0.0;
    }

    /**
     * @return SM share still reservable under an admission bound of
     * @p headroom x the *current* (possibly degraded) health — never
     * negative, even when a degradation dropped health below what
     * resident jobs already reserved. Admission and the min-envelope
     * check both derive from current health through these helpers, so
     * a degraded GPU can never pass headroom on stale full-health
     * capacity.
     */
    double reservableSm(double headroom) const
    {
        const double cap = headroom * healthSm;
        return cap > smUsed ? cap - smUsed : 0.0;
    }

    /** @return Bandwidth share reservable under @p headroom. */
    double reservableBw(double headroom) const
    {
        const double cap = headroom * healthBw;
        return cap > bwUsed ? cap - bwUsed : 0.0;
    }
};

/** A job's estimated per-GPU resource demand (from a reference run). */
struct DemandEstimate
{
    double sm = 1.0;
    double bw = 1.0;
};

/** A concrete placement decision. */
struct Placement
{
    /** Physical GPU ordinals granted, ascending. */
    std::vector<int> gpuIds;
    /** Resource slice granted on each (aligned with gpuIds). */
    std::vector<core::GpuEnvelope> envelopes;

    /** JsonSerializable: the catalog's placement-decision record. */
    Json toJson() const;
    static Placement fromJson(const Json &json);
};

/** Placement tuning. */
struct PlacementOptions
{
    PlacementPolicy policy = PlacementPolicy::RapShared;
    /**
     * Co-location admission bound: a GPU's total reserved share
     * (incumbents + newcomer demand) may not exceed this fraction of
     * its healthy envelope.
     */
    double headroom = 0.98;
    /**
     * Smallest slice worth granting: co-locating a job onto less than
     * this share slows it more than queueing would.
     */
    double minEnvelope = 0.30;
    /**
     * Interference-aware discount applied to demand when reserving:
     * a job's time-averaged SM/BW utilisation overstates what
     * co-located jobs need *simultaneously*, because their compute
     * bursts interleave on the device (the reason MPS-style spatial
     * sharing works, and the premise of RAP's own within-job
     * overlap). Reserving the full average would never admit two
     * training jobs to one GPU; reserving scale x demand admits
     * pairs whose combined discounted demand fits under headroom.
     * 1.0 recovers strict reservation.
     */
    double demandScale = 0.60;

    /** JsonSerializable: persisted in the catalog's genesis record. */
    Json toJson() const;
    static PlacementOptions fromJson(const Json &json);
};

/**
 * Try to place a job needing @p gpus_requested GPUs with demand
 * @p demand on the cluster state @p gpus. Returns std::nullopt when
 * the policy cannot grant the full request; never grants partially.
 * Does not mutate @p gpus — the caller applies reservations.
 */
std::optional<Placement> placeJob(const PlacementOptions &options,
                                  const std::vector<GpuState> &gpus,
                                  int gpus_requested,
                                  const DemandEstimate &demand);

} // namespace rap::fleet

#endif // RAP_FLEET_PLACEMENT_HPP
