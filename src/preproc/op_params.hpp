/**
 * @file
 * Operator parameters and kernel shapes.
 *
 * OpParams carries the semantic parameters of one operator instance
 * (fill value, clamp bounds, hash size, ...). OpShape describes the
 * *workload* of a (possibly horizontally fused) kernel instance: batch
 * rows, the number of features fused into the kernel, the mean id-list
 * length, and the operator's performance-related parameter. The cost
 * model and the latency predictor consume OpShape.
 */

#ifndef RAP_PREPROC_OP_PARAMS_HPP
#define RAP_PREPROC_OP_PARAMS_HPP

#include <cstdint>

#include "preproc/op_types.hpp"

namespace rap::preproc {

/** Semantic parameters of one operator instance. */
struct OpParams
{
    /** FillNull: replacement value (dense) / replacement id (sparse). */
    double fillValue = 0.0;
    /** Clamp: inclusive bounds on ids. */
    std::int64_t clampLo = 0;
    std::int64_t clampHi = 1'000'000;
    /** FirstX: number of leading ids to keep. */
    int firstX = 8;
    /** SigridHash / Ngram / MapId: target hash-space size. */
    std::int64_t hashSize = 1'000'000;
    /** Ngram: window length n. */
    int ngramN = 2;
    /** Onehot: number of bins. */
    int onehotBins = 16;
    /** Bucketize: number of borders. */
    int bucketBorders = 16;
    /** BoxCox: lambda exponent. */
    double boxcoxLambda = 0.5;
    /** MapId: affine map multiplier/offset. */
    std::int64_t mapMul = 2654435761;
    std::int64_t mapAdd = 11;
};

/** Workload shape of one (fused) kernel instance. */
struct OpShape
{
    /** Rows in the batch. */
    std::int64_t rows = 4096;
    /** Number of features fused horizontally into this kernel. */
    int width = 1;
    /** Mean id-list length (sparse inputs; 1.0 for dense). */
    double avgListLength = 1.0;
    /**
     * Operator performance parameter: n for Ngram, X for FirstX, bins
     * for Onehot, borders for Bucketize; unused (0) for 1D ops.
     */
    double param = 0.0;

    /** @return Total input elements touched by the kernel. */
    double
    elements() const
    {
        return static_cast<double>(rows) * width * avgListLength;
    }
};

} // namespace rap::preproc

#endif // RAP_PREPROC_OP_PARAMS_HPP
