/**
 * @file
 * The input-preprocessing DAG.
 *
 * Each input feature needs a chain (in general, a DAG) of preprocessing
 * operations (§2.3). Nodes are operator instances bound to concrete
 * input/output columns; edges are data dependencies. A node's
 * featureId names the feature whose embedding table (sparse) or MLP
 * input slot (dense) consumes its final output — the unit at which the
 * mapping search (§7.2) moves work between GPUs.
 */

#ifndef RAP_PREPROC_GRAPH_HPP
#define RAP_PREPROC_GRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.hpp"
#include "preproc/op_params.hpp"
#include "preproc/op_types.hpp"

namespace rap::preproc {

/** Reference to one column of a RecordBatch. */
struct ColumnRef
{
    data::FeatureKind kind = data::FeatureKind::Dense;
    std::size_t index = 0;

    bool
    operator==(const ColumnRef &o) const
    {
        return kind == o.kind && index == o.index;
    }
};

/** One operator instance in the preprocessing DAG. */
struct OpNode
{
    /** Dense id of the node within its graph. */
    int id = -1;
    OpType type = OpType::FillNull;
    OpParams params;
    /** Ids of nodes this node depends on (graph-local). */
    std::vector<int> deps;
    /** Input columns (Ngram reads several). */
    std::vector<ColumnRef> inputs;
    /** Output column (may alias an input for in-place operators). */
    ColumnRef output;
    /**
     * Feature whose consumer this node's chain feeds. Convention:
     * dense feature d has featureId = d; sparse feature s has
     * featureId = denseCount + s.
     */
    int featureId = -1;
};

/**
 * A DAG of preprocessing operator instances over a feature schema.
 */
class PreprocGraph
{
  public:
    PreprocGraph() = default;

    /** Construct for @p schema (kept by value; schemas are small). */
    explicit PreprocGraph(data::Schema schema);

    /**
     * Append a node; deps must reference existing node ids.
     * @return The id assigned to the node.
     */
    int addNode(OpNode node);

    std::size_t nodeCount() const { return nodes_.size(); }
    const OpNode &node(int id) const;
    const std::vector<OpNode> &nodes() const { return nodes_; }
    const data::Schema &schema() const { return schema_; }

    /** @return Node ids in a valid topological order. */
    std::vector<int> topoOrder() const;

    /** @return ids of nodes belonging to @p feature_id, in topo order. */
    std::vector<int> featureNodes(int feature_id) const;

    /** @return All distinct featureIds present, ascending. */
    std::vector<int> featureIds() const;

    /**
     * @return Dependency-closure reachability: result[i][j] is true when
     *         node j is a (transitive) prerequisite of node i.
     */
    std::vector<std::vector<bool>> reachability() const;

    /** @return Mean number of operations per feature (Table 3 metric). */
    double opsPerFeature() const;

    /** Panic if the graph is malformed (cycles, dangling deps). */
    void validate() const;

    /**
     * Extract the subgraph containing exactly the features in
     * @p feature_ids, renumbering node ids densely while preserving
     * structure. Cross-feature dependencies (Ngram inputs) pull in the
     * producing nodes of other features as needed.
     */
    PreprocGraph subgraphForFeatures(
        const std::vector<int> &feature_ids) const;

    /** @return Count of nodes per operator type. */
    std::vector<std::size_t> opTypeHistogram() const;

  private:
    data::Schema schema_;
    std::vector<OpNode> nodes_;
};

} // namespace rap::preproc

#endif // RAP_PREPROC_GRAPH_HPP
