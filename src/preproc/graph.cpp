#include "preproc/graph.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "common/log.hpp"

namespace rap::preproc {

PreprocGraph::PreprocGraph(data::Schema schema)
    : schema_(std::move(schema))
{
}

int
PreprocGraph::addNode(OpNode node)
{
    const int id = static_cast<int>(nodes_.size());
    node.id = id;
    for (int dep : node.deps) {
        RAP_ASSERT(dep >= 0 && dep < id,
                   "node dependency must reference an earlier node");
    }
    nodes_.push_back(std::move(node));
    return id;
}

const OpNode &
PreprocGraph::node(int id) const
{
    RAP_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
               "node id out of range: ", id);
    return nodes_[static_cast<std::size_t>(id)];
}

std::vector<int>
PreprocGraph::topoOrder() const
{
    // Nodes are appended with deps referencing earlier ids, so identity
    // order is already topological; still verify via indegree counting
    // so hand-built graphs are checked.
    const std::size_t n = nodes_.size();
    std::vector<int> indegree(n, 0);
    std::vector<std::vector<int>> out(n);
    for (const auto &node : nodes_) {
        for (int dep : node.deps) {
            out[static_cast<std::size_t>(dep)].push_back(node.id);
            ++indegree[static_cast<std::size_t>(node.id)];
        }
    }
    std::queue<int> ready;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0)
            ready.push(static_cast<int>(i));
    }
    std::vector<int> order;
    order.reserve(n);
    while (!ready.empty()) {
        const int id = ready.front();
        ready.pop();
        order.push_back(id);
        for (int next : out[static_cast<std::size_t>(id)]) {
            if (--indegree[static_cast<std::size_t>(next)] == 0)
                ready.push(next);
        }
    }
    RAP_ASSERT(order.size() == n, "preprocessing graph contains a cycle");
    return order;
}

std::vector<int>
PreprocGraph::featureNodes(int feature_id) const
{
    std::vector<int> result;
    for (int id : topoOrder()) {
        if (nodes_[static_cast<std::size_t>(id)].featureId == feature_id)
            result.push_back(id);
    }
    return result;
}

std::vector<int>
PreprocGraph::featureIds() const
{
    std::set<int> ids;
    for (const auto &node : nodes_)
        ids.insert(node.featureId);
    return {ids.begin(), ids.end()};
}

std::vector<std::vector<bool>>
PreprocGraph::reachability() const
{
    const std::size_t n = nodes_.size();
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (int id : topoOrder()) {
        auto &row = reach[static_cast<std::size_t>(id)];
        for (int dep : nodes_[static_cast<std::size_t>(id)].deps) {
            row[static_cast<std::size_t>(dep)] = true;
            const auto &dep_row = reach[static_cast<std::size_t>(dep)];
            for (std::size_t j = 0; j < n; ++j) {
                if (dep_row[j])
                    row[j] = true;
            }
        }
    }
    return reach;
}

double
PreprocGraph::opsPerFeature() const
{
    const auto features = featureIds();
    if (features.empty())
        return 0.0;
    return static_cast<double>(nodes_.size()) /
           static_cast<double>(features.size());
}

void
PreprocGraph::validate() const
{
    (void)topoOrder(); // panics on cycles
    for (const auto &node : nodes_) {
        RAP_ASSERT(!node.inputs.empty(), "node ", node.id,
                   " has no inputs");
        RAP_ASSERT(node.featureId >= 0, "node ", node.id,
                   " has no feature id");
        if (node.type == OpType::Ngram) {
            RAP_ASSERT(node.inputs.size() >= 1,
                       "ngram needs at least one input");
        }
    }
}

PreprocGraph
PreprocGraph::subgraphForFeatures(const std::vector<int> &feature_ids) const
{
    const std::set<int> wanted(feature_ids.begin(), feature_ids.end());

    // Seed with the nodes of the wanted features, then close over deps.
    std::vector<bool> keep(nodes_.size(), false);
    for (const auto &node : nodes_) {
        if (wanted.count(node.featureId))
            keep[static_cast<std::size_t>(node.id)] = true;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &node : nodes_) {
            if (!keep[static_cast<std::size_t>(node.id)])
                continue;
            for (int dep : node.deps) {
                if (!keep[static_cast<std::size_t>(dep)]) {
                    keep[static_cast<std::size_t>(dep)] = true;
                    changed = true;
                }
            }
        }
    }

    PreprocGraph sub(schema_);
    std::vector<int> remap(nodes_.size(), -1);
    for (int id : topoOrder()) {
        if (!keep[static_cast<std::size_t>(id)])
            continue;
        OpNode copy = nodes_[static_cast<std::size_t>(id)];
        for (auto &dep : copy.deps)
            dep = remap[static_cast<std::size_t>(dep)];
        copy.id = -1;
        remap[static_cast<std::size_t>(id)] = sub.addNode(std::move(copy));
    }
    return sub;
}

std::vector<std::size_t>
PreprocGraph::opTypeHistogram() const
{
    std::vector<std::size_t> histogram(kOpTypeCount, 0);
    for (const auto &node : nodes_)
        ++histogram[static_cast<std::size_t>(node.type)];
    return histogram;
}

} // namespace rap::preproc
