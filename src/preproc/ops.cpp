#include "preproc/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace rap::preproc {

namespace {

constexpr double kEps = 1e-6;

data::DenseColumn &
denseIn(const OpNode &node, data::RecordBatch &batch, std::size_t i = 0)
{
    RAP_ASSERT(i < node.inputs.size(), "op input index out of range");
    RAP_ASSERT(node.inputs[i].kind == data::FeatureKind::Dense,
               opTypeName(node.type), " expects a dense input");
    return batch.dense(node.inputs[i].index);
}

data::SparseColumn &
sparseIn(const OpNode &node, data::RecordBatch &batch, std::size_t i = 0)
{
    RAP_ASSERT(i < node.inputs.size(), "op input index out of range");
    RAP_ASSERT(node.inputs[i].kind == data::FeatureKind::Sparse,
               opTypeName(node.type), " expects a sparse input");
    return batch.sparse(node.inputs[i].index);
}

void
applyFillNull(const OpNode &node, data::RecordBatch &batch)
{
    if (node.inputs[0].kind == data::FeatureKind::Dense) {
        auto &col = denseIn(node, batch);
        for (std::size_t r = 0; r < col.size(); ++r) {
            if (!col.isValid(r))
                col.set(r, static_cast<float>(node.params.fillValue));
        }
        return;
    }
    // Sparse: replace empty lists with the configured default id.
    auto &col = sparseIn(node, batch);
    data::SparseColumn out;
    const auto fill_id =
        static_cast<std::int64_t>(node.params.fillValue);
    std::vector<std::int64_t> ids;
    for (std::size_t r = 0; r < col.size(); ++r) {
        ids.clear();
        const std::size_t len = col.listLength(r);
        if (len == 0) {
            ids.push_back(fill_id);
        } else {
            for (std::size_t i = 0; i < len; ++i)
                ids.push_back(col.value(r, i));
        }
        out.appendRow(ids);
    }
    batch.setSparse(node.output.index, std::move(out));
}

void
applyCast(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = denseIn(node, batch);
    for (std::size_t r = 0; r < col.size(); ++r) {
        if (col.isValid(r))
            col.set(r, std::trunc(col.value(r)));
    }
}

void
applyLogit(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = denseIn(node, batch);
    for (std::size_t r = 0; r < col.size(); ++r) {
        if (!col.isValid(r))
            continue;
        const double x = col.value(r);
        // Squash to (0, 1) first so unbounded features stay finite.
        const double squashed =
            std::clamp(x / (1.0 + std::fabs(x)), kEps, 1.0 - kEps);
        col.set(r,
                static_cast<float>(std::log(squashed / (1.0 - squashed))));
    }
}

void
applyBoxCox(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = denseIn(node, batch);
    const double lambda = node.params.boxcoxLambda;
    RAP_ASSERT(std::fabs(lambda) > kEps,
               "BoxCox lambda must be non-zero");
    for (std::size_t r = 0; r < col.size(); ++r) {
        if (!col.isValid(r))
            continue;
        const double x = std::max(0.0, double{col.value(r)});
        col.set(r, static_cast<float>(
                       (std::pow(x, lambda) - 1.0) / lambda));
    }
}

void
applyOnehot(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = denseIn(node, batch);
    const int bins = std::max(node.params.onehotBins, 2);
    for (std::size_t r = 0; r < col.size(); ++r) {
        if (!col.isValid(r))
            continue;
        const double x = std::max(0.0, double{col.value(r)});
        const double unit = x / (1.0 + x); // [0, 1)
        const int bin = std::min(static_cast<int>(unit * bins), bins - 1);
        col.set(r, static_cast<float>(bin));
    }
}

void
applyBucketize(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = denseIn(node, batch);
    const int borders = std::max(node.params.bucketBorders, 2);
    // Quadratic borders: b_i = i^2, i in [1, borders].
    for (std::size_t r = 0; r < col.size(); ++r) {
        if (!col.isValid(r))
            continue;
        const double x = std::max(0.0, double{col.value(r)});
        // Count borders strictly below x == floor(sqrt(x)) clamped.
        const int bucket = std::min(
            static_cast<int>(std::floor(std::sqrt(x))), borders - 1);
        col.set(r, static_cast<float>(bucket));
    }
}

void
applySigridHash(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = sparseIn(node, batch);
    const auto hash_size =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            node.params.hashSize, 1));
    for (auto &id : col.mutableValues()) {
        id = static_cast<std::int64_t>(
            hashMix64(static_cast<std::uint64_t>(id)) % hash_size);
    }
}

void
applyFirstX(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = sparseIn(node, batch);
    const auto keep = static_cast<std::size_t>(
        std::max(node.params.firstX, 1));
    data::SparseColumn out;
    std::vector<std::int64_t> ids;
    for (std::size_t r = 0; r < col.size(); ++r) {
        ids.clear();
        const std::size_t len = std::min(col.listLength(r), keep);
        for (std::size_t i = 0; i < len; ++i)
            ids.push_back(col.value(r, i));
        out.appendRow(ids);
    }
    batch.setSparse(node.output.index, std::move(out));
}

void
applyClamp(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = sparseIn(node, batch);
    for (auto &id : col.mutableValues())
        id = std::clamp(id, node.params.clampLo, node.params.clampHi);
}

void
applyMapId(const OpNode &node, data::RecordBatch &batch)
{
    auto &col = sparseIn(node, batch);
    const auto hash_size =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            node.params.hashSize, 1));
    const auto mul = static_cast<std::uint64_t>(node.params.mapMul);
    const auto add = static_cast<std::uint64_t>(node.params.mapAdd);
    for (auto &id : col.mutableValues()) {
        id = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(id) * mul + add) % hash_size);
    }
}

void
applyNgram(const OpNode &node, data::RecordBatch &batch)
{
    const int n = std::max(node.params.ngramN, 1);
    const auto hash_size =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            node.params.hashSize, 1));

    // Gather the input columns (all sparse); output replaces input 0.
    std::vector<const data::SparseColumn *> cols;
    for (std::size_t i = 0; i < node.inputs.size(); ++i)
        cols.push_back(&sparseIn(node, batch, i));

    const std::size_t rows = cols.front()->size();
    data::SparseColumn out;
    std::vector<std::int64_t> merged;
    std::vector<std::int64_t> grams;
    for (std::size_t r = 0; r < rows; ++r) {
        merged.clear();
        for (const auto *col : cols) {
            const std::size_t len = col->listLength(r);
            for (std::size_t i = 0; i < len; ++i)
                merged.push_back(col->value(r, i));
        }
        grams.clear();
        if (!merged.empty()) {
            const std::size_t windows =
                merged.size() >= static_cast<std::size_t>(n)
                    ? merged.size() - static_cast<std::size_t>(n) + 1
                    : 1;
            for (std::size_t w = 0; w < windows; ++w) {
                std::uint64_t h = 0x9e3779b97f4a7c15ULL;
                for (int k = 0; k < n; ++k) {
                    const std::size_t idx =
                        std::min(w + static_cast<std::size_t>(k),
                                 merged.size() - 1);
                    h = hashMix64(
                        h ^ static_cast<std::uint64_t>(merged[idx]));
                }
                grams.push_back(
                    static_cast<std::int64_t>(h % hash_size));
            }
        }
        out.appendRow(grams);
    }
    batch.setSparse(node.output.index, std::move(out));
}

} // namespace

std::uint64_t
hashMix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

void
applyOp(const OpNode &node, data::RecordBatch &batch)
{
    switch (node.type) {
      case OpType::FillNull: applyFillNull(node, batch); return;
      case OpType::Cast: applyCast(node, batch); return;
      case OpType::Logit: applyLogit(node, batch); return;
      case OpType::BoxCox: applyBoxCox(node, batch); return;
      case OpType::Onehot: applyOnehot(node, batch); return;
      case OpType::Bucketize: applyBucketize(node, batch); return;
      case OpType::SigridHash: applySigridHash(node, batch); return;
      case OpType::FirstX: applyFirstX(node, batch); return;
      case OpType::Clamp: applyClamp(node, batch); return;
      case OpType::MapId: applyMapId(node, batch); return;
      case OpType::Ngram: applyNgram(node, batch); return;
    }
    RAP_PANIC("unknown op type");
}

} // namespace rap::preproc
