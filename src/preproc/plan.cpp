#include "preproc/plan.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace rap::preproc {

namespace {

/** Chain-building state for one feature. */
struct Chain
{
    int featureId = -1;
    ColumnRef column;
    std::int64_t hashSize = 0; // sparse only
    int tail = -1;             // id of the last node appended
};

OpNode
makeNode(const Chain &chain, OpType type)
{
    OpNode node;
    node.type = type;
    node.featureId = chain.featureId;
    node.inputs = {chain.column};
    node.output = chain.column;
    if (chain.tail >= 0)
        node.deps = {chain.tail};
    if (chain.hashSize > 0)
        node.params.hashSize = chain.hashSize;
    return node;
}

void
appendOp(PreprocGraph &graph, Chain &chain, OpType type)
{
    chain.tail = graph.addNode(makeNode(chain, type));
}

/** Append an Ngram that also reads @p other's column. */
void
appendNgram(PreprocGraph &graph, Chain &chain, const Chain &other)
{
    OpNode node = makeNode(chain, OpType::Ngram);
    if (!(other.column == chain.column)) {
        node.inputs.push_back(other.column);
        if (other.tail >= 0)
            node.deps.push_back(other.tail);
    }
    node.params.ngramN = 2;
    chain.tail = graph.addNode(std::move(node));
}

std::vector<Chain>
makeChains(const data::Schema &schema)
{
    std::vector<Chain> chains;
    for (std::size_t d = 0; d < schema.denseCount(); ++d) {
        Chain c;
        c.featureId = denseFeatureId(d);
        c.column = ColumnRef{data::FeatureKind::Dense, d};
        chains.push_back(c);
    }
    for (std::size_t s = 0; s < schema.sparseCount(); ++s) {
        Chain c;
        c.featureId = sparseFeatureId(schema, s);
        c.column = ColumnRef{data::FeatureKind::Sparse, s};
        c.hashSize = schema.sparse(s).hashSize;
        chains.push_back(c);
    }
    return chains;
}

/** The TorchArrow default pipeline: Plans 0 and 1 (104 ops). */
PreprocGraph
buildDefaultGraph(const data::Schema &schema)
{
    PreprocGraph graph(schema);
    auto chains = makeChains(schema);
    for (auto &chain : chains) {
        if (chain.column.kind == data::FeatureKind::Dense) {
            appendOp(graph, chain, OpType::FillNull);
            appendOp(graph, chain, OpType::Logit);
        } else {
            appendOp(graph, chain, OpType::FillNull);
            appendOp(graph, chain, OpType::SigridHash);
            appendOp(graph, chain, OpType::FirstX);
        }
    }
    return graph;
}

/** Randomly extended pipeline: Plans 2 and 3 (Table 3 totals). */
PreprocGraph
buildRandomGraph(const data::Schema &schema, std::size_t total_ops,
                 std::uint64_t seed)
{
    PreprocGraph graph(schema);
    auto chains = makeChains(schema);
    Rng rng(seed);

    // Mandatory prefix: FillNull everywhere, SigridHash on sparse.
    std::size_t used = 0;
    for (auto &chain : chains) {
        appendOp(graph, chain, OpType::FillNull);
        ++used;
        if (chain.column.kind == data::FeatureKind::Sparse) {
            appendOp(graph, chain, OpType::SigridHash);
            ++used;
        }
    }
    RAP_ASSERT(used <= total_ops,
               "plan total smaller than its mandatory prefix");

    const OpType dense_pool[] = {OpType::Logit, OpType::BoxCox,
                                 OpType::Cast, OpType::Onehot,
                                 OpType::Bucketize};
    const OpType sparse_pool[] = {OpType::FirstX, OpType::Clamp,
                                  OpType::MapId, OpType::Ngram,
                                  OpType::SigridHash};

    // Spread the remaining ops uniformly over features.
    const std::size_t dense_count = schema.denseCount();
    while (used < total_ops) {
        const auto pick = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(chains.size()) -
                                  1));
        auto &chain = chains[pick];
        if (chain.column.kind == data::FeatureKind::Dense) {
            appendOp(graph, chain,
                     dense_pool[rng.uniformInt(0, 4)]);
        } else {
            const OpType type = sparse_pool[rng.uniformInt(0, 4)];
            if (type == OpType::Ngram) {
                // Partner with the next sparse feature, cyclically.
                const std::size_t sparse_index = pick - dense_count;
                const std::size_t partner =
                    dense_count +
                    (sparse_index + 1) % schema.sparseCount();
                appendNgram(graph, chain, chains[partner]);
            } else {
                appendOp(graph, chain, type);
            }
        }
        ++used;
    }
    return graph;
}

} // namespace

PlanSpec
planSpec(int plan_id)
{
    switch (plan_id) {
      case 0:
        return PlanSpec{0, data::DatasetPreset::CriteoKaggle, 13, 26,
                        104};
      case 1:
        return PlanSpec{1, data::DatasetPreset::CriteoTerabyte, 13, 26,
                        104};
      case 2:
        return PlanSpec{2, data::DatasetPreset::CriteoTerabyte, 26, 52,
                        384};
      case 3:
        return PlanSpec{3, data::DatasetPreset::CriteoTerabyte, 52, 104,
                        1548};
      default:
        RAP_FATAL("unknown preprocessing plan id: ", plan_id,
                  " (expected 0..3)");
    }
}

PreprocPlan
makePlan(int plan_id, std::uint64_t seed)
{
    const PlanSpec spec = planSpec(plan_id);
    PreprocPlan plan;
    plan.spec = spec;
    plan.schema = data::makeScaledSchema(spec.dataset, spec.denseCount,
                                         spec.sparseCount);
    if (plan_id <= 1) {
        plan.graph = buildDefaultGraph(plan.schema);
    } else {
        plan.graph =
            buildRandomGraph(plan.schema, spec.totalOps, seed);
    }
    RAP_ASSERT(plan.graph.nodeCount() == spec.totalOps,
               "plan ", plan_id, " produced ", plan.graph.nodeCount(),
               " ops, expected ", spec.totalOps);
    plan.graph.validate();
    return plan;
}

PreprocPlan
makeSkewedPlan(int plan_id, int heavy_features, int extra_heavy_ops,
               std::uint64_t seed)
{
    PreprocPlan plan = makePlan(plan_id, seed);
    const auto &schema = plan.schema;

    // Hash sizes are descending by construction, so the first sparse
    // features are the ones a size-balancing sharder puts on GPU 0.
    const int heavy = std::min<int>(heavy_features,
                                    static_cast<int>(
                                        schema.sparseCount()));
    for (int s = 0; s < heavy; ++s) {
        const int feature_id =
            sparseFeatureId(schema, static_cast<std::size_t>(s));
        auto nodes = plan.graph.featureNodes(feature_id);
        const int tail = nodes.empty() ? -1 : nodes.back();
        // The extra feature-generation ops fan out flat from the
        // chain tail (no mutual dependencies), so horizontal fusion
        // can exploit them — the situation Figs. 11/12 study.
        for (int k = 0; k < extra_heavy_ops; ++k) {
            OpNode node;
            node.type = OpType::Ngram;
            node.featureId = feature_id;
            node.inputs = {ColumnRef{data::FeatureKind::Sparse,
                                     static_cast<std::size_t>(s)}};
            node.output = node.inputs.front();
            node.params.hashSize =
                schema.sparse(static_cast<std::size_t>(s)).hashSize;
            node.params.ngramN = 2;
            if (tail >= 0)
                node.deps = {tail};
            plan.graph.addNode(std::move(node));
        }
    }
    plan.graph.validate();
    return plan;
}

void
addNgramStress(PreprocPlan &plan, int count)
{
    const auto &schema = plan.schema;
    RAP_ASSERT(schema.sparseCount() > 0, "plan has no sparse features");
    std::vector<int> tails(schema.sparseCount());
    for (std::size_t s = 0; s < schema.sparseCount(); ++s) {
        const auto nodes = plan.graph.featureNodes(
            sparseFeatureId(schema, s));
        tails[s] = nodes.empty() ? -1 : nodes.back();
    }
    // Flat fan-out from each feature's tail: the added workload is
    // horizontally fusable, which is exactly the knob Fig. 11 turns.
    for (int k = 0; k < count; ++k) {
        const std::size_t s =
            static_cast<std::size_t>(k) % schema.sparseCount();
        OpNode node;
        node.type = OpType::Ngram;
        node.featureId = sparseFeatureId(schema, s);
        node.inputs = {ColumnRef{data::FeatureKind::Sparse, s}};
        node.output = node.inputs.front();
        node.params.hashSize = schema.sparse(s).hashSize;
        node.params.ngramN = 2;
        if (tails[s] >= 0)
            node.deps = {tails[s]};
        plan.graph.addNode(std::move(node));
    }
    plan.graph.validate();
}

} // namespace rap::preproc
