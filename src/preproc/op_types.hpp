/**
 * @file
 * The DLRM input-preprocessing operator vocabulary (paper Table 1).
 */

#ifndef RAP_PREPROC_OP_TYPES_HPP
#define RAP_PREPROC_OP_TYPES_HPP

#include <array>
#include <string>

namespace rap::preproc {

/**
 * All preprocessing operator types from Table 1.
 */
enum class OpType {
    // Dense normalisation (DN)
    Logit,      ///< logit transform for normalisation
    BoxCox,     ///< Box-Cox transform for normalisation
    Onehot,     ///< one-hot encode a dense feature
    // Sparse normalisation (SN)
    SigridHash, ///< hash ids into the embedding hash space
    FirstX,     ///< truncate an id list to its first X entries
    Clamp,      ///< clamp ids into [lo, hi]
    // Feature generation (FG)
    Bucketize,  ///< map a dense value to a bucket index via borders
    Ngram,      ///< n-gram across multiple sparse features
    MapId,      ///< map feature ids to fixed values
    // Others
    FillNull,   ///< fill NA/NaN values with a default
    Cast,       ///< cast data to a different type
};

/** Number of distinct operator types. */
constexpr std::size_t kOpTypeCount = 11;

/** Operator category from Table 1. */
enum class OpCategory {
    DenseNorm,
    SparseNorm,
    FeatureGen,
    Other,
};

/**
 * Predictor category from Table 5: Ngram, Onehot, Bucketize and FirstX
 * have unique performance-related parameters and get dedicated latency
 * predictors; every other operator's latency depends only on the input
 * shape and is grouped as "1D Ops".
 */
enum class PredictorCategory {
    OneDimensional,
    FirstX,
    Ngram,
    Onehot,
    Bucketize,
};

/** Number of distinct predictor categories. */
constexpr std::size_t kPredictorCategoryCount = 5;

/** @return Human-readable operator name ("SigridHash", ...). */
std::string opTypeName(OpType type);

/** @return The Table-1 category of @p type. */
OpCategory opCategory(OpType type);

/** @return The Table-5 predictor category of @p type. */
PredictorCategory predictorCategory(OpType type);

/** @return Human-readable predictor-category name ("1D Ops", ...). */
std::string predictorCategoryName(PredictorCategory cat);

/** @return True when @p type consumes (primarily) a dense column. */
bool isDenseOp(OpType type);

/** @return Array of all operator types, for iteration. */
std::array<OpType, kOpTypeCount> allOpTypes();

} // namespace rap::preproc

#endif // RAP_PREPROC_OP_TYPES_HPP
