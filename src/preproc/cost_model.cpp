#include "preproc/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace rap::preproc {

namespace {

/** Effective elements for FirstX: only the kept prefix is written. */
double
firstXElements(const OpShape &shape)
{
    const double kept = std::min(shape.avgListLength,
                                 std::max(shape.param, 1.0));
    return static_cast<double>(shape.rows) * shape.width * kept;
}

/** N-gram windows enumerated by the kernel (one per list position). */
double
ngramCombos(const OpShape &shape)
{
    return static_cast<double>(shape.rows) * shape.width *
           std::max(shape.avgListLength, 1.0);
}

} // namespace

sim::KernelProfile
opKernelProfile(OpType type, const OpShape &shape)
{
    RAP_ASSERT(shape.rows > 0 && shape.width > 0,
               "op shape needs positive rows/width");
    const double rows_width =
        static_cast<double>(shape.rows) * shape.width;
    const double el = shape.elements();

    sim::KernelProfile p;
    // One thread per input element (per id for sparse lists).
    p.warps = el / 32.0;

    switch (type) {
      case OpType::FillNull:
        p.flops = 2.0 * el;
        p.bytes = 9.0 * el;
        break;
      case OpType::Cast:
        p.flops = 2.0 * el;
        p.bytes = 8.0 * el;
        break;
      case OpType::Logit:
        p.flops = 25.0 * el;
        p.bytes = 8.0 * el;
        break;
      case OpType::BoxCox:
        p.flops = 30.0 * el;
        p.bytes = 8.0 * el;
        break;
      case OpType::Onehot: {
        const double bins = std::max(shape.param, 2.0);
        p.flops = (4.0 + bins) * rows_width;
        p.bytes = rows_width * (4.0 + 4.0 * bins);
        break;
      }
      case OpType::Bucketize: {
        const double borders = std::max(shape.param, 2.0);
        p.flops = 3.0 * std::log2(borders) * rows_width;
        p.bytes = 8.0 * rows_width + 4.0 * borders;
        break;
      }
      case OpType::SigridHash:
        p.flops = 12.0 * el;
        p.bytes = 16.0 * el;
        break;
      case OpType::FirstX:
        p.flops = 1.0 * firstXElements(shape);
        p.bytes = 8.0 * el + 8.0 * firstXElements(shape);
        break;
      case OpType::Clamp:
        p.flops = 2.0 * el;
        p.bytes = 16.0 * el;
        break;
      case OpType::MapId:
        p.flops = 4.0 * el;
        p.bytes = 16.0 * el;
        break;
      case OpType::Ngram: {
        // One thread per window; each window hashes n ids.
        const double combos = ngramCombos(shape);
        const double n = std::max(shape.param, 1.0);
        p.flops = 15.0 * n * combos;
        p.bytes = 16.0 * el + 8.0 * combos * n;
        p.warps = combos / 32.0;
        break;
      }
    }
    return p;
}

sim::KernelDesc
makeOpKernel(OpType type, const OpShape &shape, const sim::GpuSpec &spec)
{
    auto profile = opKernelProfile(type, shape);
    const std::string name = opTypeName(type) + "_x" +
                             std::to_string(shape.width);
    auto desc = sim::KernelDesc::fromProfile(name, profile, spec);
    // Short, irregular preprocessing kernels never reach the streaming
    // efficiency the peak-rate model assumes; floor their latency at a
    // measured small-kernel cost and rescale the achieved bandwidth.
    constexpr Seconds kPreprocKernelFloor = 6e-6;
    if (desc.exclusiveLatency < kPreprocKernelFloor) {
        desc.exclusiveLatency = kPreprocKernelFloor;
        desc.demand.bw = std::clamp(profile.bytes /
                                        desc.exclusiveLatency /
                                        spec.dramBandwidth,
                                    0.0, 1.0);
    }
    return desc;
}

Seconds
opCpuSeconds(OpType type, const OpShape &shape)
{
    // Single-core host throughput (elements/s) of an eager CPython
    // DataFrame pipeline — orders of magnitude below the hardware's
    // streaming rate, which is precisely why industrial deployments
    // need hundreds of preprocessing nodes (§1). Feature generation is
    // markedly slower still.
    constexpr double k1dRate = 4e6;
    constexpr double kHashRate = 2e6;
    constexpr double kNgramRate = 2e6;
    constexpr Seconds kDispatch = 100e-6; // per-operator dispatch cost

    switch (type) {
      case OpType::Ngram:
        return kDispatch + ngramCombos(shape) *
                               std::max(shape.param, 1.0) / kNgramRate;
      case OpType::SigridHash:
      case OpType::MapId:
        return kDispatch + shape.elements() / kHashRate;
      case OpType::Onehot:
        return kDispatch + shape.elements() *
                               std::max(shape.param, 2.0) / k1dRate;
      case OpType::Bucketize:
        return kDispatch + shape.elements() *
                               std::log2(std::max(shape.param, 2.0)) /
                               k1dRate;
      default:
        return kDispatch + shape.elements() / k1dRate;
    }
}

Seconds
opCpuSecondsOptimized(OpType type, const OpShape &shape)
{
    // Compiled, vectorised single-core rates (no interpreter
    // dispatch): roughly memory-bandwidth-bound per core.
    constexpr double k1dRate = 2e8;
    constexpr double kHashRate = 1e8;
    constexpr double kNgramRate = 5e7;
    constexpr Seconds kDispatch = 2e-6;

    switch (type) {
      case OpType::Ngram:
        return kDispatch + ngramCombos(shape) *
                               std::max(shape.param, 1.0) / kNgramRate;
      case OpType::SigridHash:
      case OpType::MapId:
        return kDispatch + shape.elements() / kHashRate;
      case OpType::Onehot:
        return kDispatch + shape.elements() *
                               std::max(shape.param, 2.0) / k1dRate;
      case OpType::Bucketize:
        return kDispatch + shape.elements() *
                               std::log2(std::max(shape.param, 2.0)) /
                               k1dRate;
      default:
        return kDispatch + shape.elements() / k1dRate;
    }
}

Seconds
opPrepCpuSeconds(OpType type, const OpShape &shape)
{
    // Device-side output allocation (cached allocator) plus kernel
    // argument assembly; grows mildly with fused width. The raw-column
    // H2D staging is charged separately, once per feature, by the
    // pipeline (see GraphMapper::featureRawBytes).
    constexpr Seconds kFixed = 3e-6;
    constexpr Seconds kPerMember = 0.3e-6;
    return kFixed + kPerMember * shape.width;
}

Bytes
opInputBytes(OpType type, const OpShape &shape)
{
    if (isDenseOp(type))
        return 5.0 * shape.elements(); // fp32 + validity byte
    return 8.0 * shape.elements() +
           8.0 * static_cast<double>(shape.rows) * shape.width;
}

Bytes
opOutputBytes(OpType type, const OpShape &shape)
{
    switch (type) {
      case OpType::FirstX:
        return 8.0 * firstXElements(shape);
      case OpType::Ngram:
        return 8.0 * ngramCombos(shape);
      case OpType::Onehot:
      case OpType::Bucketize:
        return 4.0 * static_cast<double>(shape.rows) * shape.width;
      default:
        return opInputBytes(type, shape);
    }
}

double
opPerfParam(OpType type, const OpParams &params)
{
    switch (type) {
      case OpType::Ngram: return params.ngramN;
      case OpType::FirstX: return params.firstX;
      case OpType::Onehot: return params.onehotBins;
      case OpType::Bucketize: return params.bucketBorders;
      default: return 0.0;
    }
}

} // namespace rap::preproc
