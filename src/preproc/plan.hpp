/**
 * @file
 * Input-preprocessing plan presets (paper Table 3) and plan synthesis.
 *
 * Plans 0 and 1 follow TorchArrow's default Criteo preprocessing
 * pipeline (FillNull on every feature, Logit normalisation for dense,
 * SigridHash + FirstX for sparse), giving 104 operations. Plans 2 and 3
 * double/quadruple the feature counts and randomly extend each
 * feature's chain with additional operators, matching Table 3's
 * operation totals (384 and 1548).
 */

#ifndef RAP_PREPROC_PLAN_HPP
#define RAP_PREPROC_PLAN_HPP

#include <cstdint>

#include "data/criteo.hpp"
#include "preproc/graph.hpp"

namespace rap::preproc {

/** Static description of a preprocessing plan preset (Table 3). */
struct PlanSpec
{
    int id = 0;
    data::DatasetPreset dataset = data::DatasetPreset::CriteoKaggle;
    std::size_t denseCount = 13;
    std::size_t sparseCount = 26;
    std::size_t totalOps = 104;
};

/** @return The Table-3 spec for plan @p plan_id in [0, 3]. */
PlanSpec planSpec(int plan_id);

/** A schema plus the preprocessing DAG over it. */
struct PreprocPlan
{
    PlanSpec spec;
    data::Schema schema;
    PreprocGraph graph;
};

/**
 * Build preprocessing plan @p plan_id (0..3). Plans 2 and 3 use @p seed
 * to draw the random operator chains; plans 0 and 1 are deterministic.
 */
PreprocPlan makePlan(int plan_id, std::uint64_t seed = 0x52415021ULL);

/**
 * Build a skewed variant of plan @p plan_id for the mapping study
 * (Fig. 12): the sparse features with the largest hash sizes — the ones
 * the sharder places on GPU 0 — receive @p extra_heavy_ops additional
 * feature-generation operations each, on the first @p heavy_features
 * features.
 */
PreprocPlan makeSkewedPlan(int plan_id, int heavy_features,
                           int extra_heavy_ops,
                           std::uint64_t seed = 0x52415021ULL);

/**
 * Append @p count extra Ngram operations to @p plan, spread round-robin
 * over the sparse features (the Fig. 11 workload-growth knob). Each new
 * node depends on its feature's current chain tail.
 */
void addNgramStress(PreprocPlan &plan, int count);

/**
 * Convention helper: the featureId of dense feature @p dense_index.
 */
inline int
denseFeatureId(std::size_t dense_index)
{
    return static_cast<int>(dense_index);
}

/**
 * Convention helper: the featureId of sparse feature @p sparse_index
 * under @p schema (dense features occupy the low ids).
 */
inline int
sparseFeatureId(const data::Schema &schema, std::size_t sparse_index)
{
    return static_cast<int>(schema.denseCount() + sparse_index);
}

/** @return True when @p feature_id denotes a sparse feature. */
inline bool
isSparseFeatureId(const data::Schema &schema, int feature_id)
{
    return feature_id >= static_cast<int>(schema.denseCount());
}

/** @return The sparse index of a sparse @p feature_id. */
inline std::size_t
sparseIndexOfFeatureId(const data::Schema &schema, int feature_id)
{
    return static_cast<std::size_t>(feature_id) - schema.denseCount();
}

} // namespace rap::preproc

#endif // RAP_PREPROC_PLAN_HPP
