#include "preproc/executor.hpp"

#include "common/log.hpp"
#include "preproc/ops.hpp"

namespace rap::preproc {

void
applyGraph(const PreprocGraph &graph, data::RecordBatch &batch)
{
    for (int id : graph.topoOrder())
        applyOp(graph.node(id), batch);
}

OpShape
nodeShape(const OpNode &node, const data::Schema &schema,
          std::int64_t rows)
{
    OpShape shape;
    shape.rows = rows;
    shape.width = 1;
    shape.param = opPerfParam(node.type, node.params);
    shape.avgListLength = 1.0;
    RAP_ASSERT(!node.inputs.empty(), "node has no inputs");
    const auto &primary = node.inputs.front();
    if (primary.kind == data::FeatureKind::Sparse &&
        primary.index < schema.sparseCount()) {
        shape.avgListLength = schema.sparse(primary.index).avgListLength;
        // Ngram reads all of its inputs.
        if (node.type == OpType::Ngram)
            shape.avgListLength *=
                static_cast<double>(node.inputs.size());
    }
    return shape;
}

Seconds
graphExclusiveLatency(const PreprocGraph &graph, std::int64_t rows,
                      const sim::GpuSpec &spec)
{
    Seconds total = 0.0;
    for (const auto &node : graph.nodes()) {
        const auto shape = nodeShape(node, graph.schema(), rows);
        total += makeOpKernel(node.type, shape, spec).exclusiveLatency;
    }
    return total;
}

} // namespace rap::preproc
