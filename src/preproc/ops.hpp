/**
 * @file
 * Host-side reference semantics of every preprocessing operator.
 *
 * These implementations execute the operators on real columnar data so
 * that correctness is testable end-to-end; the simulator separately
 * charges the GPU cost of the equivalent kernels via the cost model.
 * All operators are deterministic and write their result in place of
 * the node's output column.
 */

#ifndef RAP_PREPROC_OPS_HPP
#define RAP_PREPROC_OPS_HPP

#include <cstdint>

#include "data/batch.hpp"
#include "preproc/graph.hpp"

namespace rap::preproc {

/** Execute one operator node on @p batch (host reference semantics). */
void applyOp(const OpNode &node, data::RecordBatch &batch);

/** The 64-bit mixer used by SigridHash and Ngram (exposed for tests). */
std::uint64_t hashMix64(std::uint64_t x);

} // namespace rap::preproc

#endif // RAP_PREPROC_OPS_HPP
