/**
 * @file
 * Host execution of a preprocessing graph plus shape extraction.
 */

#ifndef RAP_PREPROC_EXECUTOR_HPP
#define RAP_PREPROC_EXECUTOR_HPP

#include "data/batch.hpp"
#include "preproc/cost_model.hpp"
#include "preproc/graph.hpp"

namespace rap::preproc {

/**
 * Execute every node of @p graph on @p batch in topological order using
 * the host reference semantics.
 */
void applyGraph(const PreprocGraph &graph, data::RecordBatch &batch);

/**
 * Derive the kernel workload shape of a single (unfused) node: width 1,
 * the batch row count, the primary input feature's mean list length
 * (from the schema) and the operator's performance parameter.
 */
OpShape nodeShape(const OpNode &node, const data::Schema &schema,
                  std::int64_t rows);

/**
 * Total standalone GPU latency of @p graph at the given batch size if
 * each node ran as its own kernel under @p spec (no fusion, no launch
 * overhead). Useful as a workload-size metric.
 */
Seconds graphExclusiveLatency(const PreprocGraph &graph,
                              std::int64_t rows,
                              const sim::GpuSpec &spec);

} // namespace rap::preproc

#endif // RAP_PREPROC_EXECUTOR_HPP
