/**
 * @file
 * Analytic cost models for preprocessing kernels.
 *
 * For each operator type the model maps an OpShape to:
 *  - a GPU KernelProfile (flops, bytes, warps) that the simulator turns
 *    into an exclusive latency and a resource demand;
 *  - a CPU cost (core-seconds) used by the TorchArrow baseline;
 *  - the host-side data-preparation cost and H2D transfer volume that
 *    precede the kernel (motivating inter-batch interleaving, §6.3).
 *
 * The constants are calibrated so that relative magnitudes match the
 * paper's observations: element-wise operators are tiny and
 * launch-overhead dominated, feature-generation operators (Ngram) are
 * orders of magnitude heavier (§2.3, Fig. 1b).
 */

#ifndef RAP_PREPROC_COST_MODEL_HPP
#define RAP_PREPROC_COST_MODEL_HPP

#include "common/units.hpp"
#include "preproc/op_params.hpp"
#include "preproc/op_types.hpp"
#include "sim/kernel.hpp"

namespace rap::preproc {

/** @return GPU work profile of a (fused) kernel of @p type and @p shape. */
sim::KernelProfile opKernelProfile(OpType type, const OpShape &shape);

/**
 * @return A fully-characterised simulator kernel for the given fused
 *         operator under @p spec; the name encodes type and width.
 */
sim::KernelDesc makeOpKernel(OpType type, const OpShape &shape,
                             const sim::GpuSpec &spec);

/** @return CPU core-seconds to execute the operator on the host. */
Seconds opCpuSeconds(OpType type, const OpShape &shape);

/**
 * @return CPU core-seconds under an optimised native backend
 *         (GoldMiner-class compiled pipelines rather than an eager
 *         DataFrame library); used by the hybrid GPU+CPU extension.
 */
Seconds opCpuSecondsOptimized(OpType type, const OpShape &shape);

/** @return Host-side data-preparation CPU time preceding the kernel. */
Seconds opPrepCpuSeconds(OpType type, const OpShape &shape);

/** @return Bytes staged host-to-device before the kernel can run. */
Bytes opInputBytes(OpType type, const OpShape &shape);

/** @return Bytes produced by the kernel (consumed by training). */
Bytes opOutputBytes(OpType type, const OpShape &shape);

/**
 * @return The operator's performance-related parameter extracted from
 *         @p params (n, X, bins, borders), or 0 for 1D ops; this is the
 *         OpShape::param the predictor trains on.
 */
double opPerfParam(OpType type, const OpParams &params);

} // namespace rap::preproc

#endif // RAP_PREPROC_COST_MODEL_HPP
