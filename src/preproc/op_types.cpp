#include "preproc/op_types.hpp"

#include "common/log.hpp"

namespace rap::preproc {

std::string
opTypeName(OpType type)
{
    switch (type) {
      case OpType::Logit: return "Logit";
      case OpType::BoxCox: return "BoxCox";
      case OpType::Onehot: return "Onehot";
      case OpType::SigridHash: return "SigridHash";
      case OpType::FirstX: return "FirstX";
      case OpType::Clamp: return "Clamp";
      case OpType::Bucketize: return "Bucketize";
      case OpType::Ngram: return "Ngram";
      case OpType::MapId: return "MapId";
      case OpType::FillNull: return "FillNull";
      case OpType::Cast: return "Cast";
    }
    RAP_PANIC("unknown op type");
}

OpCategory
opCategory(OpType type)
{
    switch (type) {
      case OpType::Logit:
      case OpType::BoxCox:
      case OpType::Onehot:
        return OpCategory::DenseNorm;
      case OpType::SigridHash:
      case OpType::FirstX:
      case OpType::Clamp:
        return OpCategory::SparseNorm;
      case OpType::Bucketize:
      case OpType::Ngram:
      case OpType::MapId:
        return OpCategory::FeatureGen;
      case OpType::FillNull:
      case OpType::Cast:
        return OpCategory::Other;
    }
    RAP_PANIC("unknown op type");
}

PredictorCategory
predictorCategory(OpType type)
{
    switch (type) {
      case OpType::FirstX: return PredictorCategory::FirstX;
      case OpType::Ngram: return PredictorCategory::Ngram;
      case OpType::Onehot: return PredictorCategory::Onehot;
      case OpType::Bucketize: return PredictorCategory::Bucketize;
      default: return PredictorCategory::OneDimensional;
    }
}

std::string
predictorCategoryName(PredictorCategory cat)
{
    switch (cat) {
      case PredictorCategory::OneDimensional: return "1D Ops";
      case PredictorCategory::FirstX: return "FirstX";
      case PredictorCategory::Ngram: return "Ngram";
      case PredictorCategory::Onehot: return "Onehot";
      case PredictorCategory::Bucketize: return "Bucketize";
    }
    RAP_PANIC("unknown predictor category");
}

bool
isDenseOp(OpType type)
{
    switch (type) {
      case OpType::Logit:
      case OpType::BoxCox:
      case OpType::Onehot:
      case OpType::Bucketize:
      case OpType::Cast:
        return true;
      case OpType::SigridHash:
      case OpType::FirstX:
      case OpType::Clamp:
      case OpType::Ngram:
      case OpType::MapId:
        return false;
      case OpType::FillNull:
        // FillNull exists for both shapes; the node's column kind decides.
        return true;
    }
    RAP_PANIC("unknown op type");
}

std::array<OpType, kOpTypeCount>
allOpTypes()
{
    return {OpType::Logit,      OpType::BoxCox, OpType::Onehot,
            OpType::SigridHash, OpType::FirstX, OpType::Clamp,
            OpType::Bucketize,  OpType::Ngram,  OpType::MapId,
            OpType::FillNull,   OpType::Cast};
}

} // namespace rap::preproc
