#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "dlrm/trainer.hpp"
#include "ingest/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "preproc/executor.hpp"
#include "sim/trace_export.hpp"

namespace rap::core {

namespace {

/**
 * Labels for this run's instruments: the configured `run=` scope (when
 * set) plus any extra pairs. Sweep benches sharing one registry across
 * pool workers rely on the scope to keep instruments single-strand.
 */
obs::Labels
runLabels(const SystemConfig &config,
          std::initializer_list<std::pair<std::string, std::string>>
              extra = {})
{
    obs::Labels labels(extra);
    if (!config.metricsScope.empty())
        labels.set("run", config.metricsScope);
    return labels;
}

/** Fatal (user error) when @p config fails structured validation. */
void
requireValid(const SystemConfig &config)
{
    const auto result = config.validate();
    if (!result.ok())
        RAP_FATAL("invalid run configuration:\n", result.render());
}

/** Fires a set of events once all expected parties have arrived. */
class InputBarrier
{
  public:
    InputBarrier(sim::Engine &engine, int expected)
        : engine_(engine), expected_(expected)
    {
    }

    void addTarget(sim::SimEventPtr event)
    {
        targets_.push_back(std::move(event));
    }

    void
    arrive()
    {
        RAP_ASSERT(arrived_ < expected_, "barrier over-arrived");
        if (++arrived_ == expected_) {
            for (auto &event : targets_)
                event->fire(engine_);
        }
    }

  private:
    sim::Engine &engine_;
    int expected_;
    int arrived_ = 0;
    std::vector<sim::SimEventPtr> targets_;
};

/** Result of the streaming-ingest pre-pass. */
struct IngestPhase
{
    /** Virtual time staged batch j became available (monotone). */
    std::vector<Seconds> readyAt;
    ingest::IngestReport report;
};

/**
 * Streaming-ingest pre-pass: when the run is configured with an
 * ingest front-end, drive the whole stream (producers, lock-free
 * transport, staging) to completion and record each staged batch's
 * virtual ready time. The training simulation then gates iteration j
 * on readyAt[j] — input-bound stretches of the stream surface as
 * iteration-latency stalls. Fatal when the stream stages fewer
 * batches than the run consumes.
 */
std::optional<IngestPhase>
runIngestPhase(const SystemConfig &config)
{
    if (!config.ingest)
        return std::nullopt;
    IngestPhase phase;
    ingest::IngestPipeline pipeline(*config.ingest);
    phase.report = pipeline.run(
        [&phase](ingest::StagedBatch &&batch) {
            phase.readyAt.push_back(batch.readyAt);
        },
        config.metrics, runLabels(config));
    if (phase.readyAt.size() <
        static_cast<std::size_t>(config.iterations)) {
        RAP_FATAL("ingest staged ", phase.readyAt.size(),
                  " batches but the run consumes ",
                  config.iterations,
                  " (one per iteration); raise ingest.duration or "
                  "shrink ingest.batchRows");
    }
    return phase;
}

void
fillIngestStats(RunReport &report, const IngestPhase &phase,
                int iterations)
{
    report.ingestEvents = phase.report.events;
    report.ingestDropped = phase.report.dropped;
    report.ingestSpilled = phase.report.spilled;
    report.ingestBatches = phase.report.batches;
    report.ingestStagingP99 = phase.report.p99;
    report.ingestLastReadyAt =
        phase.readyAt[static_cast<std::size_t>(iterations) - 1];
}

/** Per-system behavioural knobs shared by all GPU-preprocessing runs. */
struct GpuSystemTraits
{
    MappingStrategy mapping = MappingStrategy::Rap;
    bool fusion = true;
    bool capacityScheduling = true;
    bool sequential = false;
    /** Launch group of preprocessing streams (0 = training process). */
    int preprocLaunchGroup = 0;
    /** Stream priority of preprocessing (1 = CUDA low priority). */
    int preprocPriority = 1;
    /**
     * Host dispatch gap before every kernel launch. The handcrafted
     * baselines drive their kernels eagerly from the Python input
     * pipeline; RAP's generated code launches fused kernels directly.
     */
    Seconds hostDispatch = 0.0;
};

GpuSystemTraits
traitsFor(System system)
{
    GpuSystemTraits traits;
    switch (system) {
      case System::Rap:
        return traits;
      case System::RapNoMapping:
        traits.mapping = MappingStrategy::DataParallel;
        return traits;
      case System::RapNoFusion:
        traits.fusion = false;
        return traits;
      case System::HybridRap:
        return traits; // RAP traits; the CPU segmentation is applied
                       // after scheduling (see runGpuSystem).
      case System::HorizontalFusionOnly:
        // Generated fused kernels, launched back-to-back from the
        // iteration start with no capacity awareness; the naive
        // co-run contends with training at fair share, so oversized
        // fused kernels stretch the trainer (the Fig. 11 effect).
        traits.mapping = MappingStrategy::DataParallel;
        traits.capacityScheduling = false;
        traits.preprocPriority = 0;
        return traits;
      case System::CudaStream:
        traits.mapping = MappingStrategy::DataParallel;
        traits.fusion = false;
        traits.capacityScheduling = false;
        traits.preprocLaunchGroup = 0;
        // Same-process eager dispatch contends with the training
        // loop's host thread, so it is slower than a dedicated
        // preprocessing process.
        traits.hostDispatch = 20e-6;
        return traits;
      case System::Mps:
        traits.mapping = MappingStrategy::DataParallel;
        traits.fusion = false;
        traits.capacityScheduling = false;
        traits.preprocLaunchGroup = 1;
        // A separate MPS process shares the SMs fairly with training.
        traits.preprocPriority = 0;
        traits.hostDispatch = 12e-6;
        return traits;
      case System::SequentialGpu:
        traits.mapping = MappingStrategy::DataParallel;
        traits.fusion = false;
        traits.capacityScheduling = false;
        traits.sequential = true;
        traits.hostDispatch = 12e-6;
        return traits;
      default:
        RAP_PANIC("system has no GPU-preprocessing traits");
    }
}

/**
 * Resolve the hardware description for @p config: the explicit
 * subset-cluster override when the fleet passed one, otherwise the
 * default DGX-A100 node sized to gpuCount. Validates the subset /
 * envelope vectors against the GPU count in either case.
 */
sim::ClusterSpec
clusterSpecFor(const SystemConfig &config)
{
    RAP_ASSERT(config.gpuSubset.empty() ||
                   static_cast<int>(config.gpuSubset.size()) ==
                       config.gpuCount,
               "gpuSubset must label every GPU");
    RAP_ASSERT(config.envelopes.empty() ||
                   static_cast<int>(config.envelopes.size()) ==
                       config.gpuCount,
               "envelopes must cover every GPU");
    for (const auto &env : config.envelopes) {
        RAP_ASSERT(env.sm > 0.0 && env.sm <= 1.0 && env.bw > 0.0 &&
                       env.bw <= 1.0,
                   "GPU envelope shares must be in (0, 1]");
    }
    if (config.clusterSpec) {
        RAP_ASSERT(config.clusterSpec->gpuCount == config.gpuCount,
                   "clusterSpec GPU count must match config.gpuCount");
        return *config.clusterSpec;
    }
    return sim::dgxA100Spec(config.gpuCount);
}

/**
 * Build the DLRM model configuration for @p config over @p plan,
 * carrying the system-level inference flag into the model so every
 * run path (ideal, TorchArrow, GPU systems, offline planning) builds
 * the same forward-only iteration when serving.
 */
dlrm::DlrmConfig
modelConfigFor(const SystemConfig &config, const preproc::PreprocPlan &plan)
{
    auto model = dlrm::makeDlrmConfig(plan.spec.dataset, plan.schema,
                                      config.batchPerGpu);
    model.inferenceOnly = config.inference;
    return model;
}

/** Shrink each device to its configured envelope share (co-location). */
void
applyEnvelopes(sim::Cluster &cluster, const SystemConfig &config)
{
    for (std::size_t g = 0; g < config.envelopes.size(); ++g) {
        const auto &env = config.envelopes[g];
        if (env.sm < 1.0)
            cluster.device(static_cast<int>(g)).degradeSm(env.sm);
        if (env.bw < 1.0)
            cluster.device(static_cast<int>(g)).degradeBw(env.bw);
    }
}

/**
 * Forward the engine-jobs knob to the cluster's DES engine. Training
 * runs keep a single time zone — every iteration is synchronised by
 * all-GPU collectives at sub-lookahead granularity, so a conservative
 * partition would degenerate into one zone per barrier — which makes
 * this a validated no-op today; partitioned simulations (bench_scale's
 * synthetic fleets, via Cluster::partitionZones) consume the worker
 * count for the window bodies.
 */
void
applyEngineJobs(sim::Cluster &cluster, const SystemConfig &config)
{
    const int jobs = config.engineJobs == 0
                         ? ThreadPool::hardwareThreads()
                         : config.engineJobs;
    cluster.engine().setJobs(jobs);
}

/** Dump the run's Chrome trace when the config asked for one. */
void
maybeWriteTrace(const sim::Cluster &cluster, const SystemConfig &config)
{
    if (config.tracePath.empty())
        return;
    sim::TraceExportOptions options;
    // Recorded spans (planner phases, per-iteration sim spans) render
    // into the trace alongside the kernel tracks.
    options.spans = config.metrics;
    sim::writeChromeTrace(cluster, config.tracePath, options);
}

/** Embedding-table placement shared by every system variant. */
dlrm::EmbeddingSharding
makeSharding(const SystemConfig &config,
             const preproc::PreprocPlan &plan)
{
    return config.rowWiseThreshold > 0
               ? dlrm::EmbeddingSharding::balancedWithRowWise(
                     plan.schema, config.gpuCount,
                     config.rowWiseThreshold)
               : dlrm::EmbeddingSharding::balanced(plan.schema,
                                                   config.gpuCount);
}

/** Aggregate utilisation statistics over the steady-state window. */
void
fillUtilisation(RunReport &report, sim::Cluster &cluster, Seconds t0,
                Seconds t1)
{
    RunningStat sm, bw, busy;
    Bytes p2p = 0.0;
    for (int g = 0; g < cluster.gpuCount(); ++g) {
        auto &trace = cluster.device(g).trace();
        sm.add(trace.avgSmUsage(t0, t1));
        bw.add(trace.avgBwUsage(t0, t1));
        busy.add(trace.busyFraction(t0, t1));
        p2p += cluster.device(g).p2pLink().totalBytes();
    }
    report.avgSmUtil = sm.mean();
    report.avgBwUtil = bw.mean();
    report.avgGpuBusy = busy.mean();
    report.p2pBytes = p2p;
}

/**
 * Arm in-DES calibration checkpoints on @p driver. FixedInterval
 * drains at its configured cadence; YoungDaly pushes one trailing
 * calibration drain to *measure* the per-checkpoint cost (the
 * composed interval is derived from that measurement afterwards).
 * @return True when checkpoints were armed.
 */
bool
armCheckpoints(const SystemConfig &sys, const dlrm::DlrmConfig &model,
               const dlrm::EmbeddingSharding &sharding,
               dlrm::TrainingDriver &driver)
{
    const auto &ckpt = sys.checkpoint;
    if (ckpt.mode == CheckpointMode::None)
        return false;
    std::vector<Bytes> bytes;
    bytes.reserve(static_cast<std::size_t>(sys.gpuCount));
    for (int g = 0; g < sys.gpuCount; ++g)
        bytes.push_back(checkpointBytesPerGpu(model, sharding, g));
    // Cap the cadence at the run length so at least one drain executes
    // and the cost measurement always has a sample.
    const int cadence =
        ckpt.mode == CheckpointMode::FixedInterval
            ? std::min(std::max(1, ckpt.interval), sys.iterations)
            : sys.iterations;
    driver.setCheckpoint(std::move(bytes), cadence);
    return true;
}

/**
 * Summed checkpoint drain time (slowest GPU per drain) after
 * iterations [from, to) — what checkpointing added to the wall clock
 * inside a measurement window.
 */
Seconds
checkpointSecondsInWindow(const dlrm::TrainingDriver &driver, int gpus,
                          int from, int to)
{
    Seconds total = 0.0;
    for (int j = from; j < to; ++j) {
        Seconds worst = 0.0;
        for (int g = 0; g < gpus; ++g) {
            const auto &span = driver.checkpointSpan(g, j);
            if (span.valid())
                worst = std::max(worst, span.duration());
        }
        total += worst;
    }
    return total;
}

/**
 * Compose the analytic crash/restore timeline over the job length and
 * fill the report's recovery fields. The DES measured the
 * checkpoint-free iteration interval and the per-checkpoint cost;
 * realistic MTBFs dwarf the simulated horizon, so crashes and
 * checkpoints are extrapolated in O(crashes + checkpoints)
 * (core/checkpoint.hpp). When composition runs, RunReport::makespan is
 * the composed end-to-end completion of the full job, not the DES
 * drain time.
 */
void
applyRecovery(const SystemConfig &sys, RunReport &report,
              Seconds iter_interval, Seconds checkpoint_cost,
              const std::vector<Seconds> &crash_times)
{
    const auto &ckpt = sys.checkpoint;
    if (ckpt.mode == CheckpointMode::None && crash_times.empty())
        return;
    const long long job_iters =
        ckpt.jobIterations > 0 ? ckpt.jobIterations : sys.iterations;
    long long interval_iters = 0;
    switch (ckpt.mode) {
      case CheckpointMode::None:
        break;
      case CheckpointMode::FixedInterval:
        interval_iters = std::max(1, ckpt.interval);
        break;
      case CheckpointMode::YoungDaly:
        interval_iters = std::max<long long>(
            1, std::llround(
                   youngDalyInterval(checkpoint_cost, ckpt.mtbf) /
                   iter_interval));
        break;
    }
    // Restore reads the image back over the same host link, so it
    // costs one checkpoint drain on top of the process restart.
    const auto outcome = composeRecovery(
        iter_interval, checkpoint_cost, checkpoint_cost,
        ckpt.restartOverhead, job_iters, interval_iters, crash_times);
    report.lostWork = outcome.lostWork;
    report.checkpointOverhead = outcome.checkpointOverhead;
    report.recoveries = outcome.recoveries;
    report.makespan = outcome.completion;
    if (sys.metrics != nullptr) {
        sys.metrics->counter("train.checkpoints", runLabels(sys))
            .inc(static_cast<std::uint64_t>(
                std::max<long long>(0, outcome.checkpoints)));
        sys.metrics->counter("train.lost_batches", runLabels(sys))
            .inc(static_cast<std::uint64_t>(
                std::max<long long>(0, outcome.lostBatches)));
        for (const auto &window : outcome.recoveryWindows) {
            sys.metrics->recordSimSpan("train.recovery", runLabels(sys),
                                       window.first, window.second);
        }
    }
}

/** Aggregate fault-injection statistics over the whole run. */
void
fillFaultStats(RunReport &report, sim::Cluster &cluster)
{
    for (int g = 0; g < cluster.gpuCount(); ++g) {
        report.kernelRetries += cluster.device(g).kernelRetries();
        report.retryBackoffSeconds +=
            cluster.device(g).retryBackoffSeconds();
    }
}

/**
 * Record the run's per-iteration observability after the simulation
 * drained: iteration-interval series + fixed-bucket histogram, exposed
 * latency against @p predicted (when the system has a prediction), and
 * one sim-time span per iteration (rendered into the Chrome trace).
 * Runs on the single calling strand, so double accumulation is
 * deterministic.
 */
void
recordIterationMetrics(const SystemConfig &config,
                       sim::Cluster &cluster,
                       dlrm::TrainingDriver &driver,
                       const std::vector<Seconds> *predicted = nullptr)
{
    obs::MetricRegistry *metrics = config.metrics;
    if (metrics == nullptr)
        return;
    // Edges are fixed so snapshots from different runs line up
    // bucket-for-bucket (1 ms .. 1 s, the simulated iteration range).
    static const std::vector<double> kIterationEdges{
        0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0};
    auto &histogram =
        metrics->histogram("train.iteration_interval_seconds",
                           kIterationEdges, runLabels(config));
    for (int g = 0; g < config.gpuCount; ++g) {
        obs::Labels labels = runLabels(config);
        labels.set("gpu", std::to_string(cluster.globalGpuId(g)));
        auto &intervals =
            metrics->series("train.iteration_interval", labels);
        for (int j = 0; j < config.iterations; ++j) {
            const auto span = driver.iterationSpan(g, j);
            const Seconds interval =
                j >= 1 ? span.end - driver.iterationSpan(g, j - 1).end
                       : span.end - span.start;
            intervals.append(j, interval);
            histogram.observe(interval);
            metrics->recordSimSpan("train.iteration", labels,
                                   span.start, span.end);
            if (predicted != nullptr) {
                const Seconds expected =
                    (*predicted)[static_cast<std::size_t>(g)];
                metrics->series("train.exposed_latency", labels)
                    .append(j, std::max(0.0, interval - expected));
            }
        }
    }
    cluster.exportMetrics(*metrics, runLabels(config));
}

} // namespace

std::string
systemName(System system)
{
    switch (system) {
      case System::Ideal: return "Ideal";
      case System::Rap: return "RAP";
      case System::RapNoMapping: return "RAP w/o mapping";
      case System::RapNoFusion: return "RAP w/o fusion";
      case System::HorizontalFusionOnly: return "Horizontal Fusion";
      case System::HybridRap: return "RAP hybrid (GPU+CPU)";
      case System::CudaStream: return "CUDA stream";
      case System::Mps: return "MPS";
      case System::SequentialGpu: return "Sequential";
      case System::TorchArrowCpu: return "TorchArrow";
    }
    RAP_PANIC("unknown system");
}

OnlineTrainer::OnlineTrainer(SystemConfig config,
                             const preproc::PreprocPlan &plan)
    : config_(std::move(config)), plan_(plan)
{
    requireValid(config_);
}

RunReport
runSystem(const SystemConfig &config, const preproc::PreprocPlan &plan)
{
    OnlineTrainer trainer(config, plan);
    return trainer.run();
}

OfflinePlan
planOffline(const SystemConfig &config, const preproc::PreprocPlan &plan,
            ThreadPool *pool)
{
    requireValid(config);
    obs::MetricRegistry *metrics = config.metrics;
    obs::Span plan_span(metrics, "plan.offline", runLabels(config));

    const auto traits = traitsFor(config.system);
    const auto cluster_spec = clusterSpecFor(config);
    const auto dlrm_config = modelConfigFor(config, plan);
    const auto sharding = makeSharding(config, plan);

    OfflinePlan offline;
    {
        obs::Span span(metrics, "plan.profile", runLabels(config));
        OverlappingCapacityEstimator estimator(cluster_spec,
                                               dlrm_config, sharding);
        offline.profiles = estimator.profileAll();
    }
    // Envelope-shared co-location: the job only owns a slice of each
    // device, so every downstream search (mapping, fusion, co-run
    // scheduling) must plan against the degraded capacity profile —
    // the same transform the online replanning path applies when a
    // device's envelope shrinks mid-run.
    for (std::size_t g = 0; g < config.envelopes.size(); ++g) {
        offline.profiles[g] =
            degradeProfile(offline.profiles[g], config.envelopes[g].sm,
                           config.envelopes[g].bw);
    }

    FusionOptions fusion_options;
    fusion_options.solver = config.solver;
    fusion_options.enableFusion = traits.fusion;
    HorizontalFusionPlanner planner(cluster_spec.gpu, config.predictor,
                                    fusion_options);
    GraphMapper mapper(plan, sharding, cluster_spec,
                       config.batchPerGpu);

    const MappingStrategy strategy =
        config.forcedMapping.value_or(traits.mapping);
    MappingSearchStats mapping_stats;
    {
        obs::Span span(metrics, "plan.mapping", runLabels(config));
        offline.mapping =
            strategy == MappingStrategy::Rap
                ? mapper.mapRap(offline.profiles, planner,
                                /*max_moves=*/64, pool, &mapping_stats)
                : mapper.map(strategy);
    }

    // Per-GPU plan + schedule: independent given the mapping and the
    // profiles (planner, mapper, and scheduler are all const here), so
    // each GPU runs as one pool task writing its own slot.
    CoRunScheduler scheduler(planner);
    const auto gpu_count = static_cast<std::size_t>(config.gpuCount);
    offline.schedules.resize(gpu_count);
    auto planGpu = [&](std::size_t g) {
        auto kernels = planner.plan(
            mapper.buildGpuGraph(offline.mapping, static_cast<int>(g)),
            config.batchPerGpu);
        if (traits.capacityScheduling) {
            offline.schedules[g] = scheduler.schedule(
                std::move(kernels), offline.profiles[g]);
        } else {
            // Baselines launch kernels back-to-back from iteration
            // start without capacity awareness.
            CoRunSchedule schedule;
            for (auto &k : kernels) {
                schedule.totalPreprocLatency += k.predictedLatency;
                schedule.kernels.push_back(
                    ScheduledKernel{std::move(k), 0, false});
            }
            offline.schedules[g] = std::move(schedule);
        }
    };
    {
        obs::Span span(metrics, "plan.schedule", runLabels(config));
        if (pool != nullptr)
            pool->parallelFor(gpu_count, planGpu);
        else
            for (std::size_t g = 0; g < gpu_count; ++g)
                planGpu(g);
    }

    if (metrics != nullptr) {
        metrics->counter("plan.milp.nodes_explored", runLabels(config))
            .inc(planner.milpNodesExplored());
        metrics
            ->counter("plan.mapping.moves_accepted", runLabels(config))
            .inc(static_cast<std::uint64_t>(
                mapping_stats.movesAccepted));
        metrics
            ->counter("plan.mapping.moves_evaluated",
                      runLabels(config))
            .inc(static_cast<std::uint64_t>(
                mapping_stats.movesEvaluated));
        metrics->counter("plan.mapping.pricings", runLabels(config))
            .inc(mapping_stats.pricings);
    }
    return offline;
}

RunReport
OnlineTrainer::run()
{
    switch (config_.system) {
      case System::Ideal:
        return runIdeal();
      case System::TorchArrowCpu:
        return runTorchArrow();
      default:
        return runGpuSystem();
    }
}

RunReport
OnlineTrainer::runIdeal()
{
    const auto cluster_spec = clusterSpecFor(config_);
    const auto config = modelConfigFor(config_, plan_);
    const auto sharding = makeSharding(config_, plan_);

    sim::Cluster cluster(cluster_spec, config_.gpuSubset);
    applyEnvelopes(cluster, config_);
    applyEngineJobs(cluster, config_);
    std::optional<sim::FaultInjector> injector;
    std::vector<Seconds> crash_times;
    if (config_.faults) {
        crash_times = config_.faults->failStopTimes();
        injector.emplace(config_.faults->degradationOnly());
        injector->arm(cluster);
    }
    const auto ingest_phase = runIngestPhase(config_);
    dlrm::TrainingDriver driver(cluster, config, sharding);

    // Streaming ingest gates even the ideal system: iteration j's
    // input event fires when staged batch j is ready, so an
    // input-bound stream stretches the otherwise compute-bound run.
    std::vector<std::vector<sim::SimEventPtr>> ready;
    std::vector<std::unique_ptr<InputBarrier>> input_barriers;
    if (ingest_phase) {
        auto &engine = cluster.engine();
        const int n = config_.iterations;
        const int gpus = config_.gpuCount;
        ready.resize(static_cast<std::size_t>(gpus));
        for (int j = 0; j < n; ++j) {
            input_barriers.push_back(
                std::make_unique<InputBarrier>(engine, 1));
        }
        for (int g = 0; g < gpus; ++g) {
            for (int j = 0; j < n; ++j) {
                auto event = sim::makeEvent(
                    "input.g" + std::to_string(g) + "." +
                    std::to_string(j));
                input_barriers[static_cast<std::size_t>(j)]
                    ->addTarget(event);
                ready[static_cast<std::size_t>(g)].push_back(
                    std::move(event));
            }
        }
        driver.setInputGate([&ready](int g, int i) {
            return ready[static_cast<std::size_t>(g)][
                static_cast<std::size_t>(i)];
        });
        for (int j = 0; j < n; ++j) {
            auto *barrier =
                input_barriers[static_cast<std::size_t>(j)].get();
            engine.schedule(
                ingest_phase->readyAt[static_cast<std::size_t>(j)],
                [barrier] { barrier->arrive(); });
        }
    }

    const bool checkpointing =
        armCheckpoints(config_, config, sharding, driver);
    driver.pushIterations(config_.iterations);
    cluster.run();

    RunReport report;
    report.system = systemName(config_.system);
    report.gpuCount = config_.gpuCount;
    report.batchPerGpu = config_.batchPerGpu;
    report.avgIterationLatency =
        driver.avgIterationLatency(config_.warmup);
    report.throughput = static_cast<double>(config_.batchPerGpu) *
                        config_.gpuCount / report.avgIterationLatency;
    const Seconds t0 =
        driver.iterationSpan(0, config_.warmup).start;
    const Seconds t1 =
        driver.iterationSpan(0, config_.iterations - 1).end;
    fillUtilisation(report, cluster, t0, t1);
    report.makespan = cluster.engine().now();
    fillFaultStats(report, cluster);
    applyRecovery(config_, report, report.avgIterationLatency,
                  checkpointing ? driver.avgCheckpointCost() : 0.0,
                  crash_times);
    if (ingest_phase)
        fillIngestStats(report, *ingest_phase, config_.iterations);
    recordIterationMetrics(config_, cluster, driver);
    maybeWriteTrace(cluster, config_);
    return report;
}

RunReport
OnlineTrainer::runTorchArrow()
{
    const auto cluster_spec = clusterSpecFor(config_);
    const auto config = modelConfigFor(config_, plan_);
    const auto sharding = makeSharding(config_, plan_);

    // Host cost of preprocessing one batch (all features).
    Seconds batch_core_seconds = 0.0;
    for (const auto &node : plan_.graph.nodes()) {
        batch_core_seconds += preproc::opCpuSeconds(
            node.type, preproc::nodeShape(node, plan_.schema,
                                          config_.batchPerGpu));
    }
    Bytes batch_out_bytes = 0.0;
    for (int f : plan_.graph.featureIds()) {
        const auto nodes = plan_.graph.featureNodes(f);
        const auto &tail = plan_.graph.node(nodes.back());
        batch_out_bytes += preproc::opOutputBytes(
            tail.type, preproc::nodeShape(tail, plan_.schema,
                                          config_.batchPerGpu));
    }

    sim::Cluster cluster(cluster_spec, config_.gpuSubset);
    applyEnvelopes(cluster, config_);
    applyEngineJobs(cluster, config_);
    auto &engine = cluster.engine();
    std::optional<sim::FaultInjector> injector;
    std::vector<Seconds> crash_times;
    if (config_.faults) {
        crash_times = config_.faults->failStopTimes();
        injector.emplace(config_.faults->degradationOnly());
        injector->arm(cluster);
    }
    const int n = config_.iterations;
    const int gpus = config_.gpuCount;
    const int workers = config_.torchArrowWorkersPerGpu;
    const int cores = config_.coresPerWorker;
    const Seconds task_duration =
        batch_core_seconds / static_cast<double>(cores);

    // Input-ready events gate the trainer.
    std::vector<std::vector<sim::SimEventPtr>> ready(
        static_cast<std::size_t>(gpus));
    for (int g = 0; g < gpus; ++g) {
        for (int j = 0; j < n; ++j) {
            ready[static_cast<std::size_t>(g)].push_back(
                sim::makeEvent("input.g" + std::to_string(g) + "." +
                               std::to_string(j)));
        }
    }

    dlrm::TrainingDriver driver(cluster, config, sharding);
    driver.setInputGate([&](int g, int i) {
        return ready[static_cast<std::size_t>(g)][
            static_cast<std::size_t>(i)];
    });
    const bool checkpointing =
        armCheckpoints(config_, config, sharding, driver);
    driver.pushIterations(n);

    // Worker pipelines: worker w of GPU g preprocesses batches
    // j === w (mod workers), then the batch crosses PCIe.
    for (int g = 0; g < gpus; ++g) {
        auto &copy_stream = cluster.device(g).newStream(
            "gpu" + std::to_string(g) + ".h2d_queue");
        std::vector<sim::SimEventPtr> cpu_done(
            static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
            cpu_done[static_cast<std::size_t>(j)] = sim::makeEvent(
                "cpu.g" + std::to_string(g) + "." + std::to_string(j));
        }
        for (int w = 0; w < workers; ++w) {
            auto &worker_stream = cluster.host().newStream(
                "ta.g" + std::to_string(g) + ".w" + std::to_string(w));
            for (int j = w; j < n; j += workers) {
                worker_stream.pushCpuTask(task_duration, cores);
                worker_stream.pushRecord(
                    cpu_done[static_cast<std::size_t>(j)]);
            }
        }
        for (int j = 0; j < n; ++j) {
            copy_stream.pushWait(cpu_done[static_cast<std::size_t>(j)]);
            copy_stream.pushCopy(sim::CopyKind::HostToDevice,
                                 batch_out_bytes);
            copy_stream.pushRecord(
                ready[static_cast<std::size_t>(g)][
                    static_cast<std::size_t>(j)]);
        }
    }

    cluster.run();
    (void)engine;

    RunReport report;
    report.system = systemName(config_.system);
    report.gpuCount = gpus;
    report.batchPerGpu = config_.batchPerGpu;
    // The pipeline is input-bound when CPU supply trails demand; the
    // effective iteration interval is end-to-end makespan / iterations.
    const Seconds span_start = driver.iterationSpan(0, config_.warmup)
                                   .start;
    const Seconds span_end =
        driver.iterationSpan(0, n - 1).end;
    const double steady_iters =
        static_cast<double>(n - config_.warmup);
    const Seconds ckpt_window = checkpointSecondsInWindow(
        driver, gpus, config_.warmup, n - 1);
    const Seconds interval =
        (span_end - span_start - ckpt_window) / steady_iters;
    report.avgIterationLatency = interval;
    report.throughput = static_cast<double>(config_.batchPerGpu) *
                        gpus / interval;
    report.preprocLatencyPerIter = batch_core_seconds;
    fillUtilisation(report, cluster, span_start, span_end);
    report.makespan = engine.now();
    fillFaultStats(report, cluster);
    applyRecovery(config_, report, report.avgIterationLatency,
                  checkpointing ? driver.avgCheckpointCost() : 0.0,
                  crash_times);
    recordIterationMetrics(config_, cluster, driver);
    maybeWriteTrace(cluster, config_);
    return report;
}

RunReport
OnlineTrainer::runGpuSystem()
{
    const auto traits = traitsFor(config_.system);
    const auto cluster_spec = clusterSpecFor(config_);
    const auto config = modelConfigFor(config_, plan_);
    const auto sharding = makeSharding(config_, plan_);

    // ---- Offline phase: capacity profiles + plan search, fanned out
    // over the planning pool (serial when planningThreads == 1). ----
    std::unique_ptr<ThreadPool> pool;
    if (config_.planningThreads != 1)
        pool = std::make_unique<ThreadPool>(config_.planningThreads);
    OfflinePlan offline = planOffline(config_, plan_, pool.get());
    const auto &profiles = offline.profiles;
    auto &mapping = offline.mapping; // replaced on a mapping replan
    auto &schedules = offline.schedules;

    FusionOptions fusion_options;
    fusion_options.solver = config_.solver;
    fusion_options.enableFusion = traits.fusion;
    HorizontalFusionPlanner planner(cluster_spec.gpu, config_.predictor,
                                    fusion_options);
    GraphMapper mapper(plan_, sharding, cluster_spec,
                       config_.batchPerGpu);

    // ---- Hybrid extension (§10): kernels whose latency exceeds the
    // GPUs' total overlapping capacity (the scheduler's overflow set)
    // are segmented off to host CPU workers. ----
    std::vector<Seconds> cpu_part_core_seconds(
        static_cast<std::size_t>(config_.gpuCount), 0.0);
    const int hybrid_cores = std::max(
        1, std::min(config_.torchArrowWorkersPerGpu *
                        config_.coresPerWorker,
                    cluster_spec.cpuCores / config_.gpuCount));
    if (config_.system == System::HybridRap) {
        for (int g = 0; g < config_.gpuCount; ++g) {
            auto &schedule = schedules[static_cast<std::size_t>(g)];
            // The CPU pipeline must itself keep up with the trainer:
            // offload only what this GPU's share of the host cores can
            // chew through within one iteration interval.
            const Seconds budget =
                profiles[static_cast<std::size_t>(g)]
                    .iterationLatency *
                0.9 * hybrid_cores;
            auto &cpu_part =
                cpu_part_core_seconds[static_cast<std::size_t>(g)];
            std::vector<ScheduledKernel> kept;
            for (auto &sk : schedule.kernels) {
                if (!sk.overflow) {
                    kept.push_back(std::move(sk));
                    continue;
                }
                // Offload members individually until the CPU budget
                // is spent; the rest stays on the GPU.
                std::vector<int> keep_ids;
                std::vector<preproc::OpShape> keep_shapes;
                Seconds gpu_kept_fraction = 0.0;
                for (std::size_t m = 0; m < sk.kernel.nodeIds.size();
                     ++m) {
                    const Seconds member_cpu = preproc::opCpuSecondsOptimized(
                        sk.kernel.type, sk.kernel.memberShapes[m]);
                    if (cpu_part + member_cpu <= budget) {
                        cpu_part += member_cpu;
                    } else {
                        keep_ids.push_back(sk.kernel.nodeIds[m]);
                        keep_shapes.push_back(
                            sk.kernel.memberShapes[m]);
                    }
                }
                const Seconds before = sk.kernel.predictedLatency;
                const Seconds launch =
                    planner.spec().kernelLaunchOverhead;
                if (keep_ids.empty()) {
                    // A fully offloaded kernel also gives back its
                    // launch overhead (both totals charge one launch
                    // per kernel).
                    schedule.totalPreprocLatency -= before + launch;
                    schedule.estimatedExposed -= before + launch;
                    continue; // whole kernel offloaded
                }
                if (keep_ids.size() < sk.kernel.nodeIds.size()) {
                    sk.kernel = planner.materialise(
                        sk.kernel.type, std::move(keep_ids),
                        std::move(keep_shapes), sk.kernel.step);
                    schedule.totalPreprocLatency -=
                        before - sk.kernel.predictedLatency;
                    schedule.estimatedExposed -=
                        before - sk.kernel.predictedLatency;
                }
                (void)gpu_kept_fraction;
                kept.push_back(std::move(sk));
            }
            schedule.kernels = std::move(kept);
            if (schedule.estimatedExposed < 0.0)
                schedule.estimatedExposed = 0.0;
        }
    }

    // ---- Online phase: co-running execution. ----
    sim::Cluster cluster(cluster_spec, config_.gpuSubset);
    applyEnvelopes(cluster, config_);
    applyEngineJobs(cluster, config_);
    auto &engine = cluster.engine();
    const int n = config_.iterations;
    const int gpus = config_.gpuCount;

    // Streaming ingest pre-pass: the stream is staged on the same
    // virtual clock, and iteration j's input barrier gains one extra
    // party that arrives at staged batch j's ready time.
    const auto ingest_phase = runIngestPhase(config_);

    // Optional seeded fault scenario: degraded SM/HBM envelopes, slow
    // links, transient kernel-launch failures (sim/fault.hpp).
    // Fail-stop events are split off: the DES measures the
    // checkpoint-free steady state on live devices, and the
    // crash/restore timeline is composed analytically afterwards
    // (applyRecovery) — realistic MTBFs dwarf the simulated horizon.
    std::optional<sim::FaultInjector> injector;
    std::vector<Seconds> crash_times;
    if (config_.faults) {
        crash_times = config_.faults->failStopTimes();
        injector.emplace(config_.faults->degradationOnly());
        injector->arm(cluster);
    }

    std::vector<std::vector<sim::SimEventPtr>> ready(
        static_cast<std::size_t>(gpus));
    std::vector<std::unique_ptr<InputBarrier>> barriers;
    for (int j = 0; j < n; ++j) {
        barriers.push_back(std::make_unique<InputBarrier>(
            engine, gpus + (ingest_phase ? 1 : 0)));
    }
    for (int g = 0; g < gpus; ++g) {
        for (int j = 0; j < n; ++j) {
            auto event = sim::makeEvent(
                "input.g" + std::to_string(g) + "." +
                std::to_string(j));
            barriers[static_cast<std::size_t>(j)]->addTarget(event);
            ready[static_cast<std::size_t>(g)].push_back(
                std::move(event));
        }
    }
    if (ingest_phase) {
        for (int j = 0; j < n; ++j) {
            auto *barrier =
                barriers[static_cast<std::size_t>(j)].get();
            engine.schedule(
                ingest_phase->readyAt[static_cast<std::size_t>(j)],
                [barrier] { barrier->arrive(); });
        }
    }

    dlrm::TrainingDriver driver(cluster, config, sharding,
                                /*launch_group=*/0);
    driver.setInputGate([&](int g, int i) {
        return ready[static_cast<std::size_t>(g)][
            static_cast<std::size_t>(i)];
    });
    const bool checkpointing =
        armCheckpoints(config_, config, sharding, driver);
    driver.pushIterations(n);

    std::vector<sim::Stream *> hybrid_streams(
        static_cast<std::size_t>(gpus), nullptr);
    std::vector<std::vector<std::unique_ptr<InputBarrier>>> joins(
        static_cast<std::size_t>(gpus));

    // Per-GPU streams persist across batches: batch work is pushed
    // incrementally (kPushAhead batches deep) so an online replan can
    // splice a new schedule in at the next batch boundary.
    struct GpuLane
    {
        sim::Stream *prep = nullptr;
        sim::Stream *copy = nullptr;
        sim::Stream *pre = nullptr;
    };
    std::vector<GpuLane> lanes(static_cast<std::size_t>(gpus));
    for (int g = 0; g < gpus; ++g) {
        auto &device = cluster.device(g);
        auto &lane = lanes[static_cast<std::size_t>(g)];
        lane.prep =
            &cluster.host().newStream("prep.g" + std::to_string(g));
        lane.copy =
            &device.newStream("gpu" + std::to_string(g) + ".copy");
        lane.pre = &device.newStream(
            "gpu" + std::to_string(g) + ".preproc",
            traits.preprocLaunchGroup, traits.preprocPriority);
    }

    // Host preparation cost and input-communication messages follow
    // the current mapping and schedules; recomputed after a replan.
    std::vector<Seconds> prep_cpu(static_cast<std::size_t>(gpus), 0.0);
    std::vector<Bytes> prep_bytes(static_cast<std::size_t>(gpus), 0.0);
    std::vector<std::vector<Bytes>> comm_messages(
        static_cast<std::size_t>(gpus));
    auto refreshMappingCosts = [&] {
        for (int g = 0; g < gpus; ++g) {
            const auto gi = static_cast<std::size_t>(g);
            // Host preparation: per-kernel argument assembly plus one
            // raw column staged over PCIe per mapped work item.
            Seconds cpu = 0.0;
            Bytes bytes = 0.0;
            for (const auto &sk : schedules[gi].kernels)
                cpu += sk.kernel.prepCpuSeconds;
            for (const auto &item : mapping.itemsPerGpu[gi]) {
                // Column slicing + pinned-buffer staging is a
                // memcpy-rate pass over the raw column (the Fig. 8
                // preparation cost).
                const Bytes raw =
                    mapper.featureRawBytes(item.featureId);
                cpu += 4e-6 + raw / 5e9;
                bytes += raw;
            }
            prep_cpu[gi] = cpu;
            prep_bytes[gi] = bytes;
            // Input communication: one message per remote-consumer
            // item (per-feature tensors are shipped individually).
            comm_messages[gi] = mapper.remoteMessageSizes(mapping, g);
        }
    };
    refreshMappingCosts();

    auto pushBatch = [&](int g, int j) {
        const auto gi = static_cast<std::size_t>(g);
        const auto &schedule = schedules[gi];
        auto &prep_stream = *lanes[gi].prep;
        auto &copy_stream = *lanes[gi].copy;
        auto &pre_stream = *lanes[gi].pre;

        // --- Host data preparation + H2D staging for batch j. ---
        auto prep_done = sim::makeEvent(
            "prep.g" + std::to_string(g) + "." + std::to_string(j));
        // Interleaving starts the next batch's preparation one
        // iteration early (§6.3); without it, preparation waits
        // for the iteration the kernels will co-run with.
        const int prep_gate_iter =
            config_.interleave && traits.capacityScheduling ? j - 2
                                                            : j - 1;
        if (prep_gate_iter >= 0 && !traits.sequential)
            prep_stream.pushWait(driver.opStart(g, prep_gate_iter, 0));
        if (traits.sequential && j >= 1)
            prep_stream.pushWait(driver.iterEnd(g, j - 1));
        auto cpu_done = sim::makeEvent(
            "prepcpu.g" + std::to_string(g) + "." + std::to_string(j));
        prep_stream.pushCpuTask(prep_cpu[gi], 1);
        prep_stream.pushRecord(cpu_done);
        copy_stream.pushWait(cpu_done);
        copy_stream.pushCopy(sim::CopyKind::HostToDevice,
                             prep_bytes[gi]);
        copy_stream.pushRecord(prep_done);

        // --- Preprocessing kernels for batch j. ---
        pre_stream.pushWait(prep_done);
        const int corun_iter = j - 1;
        if (traits.sequential && j >= 1) {
            pre_stream.pushWait(driver.iterEnd(g, j - 1));
        } else if (!traits.capacityScheduling && corun_iter >= 0) {
            pre_stream.pushWait(driver.opStart(g, corun_iter, 0));
        }
        for (const auto &sk : schedule.kernels) {
            if (traits.capacityScheduling && corun_iter >= 0) {
                pre_stream.pushWait(
                    driver.opStart(g, corun_iter, sk.opIndex));
            }
            if (traits.hostDispatch > 0.0)
                pre_stream.pushDelay(traits.hostDispatch);
            pre_stream.pushKernel(sk.kernel.kernel);
        }

        // --- Input communication + readiness barrier. ---
        auto batch_done = sim::makeEvent(
            "batch.g" + std::to_string(g) + "." + std::to_string(j));
        if (!comm_messages[gi].empty()) {
            auto kernels_done = sim::makeEvent(
                "kdone.g" + std::to_string(g) + "." +
                std::to_string(j));
            pre_stream.pushRecord(kernels_done);
            copy_stream.pushWait(kernels_done);
            for (Bytes message : comm_messages[gi]) {
                copy_stream.pushCopy(sim::CopyKind::PeerToPeer,
                                     message);
            }
            copy_stream.pushRecord(batch_done);
        } else {
            pre_stream.pushRecord(batch_done);
        }
        auto *barrier = barriers[static_cast<std::size_t>(j)].get();
        const Seconds cpu_part = cpu_part_core_seconds[gi];
        if (cpu_part > 0.0) {
            // Hybrid: the CPU segment runs on a dedicated worker
            // pipeline; batch readiness joins both halves.
            if (hybrid_streams[gi] == nullptr) {
                hybrid_streams[gi] = &cluster.host().newStream(
                    "hybrid.g" + std::to_string(g));
            }
            auto &worker = *hybrid_streams[gi];
            auto hybrid_cpu_done = sim::makeEvent(
                "hybridcpu.g" + std::to_string(g) + "." +
                std::to_string(j));
            const int gate_iter = j - 2;
            if (gate_iter >= 0)
                worker.pushWait(driver.opStart(g, gate_iter, 0));
            worker.pushCpuTask(cpu_part / hybrid_cores, hybrid_cores);
            worker.pushRecord(hybrid_cpu_done);
            auto *join =
                joins[gi]
                    .emplace_back(
                        std::make_unique<InputBarrier>(engine, 2))
                    .get();
            // The joint completion reports to the global barrier.
            auto joined = sim::makeEvent(
                "hybridjoin.g" + std::to_string(g) + "." +
                std::to_string(j));
            join->addTarget(joined);
            batch_done->addWaiter(engine, [join] { join->arrive(); });
            hybrid_cpu_done->addWaiter(engine,
                                       [join] { join->arrive(); });
            joined->addWaiter(engine,
                              [barrier] { barrier->arrive(); });
        } else {
            batch_done->addWaiter(engine,
                                  [barrier] { barrier->arrive(); });
        }
    };

    // ---- Online monitor: drift detection + incremental replanning
    // (fault-tolerance extension; see DESIGN.md). ----
    const bool replan_enabled = config_.replanOnDrift &&
                                traits.capacityScheduling &&
                                config_.system != System::HybridRap;
    std::vector<Seconds> predicted(static_cast<std::size_t>(gpus), 0.0);
    for (int g = 0; g < gpus; ++g)
        predicted[static_cast<std::size_t>(g)] =
            profiles[static_cast<std::size_t>(g)].iterationLatency;
    int replans = 0;
    int last_replan_iter = -1;
    constexpr int kPushAhead = 3;
    constexpr int kReplanCooldown = 3;

    auto replan = [&](const std::vector<Seconds> &observed) {
        obs::Span replan_span(config_.metrics, "train.replan",
                              runLabels(config_));
        replan_span.annotateSim(engine.now(), engine.now());
        // Re-derive every GPU's capacity profile from its current
        // (possibly degraded) resource envelopes and reschedule the
        // co-run; with replanMapping the joint mapping search reruns
        // too. The offline phase's planning pool is reused.
        std::vector<CapacityProfile> degraded(profiles.size());
        for (int g = 0; g < gpus; ++g) {
            const auto gi = static_cast<std::size_t>(g);
            const auto &device = cluster.device(g);
            // Profiles already fold in the configured co-location
            // envelope, and so does the device's live capacity (it
            // started from the envelope share); degrade only by the
            // capacity lost since, or a faulted envelope-shared run
            // would double-count its envelope.
            const GpuEnvelope env = config_.envelopes.empty()
                                        ? GpuEnvelope{}
                                        : config_.envelopes[gi];
            degraded[gi] = degradeProfile(
                profiles[gi],
                std::min(1.0, device.smCapacity() / env.sm),
                std::min(1.0, device.bwCapacity() / env.bw));
        }
        if (config_.replanMapping) {
            mapping = mapper.mapRap(degraded, planner, /*max_moves=*/64,
                                    pool.get());
        }
        CoRunScheduler scheduler(planner);
        const auto gpu_count = static_cast<std::size_t>(gpus);
        auto rescheduleGpu = [&](std::size_t g) {
            auto kernels = planner.plan(
                mapper.buildGpuGraph(mapping, static_cast<int>(g)),
                config_.batchPerGpu);
            schedules[g] =
                scheduler.schedule(std::move(kernels), degraded[g]);
        };
        if (pool != nullptr)
            pool->parallelFor(gpu_count, rescheduleGpu);
        else
            for (std::size_t g = 0; g < gpu_count; ++g)
                rescheduleGpu(g);
        refreshMappingCosts();
        // Calibrate the monitor to the new plan so drift re-arms
        // relative to the degraded prediction (or the observation,
        // when the fault is invisible to the capacity envelopes).
        for (std::size_t g = 0; g < gpu_count; ++g)
            predicted[g] =
                std::max(degraded[g].iterationLatency, observed[g]);
        ++replans;
    };

    // One monitor tick per iteration: once every GPU has finished
    // iteration j, check observed-vs-predicted drift, then extend the
    // batch pipeline by one (batch j + kPushAhead uses whatever
    // schedule is current — the splice point).
    const int tick_count = std::max(0, n - kPushAhead);
    std::vector<std::unique_ptr<InputBarrier>> ticks;
    ticks.reserve(static_cast<std::size_t>(tick_count));
    for (int j = 0; j < tick_count; ++j) {
        auto tick = std::make_unique<InputBarrier>(engine, gpus);
        auto fired = sim::makeEvent("monitor." + std::to_string(j));
        tick->addTarget(fired);
        fired->addWaiter(engine, [&, j] {
            if (config_.metrics != nullptr) {
                config_.metrics
                    ->counter("train.monitor.ticks",
                              runLabels(config_))
                    .inc();
            }
            if (replan_enabled && j >= config_.warmup &&
                j >= last_replan_iter + kReplanCooldown) {
                std::vector<Seconds> observed(
                    static_cast<std::size_t>(gpus), 0.0);
                double drift = 0.0;
                for (int g = 0; g < gpus; ++g) {
                    const auto gi = static_cast<std::size_t>(g);
                    // Iteration interval, not span: it includes the
                    // input-gate wait, so the monitor also sees
                    // faults that only starve the input pipeline.
                    const auto &span = driver.iterationSpan(g, j);
                    observed[gi] =
                        j >= 1 ? span.end -
                                     driver.iterationSpan(g, j - 1).end
                               : span.end - span.start;
                    // A checkpoint drain between the two iteration
                    // ends is planned-for overhead, not drift.
                    if (j >= 1 &&
                        driver.checkpointSpan(g, j - 1).valid()) {
                        observed[gi] = std::max(
                            0.0,
                            observed[gi] -
                                driver.checkpointSpan(g, j - 1)
                                    .duration());
                    }
                    if (predicted[gi] > 0.0) {
                        drift = std::max(
                            drift,
                            observed[gi] / predicted[gi] - 1.0);
                    }
                }
                if (config_.metrics != nullptr) {
                    config_.metrics
                        ->series("train.drift", runLabels(config_))
                        .append(j, drift);
                }
                if (drift > config_.replanDriftThreshold) {
                    replan(observed);
                    last_replan_iter = j;
                }
            }
            for (int g = 0; g < gpus; ++g)
                pushBatch(g, j + kPushAhead);
        });
        for (int g = 0; g < gpus; ++g) {
            auto *bar = tick.get();
            driver.iterEnd(g, j)->addWaiter(engine,
                                            [bar] { bar->arrive(); });
        }
        ticks.push_back(std::move(tick));
    }

    // Prime the pipeline with the first kPushAhead batches; the
    // monitor ticks keep it topped up from there.
    for (int j = 0; j < std::min(kPushAhead, n); ++j)
        for (int g = 0; g < gpus; ++g)
            pushBatch(g, j);

    cluster.run();

    RunReport report;
    report.system = systemName(config_.system);
    report.gpuCount = gpus;
    report.batchPerGpu = config_.batchPerGpu;
    const Seconds span_start =
        driver.iterationSpan(0, config_.warmup).start;
    const Seconds span_end = driver.iterationSpan(0, n - 1).end;
    const double steady_iters =
        static_cast<double>(n - config_.warmup);
    // Calibration checkpoint drains inside the window are subtracted:
    // avgIterationLatency stays the checkpoint-free iteration
    // interval (the recovery composition adds checkpoint cost back
    // explicitly at its own cadence).
    const Seconds ckpt_window = checkpointSecondsInWindow(
        driver, gpus, config_.warmup, n - 1);
    report.avgIterationLatency =
        (span_end - span_start - ckpt_window) / steady_iters;
    report.throughput = static_cast<double>(config_.batchPerGpu) *
                        gpus / report.avgIterationLatency;
    fillUtilisation(report, cluster, span_start, span_end);

    RunningStat launches, exposed, pre_lat;
    for (const auto &schedule : schedules) {
        launches.add(static_cast<double>(schedule.kernelCount()));
        exposed.add(schedule.estimatedExposed);
        pre_lat.add(schedule.totalPreprocLatency);
    }
    report.preprocKernelsPerIter = launches.mean();
    report.predictedExposed = exposed.mean();
    report.preprocLatencyPerIter = pre_lat.mean();
    report.makespan = engine.now();
    report.replans = replans;
    fillFaultStats(report, cluster);
    applyRecovery(config_, report, report.avgIterationLatency,
                  checkpointing ? driver.avgCheckpointCost() : 0.0,
                  crash_times);
    if (ingest_phase)
        fillIngestStats(report, *ingest_phase, n);
    if (config_.metrics != nullptr) {
        config_.metrics
            ->counter("train.replans", runLabels(config_))
            .inc(static_cast<std::uint64_t>(replans));
        config_.metrics
            ->counter("replan.milp.nodes_explored",
                      runLabels(config_))
            .inc(planner.milpNodesExplored());
    }
    recordIterationMetrics(config_, cluster, driver, &predicted);
    maybeWriteTrace(cluster, config_);
    return report;
}

} // namespace rap::core
