/**
 * @file
 * The validated run API: RunRequest is a fluent builder over
 * SystemConfig that validates at build() time and returns structured
 * errors (core/validation.hpp) instead of asserting mid-run.
 *
 *   auto request = RunRequest(System::Rap)
 *                      .gpus(4)
 *                      .batchPerGpu(2048)
 *                      .iterations(10, 2)   // 10 total, 2 warmup
 *                      .metrics(&registry, "fig09.b2048");
 *   RunReport report = request.run(plan);   // fatal on invalid config
 *
 * The legacy entry points (runSystem(config, plan), planOffline)
 * remain and now route through the same validation, so existing call
 * sites keep compiling and misconfigurations fail with the full error
 * list either way.
 */

#ifndef RAP_CORE_RUN_REQUEST_HPP
#define RAP_CORE_RUN_REQUEST_HPP

#include "core/pipeline.hpp"

namespace rap::core {

/** Fluent, validated builder for one system run. */
class RunRequest
{
  public:
    explicit RunRequest(System system) { config_.system = system; }

    /** Start from an existing configuration. */
    explicit RunRequest(SystemConfig config)
        : config_(std::move(config))
    {
    }

    RunRequest &
    gpus(int count)
    {
        config_.gpuCount = count;
        return *this;
    }

    RunRequest &
    batchPerGpu(std::int64_t rows)
    {
        config_.batchPerGpu = rows;
        return *this;
    }

    /** Total iterations and the warmup excluded from statistics. */
    RunRequest &
    iterations(int total, int warmup)
    {
        config_.iterations = total;
        config_.warmup = warmup;
        return *this;
    }

    RunRequest &
    planningThreads(int threads)
    {
        config_.planningThreads = threads;
        return *this;
    }

    /** DES engine worker threads (1 = serial, 0 = hardware). */
    RunRequest &
    engineJobs(int jobs)
    {
        config_.engineJobs = jobs;
        return *this;
    }

    RunRequest &
    envelopes(std::vector<GpuEnvelope> shares)
    {
        config_.envelopes = std::move(shares);
        return *this;
    }

    RunRequest &
    gpuSubset(std::vector<int> physical_ids)
    {
        config_.gpuSubset = std::move(physical_ids);
        return *this;
    }

    RunRequest &
    faults(sim::FaultSpec spec)
    {
        config_.faults = std::move(spec);
        return *this;
    }

    /** Gate each iteration on a streaming ingestion front-end. */
    RunRequest &
    ingest(ingest::IngestConfig config)
    {
        config_.ingest = std::move(config);
        return *this;
    }

    RunRequest &
    replanOnDrift(bool on, double threshold = 0.15)
    {
        config_.replanOnDrift = on;
        config_.replanDriftThreshold = threshold;
        return *this;
    }

    RunRequest &
    tracePath(std::string path)
    {
        config_.tracePath = std::move(path);
        return *this;
    }

    /** Attach an observability registry and this run's scope label. */
    RunRequest &
    metrics(obs::MetricRegistry *registry, std::string scope = "")
    {
        config_.metrics = registry;
        config_.metricsScope = std::move(scope);
        return *this;
    }

    /** Direct access for knobs without a dedicated setter. */
    SystemConfig &config() { return config_; }
    const SystemConfig &config() const { return config_; }

    /** @return The validation outcome for the current configuration. */
    ValidationResult validate() const { return config_.validate(); }

    /**
     * Validate and return the finished configuration; fatal (with the
     * full rendered error list) when invalid.
     */
    SystemConfig build() const;

    /** build() and execute the run over @p plan. */
    RunReport run(const preproc::PreprocPlan &plan) const;

  private:
    SystemConfig config_;
};

} // namespace rap::core

#endif // RAP_CORE_RUN_REQUEST_HPP
