/**
 * @file
 * Umbrella header: the complete RAP public API.
 *
 * Include this to get the end-to-end pipeline plus every building
 * block (cost model, fusion, scheduling, mapping, codegen) and the
 * substrates they run on.
 */

#ifndef RAP_CORE_RAP_HPP
#define RAP_CORE_RAP_HPP

#include "core/capacity.hpp"
#include "core/codegen.hpp"
#include "core/corun_scheduler.hpp"
#include "core/cost_model.hpp"
#include "core/fusion.hpp"
#include "core/kernel_sharding.hpp"
#include "core/latency_predictor.hpp"
#include "core/mapping.hpp"
#include "core/pipeline.hpp"
#include "core/run_request.hpp"
#include "data/criteo.hpp"
#include "dlrm/trainer.hpp"
#include "preproc/executor.hpp"
#include "preproc/plan.hpp"
#include "sim/cluster.hpp"

#endif // RAP_CORE_RAP_HPP
