#include "core/mapping.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <tuple>

#include "common/log.hpp"

namespace rap::core {

std::string
mappingStrategyName(MappingStrategy strategy)
{
    switch (strategy) {
      case MappingStrategy::DataParallel: return "DP";
      case MappingStrategy::DataLocality: return "DL";
      case MappingStrategy::Rap: return "RAP";
    }
    RAP_PANIC("unknown mapping strategy");
}

std::size_t
GraphMapping::totalItems() const
{
    std::size_t total = 0;
    for (const auto &items : itemsPerGpu)
        total += items.size();
    return total;
}

GraphMapper::GraphMapper(const preproc::PreprocPlan &plan,
                         const dlrm::EmbeddingSharding &sharding,
                         sim::ClusterSpec cluster_spec, std::int64_t rows)
    : plan_(plan), sharding_(sharding),
      clusterSpec_(std::move(cluster_spec)), rows_(rows)
{
    RAP_ASSERT(sharding_.gpuCount() == clusterSpec_.gpuCount,
               "sharding GPU count does not match cluster");
    RAP_ASSERT(rows_ > 0, "batch size must be positive");
}

int
GraphMapper::consumer(const WorkItem &item) const
{
    const auto &schema = plan_.schema;
    if (preproc::isSparseFeatureId(schema, item.featureId)) {
        return sharding_.owner(
            preproc::sparseIndexOfFeatureId(schema, item.featureId));
    }
    return item.batch;
}

std::vector<int>
GraphMapper::consumers(const WorkItem &item) const
{
    const auto &schema = plan_.schema;
    if (preproc::isSparseFeatureId(schema, item.featureId)) {
        return sharding_.consumersOf(
            preproc::sparseIndexOfFeatureId(schema, item.featureId));
    }
    return {item.batch};
}

Bytes
GraphMapper::featureOutputBytes(int feature_id) const
{
    const auto nodes = plan_.graph.featureNodes(feature_id);
    if (nodes.empty())
        return 0.0;
    const auto &tail = plan_.graph.node(nodes.back());
    const auto shape =
        preproc::nodeShape(tail, plan_.schema, rows_);
    return preproc::opOutputBytes(tail.type, shape);
}

Bytes
GraphMapper::featureRawBytes(int feature_id) const
{
    const auto &schema = plan_.schema;
    const double rows = static_cast<double>(rows_);
    if (preproc::isSparseFeatureId(schema, feature_id)) {
        const auto &spec = schema.sparse(
            preproc::sparseIndexOfFeatureId(schema, feature_id));
        return rows * (8.0 * spec.avgListLength + 8.0);
    }
    return rows * 5.0; // fp32 value + validity byte
}

Seconds
GraphMapper::featureChainLatency(int feature_id) const
{
    Seconds total = 0.0;
    for (int id : plan_.graph.featureNodes(feature_id)) {
        const auto &node = plan_.graph.node(id);
        const auto shape =
            preproc::nodeShape(node, plan_.schema, rows_);
        total += preproc::makeOpKernel(node.type, shape,
                                       clusterSpec_.gpu)
                     .exclusiveLatency;
    }
    return total;
}

std::vector<Bytes>
GraphMapper::remoteMessageSizes(const GraphMapping &mapping,
                                int gpu) const
{
    // A consumer with its own local copy of (feature, batch) needs no
    // transfer — the §7.2 duplication case for row-wise tables.
    std::set<std::tuple<int, int, int>> placed; // (feature, batch, gpu)
    for (std::size_t g = 0; g < mapping.itemsPerGpu.size(); ++g) {
        for (const auto &item : mapping.itemsPerGpu[g]) {
            placed.emplace(item.featureId, item.batch,
                           static_cast<int>(g));
        }
    }
    std::vector<Bytes> messages;
    for (const auto &item :
         mapping.itemsPerGpu[static_cast<std::size_t>(gpu)]) {
        for (int c : consumers(item)) {
            if (c == gpu)
                continue;
            if (!placed.count({item.featureId, item.batch, c}))
                messages.push_back(
                    featureOutputBytes(item.featureId));
        }
    }
    return messages;
}

GraphMapping
GraphMapper::makeMapping(std::vector<std::vector<WorkItem>> items) const
{
    GraphMapping mapping;
    mapping.itemsPerGpu = std::move(items);
    mapping.commOutBytes.assign(mapping.itemsPerGpu.size(), 0.0);
    for (std::size_t g = 0; g < mapping.itemsPerGpu.size(); ++g) {
        for (Bytes message : remoteMessageSizes(
                 mapping, static_cast<int>(g))) {
            mapping.commOutBytes[g] += message;
        }
    }
    return mapping;
}

GraphMapping
GraphMapper::map(MappingStrategy strategy) const
{
    const int gpus = clusterSpec_.gpuCount;
    std::vector<std::vector<WorkItem>> items(
        static_cast<std::size_t>(gpus));
    const auto feature_ids = plan_.graph.featureIds();

    switch (strategy) {
      case MappingStrategy::DataParallel:
        // GPU g preprocesses every feature of its own batch.
        for (int g = 0; g < gpus; ++g) {
            for (int f : feature_ids)
                items[static_cast<std::size_t>(g)].push_back(
                    WorkItem{f, g});
        }
        break;
      case MappingStrategy::DataLocality:
      case MappingStrategy::Rap:
        // Every item runs where its output is consumed; a feature
        // with several consumers (row-wise tables) is duplicated on
        // each of them (§7.2).
        for (int f : feature_ids) {
            for (int b = 0; b < gpus; ++b) {
                const WorkItem item{f, b};
                for (int c : consumers(item))
                    items[static_cast<std::size_t>(c)].push_back(item);
            }
        }
        break;
    }
    return makeMapping(std::move(items));
}

preproc::PreprocGraph
GraphMapper::buildGpuGraph(const GraphMapping &mapping, int gpu) const
{
    RAP_ASSERT(gpu >= 0 && gpu < mapping.gpuCount(),
               "gpu ordinal out of range");
    preproc::PreprocGraph graph(plan_.schema);

    // Cache per-feature node id lists (topo order) once.
    std::map<int, std::vector<int>> chains;
    for (const auto &item :
         mapping.itemsPerGpu[static_cast<std::size_t>(gpu)]) {
        if (!chains.count(item.featureId)) {
            chains[item.featureId] =
                plan_.graph.featureNodes(item.featureId);
        }
    }

    for (const auto &item :
         mapping.itemsPerGpu[static_cast<std::size_t>(gpu)]) {
        std::map<int, int> remap; // source node id -> new node id
        for (int id : chains[item.featureId]) {
            preproc::OpNode copy = plan_.graph.node(id);
            copy.id = -1;
            std::vector<int> kept_deps;
            for (int dep : copy.deps) {
                auto it = remap.find(dep);
                // Cross-feature deps (Ngram partners processed on
                // another GPU) are dropped: the partner's raw column
                // is read instead.
                if (it != remap.end())
                    kept_deps.push_back(it->second);
            }
            copy.deps = std::move(kept_deps);
            remap[id] = graph.addNode(std::move(copy));
        }
    }
    return graph;
}

GraphMapping
GraphMapper::mapRap(const std::vector<CapacityProfile> &profiles,
                    const HorizontalFusionPlanner &planner,
                    int max_moves, ThreadPool *pool,
                    MappingSearchStats *stats) const
{
    const int gpus = clusterSpec_.gpuCount;
    RAP_ASSERT(static_cast<int>(profiles.size()) == gpus,
               "need one capacity profile per GPU");

    // Step 1: data-locality-based initial mapping.
    GraphMapping mapping = map(MappingStrategy::DataLocality);
    CoRunningCostModel cost_model(clusterSpec_);
    CoRunScheduler scheduler(planner);

    // Step 2: evaluate via the intra-GPU co-running schedule
    // (Algorithm 1) and the cost model. The schedule accounts for
    // leftover-envelope slowdowns that the raw latency sum misses.
    // Pricing reads only const state, so evaluations of different
    // GPUs are free to run concurrently.
    auto price = [&](const GraphMapping &m, int g) {
        const auto graph = buildGpuGraph(m, g);
        const auto &profile = profiles[static_cast<std::size_t>(g)];
        const auto schedule =
            scheduler.schedule(planner.plan(graph, rows_), profile);
        const Seconds comm = cost_model.commLatency(
            m.commOutBytes[static_cast<std::size_t>(g)]);
        // Signed slack: effective co-run time (capacity actually
        // consumed plus anything exposed) against the iteration's
        // total capacity.
        return schedule.capacityUsed + schedule.estimatedExposed +
               comm - profile.totalCapacity();
    };

    std::vector<Seconds> delta(static_cast<std::size_t>(gpus));
    auto priceInto = [&](const GraphMapping &m,
                         std::vector<int> targets) {
        if (stats != nullptr)
            stats->pricings += targets.size();
        auto evaluate = [&](std::size_t i) {
            delta[static_cast<std::size_t>(targets[i])] =
                price(m, targets[i]);
        };
        if (pool != nullptr)
            pool->parallelFor(targets.size(), evaluate);
        else
            for (std::size_t i = 0; i < targets.size(); ++i)
                evaluate(i);
    };

    std::vector<int> all_gpus(static_cast<std::size_t>(gpus));
    std::iota(all_gpus.begin(), all_gpus.end(), 0);
    priceInto(mapping, all_gpus);

    // Steps 3-4: move items from the costliest GPU to the cheapest
    // while the worst-case cost improves.
    for (int move = 0; move < max_moves; ++move) {
        const auto src = static_cast<int>(
            std::max_element(delta.begin(), delta.end()) -
            delta.begin());
        const auto dst = static_cast<int>(
            std::min_element(delta.begin(), delta.end()) -
            delta.begin());
        if (src == dst ||
            delta[static_cast<std::size_t>(src)] <= 0.0) {
            break; // nothing exposed anywhere: mapping is good enough
        }

        // Candidate: the assigned item with the largest chain latency
        // (moving it re-balances fastest).
        auto &src_items =
            mapping.itemsPerGpu[static_cast<std::size_t>(src)];
        if (src_items.empty())
            break;
        std::size_t best_idx = 0;
        Seconds best_latency = -1.0;
        for (std::size_t i = 0; i < src_items.size(); ++i) {
            // Duplicated (multi-consumer) items are pinned: each copy
            // is local to its consumer by construction.
            if (consumers(src_items[i]).size() > 1)
                continue;
            const Seconds lat =
                featureChainLatency(src_items[i].featureId);
            if (lat > best_latency) {
                best_latency = lat;
                best_idx = i;
            }
        }
        if (best_latency < 0.0)
            break; // nothing movable on the hot GPU

        // Tentatively apply the move and re-price both GPUs.
        GraphMapping candidate = mapping;
        auto &cand_src =
            candidate.itemsPerGpu[static_cast<std::size_t>(src)];
        const WorkItem item = cand_src[best_idx];
        cand_src.erase(cand_src.begin() +
                       static_cast<std::ptrdiff_t>(best_idx));
        candidate.itemsPerGpu[static_cast<std::size_t>(dst)]
            .push_back(item);
        candidate = makeMapping(std::move(candidate.itemsPerGpu));

        Seconds src_new = 0.0;
        Seconds dst_new = 0.0;
        {
            if (stats != nullptr) {
                ++stats->movesEvaluated;
                stats->pricings += 2;
            }
            auto evaluate = [&](std::size_t i) {
                (i == 0 ? src_new : dst_new) =
                    price(candidate, i == 0 ? src : dst);
            };
            if (pool != nullptr)
                pool->parallelFor(2, evaluate);
            else
                for (std::size_t i = 0; i < 2; ++i)
                    evaluate(i);
        }
        const Seconds old_worst =
            std::max(delta[static_cast<std::size_t>(src)],
                     delta[static_cast<std::size_t>(dst)]);
        if (std::max(src_new, dst_new) + 1e-9 < old_worst) {
            if (stats != nullptr)
                ++stats->movesAccepted;
            mapping = std::move(candidate);
            delta[static_cast<std::size_t>(src)] = src_new;
            delta[static_cast<std::size_t>(dst)] = dst_new;
        } else {
            break; // no improving substitution found
        }
    }
    return mapping;
}

} // namespace rap::core
