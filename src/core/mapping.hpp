/**
 * @file
 * Preprocessing-graph mapping across GPUs (paper §3, §7.2).
 *
 * The mapping unit is a work item: one feature's preprocessing chain
 * for one mini-batch. Each item has a fixed consumer — dense features
 * feed the data-parallel MLP of the GPU training that batch; sparse
 * features feed the GPU owning the corresponding embedding table.
 * Three strategies are provided:
 *  - DataParallel: each GPU preprocesses its own batch entirely
 *    (communication for every non-local sparse feature);
 *  - DataLocality: every item runs on its consumer (zero
 *    communication, but imbalanced when table placement is skewed);
 *  - Rap: starts from DataLocality and iteratively moves items from
 *    the costliest GPU to the cheapest, accepting a move only when the
 *    co-running cost model says the balance gain outweighs the added
 *    communication — the joint optimisation of §7.2.
 */

#ifndef RAP_CORE_MAPPING_HPP
#define RAP_CORE_MAPPING_HPP

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/capacity.hpp"
#include "core/corun_scheduler.hpp"
#include "core/cost_model.hpp"
#include "core/fusion.hpp"
#include "dlrm/sharding.hpp"
#include "preproc/plan.hpp"

namespace rap::core {

/** Mapping strategy selector. */
enum class MappingStrategy {
    DataParallel,
    DataLocality,
    Rap,
};

/** @return Human-readable strategy name. */
std::string mappingStrategyName(MappingStrategy strategy);

/** One mapping unit: a feature chain for one batch. */
struct WorkItem
{
    int featureId = -1;
    /** Batch ordinal == ordinal of the GPU training that batch. */
    int batch = 0;
};

/**
 * Diagnostics of one mapRap search. Counted on the calling thread only
 * (pricings are tallied before fan-out), so the numbers are identical
 * for any pool size.
 */
struct MappingSearchStats
{
    /** Item moves applied to the final mapping. */
    int movesAccepted = 0;
    /** Candidate moves priced (accepted or rejected). */
    int movesEvaluated = 0;
    /** Cost-model pricings performed (including the initial sweep). */
    std::uint64_t pricings = 0;
};

/** A complete assignment of work items to GPUs. */
struct GraphMapping
{
    /** Items preprocessed by each GPU. */
    std::vector<std::vector<WorkItem>> itemsPerGpu;
    /** Bytes each GPU ships to remote consumers per iteration. */
    std::vector<Bytes> commOutBytes;

    int gpuCount() const
    {
        return static_cast<int>(itemsPerGpu.size());
    }

    /** @return Total items mapped (all GPUs). */
    std::size_t totalItems() const;
};

/**
 * Builds and optimises graph mappings for a preprocessing plan.
 */
class GraphMapper
{
  public:
    /**
     * @param plan The preprocessing plan (schema + DAG).
     * @param sharding Embedding-table placement (sparse consumers).
     * @param cluster_spec Node description (GPU count, NVLink).
     * @param rows Per-GPU batch size.
     */
    GraphMapper(const preproc::PreprocPlan &plan,
                const dlrm::EmbeddingSharding &sharding,
                sim::ClusterSpec cluster_spec, std::int64_t rows);

    /** Build the static strategies (DataParallel / DataLocality). */
    GraphMapping map(MappingStrategy strategy) const;

    /**
     * The RAP joint search: refine DataLocality using the co-running
     * cost model over @p profiles.
     *
     * @param profiles Per-GPU capacity profiles.
     * @param planner Fusion planner used to price each GPU's graph.
     * @param max_moves Upper bound on accepted item moves.
     * @param pool Optional pool for the candidate-evaluation loops;
     *        per-GPU pricings are independent and reduced in GPU
     *        order, so the search is deterministic in thread count.
     * @param stats Optional search diagnostics (observability).
     */
    GraphMapping mapRap(const std::vector<CapacityProfile> &profiles,
                        const HorizontalFusionPlanner &planner,
                        int max_moves = 64, ThreadPool *pool = nullptr,
                        MappingSearchStats *stats = nullptr) const;

    /**
     * Materialise the preprocessing graph a GPU executes under a
     * mapping: one chain copy per assigned item. Cross-feature Ngram
     * dependencies to features processed elsewhere are dropped (those
     * inputs are read raw), a documented simplification.
     */
    preproc::PreprocGraph buildGpuGraph(const GraphMapping &mapping,
                                        int gpu) const;

    /**
     * @return The GPU consuming @p item's output; must not be called
     *         for features of row-wise-parallel tables (use
     *         consumers()).
     */
    int consumer(const WorkItem &item) const;

    /**
     * @return All GPUs consuming @p item's output: the batch's GPU for
     *         dense features, the owner for sharded tables, and every
     *         GPU for row-wise-parallel tables (§7.2's duplication
     *         case).
     */
    std::vector<int> consumers(const WorkItem &item) const;

    /**
     * @return One entry per transfer GPU @p gpu must make to a remote
     *         consumer lacking its own copy under @p mapping (the
     *         per-feature messages the execution pipeline ships).
     */
    std::vector<Bytes> remoteMessageSizes(const GraphMapping &mapping,
                                          int gpu) const;

    /** @return Output bytes of @p feature_id's chain for one batch. */
    Bytes featureOutputBytes(int feature_id) const;

    /**
     * @return Raw-column bytes staged host-to-device once per batch
     *         before @p feature_id's chain can run.
     */
    Bytes featureRawBytes(int feature_id) const;

    /** @return Unfused standalone GPU latency of the feature's chain. */
    Seconds featureChainLatency(int feature_id) const;

    int gpuCount() const { return clusterSpec_.gpuCount; }

  private:
    GraphMapping makeMapping(
        std::vector<std::vector<WorkItem>> items) const;

    const preproc::PreprocPlan &plan_;
    const dlrm::EmbeddingSharding &sharding_;
    sim::ClusterSpec clusterSpec_;
    std::int64_t rows_;
};

} // namespace rap::core

#endif // RAP_CORE_MAPPING_HPP
