/**
 * @file
 * End-to-end online DLRM training pipelines (paper §4, §8).
 *
 * OnlineTrainer assembles the full system — input preprocessing,
 * hybrid-parallel training, and the co-running machinery — on the
 * simulated node and measures end-to-end training throughput. Every
 * system the paper evaluates is available:
 *
 *  - Ideal: standalone training, inputs always ready (upper bound);
 *  - Rap: joint mapping + horizontal fusion + resource-aware
 *    co-running schedule + inter-batch interleaving;
 *  - RapNoMapping / RapNoFusion: the Fig. 10 ablations;
 *  - CudaStream: data-parallel mapping, unfused kernels on a
 *    low-priority stream in the training process (launches serialise
 *    with training launches);
 *  - Mps: same, but in a separate process (own launch path);
 *  - SequentialGpu: preprocessing fully serialised with training;
 *  - TorchArrowCpu: CPU-worker preprocessing pipeline (8 workers per
 *    GPU) feeding the trainers over PCIe.
 */

#ifndef RAP_CORE_PIPELINE_HPP
#define RAP_CORE_PIPELINE_HPP

#include <optional>
#include <string>

#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "core/capacity.hpp"
#include "core/checkpoint.hpp"
#include "core/corun_scheduler.hpp"
#include "core/latency_predictor.hpp"
#include "core/mapping.hpp"
#include "core/validation.hpp"
#include "ingest/config.hpp"
#include "preproc/plan.hpp"
#include "sim/fault.hpp"

namespace rap::obs {
class MetricRegistry;
}

namespace rap::core {

/** System under evaluation. */
enum class System {
    Ideal,
    Rap,
    RapNoMapping,
    RapNoFusion,
    /** Horizontal fusion without resource-aware scheduling (Fig. 11). */
    HorizontalFusionOnly,
    /**
     * The §10 extension: RAP plus CPU offload. Preprocessing that
     * exceeds the GPUs' total overlapping capacity is segmented off
     * to host CPU workers instead of being exposed on the GPUs.
     */
    HybridRap,
    CudaStream,
    Mps,
    SequentialGpu,
    TorchArrowCpu,
};

/** @return Human-readable system name ("RAP", "MPS", ...). */
std::string systemName(System system);

/** @return Stable machine token ("rap", "mps", ...) for serialization. */
std::string systemId(System system);

/** @return The system for a systemId() token; nullopt when unknown. */
std::optional<System> systemFromId(const std::string &id);

/**
 * Fraction of one GPU's resources available to a job (1.0 = the whole
 * device). The fleet scheduler's envelope-shared placement hands a job
 * the headroom left on each of its GPUs; planning and simulation both
 * see only that slice (planOffline degrades the capacity profiles,
 * the online run degrades the simulated devices).
 */
struct GpuEnvelope
{
    /** SM (warp-slot) capacity share in (0, 1]. */
    double sm = 1.0;
    /** HBM-bandwidth share in (0, 1]. */
    double bw = 1.0;
};

/** Full experiment configuration. */
struct SystemConfig
{
    System system = System::Rap;
    int gpuCount = 8;
    std::int64_t batchPerGpu = 4096;
    /** Training iterations simulated. */
    int iterations = 14;
    /** Iterations excluded from steady-state statistics. */
    int warmup = 3;
    /** Inter-batch workload interleaving (§6.3; RAP variants). */
    bool interleave = true;
    /**
     * Inference serving mode: every iteration runs the forward-only
     * DLRM op subset (dlrm::DlrmConfig::inferenceOnly) — one
     * iteration models one served batch. Incompatible with
     * checkpointing (there is no training state to checkpoint);
     * SystemConfig::validate rejects the combination.
     */
    bool inference = false;
    /** Optional latency predictor (nullptr = oracle cost model). */
    const LatencyPredictor *predictor = nullptr;
    /**
     * Force a specific preprocessing-graph mapping strategy instead of
     * the system's default (the Fig. 12 mapping study).
     */
    std::optional<MappingStrategy> forcedMapping;
    milp::SolverOptions solver;
    /**
     * Row-wise parallelism: embedding tables with at least this many
     * rows are split across every GPU (0 = disabled). Their input
     * features are consumed by all GPUs, so their preprocessing
     * chains are duplicated (§7.2).
     */
    std::int64_t rowWiseThreshold = 0;
    /** TorchArrow baseline: preprocessing workers per GPU. */
    int torchArrowWorkersPerGpu = 8;
    /** TorchArrow baseline: CPU cores per worker. */
    int coresPerWorker = 4;
    /**
     * Host worker threads for the offline planning phase (per-GPU
     * fusion planning, mapping search, co-run scheduling). 1 = serial,
     * 0 = hardware concurrency. Plans and reports are bit-identical
     * across thread counts (the thread-pool determinism contract).
     */
    int planningThreads = 1;
    /**
     * Worker threads for the discrete-event engine's intra-run
     * parallelism (sim/engine.hpp). 1 = serial, 0 = hardware
     * concurrency. Simulation results are byte-identical at any
     * value: the engine's conservative zone partition fixes event
     * order independently of the worker count. Training runs execute
     * as a single zone (their collectives synchronise every device at
     * sub-lookahead granularity), so the knob only changes wall-clock
     * for partitioned simulations such as bench_scale's synthetic
     * fleets; it is validated and forwarded everywhere for
     * uniformity.
     */
    int engineJobs = 1;
    /**
     * Optional seeded fault scenario injected into the simulated
     * cluster: degraded SM/HBM capacity, slow interconnect links,
     * transient kernel failures (sim/fault.hpp).
     */
    std::optional<sim::FaultSpec> faults;
    /**
     * Streaming ingestion front-end (src/ingest). When set, the run
     * consumes a stream instead of assuming a pre-materialized
     * dataset: the ingest pipeline runs first on the same virtual
     * clock, and training iteration j's input gate additionally
     * waits until staged batch j's readyAt — input-bound phases of
     * the stream (bursts, backpressure stalls) therefore stretch the
     * measured iterations. The stream must stage at least
     * `iterations` batches (tune ingest.duration / profile /
     * batchRows); the run refuses otherwise. Incompatible with
     * TorchArrowCpu, whose CPU workers model their own input path.
     */
    std::optional<ingest::IngestConfig> ingest;
    /**
     * Online replanning: after warmup, compare each iteration's
     * observed latency against the cost model's prediction; past
     * replanDriftThreshold, re-run the co-run scheduler (and, with
     * replanMapping, the joint mapping search) on the degraded
     * resource envelopes using the planning pool, splicing the new
     * schedule in at the next batch boundary. Applies to RAP variants
     * with capacity scheduling.
     */
    bool replanOnDrift = false;
    /** Relative iteration-latency drift that triggers a replan. */
    double replanDriftThreshold = 0.15;
    /** Also re-run GraphMapper::mapRap on each replan. */
    bool replanMapping = false;
    /**
     * Checkpoint/restore policy (core/checkpoint.hpp). FixedInterval
     * and YoungDaly charge checkpoint drains to the simulated
     * timeline, measure the per-checkpoint cost, and — when the fault
     * spec contains fail-stop events or an MTBF is configured — compose
     * the crash/restore timeline analytically over the job length
     * (checkpoint.jobIterations, defaulting to `iterations`). The
     * composed run fills RunReport::lostWork / checkpointOverhead /
     * recoveries and overloads RunReport::makespan with the composed
     * end-to-end completion.
     */
    CheckpointPolicy checkpoint;
    /**
     * Hardware description override. Unset, the run models
     * sim::dgxA100Spec(gpuCount); the fleet scheduler passes
     * sim::subsetSpec of its node so a job placed on k of N GPUs only
     * gets the subset's share of the host CPUs.
     */
    std::optional<sim::ClusterSpec> clusterSpec;
    /**
     * Physical GPU ordinals behind this run's devices (GPU-subset
     * view). Purely diagnostic labelling for traces; empty = identity.
     * Size must equal gpuCount when set.
     */
    std::vector<int> gpuSubset;
    /**
     * Per-GPU resource share available to this run (envelope-shared
     * co-location). planOffline plans against the degraded capacity
     * profiles and the online phase degrades the simulated devices at
     * t = 0, so both the plan and the measured latencies reflect the
     * slice. Empty = whole devices; size must equal gpuCount when set.
     */
    std::vector<GpuEnvelope> envelopes;
    /**
     * When non-empty, write the run's Chrome trace (Perfetto /
     * about://tracing JSON) to this path after the simulation drains.
     */
    std::string tracePath;
    /**
     * Observability sink (non-owning; obs/metrics.hpp). When set, the
     * offline planner and the online run record counters, histograms,
     * per-iteration series, and phase spans into it; recorded spans
     * also render into the Chrome trace. Null = no instrumentation.
     */
    obs::MetricRegistry *metrics = nullptr;
    /**
     * Label value stamped as `run=<scope>` on every instrument this
     * run records. Sweep benches that share one registry across
     * thread-pool workers MUST give each sweep point a unique scope:
     * it keeps double-accumulating instruments (histograms, series)
     * single-strand, which the snapshot determinism contract requires.
     */
    std::string metricsScope;

    /**
     * Check the configuration shape: GPU/iteration counts, subset and
     * envelope sizes, envelope shares, thresholds, worker counts.
     * Returns every problem found; runSystem / planOffline refuse
     * (RAP_FATAL) configurations with a non-ok() result.
     */
    ValidationResult validate() const;
};

/** Measured outcome of one run. */
struct RunReport
{
    std::string system;
    int gpuCount = 0;
    std::int64_t batchPerGpu = 0;
    /** Steady-state per-iteration latency. */
    Seconds avgIterationLatency = 0.0;
    /** Global training throughput (samples/second). */
    double throughput = 0.0;
    /** Mean SM usage over the steady-state window. */
    double avgSmUtil = 0.0;
    /** Mean DRAM-bandwidth usage over the steady-state window. */
    double avgBwUtil = 0.0;
    /** Fraction of steady-state time with a kernel resident. */
    double avgGpuBusy = 0.0;
    /** Total peer-to-peer input-communication bytes. */
    Bytes p2pBytes = 0.0;
    /** Mean preprocessing kernels launched per GPU per iteration. */
    double preprocKernelsPerIter = 0.0;
    /** Cost-model exposed-latency prediction (RAP variants). */
    Seconds predictedExposed = 0.0;
    /** Mean predicted standalone preprocessing latency per GPU. */
    Seconds preprocLatencyPerIter = 0.0;
    /** End-to-end makespan of the whole simulated run. */
    Seconds makespan = 0.0;
    /** Online replans triggered by the drift monitor. */
    int replans = 0;
    /** Transient kernel-launch failures retried (fault injection). */
    std::uint64_t kernelRetries = 0;
    /** Total retry backoff charged to the timeline. */
    Seconds retryBackoffSeconds = 0.0;
    /** Work discarded by fail-stop crashes and replayed. */
    Seconds lostWork = 0.0;
    /** Summed cost of completed checkpoint drains. */
    Seconds checkpointOverhead = 0.0;
    /** Crash-restore cycles survived. */
    int recoveries = 0;
    /** Events emitted by the ingest stream (0 = no ingest). */
    std::uint64_t ingestEvents = 0;
    /** Events lost to the drop-oldest backpressure policy. */
    std::uint64_t ingestDropped = 0;
    /** Events diverted to the spill log (replayed later). */
    std::uint64_t ingestSpilled = 0;
    /** Batches the ingest stager assembled. */
    std::uint64_t ingestBatches = 0;
    /** p99 staging latency of the ingest stream. */
    Seconds ingestStagingP99 = 0.0;
    /** Virtual time the last consumed batch became ready. */
    Seconds ingestLastReadyAt = 0.0;
    /**
     * Fleet-clock lifecycle timestamps, filled by the fleet scheduler:
     * when the job entered the admission queue, when its placement
     * started it, and when it finished. Standalone runs (no fleet)
     * leave them unset — the derived delays below are then nullopt
     * instead of the negative garbage a 0-minus-0 default would give.
     */
    std::optional<Seconds> submittedAt;
    std::optional<Seconds> startedAt;
    std::optional<Seconds> finishedAt;

    /**
     * @return Time spent queued before placement started the job;
     *         nullopt for standalone runs (no fleet lifecycle).
     */
    std::optional<Seconds>
    queueingDelay() const
    {
        if (!submittedAt || !startedAt)
            return std::nullopt;
        return *startedAt - *submittedAt;
    }

    /**
     * @return Job completion time (arrival to finish, fleet clock);
     *         nullopt for standalone runs.
     */
    std::optional<Seconds>
    jobCompletionTime() const
    {
        if (!submittedAt || !finishedAt)
            return std::nullopt;
        return *finishedAt - *submittedAt;
    }

    /**
     * Serialize to JSON — the single source of truth for every
     * machine-read report artifact (bench output, CI determinism
     * diffs). toJson/fromJson round-trip exactly.
     */
    Json toJson() const;

    /** Rebuild a report from toJson() output; fatal on bad shape. */
    static RunReport fromJson(const Json &json);
};

/**
 * Output of the offline planning phase for a GPU-preprocessing
 * system: per-GPU capacity profiles, the preprocessing-graph mapping,
 * and one co-run schedule per GPU.
 */
struct OfflinePlan
{
    std::vector<CapacityProfile> profiles;
    GraphMapping mapping;
    std::vector<CoRunSchedule> schedules;
};

/**
 * Run the offline phase (paper Algorithm 1 plus the §6-§7 searches)
 * for @p config on @p plan: profile capacities, search the mapping,
 * and build each GPU's fused co-run schedule.
 *
 * Per-GPU planning and scheduling are independent given the profiles;
 * when @p pool is non-null they run on its workers. Results are
 * reduced in GPU order, so the returned plan is bit-identical for any
 * thread count. Only GPU-preprocessing systems have an offline phase
 * (not Ideal / TorchArrowCpu).
 */
OfflinePlan planOffline(const SystemConfig &config,
                        const preproc::PreprocPlan &plan,
                        ThreadPool *pool = nullptr);

/**
 * Assembles and runs one configured system over one plan.
 */
class OnlineTrainer
{
  public:
    OnlineTrainer(SystemConfig config, const preproc::PreprocPlan &plan);

    /** Execute the simulation and return the measured report. */
    RunReport run();

  private:
    RunReport runIdeal();
    RunReport runTorchArrow();
    RunReport runGpuSystem();

    SystemConfig config_;
    const preproc::PreprocPlan &plan_;
};

/** Convenience: construct and run in one call. */
RunReport runSystem(const SystemConfig &config,
                    const preproc::PreprocPlan &plan);

} // namespace rap::core

#endif // RAP_CORE_PIPELINE_HPP
