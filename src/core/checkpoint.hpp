/**
 * @file
 * Checkpoint/restore policy for fail-stop fault tolerance.
 *
 * A checkpoint serializes the training state — each GPU's owned
 * embedding-table shards plus one replica of the data-parallel MLPs —
 * over the host (PCIe) link, and is charged to the simulated timeline.
 * On a fail-stop crash the job restarts, restores the last completed
 * checkpoint, and replays every iteration since it; work between the
 * last durable checkpoint and the crash is lost.
 *
 * The interval policy is either a fixed iteration count or the
 * Young–Daly optimum tau = sqrt(2 * C * MTBF), where C is the
 * *measured* per-checkpoint cost (the D2H drain observed in the
 * simulation, including PCIe contention with input staging) and MTBF
 * the configured mean time between failures.
 *
 * Because realistic MTBFs (minutes to hours) dwarf the simulated
 * steady-state horizon (hundreds of milliseconds), recovery timelines
 * are composed analytically: the DES measures the checkpoint-free
 * iteration interval and the per-checkpoint cost, and composeRecovery
 * extrapolates the checkpoint/crash/restore timeline over the job's
 * full iteration count in O(crashes + checkpoints).
 */

#ifndef RAP_CORE_CHECKPOINT_HPP
#define RAP_CORE_CHECKPOINT_HPP

#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/units.hpp"
#include "dlrm/model_config.hpp"
#include "dlrm/sharding.hpp"
#include "sim/gpu_spec.hpp"

namespace rap::core {

/** When the trainer writes checkpoints. */
enum class CheckpointMode {
    /** Never checkpoint; a crash restarts the job from scratch. */
    None,
    /** Checkpoint every `interval` iterations. */
    FixedInterval,
    /** Interval from tau = sqrt(2 * C * MTBF), C measured in-run. */
    YoungDaly,
};

/** Checkpoint/restore configuration for a training run. */
struct CheckpointPolicy
{
    CheckpointMode mode = CheckpointMode::None;
    /** FixedInterval: iterations between checkpoints (>= 1). */
    int interval = 0;
    /** Mean time between failures; drives YoungDaly and recovery. */
    Seconds mtbf = 0.0;
    /** Process-restart latency charged per recovery. */
    Seconds restartOverhead = 1.0;
    /**
     * Job length (iterations) for the analytic recovery composition;
     * 0 means the run's own iteration count. Set this to extrapolate
     * a short measured run to a production-length job.
     */
    long long jobIterations = 0;
};

/**
 * One sealed checkpoint, as the durable control plane records it: the
 * proof that a job's progress up to `fraction` survives preemption.
 * The fleet scheduler emits a manifest whenever a preemption credits a
 * newly durable fraction and when a checkpointing job finishes
 * (fraction 1.0). Serialized into `rap.catalog.v1` transactions via
 * the JsonSerializable convention (core/serial.hpp).
 */
struct CheckpointManifest
{
    /** Owning fleet job. */
    int jobId = 0;
    /** Per-job seal ordinal (0, 1, ...). */
    int sequence = 0;
    /** Fraction of the job's iterations sealed by this checkpoint. */
    double fraction = 0.0;
    /** Fleet-clock time the seal was recorded. */
    Seconds sealedAt = 0.0;
    /** Placement segment the sealed work ran in. */
    int segment = 0;

    Json toJson() const;
    static CheckpointManifest fromJson(const Json &json);
};

/**
 * Checkpoint image size on @p gpu: its owned embedding rows (row-wise
 * tables contribute a 1/gpuCount share) times the embedding dimension,
 * in fp32, plus one MLP replica on GPU 0 (data-parallel weights are
 * identical everywhere, so one GPU drains them).
 */
Bytes checkpointBytesPerGpu(const dlrm::DlrmConfig &model,
                            const dlrm::EmbeddingSharding &sharding,
                            int gpu);

/**
 * Predicted per-checkpoint cost: the largest per-GPU image drained
 * over PCIe (all GPUs drain concurrently on their own links). The
 * trainer *measures* the actual cost in-run; this predictor seeds
 * interval choices before any measurement exists.
 */
Seconds predictCheckpointCost(const sim::ClusterSpec &cluster,
                              const dlrm::DlrmConfig &model,
                              const dlrm::EmbeddingSharding &sharding);

/** Young–Daly optimal checkpoint period tau = sqrt(2 * C * MTBF). */
Seconds youngDalyInterval(Seconds checkpoint_cost, Seconds mtbf);

/** Composed end-to-end recovery timeline (see composeRecovery). */
struct RecoveryOutcome
{
    /** Wall-clock completion of all iterations, crashes included. */
    Seconds completion = 0.0;
    /** Discarded progress: volatile work + interrupted recoveries. */
    Seconds lostWork = 0.0;
    /** Summed cost of completed checkpoints. */
    Seconds checkpointOverhead = 0.0;
    /** Crash-restore cycles survived. */
    int recoveries = 0;
    /** Checkpoints completed (durable). */
    long long checkpoints = 0;
    /** Whole iterations discarded and replayed. */
    long long lostBatches = 0;
    /** (start, end) of each recovery attempt, for trace spans. */
    std::vector<std::pair<Seconds, Seconds>> recoveryWindows;
};

/**
 * Walk the checkpoint/crash/restore timeline analytically.
 *
 * The job runs @p iterations iterations of @p iter_seconds each. With
 * @p interval > 0 a checkpoint of @p checkpoint_cost follows every
 * interval-th iteration (the trailing one at job end is skipped —
 * there is nothing left to protect). A crash at time t (from
 * @p crash_times, sorted, job-start-relative) discards all progress
 * since the last durable checkpoint, then recovery pays
 * @p restart_overhead plus @p restore_cost (the latter only when a
 * durable checkpoint exists) before replay resumes; crashes landing
 * inside a recovery window restart the recovery. The trace is finite,
 * so the walk always terminates.
 */
RecoveryOutcome composeRecovery(Seconds iter_seconds,
                                Seconds checkpoint_cost,
                                Seconds restore_cost,
                                Seconds restart_overhead,
                                long long iterations, long long interval,
                                const std::vector<Seconds> &crash_times);

} // namespace rap::core

#endif // RAP_CORE_CHECKPOINT_HPP
