/**
 * @file
 * RunReport serialization: toJson()/fromJson() round-trip exactly
 * under the core/serial.hpp JsonSerializable convention (schema token
 * "rap.run_report.v1") and are the single source of truth for report
 * artifacts (bench output, CI determinism diffs read these, never
 * scraped stdout).
 */

#include "core/pipeline.hpp"

#include "common/log.hpp"
#include "core/serial.hpp"

namespace rap::core {

namespace {

constexpr const char *kRunReportSchema = "rap.run_report.v1";

constexpr std::pair<System, const char *> kSystemIds[] = {
    {System::Ideal, "ideal"},
    {System::Rap, "rap"},
    {System::RapNoMapping, "rap_no_mapping"},
    {System::RapNoFusion, "rap_no_fusion"},
    {System::HorizontalFusionOnly, "horizontal_fusion"},
    {System::HybridRap, "hybrid_rap"},
    {System::CudaStream, "cuda_stream"},
    {System::Mps, "mps"},
    {System::SequentialGpu, "sequential_gpu"},
    {System::TorchArrowCpu, "torcharrow_cpu"},
};

// The shared optional-field dialect: absent and null both read back
// as "never measured" (core/serial.hpp).
using serial::getOptionalNumber;
using serial::setOptionalNumber;

} // namespace

std::string
systemId(System system)
{
    for (const auto &[sys, id] : kSystemIds) {
        if (sys == system)
            return id;
    }
    RAP_PANIC("unknown system");
}

std::optional<System>
systemFromId(const std::string &id)
{
    for (const auto &[sys, token] : kSystemIds) {
        if (id == token)
            return sys;
    }
    return std::nullopt;
}

Json
RunReport::toJson() const
{
    Json json = Json::object();
    serial::stampSchema(json, kRunReportSchema);
    json.set("system", Json(system));
    json.set("gpuCount", Json(gpuCount));
    json.set("batchPerGpu", Json(batchPerGpu));
    json.set("avgIterationLatency", Json(avgIterationLatency));
    json.set("throughput", Json(throughput));
    json.set("avgSmUtil", Json(avgSmUtil));
    json.set("avgBwUtil", Json(avgBwUtil));
    json.set("avgGpuBusy", Json(avgGpuBusy));
    json.set("p2pBytes", Json(p2pBytes));
    json.set("preprocKernelsPerIter", Json(preprocKernelsPerIter));
    json.set("predictedExposed", Json(predictedExposed));
    json.set("preprocLatencyPerIter", Json(preprocLatencyPerIter));
    json.set("makespan", Json(makespan));
    json.set("replans", Json(replans));
    json.set("kernelRetries", Json(kernelRetries));
    json.set("retryBackoffSeconds", Json(retryBackoffSeconds));
    json.set("lostWork", Json(lostWork));
    json.set("checkpointOverhead", Json(checkpointOverhead));
    json.set("recoveries", Json(recoveries));
    json.set("ingestEvents", Json(ingestEvents));
    json.set("ingestDropped", Json(ingestDropped));
    json.set("ingestSpilled", Json(ingestSpilled));
    json.set("ingestBatches", Json(ingestBatches));
    json.set("ingestStagingP99", Json(ingestStagingP99));
    json.set("ingestLastReadyAt", Json(ingestLastReadyAt));
    setOptionalNumber(json, "submittedAt", submittedAt);
    setOptionalNumber(json, "startedAt", startedAt);
    setOptionalNumber(json, "finishedAt", finishedAt);
    return json;
}

RunReport
RunReport::fromJson(const Json &json)
{
    serial::requireSchema(json, kRunReportSchema);
    RunReport report;
    report.system = json.at("system").asString();
    report.gpuCount = static_cast<int>(json.at("gpuCount").asDouble());
    report.batchPerGpu =
        static_cast<std::int64_t>(json.at("batchPerGpu").asDouble());
    report.avgIterationLatency =
        json.at("avgIterationLatency").asDouble();
    report.throughput = json.at("throughput").asDouble();
    report.avgSmUtil = json.at("avgSmUtil").asDouble();
    report.avgBwUtil = json.at("avgBwUtil").asDouble();
    report.avgGpuBusy = json.at("avgGpuBusy").asDouble();
    report.p2pBytes = json.at("p2pBytes").asDouble();
    report.preprocKernelsPerIter =
        json.at("preprocKernelsPerIter").asDouble();
    report.predictedExposed = json.at("predictedExposed").asDouble();
    report.preprocLatencyPerIter =
        json.at("preprocLatencyPerIter").asDouble();
    report.makespan = json.at("makespan").asDouble();
    report.replans = static_cast<int>(json.at("replans").asDouble());
    report.kernelRetries = static_cast<std::uint64_t>(
        json.at("kernelRetries").asDouble());
    report.retryBackoffSeconds =
        json.at("retryBackoffSeconds").asDouble();
    report.lostWork = json.at("lostWork").asDouble();
    report.checkpointOverhead =
        json.at("checkpointOverhead").asDouble();
    report.recoveries =
        static_cast<int>(json.at("recoveries").asDouble());
    // Ingest fields postdate older stored reports; default to zero.
    const auto counter = [&json](const char *key) {
        const Json *value = json.find(key);
        return value == nullptr
                   ? std::uint64_t{0}
                   : static_cast<std::uint64_t>(value->asDouble());
    };
    report.ingestEvents = counter("ingestEvents");
    report.ingestDropped = counter("ingestDropped");
    report.ingestSpilled = counter("ingestSpilled");
    report.ingestBatches = counter("ingestBatches");
    if (const Json *value = json.find("ingestStagingP99"))
        report.ingestStagingP99 = value->asDouble();
    if (const Json *value = json.find("ingestLastReadyAt"))
        report.ingestLastReadyAt = value->asDouble();
    report.submittedAt = getOptionalNumber(json, "submittedAt");
    report.startedAt = getOptionalNumber(json, "startedAt");
    report.finishedAt = getOptionalNumber(json, "finishedAt");
    return report;
}

} // namespace rap::core
