#include "core/corun_scheduler.hpp"

#include <deque>

#include "common/log.hpp"

namespace rap::core {

CoRunScheduler::CoRunScheduler(const HorizontalFusionPlanner &planner)
    : planner_(planner)
{
}

CoRunSchedule
CoRunScheduler::schedule(std::vector<FusedKernel> kernels,
                         const CapacityProfile &profile) const
{
    CoRunSchedule result;
    if (kernels.empty())
        return result;
    RAP_ASSERT(!profile.ops.empty(), "capacity profile is empty");

    // Line 2-5: total predicted input-preprocessing latency. Each
    // kernel also costs one launch on the training process's launch
    // path, so the packing charges launch overhead per kernel.
    const Seconds launch =
        planner_.spec().kernelLaunchOverhead;
    Seconds total = 0.0;
    for (const auto &k : kernels)
        total += k.predictedLatency + launch;
    result.totalPreprocLatency = total;

    // Line 6-12: select layers by capacity, largest first, until the
    // selected capacity covers the preprocessing latency.
    std::vector<bool> selected(profile.ops.size(), false);
    Seconds selected_capacity = 0.0;
    for (std::size_t idx : profile.byCapacityDescending()) {
        if (selected_capacity >= total)
            break;
        selected[idx] = true;
        selected_capacity += profile.ops[idx].capacity;
    }

    // Line 13-29: greedy assignment in iteration order.
    KernelSharder sharder(planner_);
    std::deque<FusedKernel> queue(kernels.begin(), kernels.end());
    std::vector<Seconds> used(profile.ops.size(), 0.0);

    auto assignPass = [&](bool selected_only) {
        for (std::size_t op = 0;
             op < profile.ops.size() && !queue.empty(); ++op) {
            if (selected_only && !selected[op])
                continue;
            while (!queue.empty()) {
                ShardingContext context;
                context.leftover = profile.ops[op].leftover;
                context.maxLatency =
                    profile.ops[op].capacity - used[op] - launch;
                if (context.maxLatency <= 0.0)
                    break;

                const FusedKernel &next = queue.front();
                if (sharder.fits(next, context)) {
                    used[op] +=
                        KernelSharder::effectiveLatency(next, context) +
                        launch;
                    result.kernels.push_back(
                        ScheduledKernel{next, op, false});
                    queue.pop_front();
                    continue;
                }
                // Line 21-26: resource-aware kernel sharding.
                auto shard = sharder.shard(next, context);
                queue.pop_front();
                if (shard.fitting) {
                    used[op] += KernelSharder::effectiveLatency(
                                    *shard.fitting, context) +
                                launch;
                    result.kernels.push_back(
                        ScheduledKernel{std::move(*shard.fitting), op,
                                        false});
                }
                if (shard.remainder)
                    queue.push_front(std::move(*shard.remainder));
                break; // next layer (Algorithm 1, line 25)
            }
        }
    };

    // First pass over the capacity-selected layers; a second pass
    // offers the remaining kernels to every layer (a kernel whose
    // resource envelope fits no selected layer — e.g. an unshardable
    // singleton during an MLP phase — still finds the lookup or
    // collective phases this way).
    assignPass(/*selected_only=*/true);
    assignPass(/*selected_only=*/false);
    for (Seconds u : used)
        result.capacityUsed += u;

    // Anything left exceeds the iteration's capacity: execute it
    // against the last op and account it as exposed latency. Overflow
    // kernels still cost one launch each on the training process's
    // launch path, the same per-kernel charge the packing above pays.
    while (!queue.empty()) {
        FusedKernel k = std::move(queue.front());
        queue.pop_front();
        result.estimatedExposed += k.predictedLatency + launch;
        result.kernels.push_back(ScheduledKernel{
            std::move(k), profile.ops.size() - 1, true});
    }
    return result;
}

} // namespace rap::core
