/**
 * @file
 * Resource-aware horizontal kernel fusion (paper §6.1-6.2).
 *
 * Small per-feature preprocessing kernels are fused horizontally —
 * same operator type, no data dependency — into wider kernels that use
 * the GPU efficiently and amortise launch overhead. The fusion plan is
 * found by solving the Eq. 1-4 MILP over the preprocessing DAG.
 */

#ifndef RAP_CORE_FUSION_HPP
#define RAP_CORE_FUSION_HPP

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/latency_predictor.hpp"
#include "milp/problem.hpp"
#include "milp/solver.hpp"
#include "preproc/executor.hpp"
#include "preproc/graph.hpp"

namespace rap::core {

/**
 * One (possibly fused) preprocessing kernel ready for scheduling.
 */
struct FusedKernel
{
    preproc::OpType type = preproc::OpType::FillNull;
    /** Graph node ids fused into this kernel. */
    std::vector<int> nodeIds;
    /** Workload shapes of the members (aligned with nodeIds). */
    std::vector<preproc::OpShape> memberShapes;
    /** Combined workload shape. */
    preproc::OpShape shape;
    /** MILP time step (launch order key). */
    int step = 0;
    /** Standalone latency predicted by the latency predictor. */
    Seconds predictedLatency = 0.0;
    /** Simulator kernel (exclusive latency + resource demand). */
    sim::KernelDesc kernel;
    /** Host-to-device staging volume before launch. */
    Bytes inputBytes = 0.0;
    /** Host-side data-preparation CPU time before launch. */
    Seconds prepCpuSeconds = 0.0;

    int width() const { return static_cast<int>(nodeIds.size()); }
};

/**
 * Combine member workload shapes into the fused kernel's shape: widths
 * add, list lengths average, the performance parameter takes the max.
 */
preproc::OpShape combineShapes(
    const std::vector<preproc::OpShape> &members);

/** Planner knobs. */
struct FusionOptions
{
    milp::SolverOptions solver;
    /** When false, every node becomes a singleton kernel (ablation). */
    bool enableFusion = true;
};

/**
 * Builds the horizontal fusion plan for a preprocessing graph.
 */
class HorizontalFusionPlanner
{
  public:
    /**
     * @param spec GPU spec used to characterise fused kernels.
     * @param predictor Optional latency predictor; when null, the cost
     *        model's exact latency is used (an oracle predictor).
     * @param options Planner knobs.
     */
    HorizontalFusionPlanner(sim::GpuSpec spec,
                            const LatencyPredictor *predictor = nullptr,
                            FusionOptions options = {});

    /**
     * Solve the fusion MILP for @p graph at batch size @p rows and
     * materialise the fused kernels, ordered by time step.
     */
    std::vector<FusedKernel> plan(const preproc::PreprocGraph &graph,
                                  std::int64_t rows) const;

    /**
     * Build one fused kernel from an explicit member set (also used by
     * the resource-aware sharder when splitting).
     */
    FusedKernel materialise(preproc::OpType type,
                            std::vector<int> node_ids,
                            std::vector<preproc::OpShape> member_shapes,
                            int step) const;

    /** Convert a preprocessing graph to the MILP instance. */
    static milp::FusionProblem toProblem(
        const preproc::PreprocGraph &graph);

    const sim::GpuSpec &spec() const { return spec_; }
    const LatencyPredictor *predictor() const { return predictor_; }

    /**
     * @return Branch-and-bound nodes explored by every MILP solve this
     *         planner ran (observability). plan() is const and runs on
     *         pool workers, so the tally is a relaxed atomic —
     *         additions commute, keeping the total deterministic.
     */
    std::uint64_t
    milpNodesExplored() const
    {
        return nodesExplored_.load(std::memory_order_relaxed);
    }

  private:
    sim::GpuSpec spec_;
    const LatencyPredictor *predictor_;
    FusionOptions options_;
    mutable std::atomic<std::uint64_t> nodesExplored_{0};
};

} // namespace rap::core

#endif // RAP_CORE_FUSION_HPP
