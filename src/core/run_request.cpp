#include "core/run_request.hpp"

#include "common/log.hpp"

namespace rap::core {

ValidationResult
SystemConfig::validate() const
{
    ValidationResult result;

    if (gpuCount < 1)
        result.addError("gpuCount", "need at least one GPU, got " +
                                        std::to_string(gpuCount));
    if (batchPerGpu < 1) {
        result.addError("batchPerGpu",
                        "batch size must be positive, got " +
                            std::to_string(batchPerGpu));
    }
    if (iterations < 1) {
        result.addError("iterations",
                        "need at least one iteration, got " +
                            std::to_string(iterations));
    }
    if (warmup < 0) {
        result.addError("warmup", "warmup cannot be negative, got " +
                                      std::to_string(warmup));
    } else if (iterations >= 1 && iterations <= warmup + 1) {
        result.addError(
            "warmup", "need iterations > warmup + 1 for a steady-state "
                      "window, got iterations=" +
                          std::to_string(iterations) +
                          " warmup=" + std::to_string(warmup));
    }

    if (!gpuSubset.empty() &&
        static_cast<int>(gpuSubset.size()) != gpuCount) {
        result.addError("gpuSubset",
                        "must label every GPU: got " +
                            std::to_string(gpuSubset.size()) +
                            " labels for " + std::to_string(gpuCount) +
                            " GPUs");
    }
    for (std::size_t g = 0; g < gpuSubset.size(); ++g) {
        if (gpuSubset[g] < 0) {
            result.addError("gpuSubset[" + std::to_string(g) + "]",
                            "physical GPU ordinal cannot be negative");
        }
    }

    if (!envelopes.empty() &&
        static_cast<int>(envelopes.size()) != gpuCount) {
        result.addError("envelopes",
                        "must cover every GPU: got " +
                            std::to_string(envelopes.size()) +
                            " envelopes for " +
                            std::to_string(gpuCount) + " GPUs");
    }
    for (std::size_t g = 0; g < envelopes.size(); ++g) {
        const auto &env = envelopes[g];
        if (!(env.sm > 0.0 && env.sm <= 1.0)) {
            result.addError("envelopes[" + std::to_string(g) + "].sm",
                            "share must be in (0, 1]");
        }
        if (!(env.bw > 0.0 && env.bw <= 1.0)) {
            result.addError("envelopes[" + std::to_string(g) + "].bw",
                            "share must be in (0, 1]");
        }
    }

    if (clusterSpec && clusterSpec->gpuCount != gpuCount) {
        result.addError("clusterSpec",
                        "spec describes " +
                            std::to_string(clusterSpec->gpuCount) +
                            " GPUs but gpuCount is " +
                            std::to_string(gpuCount));
    }

    if (replanOnDrift && replanDriftThreshold <= 0.0) {
        result.addError("replanDriftThreshold",
                        "drift threshold must be positive");
    }
    if (rowWiseThreshold < 0) {
        result.addError("rowWiseThreshold",
                        "row-wise threshold cannot be negative");
    }
    if (planningThreads < 0) {
        result.addError("planningThreads",
                        "0 = hardware concurrency, otherwise must be "
                        "positive");
    }
    if (engineJobs < 0) {
        result.addError("engineJobs",
                        "0 = hardware concurrency, otherwise must be "
                        "positive");
    }
    if (checkpoint.mode == CheckpointMode::FixedInterval &&
        checkpoint.interval < 1) {
        result.addError("checkpoint.interval",
                        "fixed-interval checkpointing needs an "
                        "interval >= 1 iteration, got " +
                            std::to_string(checkpoint.interval));
    }
    if (checkpoint.mode == CheckpointMode::YoungDaly &&
        !(checkpoint.mtbf > 0.0)) {
        result.addError("checkpoint.mtbf",
                        "Young-Daly intervals need a positive MTBF");
    }
    if (checkpoint.restartOverhead < 0.0) {
        result.addError("checkpoint.restartOverhead",
                        "restart overhead cannot be negative");
    }
    if (checkpoint.jobIterations < 0) {
        result.addError("checkpoint.jobIterations",
                        "job length cannot be negative (0 = this "
                        "run's iteration count)");
    }
    if (inference && checkpoint.mode != CheckpointMode::None) {
        result.addError("inference",
                        "inference serving has no training state to "
                        "checkpoint; disable checkpointing");
    }

    if (system == System::TorchArrowCpu ||
        system == System::HybridRap) {
        if (torchArrowWorkersPerGpu < 1) {
            result.addError("torchArrowWorkersPerGpu",
                            "need at least one worker per GPU");
        }
        if (coresPerWorker < 1) {
            result.addError("coresPerWorker",
                            "need at least one core per worker");
        }
    }

    if (ingest) {
        for (const auto &issue :
             ingest::validateIngestConfig(*ingest)) {
            result.addError("ingest." + issue.first, issue.second);
        }
        if (system == System::TorchArrowCpu) {
            result.addError("ingest",
                            "TorchArrowCpu models its own CPU input "
                            "pipeline; streaming ingest applies to "
                            "the GPU-sharing systems only");
        }
    }

    return result;
}

SystemConfig
RunRequest::build() const
{
    const auto result = config_.validate();
    if (!result.ok())
        RAP_FATAL("invalid run configuration:\n", result.render());
    return config_;
}

RunReport
RunRequest::run(const preproc::PreprocPlan &plan) const
{
    return runSystem(build(), plan);
}

} // namespace rap::core
