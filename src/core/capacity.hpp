/**
 * @file
 * The Overlapping Capacity Estimator (paper §5.1).
 *
 * For every DLRM training operation the estimator profiles (a) its
 * standalone duration and (b) the GPU resources left over while it is
 * resident. Under the latency-based preprocessing-overhead abstraction,
 * the overlapping capacity of an operation — the maximum standalone
 * preprocessing latency that can execute concurrently without
 * extending total latency — equals its duration (discounted by a
 * safety margin for launch overheads), provided the co-running
 * preprocessing kernel's resource demand fits in the leftover. The
 * leftover envelope is what the resource-aware sharding checks against.
 *
 * The estimator also exposes a direct co-run probe used to validate
 * the abstraction (paper Fig. 5b/5c).
 */

#ifndef RAP_CORE_CAPACITY_HPP
#define RAP_CORE_CAPACITY_HPP

#include <string>
#include <vector>

#include "dlrm/trainer.hpp"
#include "sim/cluster.hpp"

namespace rap::core {

/** Capacity record of one training operation. */
struct OpCapacity
{
    std::string name;
    dlrm::TrainOpKind kind = dlrm::TrainOpKind::EmbeddingLookup;
    bool comm = false;
    /** Profiled standalone duration. */
    Seconds duration = 0.0;
    /** Resources available while the op is resident (1 - demand). */
    sim::ResourceDemand leftover;
    /** Overlappable standalone preprocessing latency. */
    Seconds capacity = 0.0;
};

/** Per-GPU capacity profile for one training iteration. */
struct CapacityProfile
{
    std::vector<OpCapacity> ops;
    /** Standalone per-iteration training latency. */
    Seconds iterationLatency = 0.0;

    /** @return Sum of all op capacities. */
    Seconds totalCapacity() const;

    /** @return Op indices sorted by capacity, largest first. */
    std::vector<std::size_t> byCapacityDescending() const;
};

/**
 * Re-derive a capacity profile for a degraded device (the online
 * replanning path; see sim/fault.hpp).
 *
 * @p sm_capacity and @p bw_capacity are the device's current resource
 * envelopes in (0, 1] of the healthy device. Each op slows by the
 * contention model's rate (its demand squeezed into the shrunk
 * envelope), its overlap window grows with its duration, and its
 * leftover becomes what the degraded device still has to give while
 * the op is resident. iterationLatency scales with the summed op
 * slowdown. Healthy capacities return the profile unchanged.
 */
CapacityProfile degradeProfile(const CapacityProfile &profile,
                               double sm_capacity, double bw_capacity);

/** Estimator tuning. */
struct CapacityOptions
{
    /** Iterations profiled (first is warmup). */
    int profileIterations = 6;
    /** Capacity discount covering launch overheads and jitter. */
    double safetyFactor = 0.92;
};

/**
 * Profiles a DLRM configuration on the simulated cluster and produces
 * per-op capacity profiles for every GPU.
 */
class OverlappingCapacityEstimator
{
  public:
    OverlappingCapacityEstimator(sim::ClusterSpec cluster_spec,
                                 dlrm::DlrmConfig config,
                                 dlrm::EmbeddingSharding sharding,
                                 CapacityOptions options = {});

    /** Profile GPU @p gpu (runs a standalone-training simulation). */
    CapacityProfile profile(int gpu) const;

    /** Profile all GPUs in one simulation run. */
    std::vector<CapacityProfile> profileAll() const;

    /**
     * Direct co-run probe: the makespan when @p count copies of
     * @p preproc_kernel co-run (on a second stream) with
     * @p train_kernel starting together on one GPU.
     */
    static Seconds probeOverlapLatency(
        const sim::GpuSpec &spec, const sim::KernelDesc &train_kernel,
        const sim::KernelDesc &preproc_kernel, int count);

  private:
    sim::ClusterSpec clusterSpec_;
    dlrm::DlrmConfig config_;
    dlrm::EmbeddingSharding sharding_;
    CapacityOptions options_;
};

} // namespace rap::core

#endif // RAP_CORE_CAPACITY_HPP
