#include "core/cost_model.hpp"

#include "common/log.hpp"

namespace rap::core {

CoRunningCostModel::CoRunningCostModel(sim::ClusterSpec cluster_spec)
    : clusterSpec_(std::move(cluster_spec))
{
}

Seconds
CoRunningCostModel::commLatency(Bytes bytes) const
{
    if (bytes <= 0.0)
        return 0.0;
    return clusterSpec_.nvlinkLatency +
           bytes / clusterSpec_.nvlinkBandwidth;
}

CoRunCost
CoRunningCostModel::evaluate(const std::vector<FusedKernel> &kernels,
                             const CapacityProfile &profile,
                             Bytes comm_bytes) const
{
    CoRunCost cost;
    for (const auto &kernel : kernels) {
        cost.preprocLatency +=
            kernel.predictedLatency +
            clusterSpec_.gpu.kernelLaunchOverhead;
    }
    cost.capacity = profile.totalCapacity();
    cost.commLatency = commLatency(comm_bytes);
    return cost;
}

} // namespace rap::core
