/**
 * @file
 * The co-running cost model (paper §5.3).
 *
 * Given a candidate co-running schedule — a set of preprocessing
 * kernels assigned to overlap a training iteration — the model
 * predicts the exposed preprocessing latency
 *     T_delta = sum_i(l_i) - C_op,
 * where l_i are predicted standalone kernel latencies and C_op the
 * iteration's total overlapping capacity. T_delta <= 0 means the
 * preprocessing hides completely behind training. The model also
 * prices the input communication a graph mapping induces, which the
 * joint mapping search weighs against workload balance.
 */

#ifndef RAP_CORE_COST_MODEL_HPP
#define RAP_CORE_COST_MODEL_HPP

#include "core/capacity.hpp"
#include "core/fusion.hpp"
#include "sim/gpu_spec.hpp"

namespace rap::core {

/** Predicted cost of one GPU's co-running plan. */
struct CoRunCost
{
    /** Total predicted standalone preprocessing latency (sum l_i). */
    Seconds preprocLatency = 0.0;
    /** Total overlapping capacity of the iteration (C_op). */
    Seconds capacity = 0.0;
    /** Input-communication latency on the critical path. */
    Seconds commLatency = 0.0;

    /** @return T_delta = preproc + comm - capacity (can be negative). */
    Seconds delta() const
    {
        return preprocLatency + commLatency - capacity;
    }

    /** @return Exposed latency: max(0, delta()). */
    Seconds exposed() const { return delta() > 0.0 ? delta() : 0.0; }
};

/**
 * Co-running cost evaluation over capacity profiles.
 */
class CoRunningCostModel
{
  public:
    explicit CoRunningCostModel(sim::ClusterSpec cluster_spec);

    /**
     * Price a kernel set against a GPU's capacity profile.
     *
     * @param kernels Fused kernels mapped to the GPU.
     * @param profile The GPU's capacity profile.
     * @param comm_bytes Input bytes the mapping ships off-GPU.
     */
    CoRunCost evaluate(const std::vector<FusedKernel> &kernels,
                       const CapacityProfile &profile,
                       Bytes comm_bytes) const;

    /** @return NVLink latency of shipping @p bytes point-to-point. */
    Seconds commLatency(Bytes bytes) const;

  private:
    sim::ClusterSpec clusterSpec_;
};

} // namespace rap::core

#endif // RAP_CORE_COST_MODEL_HPP
