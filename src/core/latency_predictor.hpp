/**
 * @file
 * The ML-based preprocessing-latency predictor (paper §5.2, Table 5).
 *
 * Offline, RAP samples preprocessing kernels under varying
 * configurations, measures their standalone execution latency, and
 * trains one gradient-boosted-tree model per operator category:
 * Ngram, Onehot, Bucketize and FirstX (each with a unique
 * performance-related parameter) plus a shared "1D Ops" model for all
 * shape-determined operators. Online, the predictor replaces hardware
 * profiling when the scheduler evaluates candidate co-running plans.
 *
 * Measurement here means running the kernel cost model with
 * multiplicative measurement noise, standing in for real-hardware
 * timing jitter; models are trained on log-latency.
 */

#ifndef RAP_CORE_LATENCY_PREDICTOR_HPP
#define RAP_CORE_LATENCY_PREDICTOR_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ml/gbdt.hpp"
#include "ml/metrics.hpp"
#include "preproc/cost_model.hpp"
#include "sim/gpu_spec.hpp"

namespace rap::core {

/** Per-category evaluation of the trained predictor (Table 5). */
struct PredictorReport
{
    struct Category
    {
        std::string name;
        std::size_t trainSamples = 0;
        std::size_t evalSamples = 0;
        /** Fraction of eval samples predicted within 10%. */
        double within10 = 0.0;
        double mae = 0.0;
    };
    std::array<Category, preproc::kPredictorCategoryCount> categories;
};

/** Offline-training knobs. */
struct PredictorTrainOptions
{
    /** Total kernels sampled across all categories (paper: ~11K). */
    std::size_t totalSamples = 11'000;
    /** Multiplicative log-normal measurement noise (sigma). */
    double measurementNoise = 0.035;
    /** Train fraction of the 9:1 split. */
    double trainFraction = 0.9;
    std::uint64_t seed = 2024;
    ml::GbdtParams gbdt;
};

/**
 * Per-category GBDT latency models with an offline training pipeline.
 */
class LatencyPredictor
{
  public:
    /**
     * Run the offline phase: sample kernel configurations, measure
     * latencies under @p spec, train and evaluate the five models.
     */
    static LatencyPredictor trainOffline(
        const sim::GpuSpec &spec, PredictorTrainOptions options = {});

    /**
     * Predict the standalone execution latency of a (fused) kernel of
     * @p type and @p shape.
     */
    Seconds predict(preproc::OpType type,
                    const preproc::OpShape &shape) const;

    /** @return The offline evaluation report (Table 5 numbers). */
    const PredictorReport &report() const { return report_; }

    /** @return True once models are trained. */
    bool trained() const { return trained_; }

    /**
     * Ground-truth measurement: the cost model's exclusive latency
     * under the training spec (no noise). Exposed for evaluation.
     */
    Seconds measure(preproc::OpType type,
                    const preproc::OpShape &shape) const;

  private:
    static std::vector<double> featurize(preproc::OpType type,
                                         const preproc::OpShape &shape);

    sim::GpuSpec spec_;
    std::array<ml::Gbdt, preproc::kPredictorCategoryCount> models_;
    PredictorReport report_;
    bool trained_ = false;
};

} // namespace rap::core

#endif // RAP_CORE_LATENCY_PREDICTOR_HPP
