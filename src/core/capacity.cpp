#include "core/capacity.hpp"

#include <algorithm>
#include <numeric>

#include "common/log.hpp"

namespace rap::core {

Seconds
CapacityProfile::totalCapacity() const
{
    Seconds total = 0.0;
    for (const auto &op : ops)
        total += op.capacity;
    return total;
}

std::vector<std::size_t>
CapacityProfile::byCapacityDescending() const
{
    std::vector<std::size_t> order(ops.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return ops[a].capacity > ops[b].capacity;
                     });
    return order;
}

CapacityProfile
degradeProfile(const CapacityProfile &profile, double sm_capacity,
               double bw_capacity)
{
    RAP_ASSERT(sm_capacity > 0.0 && sm_capacity <= 1.0,
               "SM capacity must be in (0, 1]");
    RAP_ASSERT(bw_capacity > 0.0 && bw_capacity <= 1.0,
               "HBM capacity must be in (0, 1]");
    constexpr double kDemandEps = 1e-9;
    // Matches the starvation floor of the device contention model.
    constexpr double kMinRate = 0.02;

    CapacityProfile degraded = profile;
    Seconds healthy_total = 0.0;
    Seconds degraded_total = 0.0;
    for (auto &op : degraded.ops) {
        const double demand_sm =
            std::clamp(1.0 - op.leftover.sm, 0.0, 1.0);
        const double demand_bw =
            std::clamp(1.0 - op.leftover.bw, 0.0, 1.0);
        double rate = 1.0;
        if (demand_sm > kDemandEps)
            rate = std::min(rate, sm_capacity / demand_sm);
        if (demand_bw > kDemandEps)
            rate = std::min(rate, bw_capacity / demand_bw);
        rate = std::clamp(rate, kMinRate, 1.0);
        healthy_total += op.duration;
        op.duration /= rate;
        op.capacity /= rate;
        op.leftover.sm = std::max(0.0, sm_capacity - demand_sm * rate);
        op.leftover.bw = std::max(0.0, bw_capacity - demand_bw * rate);
        degraded_total += op.duration;
    }
    if (healthy_total > 0.0) {
        degraded.iterationLatency =
            profile.iterationLatency * (degraded_total / healthy_total);
    }
    return degraded;
}

OverlappingCapacityEstimator::OverlappingCapacityEstimator(
    sim::ClusterSpec cluster_spec, dlrm::DlrmConfig config,
    dlrm::EmbeddingSharding sharding, CapacityOptions options)
    : clusterSpec_(std::move(cluster_spec)), config_(std::move(config)),
      sharding_(std::move(sharding)), options_(options)
{
    RAP_ASSERT(options_.profileIterations >= 2,
               "need at least two profiling iterations");
    RAP_ASSERT(options_.safetyFactor > 0.0 &&
                   options_.safetyFactor <= 1.0,
               "safety factor must be in (0, 1]");
}

std::vector<CapacityProfile>
OverlappingCapacityEstimator::profileAll() const
{
    sim::Cluster cluster(clusterSpec_);
    dlrm::TrainingDriver driver(cluster, config_, sharding_);
    driver.pushIterations(options_.profileIterations);
    cluster.run();

    std::vector<CapacityProfile> profiles;
    profiles.reserve(static_cast<std::size_t>(cluster.gpuCount()));
    for (int g = 0; g < cluster.gpuCount(); ++g) {
        CapacityProfile profile;
        const auto &ops = driver.ops(g);
        profile.ops.reserve(ops.size());
        for (std::size_t k = 0; k < ops.size(); ++k) {
            OpCapacity cap;
            cap.name = ops[k].name;
            cap.kind = ops[k].kind;
            cap.comm = ops[k].comm;
            cap.duration = driver.avgOpDuration(g, k);
            if (ops[k].comm) {
                // Collectives keep the GPU's compute nearly idle; DMA
                // engines take a sliver of DRAM bandwidth.
                cap.leftover = sim::ResourceDemand{1.0, 0.9};
            } else {
                cap.leftover = sim::ResourceDemand{
                    1.0 - ops[k].kernel.demand.sm,
                    1.0 - ops[k].kernel.demand.bw};
            }
            cap.capacity =
                cap.duration * options_.safetyFactor;
            profile.ops.push_back(std::move(cap));
        }
        profile.iterationLatency = driver.avgIterationLatency();
        profiles.push_back(std::move(profile));
    }
    return profiles;
}

CapacityProfile
OverlappingCapacityEstimator::profile(int gpu) const
{
    auto all = profileAll();
    RAP_ASSERT(gpu >= 0 && static_cast<std::size_t>(gpu) < all.size(),
               "gpu ordinal out of range");
    return all[static_cast<std::size_t>(gpu)];
}

Seconds
OverlappingCapacityEstimator::probeOverlapLatency(
    const sim::GpuSpec &spec, const sim::KernelDesc &train_kernel,
    const sim::KernelDesc &preproc_kernel, int count)
{
    RAP_ASSERT(count >= 0, "probe kernel count must be >= 0");
    sim::ClusterSpec cluster_spec;
    cluster_spec.gpu = spec;
    cluster_spec.gpuCount = 1;
    sim::Cluster cluster(cluster_spec);

    auto &train_stream = cluster.device(0).newStream("probe.train", 0);
    auto &pre_stream =
        cluster.device(0).newStream("probe.preproc", 1, /*priority=*/1);

    Seconds train_end = 0.0;
    Seconds pre_end = 0.0;
    train_stream.pushKernel(train_kernel, [&] {
        train_end = cluster.engine().now();
    });
    for (int i = 0; i < count; ++i) {
        auto cb = i + 1 == count
                      ? std::function<void()>([&] {
                            pre_end = cluster.engine().now();
                        })
                      : std::function<void()>();
        pre_stream.pushKernel(preproc_kernel, std::move(cb));
    }
    cluster.run();
    return std::max(train_end, pre_end);
}

} // namespace rap::core
