/**
 * @file
 * The resource-aware co-running scheduling algorithm (paper §7.1,
 * Algorithm 1).
 *
 * Given the fused preprocessing kernels mapped to one GPU and the
 * GPU's capacity profile, the scheduler:
 *  1. predicts the total preprocessing latency L;
 *  2. selects training layers by overlapping capacity (largest first)
 *     until the selected capacity covers L;
 *  3. walks the layers in iteration order, greedily assigning kernels
 *     in MILP-step order, sharding a kernel whenever the remaining
 *     capacity or the layer's leftover resource envelope is too small
 *     for the whole kernel.
 * Kernels that exceed the iteration's total capacity are appended to
 * the final layer; their latency is the exposed preprocessing cost.
 */

#ifndef RAP_CORE_CORUN_SCHEDULER_HPP
#define RAP_CORE_CORUN_SCHEDULER_HPP

#include <vector>

#include "core/capacity.hpp"
#include "core/kernel_sharding.hpp"

namespace rap::core {

/** One kernel placed against one training op. */
struct ScheduledKernel
{
    FusedKernel kernel;
    /** Training-op index (iteration order) the kernel overlaps. */
    std::size_t opIndex = 0;
    /** True when the kernel did not fit in any layer's capacity. */
    bool overflow = false;
};

/** The co-running schedule for one GPU. */
struct CoRunSchedule
{
    /** Kernels in launch order (non-decreasing opIndex). */
    std::vector<ScheduledKernel> kernels;
    /** Sum of predicted kernel latencies. */
    Seconds totalPreprocLatency = 0.0;
    /** Capacity consumed across selected layers. */
    Seconds capacityUsed = 0.0;
    /** Predicted exposed latency (overflow kernels + their launches). */
    Seconds estimatedExposed = 0.0;

    /** @return Number of scheduled kernels (after sharding). */
    std::size_t kernelCount() const { return kernels.size(); }
};

/**
 * Implements Algorithm 1.
 */
class CoRunScheduler
{
  public:
    /** @param planner Planner shared with the sharder. */
    explicit CoRunScheduler(const HorizontalFusionPlanner &planner);

    /**
     * Schedule @p kernels (MILP-step order) against @p profile.
     */
    CoRunSchedule schedule(std::vector<FusedKernel> kernels,
                           const CapacityProfile &profile) const;

  private:
    const HorizontalFusionPlanner &planner_;
};

} // namespace rap::core

#endif // RAP_CORE_CORUN_SCHEDULER_HPP
