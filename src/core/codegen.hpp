/**
 * @file
 * Code generation (paper §4, step 3).
 *
 * RAP translates the searched plan into executable code: optimised
 * CUDA kernels plus a PyTorch-frontend script that launches them at
 * the right points of the TorchRec training loop. This module emits
 * the equivalent artefacts for the simulated system — a human-readable
 * schedule table and a pseudo-Python frontend that documents exactly
 * which fused kernel co-runs with which training layer.
 */

#ifndef RAP_CORE_CODEGEN_HPP
#define RAP_CORE_CODEGEN_HPP

#include <string>
#include <vector>

#include "core/capacity.hpp"
#include "core/corun_scheduler.hpp"
#include "core/mapping.hpp"

namespace rap::core {

/**
 * Renders searched plans as schedule tables and frontend scripts.
 */
class ScheduleCodegen
{
  public:
    /**
     * @return An ASCII table describing @p schedule against
     *         @p profile: one row per scheduled kernel with its fused
     *         width, predicted latency and host training layer.
     */
    static std::string renderScheduleTable(
        const CoRunSchedule &schedule, const CapacityProfile &profile);

    /**
     * @return A pseudo-Python (PyTorch-style) frontend implementing
     *         the co-running schedule for one GPU.
     */
    static std::string renderPythonFrontend(
        const CoRunSchedule &schedule, const CapacityProfile &profile,
        int gpu);

    /**
     * @return A summary of a graph mapping: items and communication
     *         volume per GPU.
     */
    static std::string renderMappingSummary(const GraphMapping &mapping);
};

} // namespace rap::core

#endif // RAP_CORE_CODEGEN_HPP
