#include "core/kernel_sharding.hpp"

#include "common/log.hpp"

namespace rap::core {

KernelSharder::KernelSharder(const HorizontalFusionPlanner &planner)
    : planner_(planner)
{
}

double
KernelSharder::slowdown(const FusedKernel &kernel,
                        const sim::ResourceDemand &leftover)
{
    double factor = 1.0;
    if (kernel.kernel.demand.sm > 1e-9) {
        factor = std::max(factor, kernel.kernel.demand.sm /
                                      std::max(leftover.sm, 1e-3));
    }
    if (kernel.kernel.demand.bw > 1e-9) {
        factor = std::max(factor, kernel.kernel.demand.bw /
                                      std::max(leftover.bw, 1e-3));
    }
    return factor;
}

Seconds
KernelSharder::effectiveLatency(const FusedKernel &kernel,
                                const ShardingContext &context)
{
    return kernel.predictedLatency *
           slowdown(kernel, context.leftover);
}

bool
KernelSharder::fits(const FusedKernel &kernel,
                    const ShardingContext &context) const
{
    return slowdown(kernel, context.leftover) <= kMaxSlowdown &&
           effectiveLatency(kernel, context) <=
               context.maxLatency + 1e-12;
}

FusedKernel
KernelSharder::slice(const FusedKernel &kernel, int begin, int end) const
{
    RAP_ASSERT(begin >= 0 && end > begin &&
                   end <= kernel.width(),
               "invalid kernel slice [", begin, ", ", end, ")");
    std::vector<int> ids(kernel.nodeIds.begin() + begin,
                         kernel.nodeIds.begin() + end);
    std::vector<preproc::OpShape> shapes(
        kernel.memberShapes.begin() + begin,
        kernel.memberShapes.begin() + end);
    return planner_.materialise(kernel.type, std::move(ids),
                                std::move(shapes), kernel.step);
}

ShardResult
KernelSharder::shard(const FusedKernel &kernel,
                     const ShardingContext &context) const
{
    ShardResult result;
    if (fits(kernel, context)) {
        result.fitting = kernel;
        return result;
    }

    // Find the widest prefix that fits. Fit is monotone in width (all
    // cost-model components grow with width), so binary search works.
    int lo = 0;                  // known-fitting width
    int hi = kernel.width();     // known-non-fitting width (whole)
    while (hi - lo > 1) {
        const int mid = (lo + hi) / 2;
        if (fits(slice(kernel, 0, mid), context)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    if (lo == 0) {
        result.remainder = kernel;
        return result;
    }
    result.fitting = slice(kernel, 0, lo);
    result.remainder = slice(kernel, lo, kernel.width());
    return result;
}

} // namespace rap::core
