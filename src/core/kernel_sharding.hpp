/**
 * @file
 * Resource-aware fused-kernel sharding (paper §6.2).
 *
 * The fusion MILP maximises fusion degree without regard for co-run
 * feasibility, so a fused kernel may be too large to run beside a
 * given DLRM training layer. Before assigning a kernel to a layer,
 * the sharder splits it so that the assigned piece (a) has a
 * predicted standalone latency within the layer's remaining capacity
 * and (b) has a resource demand that fits in the layer's leftover
 * envelope — the condition under which the contention model leaves
 * training latency untouched.
 */

#ifndef RAP_CORE_KERNEL_SHARDING_HPP
#define RAP_CORE_KERNEL_SHARDING_HPP

#include <optional>
#include <utility>

#include "core/fusion.hpp"

namespace rap::core {

/** Constraints one training layer imposes on a co-running kernel. */
struct ShardingContext
{
    /** Resources left over while the layer is resident. */
    sim::ResourceDemand leftover;
    /** Remaining overlapping capacity (standalone latency budget). */
    Seconds maxLatency = 0.0;
};

/** Result of sharding: the piece that fits, and the remainder. */
struct ShardResult
{
    std::optional<FusedKernel> fitting;
    std::optional<FusedKernel> remainder;
};

/**
 * Splits fused kernels against layer constraints.
 *
 * Because preprocessing runs on a lower-priority stream, a kernel
 * whose demand exceeds the layer's leftover does not stretch training
 * — it simply progresses at the reduced rate leftover/demand. The fit
 * criterion therefore bounds the *effective* (slowdown-adjusted)
 * latency against the remaining capacity, and additionally caps the
 * tolerated slowdown so kernels are not parked where they would crawl.
 */
class KernelSharder
{
  public:
    /** Maximum tolerated co-run slowdown before sharding kicks in. */
    static constexpr double kMaxSlowdown = 2.0;

    /** @param planner The planner used to re-materialise pieces. */
    explicit KernelSharder(const HorizontalFusionPlanner &planner);

    /** @return Rate penalty of co-running @p kernel in @p leftover. */
    static double slowdown(const FusedKernel &kernel,
                           const sim::ResourceDemand &leftover);

    /** @return Wall latency of the kernel inside @p context. */
    static Seconds effectiveLatency(const FusedKernel &kernel,
                                    const ShardingContext &context);

    /** @return True when @p kernel can co-run under @p context whole. */
    bool fits(const FusedKernel &kernel,
              const ShardingContext &context) const;

    /**
     * Shard @p kernel against @p context: the widest member prefix
     * that fits becomes ShardResult::fitting; the rest (if any)
     * becomes ShardResult::remainder. When not even a single member
     * fits, fitting is empty and the remainder is the whole kernel.
     */
    ShardResult shard(const FusedKernel &kernel,
                      const ShardingContext &context) const;

  private:
    FusedKernel slice(const FusedKernel &kernel, int begin,
                      int end) const;

    const HorizontalFusionPlanner &planner_;
};

} // namespace rap::core

#endif // RAP_CORE_KERNEL_SHARDING_HPP
