#include "core/latency_predictor.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace rap::core {

namespace {

using preproc::OpType;
using preproc::PredictorCategory;

/** Representative op types per predictor category for sampling. */
std::vector<OpType>
categoryOps(PredictorCategory cat)
{
    switch (cat) {
      case PredictorCategory::OneDimensional:
        return {OpType::FillNull, OpType::Cast, OpType::Logit,
                OpType::BoxCox, OpType::SigridHash, OpType::Clamp,
                OpType::MapId};
      case PredictorCategory::FirstX: return {OpType::FirstX};
      case PredictorCategory::Ngram: return {OpType::Ngram};
      case PredictorCategory::Onehot: return {OpType::Onehot};
      case PredictorCategory::Bucketize: return {OpType::Bucketize};
    }
    RAP_PANIC("unknown predictor category");
}

/** Draw a random kernel configuration for sampling. */
preproc::OpShape
sampleShape(PredictorCategory cat, Rng &rng)
{
    preproc::OpShape shape;
    shape.rows = 1 << rng.uniformInt(9, 14);              // 512..16384
    shape.width = static_cast<int>(rng.uniformInt(1, 128));
    shape.avgListLength = rng.uniform(1.0, 12.0);
    switch (cat) {
      case PredictorCategory::Ngram:
        shape.param = static_cast<double>(rng.uniformInt(1, 4));
        break;
      case PredictorCategory::FirstX:
        shape.param = static_cast<double>(rng.uniformInt(1, 16));
        break;
      case PredictorCategory::Onehot:
      case PredictorCategory::Bucketize:
        shape.param = static_cast<double>(rng.uniformInt(2, 64));
        shape.avgListLength = 1.0;
        break;
      case PredictorCategory::OneDimensional:
        shape.param = 0.0;
        break;
    }
    return shape;
}

} // namespace

std::vector<double>
LatencyPredictor::featurize(preproc::OpType type,
                            const preproc::OpShape &shape)
{
    return {
        std::log2(static_cast<double>(shape.rows)),
        std::log2(static_cast<double>(shape.width)),
        shape.avgListLength,
        shape.param,
        static_cast<double>(static_cast<int>(type)),
        std::log2(std::max(shape.elements(), 1.0)),
    };
}

Seconds
LatencyPredictor::measure(preproc::OpType type,
                          const preproc::OpShape &shape) const
{
    return preproc::makeOpKernel(type, shape, spec_).exclusiveLatency;
}

LatencyPredictor
LatencyPredictor::trainOffline(const sim::GpuSpec &spec,
                               PredictorTrainOptions options)
{
    RAP_ASSERT(options.totalSamples >= 100,
               "predictor needs a reasonable sample count");
    LatencyPredictor predictor;
    predictor.spec_ = spec;

    Rng rng(options.seed);
    const std::size_t per_category =
        options.totalSamples / preproc::kPredictorCategoryCount;

    for (std::size_t c = 0; c < preproc::kPredictorCategoryCount; ++c) {
        const auto cat = static_cast<PredictorCategory>(c);
        const auto ops = categoryOps(cat);

        ml::MlDataset dataset;
        for (std::size_t s = 0; s < per_category; ++s) {
            const OpType type = ops[static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(ops.size()) -
                                   1))];
            const auto shape = sampleShape(cat, rng);
            const Seconds truth =
                preproc::makeOpKernel(type, shape, spec).exclusiveLatency;
            // "Measured" latency: truth with timing jitter.
            const Seconds measured =
                truth * std::exp(rng.normal(0.0,
                                            options.measurementNoise));
            dataset.add(featurize(type, shape), std::log(measured));
        }

        auto [train, eval] = ml::trainEvalSplit(
            dataset, options.trainFraction, options.seed + c);

        ml::Gbdt model(options.gbdt);
        model.fit(train);

        // Evaluate in linear space (the paper's 10%-gap criterion).
        std::vector<double> pred_lin, actual_lin;
        pred_lin.reserve(eval.size());
        actual_lin.reserve(eval.size());
        for (std::size_t i = 0; i < eval.size(); ++i) {
            pred_lin.push_back(std::exp(model.predict(eval.x[i])));
            actual_lin.push_back(std::exp(eval.y[i]));
        }

        auto &report = predictor.report_.categories[c];
        report.name = preproc::predictorCategoryName(cat);
        report.trainSamples = train.size();
        report.evalSamples = eval.size();
        report.within10 =
            ml::withinToleranceAccuracy(pred_lin, actual_lin, 0.10);
        report.mae = ml::meanAbsoluteError(pred_lin, actual_lin);

        predictor.models_[c] = std::move(model);
    }
    predictor.trained_ = true;
    return predictor;
}

Seconds
LatencyPredictor::predict(preproc::OpType type,
                          const preproc::OpShape &shape) const
{
    RAP_ASSERT(trained_, "latency predictor used before training");
    const auto cat = static_cast<std::size_t>(
        preproc::predictorCategory(type));
    const double log_latency = models_[cat].predict(
        featurize(type, shape));
    return std::exp(log_latency);
}

} // namespace rap::core
