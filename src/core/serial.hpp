/**
 * @file
 * The JsonSerializable round-trip convention shared by every
 * machine-read artifact in the repo.
 *
 * A serializable type provides
 *
 *   Json     toJson() const;            // deterministic, exact
 *   static T fromJson(const Json &);    // fatal on bad shape
 *
 * and its top-level object carries a `schema` version token
 * ("rap.run_report.v1", "rap.fleet_report.v1", "rap.metrics.v1",
 * "rap.catalog.v1", ...). toJson stamps the token first; fromJson
 * checks it with requireSchema, which tolerates an *absent* token —
 * artifacts written before the convention existed — but rejects a
 * mismatched one, so a v2 payload can never be silently misread as v1.
 *
 * Field conventions:
 *  - doubles serialize through common/json.hpp's shortest-round-trip
 *    writer, so fromJson(toJson(x)) == x exactly — resume determinism
 *    and CI byte-diffs depend on this;
 *  - 64-bit seeds either carry a 53-bit mask applied at synthesis or
 *    travel as decimal strings (sim/spec_json.cpp);
 *  - optional fields serialize as explicit JSON null when absent and
 *    are read with the find()-based helpers: absent and null both
 *    mean "never measured" (std::nullopt), which is distinct from a
 *    measured zero. Reading an optional with at() — fatal on absence
 *    — is the dialect bug this convention retires.
 *
 * The helper functions live in common/serial.hpp (namespace
 * rap::serial) so lower layers — obs, sim — write the same dialect;
 * core re-exports them as core::serial and adds the checkable
 * concept.
 */

#ifndef RAP_CORE_SERIAL_HPP
#define RAP_CORE_SERIAL_HPP

#include <concepts>

#include "common/serial.hpp"

namespace rap::core {

/** The round-trip convention, as a checkable concept. */
template <typename T>
concept JsonSerializable = requires(const T &value, const Json &json) {
    { value.toJson() } -> std::same_as<Json>;
    { T::fromJson(json) } -> std::same_as<T>;
};

namespace serial = ::rap::serial;

} // namespace rap::core

#endif // RAP_CORE_SERIAL_HPP
