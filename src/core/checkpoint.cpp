#include "core/checkpoint.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "core/serial.hpp"

namespace rap::core {

Json
CheckpointManifest::toJson() const
{
    Json json = Json::object();
    json.set("jobId", Json(jobId));
    json.set("sequence", Json(sequence));
    json.set("fraction", Json(fraction));
    json.set("sealedAt", Json(sealedAt));
    json.set("segment", Json(segment));
    return json;
}

CheckpointManifest
CheckpointManifest::fromJson(const Json &json)
{
    if (!json.isObject())
        RAP_FATAL("CheckpointManifest JSON must be an object");
    CheckpointManifest manifest;
    manifest.jobId = serial::getInt(json, "jobId");
    manifest.sequence = serial::getInt(json, "sequence");
    manifest.fraction = serial::getNumber(json, "fraction");
    manifest.sealedAt = serial::getNumber(json, "sealedAt");
    manifest.segment = serial::getInt(json, "segment");
    return manifest;
}

namespace {

constexpr double kBytesPerParam = 4.0; // fp32

} // namespace

Bytes
checkpointBytesPerGpu(const dlrm::DlrmConfig &model,
                      const dlrm::EmbeddingSharding &sharding, int gpu)
{
    RAP_ASSERT(gpu >= 0 && gpu < sharding.gpuCount(),
               "checkpoint bytes queried for GPU ", gpu, " of ",
               sharding.gpuCount());
    double rows = 0.0;
    for (std::size_t t = 0; t < sharding.tableCount(); ++t) {
        const auto hash_size =
            static_cast<double>(model.schema.sparse(t).hashSize);
        if (sharding.isRowWise(t)) {
            rows += hash_size / sharding.gpuCount();
        } else if (sharding.owner(t) == gpu) {
            rows += hash_size;
        }
    }
    Bytes bytes = rows * model.embeddingDim * kBytesPerParam;
    // The MLPs are replicated; one GPU drains the single copy kept.
    if (gpu == 0)
        bytes += model.mlpParameterCount() * kBytesPerParam;
    return bytes;
}

Seconds
predictCheckpointCost(const sim::ClusterSpec &cluster,
                      const dlrm::DlrmConfig &model,
                      const dlrm::EmbeddingSharding &sharding)
{
    Bytes worst = 0.0;
    for (int g = 0; g < sharding.gpuCount(); ++g)
        worst = std::max(worst,
                         checkpointBytesPerGpu(model, sharding, g));
    return worst / cluster.pcieBandwidth + cluster.pcieLatency;
}

Seconds
youngDalyInterval(Seconds checkpoint_cost, Seconds mtbf)
{
    RAP_ASSERT(mtbf > 0.0, "Young-Daly needs a positive MTBF");
    return std::sqrt(2.0 * std::max(checkpoint_cost, 0.0) * mtbf);
}

RecoveryOutcome
composeRecovery(Seconds iter_seconds, Seconds checkpoint_cost,
                Seconds restore_cost, Seconds restart_overhead,
                long long iterations, long long interval,
                const std::vector<Seconds> &crash_times)
{
    RAP_ASSERT(iter_seconds > 0.0,
               "recovery composition needs a positive iteration time");
    RAP_ASSERT(iterations >= 1,
               "recovery composition needs at least one iteration");
    RAP_ASSERT(interval >= 0, "checkpoint interval must be >= 0");
    RAP_ASSERT(std::is_sorted(crash_times.begin(), crash_times.end()),
               "crash times must be sorted");

    RecoveryOutcome out;
    Seconds wall = 0.0;  // now; everything before is durable or lost
    long long durable = 0; // iterations protected by a checkpoint
    std::size_t ci = 0;

    while (durable < iterations) {
        // Plan the next durability unit: run to the next checkpoint
        // (or job end) — its iterations are volatile until the
        // checkpoint that seals them completes.
        const long long target =
            interval > 0 ? std::min(durable + interval, iterations)
                         : iterations;
        const bool seals = interval > 0 && target < iterations;
        const Seconds seg_end = wall +
                                (target - durable) * iter_seconds +
                                (seals ? checkpoint_cost : 0.0);

        if (ci < crash_times.size() && crash_times[ci] < seg_end) {
            // Crash mid-segment: progress since `wall` is discarded.
            Seconds at = crash_times[ci++];
            out.lostWork += at - wall;
            out.lostBatches += std::min(
                target - durable,
                static_cast<long long>((at - wall) / iter_seconds));
            ++out.recoveries;
            // Recover: restart the process, then restore the last
            // checkpoint if one exists (a job that never sealed one
            // starts over from iteration zero).
            const Seconds recovery =
                restart_overhead + (durable > 0 ? restore_cost : 0.0);
            Seconds rec_end = at + recovery;
            while (ci < crash_times.size() &&
                   crash_times[ci] < rec_end) {
                // Crash during recovery: start recovering again.
                const Seconds again = crash_times[ci++];
                out.lostWork += again - at;
                out.recoveryWindows.emplace_back(at, again);
                ++out.recoveries;
                at = again;
                rec_end = at + recovery;
            }
            out.recoveryWindows.emplace_back(at, rec_end);
            wall = rec_end;
            continue; // replay the segment from `durable`
        }

        wall = seg_end;
        durable = target;
        if (seals) {
            ++out.checkpoints;
            out.checkpointOverhead += checkpoint_cost;
        }
    }
    out.completion = wall;
    return out;
}

} // namespace rap::core
