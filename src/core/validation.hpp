/**
 * @file
 * Structured configuration validation: SystemConfig::validate() and
 * the fleet scheduler report problems as a list of (field, message)
 * errors instead of asserting, so callers — the RunRequest builder,
 * bench flag parsing, fleet admission — can surface every problem at
 * once and decide whether to abort.
 */

#ifndef RAP_CORE_VALIDATION_HPP
#define RAP_CORE_VALIDATION_HPP

#include <string>
#include <utility>
#include <vector>

namespace rap::core {

/** One configuration problem, anchored to the offending field. */
struct ConfigError
{
    /** Field path, e.g. "envelopes[2].sm". */
    std::string field;
    std::string message;
};

/** Outcome of validating a configuration. */
class ValidationResult
{
  public:
    bool ok() const { return errors_.empty(); }

    const std::vector<ConfigError> &errors() const { return errors_; }

    void
    addError(std::string field, std::string message)
    {
        errors_.push_back(
            ConfigError{std::move(field), std::move(message)});
    }

    /** @return All errors as "field: message" lines (one per error). */
    std::string
    render() const
    {
        std::string out;
        for (const auto &error : errors_) {
            if (!out.empty())
                out += "\n";
            out += error.field + ": " + error.message;
        }
        return out;
    }

  private:
    std::vector<ConfigError> errors_;
};

} // namespace rap::core

#endif // RAP_CORE_VALIDATION_HPP
