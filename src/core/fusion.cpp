#include "core/fusion.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rap::core {

preproc::OpShape
combineShapes(const std::vector<preproc::OpShape> &members)
{
    RAP_ASSERT(!members.empty(), "cannot combine zero shapes");
    preproc::OpShape combined;
    combined.rows = members.front().rows;
    combined.width = 0;
    combined.avgListLength = 0.0;
    combined.param = 0.0;
    for (const auto &m : members) {
        RAP_ASSERT(m.rows == combined.rows,
                   "fused members must share the batch size");
        combined.width += m.width;
        combined.avgListLength +=
            m.avgListLength * static_cast<double>(m.width);
        combined.param = std::max(combined.param, m.param);
    }
    combined.avgListLength /= static_cast<double>(combined.width);
    return combined;
}

HorizontalFusionPlanner::HorizontalFusionPlanner(
    sim::GpuSpec spec, const LatencyPredictor *predictor,
    FusionOptions options)
    : spec_(std::move(spec)), predictor_(predictor),
      options_(std::move(options))
{
}

milp::FusionProblem
HorizontalFusionPlanner::toProblem(const preproc::PreprocGraph &graph)
{
    milp::FusionProblem problem;
    problem.type.reserve(graph.nodeCount());
    for (const auto &node : graph.nodes())
        problem.type.push_back(static_cast<int>(node.type));
    for (const auto &node : graph.nodes()) {
        for (int dep : node.deps)
            problem.deps.emplace_back(node.id, dep);
    }
    return problem;
}

FusedKernel
HorizontalFusionPlanner::materialise(
    preproc::OpType type, std::vector<int> node_ids,
    std::vector<preproc::OpShape> member_shapes, int step) const
{
    RAP_ASSERT(node_ids.size() == member_shapes.size(),
               "node/shape arity mismatch");
    FusedKernel fused;
    fused.type = type;
    fused.nodeIds = std::move(node_ids);
    fused.memberShapes = std::move(member_shapes);
    fused.shape = combineShapes(fused.memberShapes);
    fused.step = step;
    fused.kernel = preproc::makeOpKernel(type, fused.shape, spec_);
    fused.predictedLatency =
        predictor_ ? predictor_->predict(type, fused.shape)
                   : fused.kernel.exclusiveLatency;
    fused.inputBytes = preproc::opInputBytes(type, fused.shape);
    fused.prepCpuSeconds = preproc::opPrepCpuSeconds(type, fused.shape);
    return fused;
}

std::vector<FusedKernel>
HorizontalFusionPlanner::plan(const preproc::PreprocGraph &graph,
                              std::int64_t rows) const
{
    std::vector<FusedKernel> kernels;
    if (graph.nodeCount() == 0)
        return kernels;

    const auto &schema = graph.schema();

    if (!options_.enableFusion) {
        // Ablation: singleton kernels in topological order.
        int step = 0;
        for (int id : graph.topoOrder()) {
            const auto &node = graph.node(id);
            kernels.push_back(materialise(
                node.type, {id},
                {preproc::nodeShape(node, schema, rows)}, step++));
        }
        return kernels;
    }

    auto problem = toProblem(graph);
    milp::FusionSolver solver(options_.solver);
    const auto solution = solver.solve(problem);
    nodesExplored_.fetch_add(solution.nodesExplored,
                             std::memory_order_relaxed);

    auto groups = solution.groups(problem);
    // Launch order: ascending time step (groups() already sorts by
    // step first); keep it stable for determinism.
    std::stable_sort(groups.begin(), groups.end(),
                     [&](const std::vector<int> &a,
                         const std::vector<int> &b) {
                         return solution.step[static_cast<std::size_t>(
                                    a.front())] <
                                solution.step[static_cast<std::size_t>(
                                    b.front())];
                     });

    kernels.reserve(groups.size());
    for (const auto &group : groups) {
        std::vector<preproc::OpShape> shapes;
        shapes.reserve(group.size());
        for (int id : group)
            shapes.push_back(
                preproc::nodeShape(graph.node(id), schema, rows));
        kernels.push_back(materialise(
            graph.node(group.front()).type, group, std::move(shapes),
            solution.step[static_cast<std::size_t>(group.front())]));
    }
    return kernels;
}

} // namespace rap::core
