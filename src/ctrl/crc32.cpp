#include "ctrl/crc32.hpp"

#include <array>

namespace rap::ctrl {

namespace {

/** Byte-at-a-time lookup table for the reflected IEEE polynomial. */
constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr auto kTable = makeTable();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace rap::ctrl
