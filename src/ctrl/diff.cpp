#include "ctrl/diff.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace rap::ctrl {

namespace {

/** "status \"running\"" when the record has one, else its JSON. */
std::string
describeRecord(const Json &record)
{
    if (const Json *status = record.find("status"))
        return "status \"" + status->asString() + "\"";
    return record.dump();
}

/**
 * Diff one id-keyed record family. Ids are walked in sorted order, so
 * equal inputs render equal reports regardless of how they were
 * built.
 */
void
diffFamily(std::ostringstream &out, const char *family,
           const std::map<int, Json> &left,
           const std::map<int, Json> &right)
{
    std::set<int> ids;
    for (const auto &[id, record] : left)
        ids.insert(id);
    for (const auto &[id, record] : right)
        ids.insert(id);
    for (const int id : ids) {
        const auto l = left.find(id);
        const auto r = right.find(id);
        if (l == left.end()) {
            out << "  + " << family << " " << id << ": only right ("
                << describeRecord(r->second) << ")\n";
        } else if (r == right.end()) {
            out << "  - " << family << " " << id << ": only left ("
                << describeRecord(l->second) << ")\n";
        } else if (l->second.dump() != r->second.dump()) {
            out << "  ~ " << family << " " << id << ": "
                << describeRecord(l->second) << " | "
                << describeRecord(r->second) << "\n";
        }
    }
}

} // namespace

std::string
diffCatalogStates(const CatalogState &left, const CatalogState &right)
{
    std::ostringstream out;
    if (left.lastLsn != right.lastLsn) {
        out << "  lastLsn: " << left.lastLsn << " | " << right.lastLsn
            << "\n";
    }
    if (left.framesCommitted != right.framesCommitted) {
        out << "  framesCommitted: " << left.framesCommitted << " | "
            << right.framesCommitted << "\n";
    }
    if (left.genesis.dump() != right.genesis.dump()) {
        if (!left.hasGenesis()) {
            out << "  genesis: only right\n";
        } else if (!right.hasGenesis()) {
            out << "  genesis: only left\n";
        } else {
            out << "  genesis: differs (left "
                << left.genesis.dump().size() << " bytes | right "
                << right.genesis.dump().size() << " bytes)\n";
        }
    }
    diffFamily(out, "job", left.jobs, right.jobs);
    diffFamily(out, "placement", left.placements, right.placements);
    const std::size_t manifests =
        std::min(left.manifests.size(), right.manifests.size());
    std::size_t diverge = 0;
    while (diverge < manifests &&
           left.manifests[diverge].dump() ==
               right.manifests[diverge].dump()) {
        ++diverge;
    }
    if (left.manifests.size() != right.manifests.size() ||
        diverge < manifests) {
        out << "  manifests: " << left.manifests.size() << " | "
            << right.manifests.size();
        if (diverge < manifests)
            out << " (diverge at index " << diverge << ")";
        else
            out << " (common prefix identical)";
        out << "\n";
    }
    return out.str();
}

} // namespace rap::ctrl
