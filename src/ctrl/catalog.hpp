/**
 * @file
 * The durable fleet catalog: a small transactional store over one
 * directory —
 *
 *   <dir>/wal.log        CRC-framed WAL of committed transactions
 *   <dir>/snapshot.json  periodic compaction of everything before it
 *   <dir>/LOCK           flock(2)-held while a process has it open
 *
 * Every transaction is one versioned `rap.catalog.v1` JSON payload
 * (common/json.hpp's deterministic writer). commit() appends the
 * framed record — fsync'ing when the fsync-on-commit knob is set —
 * *before* folding it into the in-memory CatalogState, so durable
 * state never lags applied state. Recovery-on-open loads the latest
 * snapshot, replays the WAL tail over it (records whose LSN the
 * snapshot already covers are skipped, which is what makes a crash
 * between the snapshot rename and the WAL reset harmless), and
 * truncates any torn trailing record.
 *
 * The state tracks three record families for the fleet layer: job
 * specs, placement decisions (with their envelope reservations), and
 * checkpoint manifests. The catalog itself is schema-agnostic beyond
 * the transaction envelope — apply() folds ops structurally.
 *
 * Failure semantics (the recovery trichotomy): every durable outcome
 * is one of
 *  - byte-identical recovery: a torn WAL tail is truncated and the
 *    valid prefix replayed, producing the exact pre-crash state;
 *  - a structured refusal: mid-log corruption (a complete frame with
 *    a bad checksum, a replay gap, a non-identical duplicate LSN)
 *    fails tryOpen with a message naming the first bad frame — unless
 *    salvageCorruptTail explicitly accepts the valid prefix;
 *  - flagged degradation: when the disk refuses writes past the retry
 *    budget at runtime, the catalog warns once, raises
 *    `ctrl.catalog.degraded`, stops writing, and keeps applying
 *    commits in memory so the fleet can finish its run.
 * Silent data loss is never on the menu.
 */

#ifndef RAP_CTRL_CATALOG_HPP
#define RAP_CTRL_CATALOG_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "ctrl/wal.hpp"

namespace rap::obs {
class MetricRegistry;
}

namespace rap::ctrl {

/** Schema token stamped on every catalog transaction and snapshot. */
inline constexpr const char *kCatalogSchema = "rap.catalog.v1";

/** Catalog configuration. */
struct CatalogOptions
{
    /** Directory holding wal.log / snapshot.json / LOCK. */
    std::string dir;
    /**
     * fsync the WAL inside every commit. Off by default: the benches
     * trade the sync for speed (a kernel crash can then lose the last
     * commits, a process kill cannot — writes reach the kernel before
     * commit returns either way).
     */
    bool fsyncOnCommit = false;
    /**
     * Compact into snapshot.json every N commits (0 = only when
     * compact() is called explicitly).
     */
    int compactEvery = 0;
    /**
     * Read-only open: no LOCK acquisition, no torn-tail truncation,
     * commit() refused. For inspection tools running against a
     * possibly-live catalog.
     */
    bool readOnly = false;
    /**
     * Accept a WAL whose tail is mid-log corrupt by truncating it to
     * the valid prefix. Off by default: corruption is refused with a
     * structured error, because truncating it silently would discard
     * committed records. Turning this on is the operator saying "I
     * know, keep what is readable".
     */
    bool salvageCorruptTail = false;
    /** Optional registry for the ctrl.* counters (non-owning). */
    obs::MetricRegistry *metrics = nullptr;
    /** Optional fault-injection context (non-owning; null = POSIX). */
    io::IoContext *io = nullptr;
    /** Retry budget for every durable write under the catalog. */
    io::IoRetryPolicy retry;
};

/** Replayed view of the record families the fleet layer persists. */
struct CatalogState
{
    /** The genesis transaction (run config + job specs); null before. */
    Json genesis;
    /** Latest record per job id: {"spec": ..., "status": ...}. */
    std::map<int, Json> jobs;
    /** Latest placement decision per job id (envelope included). */
    std::map<int, Json> placements;
    /** Checkpoint manifests in seal order. */
    std::vector<Json> manifests;
    /** LSN of the last applied transaction (0 = empty catalog). */
    std::uint64_t lastLsn = 0;
    /** Event frames applied (genesis excluded). */
    std::uint64_t framesCommitted = 0;

    bool hasGenesis() const { return !genesis.isNull(); }
};

/**
 * One open catalog. At most one writer per directory: open() takes an
 * exclusive flock on <dir>/LOCK, which the kernel releases when the
 * process dies — even by SIGKILL — so stale locks cannot wedge a
 * resume.
 */
class Catalog
{
  public:
    /**
     * Open (creating the directory when missing) and recover. On
     * failure — notably when another open catalog holds the lock —
     * returns nullptr and stores a message in @p error when non-null.
     */
    static std::unique_ptr<Catalog> tryOpen(CatalogOptions options,
                                            std::string *error = nullptr);

    /** tryOpen, but fatal on failure. */
    static std::unique_ptr<Catalog> open(CatalogOptions options);

    Catalog(const Catalog &) = delete;
    Catalog &operator=(const Catalog &) = delete;
    ~Catalog();

    /**
     * Commit @p transaction: stamp the schema token and the next LSN,
     * append the framed record (fsync when configured), then apply it
     * to state(). Auto-compacts every compactEvery commits. @return
     * the assigned LSN.
     */
    std::uint64_t commit(Json transaction);

    /**
     * Fold everything into snapshot.json (write-temp, fsync, rename)
     * and reset the WAL. Crash-safe at every step: an interrupted
     * compaction leaves either the old snapshot + full WAL or the new
     * snapshot + a WAL whose records recovery skips by LSN.
     */
    void compact();

    /**
     * The exact bytes commit() would log for @p transaction at
     * @p lsn: schema and LSN stamped first, caller members after,
     * caller copies of the stamps dropped. A resuming scheduler calls
     * this to recompute a frame's payload and byte-compare it against
     * recoveredTail().
     */
    static std::string serializeTransaction(const Json &transaction,
                                            std::uint64_t lsn);

    /** The replayed state (updated by every commit). */
    const CatalogState &state() const { return state_; }

    /**
     * Serialized transactions recovered from the WAL at open, keyed
     * by LSN — the un-compacted tail. A resuming scheduler verifies
     * its re-executed frames byte-for-byte against these.
     */
    const std::map<std::uint64_t, std::string> &recoveredTail() const
    {
        return recoveredTail_;
    }

    /** @return True when open dropped a torn/corrupt WAL tail. */
    bool truncatedTornTail() const { return truncatedTornTail_; }

    /** @return True when salvage mode truncated mid-log corruption. */
    bool salvagedCorruptTail() const { return salvagedCorruptTail_; }

    /**
     * @return True once the disk refused a write past the retry
     * budget: commits still apply in memory but nothing is durable.
     */
    bool degraded() const { return degraded_; }

    /** Retry/give-up tallies across the WAL and compaction writes. */
    io::IoStats ioStats() const;

    const CatalogOptions &options() const { return options_; }

    /** Path helpers (shared with tools/catalog_dump). */
    static std::string walPath(const std::string &dir);
    static std::string snapshotPath(const std::string &dir);
    static std::string lockPath(const std::string &dir);

  private:
    explicit Catalog(CatalogOptions options);

    bool recover(std::string *error);
    void applyTransaction(const Json &txn);
    Json snapshotJson() const;
    /** Enter flagged in-memory mode (first call warns + counts). */
    void degrade(const io::IoError &error);
    /** Push the io-stat deltas since the last call into metrics. */
    void mirrorIoStats();

    CatalogOptions options_;
    CatalogState state_;
    std::map<std::uint64_t, std::string> recoveredTail_;
    std::unique_ptr<WalWriter> wal_;
    /** Retries/give-ups outside the WAL writer (compaction, reads). */
    io::IoStats localIoStats_;
    /** Totals already mirrored into the metric registry. */
    io::IoStats mirroredIoStats_;
    int lockFd_ = -1;
    bool truncatedTornTail_ = false;
    bool salvagedCorruptTail_ = false;
    bool degraded_ = false;
    /** Commits since the last compaction (auto-compact trigger). */
    int commitsSinceCompact_ = 0;
};

} // namespace rap::ctrl

#endif // RAP_CTRL_CATALOG_HPP
