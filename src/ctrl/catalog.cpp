#include "ctrl/catalog.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace rap::ctrl {

namespace {

/** Bump a ctrl.* counter when a registry is attached. */
void
count(obs::MetricRegistry *metrics, const char *name,
      std::uint64_t delta = 1)
{
    if (metrics != nullptr && delta > 0)
        metrics->counter(name).inc(delta);
}

/** fsync a path (directory or file) so a rename is durable. */
void
syncPath(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return; // best effort: some filesystems refuse dir opens
    ::fsync(fd);
    ::close(fd);
}

/** Stamp schema + LSN first, caller members after (stamps dropped). */
Json
stampTransaction(const Json &transaction, std::uint64_t lsn)
{
    RAP_ASSERT(transaction.isObject(),
               "catalog transactions must be objects");
    Json stamped = Json::object();
    stamped.set("schema", Json(kCatalogSchema));
    stamped.set("lsn", Json(lsn));
    for (const auto &[key, value] : transaction.members()) {
        if (key != "schema" && key != "lsn")
            stamped.set(key, value);
    }
    return stamped;
}

} // namespace

std::string
Catalog::walPath(const std::string &dir)
{
    return dir + "/wal.log";
}

std::string
Catalog::snapshotPath(const std::string &dir)
{
    return dir + "/snapshot.json";
}

std::string
Catalog::lockPath(const std::string &dir)
{
    return dir + "/LOCK";
}

Catalog::Catalog(CatalogOptions options) : options_(std::move(options))
{
}

Catalog::~Catalog()
{
    wal_.reset();
    if (lockFd_ >= 0)
        ::close(lockFd_); // closing drops the flock
}

std::unique_ptr<Catalog>
Catalog::tryOpen(CatalogOptions options, std::string *error)
{
    RAP_ASSERT(!options.dir.empty(), "catalog needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(options.dir, ec);
    if (ec) {
        if (error != nullptr) {
            *error = "cannot create catalog directory '" +
                     options.dir + "': " + ec.message();
        }
        return nullptr;
    }
    std::unique_ptr<Catalog> catalog(new Catalog(std::move(options)));
    if (!catalog->recover(error))
        return nullptr;
    return catalog;
}

std::unique_ptr<Catalog>
Catalog::open(CatalogOptions options)
{
    std::string error;
    auto catalog = tryOpen(std::move(options), &error);
    if (catalog == nullptr)
        RAP_FATAL("catalog open failed: ", error);
    return catalog;
}

bool
Catalog::recover(std::string *error)
{
    const auto fail = [error](std::string message) {
        if (error != nullptr)
            *error = std::move(message);
        return false;
    };
    if (!options_.readOnly) {
        // The kernel drops a flock when its holder dies — SIGKILL
        // included — so refusal here always means a *live* writer.
        lockFd_ = ::open(lockPath(options_.dir).c_str(),
                         O_RDWR | O_CREAT | O_CLOEXEC, 0644);
        if (lockFd_ < 0) {
            return fail("cannot open '" + lockPath(options_.dir) +
                        "': " + std::strerror(errno));
        }
        if (::flock(lockFd_, LOCK_EX | LOCK_NB) != 0) {
            ::close(lockFd_);
            lockFd_ = -1;
            return fail("catalog '" + options_.dir +
                        "' is already open (flock held)");
        }
    }

    const std::string snap_path = snapshotPath(options_.dir);
    if (std::filesystem::exists(snap_path)) {
        std::string raw;
        const auto read =
            io::readFileBytes(options_.io, snap_path, &raw);
        if (!read.ok())
            return fail("catalog snapshot unreadable: " +
                        read.error->message());
        std::string parse_error;
        const Json snapshot = Json::parse(raw, &parse_error);
        if (!snapshot.isObject()) {
            return fail("catalog snapshot '" + snap_path +
                        "' is not valid JSON: " + parse_error);
        }
        const Json *schema = snapshot.find("schema");
        if (schema == nullptr || schema->asString() != kCatalogSchema) {
            return fail("catalog snapshot '" + snap_path +
                        "' has wrong schema");
        }
        state_.lastLsn = static_cast<std::uint64_t>(
            snapshot.at("lastLsn").asDouble());
        state_.framesCommitted = static_cast<std::uint64_t>(
            snapshot.at("framesCommitted").asDouble());
        state_.genesis = snapshot.at("genesis");
        for (const Json &entry : snapshot.at("jobs").elements()) {
            state_.jobs[static_cast<int>(entry.at("id").asDouble())] =
                entry.at("record");
        }
        for (const Json &entry : snapshot.at("placements").elements()) {
            state_.placements[static_cast<int>(
                entry.at("id").asDouble())] = entry.at("record");
        }
        for (const Json &entry : snapshot.at("manifests").elements())
            state_.manifests.push_back(entry);
    }
    const std::uint64_t snapshot_lsn = state_.lastLsn;

    const auto wal = readWal(walPath(options_.dir), options_.io);
    if (wal.corruptMidLog) {
        if (!options_.salvageCorruptTail) {
            // Truncating here would silently discard every committed
            // record at and past the damage; make the operator choose.
            return fail(
                "catalog WAL '" + walPath(options_.dir) +
                "' is corrupt at frame " +
                std::to_string(wal.badFrameIndex) + " (offset " +
                std::to_string(wal.badFrameOffset) +
                "): " + wal.badReason +
                "; re-open with salvage to keep the " +
                std::to_string(wal.records.size()) +
                " records before it");
        }
        salvagedCorruptTail_ = true;
        logWarn("catalog WAL salvage: dropping frame ",
                wal.badFrameIndex, "+ at offset ", wal.badFrameOffset,
                " (", wal.badReason, "), keeping ",
                wal.records.size(), " records");
        count(options_.metrics, "ctrl.wal.salvaged");
    }
    std::uint64_t replayed = 0;
    for (const std::string &payload : wal.records) {
        std::string parse_error;
        const Json txn = Json::parse(payload, &parse_error);
        if (!txn.isObject()) {
            // The checksum passed, so this is not crash damage —
            // something else wrote garbage into the log.
            return fail("catalog WAL record " +
                        std::to_string(replayed) +
                        " is not valid JSON: " + parse_error);
        }
        const auto lsn =
            static_cast<std::uint64_t>(txn.at("lsn").asDouble());
        if (lsn <= snapshot_lsn) {
            // A compaction crashed between the snapshot rename and
            // the WAL reset: the snapshot already covers this record.
            continue;
        }
        if (lsn <= state_.lastLsn) {
            // A replayed write can duplicate the tail frame. A
            // byte-identical echo is harmless; anything else claims
            // two different histories for one LSN.
            const auto it = recoveredTail_.find(lsn);
            if (it != recoveredTail_.end() && it->second == payload) {
                count(options_.metrics, "ctrl.wal.duplicates_skipped");
                continue;
            }
            return fail("catalog WAL replays LSN " +
                        std::to_string(lsn) +
                        " with different bytes: two histories for "
                        "one record");
        }
        if (lsn != state_.lastLsn + 1) {
            return fail("catalog WAL gap: expected LSN " +
                        std::to_string(state_.lastLsn + 1) +
                        ", found " + std::to_string(lsn));
        }
        applyTransaction(txn);
        recoveredTail_[lsn] = payload;
        ++replayed;
    }
    count(options_.metrics, "ctrl.recovery.replayed", replayed);

    if (wal.tornTail) {
        truncatedTornTail_ = true;
        count(options_.metrics, "ctrl.wal.truncated_records");
    }
    if (!options_.readOnly) {
        // Re-opening the writer at validBytes drops the torn (or
        // explicitly salvaged) tail. When even that fails the disk is
        // already gone: come up degraded rather than not at all.
        std::string open_error;
        wal_ = WalWriter::tryOpen(walPath(options_.dir), wal.validBytes,
                                  options_.io, options_.retry,
                                  &open_error);
        if (wal_ == nullptr) {
            io::IoError synthetic;
            synthetic.op = io::IoOp::Open;
            synthetic.path = walPath(options_.dir);
            synthetic.errnum = EIO;
            logWarn("catalog WAL writer open failed: ", open_error);
            degrade(synthetic);
        }
    }
    return true;
}

std::string
Catalog::serializeTransaction(const Json &transaction,
                              std::uint64_t lsn)
{
    return stampTransaction(transaction, lsn).dump();
}

void
Catalog::degrade(const io::IoError &error)
{
    if (degraded_)
        return;
    degraded_ = true;
    logWarn("catalog '", options_.dir,
            "' entering degraded in-memory mode: ", error.message(),
            " — commits keep applying but are no longer durable");
    count(options_.metrics, "ctrl.catalog.degraded");
}

io::IoStats
Catalog::ioStats() const
{
    io::IoStats total = localIoStats_;
    if (wal_ != nullptr) {
        total.retries += wal_->ioStats().retries;
        total.gaveUp += wal_->ioStats().gaveUp;
        total.virtualBackoffSeconds +=
            wal_->ioStats().virtualBackoffSeconds;
    }
    return total;
}

void
Catalog::mirrorIoStats()
{
    const io::IoStats total = ioStats();
    count(options_.metrics, "ctrl.io.retries",
          total.retries - mirroredIoStats_.retries);
    count(options_.metrics, "ctrl.io.gave_up",
          total.gaveUp - mirroredIoStats_.gaveUp);
    mirroredIoStats_ = total;
}

std::uint64_t
Catalog::commit(Json transaction)
{
    RAP_ASSERT(!options_.readOnly,
               "commit on a read-only catalog");
    const std::uint64_t lsn = state_.lastLsn + 1;
    const Json stamped = stampTransaction(transaction, lsn);
    const std::string payload = stamped.dump();
    if (!degraded_) {
        auto status = wal_->append(payload);
        if (status.ok()) {
            count(options_.metrics, "ctrl.wal.appends");
            count(options_.metrics, "ctrl.wal.bytes",
                  payload.size() + kWalFrameHeaderBytes);
            if (options_.fsyncOnCommit) {
                status = wal_->sync();
                if (status.ok())
                    count(options_.metrics, "ctrl.wal.syncs");
            }
        }
        if (!status.ok())
            degrade(*status.error);
        mirrorIoStats();
    }
    // Durable first, applied second: a kill between the two loses
    // only the in-memory view, which recovery rebuilds from the log.
    applyTransaction(stamped);
    ++commitsSinceCompact_;
    if (!degraded_ && options_.compactEvery > 0 &&
        commitsSinceCompact_ >= options_.compactEvery) {
        compact();
    }
    return lsn;
}

void
Catalog::applyTransaction(const Json &txn)
{
    const auto lsn = static_cast<std::uint64_t>(txn.at("lsn").asDouble());
    const std::string &kind = txn.at("kind").asString();
    if (kind == "genesis") {
        RAP_ASSERT(!state_.hasGenesis(),
                   "catalog already has a genesis transaction");
        state_.genesis = txn;
        for (const Json &spec : txn.at("jobs").elements()) {
            Json record = Json::object();
            record.set("spec", spec);
            record.set("status", Json("submitted"));
            state_.jobs[static_cast<int>(spec.at("id").asDouble())] =
                std::move(record);
        }
    } else if (kind == "frame") {
        for (const Json &op : txn.at("ops").elements()) {
            const std::string &name = op.at("op").asString();
            if (name == "seal") {
                state_.manifests.push_back(op.at("manifest"));
                continue;
            }
            if (name == "fault")
                continue; // no per-job record
            const int job = static_cast<int>(op.at("job").asDouble());
            const auto it = state_.jobs.find(job);
            RAP_ASSERT(it != state_.jobs.end(),
                       "catalog op for unknown job ", job);
            if (name == "admit" || name == "preempt") {
                it->second.set("status", Json("queued"));
            } else if (name == "place") {
                it->second.set("status", Json("running"));
                state_.placements[job] = op;
            } else if (name == "finish") {
                it->second.set("status", Json("finished"));
            } else {
                RAP_FATAL("unknown catalog op '", name, "'");
            }
        }
        state_.framesCommitted = static_cast<std::uint64_t>(
                                     txn.at("frame").asDouble()) +
                                 1;
    } else {
        RAP_FATAL("unknown catalog transaction kind '", kind, "'");
    }
    state_.lastLsn = lsn;
}

Json
Catalog::snapshotJson() const
{
    Json snapshot = Json::object();
    snapshot.set("schema", Json(kCatalogSchema));
    snapshot.set("lastLsn", Json(state_.lastLsn));
    snapshot.set("framesCommitted", Json(state_.framesCommitted));
    snapshot.set("genesis", state_.genesis);
    Json jobs = Json::array();
    for (const auto &[id, record] : state_.jobs) {
        Json entry = Json::object();
        entry.set("id", Json(id));
        entry.set("record", record);
        jobs.push(std::move(entry));
    }
    snapshot.set("jobs", std::move(jobs));
    Json placements = Json::array();
    for (const auto &[id, record] : state_.placements) {
        Json entry = Json::object();
        entry.set("id", Json(id));
        entry.set("record", record);
        placements.push(std::move(entry));
    }
    snapshot.set("placements", std::move(placements));
    Json manifests = Json::array();
    for (const Json &manifest : state_.manifests)
        manifests.push(manifest);
    snapshot.set("manifests", std::move(manifests));
    return snapshot;
}

void
Catalog::compact()
{
    RAP_ASSERT(!options_.readOnly,
               "compact on a read-only catalog");
    if (degraded_)
        return; // nothing durable left to fold
    const std::string final_path = snapshotPath(options_.dir);
    const std::string tmp_path = final_path + ".tmp";
    // Write-temp, fsync, rename: the snapshot becomes visible
    // atomically, so recovery sees either the old or the new one —
    // never a half-written file. A failed write (disk full, say)
    // leaves the old snapshot and the full WAL untouched: compaction
    // is an optimisation, skipping it loses nothing.
    const auto abandon = [&](const io::IoStatus &status) {
        logWarn("catalog compaction abandoned: ",
                status.error->message(),
                " — keeping the old snapshot and the full WAL");
        std::error_code ec;
        std::filesystem::remove(tmp_path, ec);
        count(options_.metrics, "ctrl.snapshot.failed");
        commitsSinceCompact_ = 0; // retry after another interval
        mirrorIoStats();
    };
    {
        io::IoError open_error;
        auto tmp = io::openFile(options_.io, tmp_path,
                                io::OpenMode::Truncate, &open_error);
        if (tmp == nullptr) {
            abandon(io::IoStatus::fail(open_error));
            return;
        }
        const std::string body = snapshotJson().dump(2);
        auto status = io::writeFully(*tmp, body.data(), body.size(),
                                     options_.retry, &localIoStats_);
        if (status.ok())
            status = io::syncFully(*tmp, options_.retry,
                                   &localIoStats_);
        if (!status.ok()) {
            abandon(status);
            return;
        }
    }
    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        io::IoError rename_error;
        rename_error.op = io::IoOp::Write;
        rename_error.path = final_path;
        rename_error.errnum = errno;
        abandon(io::IoStatus::fail(rename_error));
        return;
    }
    syncPath(options_.dir);
    // The WAL reset comes last. A crash right before it leaves stale
    // records the next recovery skips by LSN (<= snapshot lastLsn);
    // a *failed* reset leaves the same stale records, equally benign.
    if (auto status = wal_->reset(); !status.ok()) {
        logWarn("catalog WAL reset after compaction failed: ",
                status.error->message(),
                " — stale records will be skipped by LSN on recovery");
    }
    commitsSinceCompact_ = 0;
    count(options_.metrics, "ctrl.snapshot.writes");
    mirrorIoStats();
}

} // namespace rap::ctrl
