#include "ctrl/catalog.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace rap::ctrl {

namespace {

/** Bump a ctrl.* counter when a registry is attached. */
void
count(obs::MetricRegistry *metrics, const char *name,
      std::uint64_t delta = 1)
{
    if (metrics != nullptr && delta > 0)
        metrics->counter(name).inc(delta);
}

/** fsync a path (directory or file) so a rename is durable. */
void
syncPath(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return; // best effort: some filesystems refuse dir opens
    ::fsync(fd);
    ::close(fd);
}

/** Stamp schema + LSN first, caller members after (stamps dropped). */
Json
stampTransaction(const Json &transaction, std::uint64_t lsn)
{
    RAP_ASSERT(transaction.isObject(),
               "catalog transactions must be objects");
    Json stamped = Json::object();
    stamped.set("schema", Json(kCatalogSchema));
    stamped.set("lsn", Json(lsn));
    for (const auto &[key, value] : transaction.members()) {
        if (key != "schema" && key != "lsn")
            stamped.set(key, value);
    }
    return stamped;
}

} // namespace

std::string
Catalog::walPath(const std::string &dir)
{
    return dir + "/wal.log";
}

std::string
Catalog::snapshotPath(const std::string &dir)
{
    return dir + "/snapshot.json";
}

std::string
Catalog::lockPath(const std::string &dir)
{
    return dir + "/LOCK";
}

Catalog::Catalog(CatalogOptions options) : options_(std::move(options))
{
}

Catalog::~Catalog()
{
    wal_.reset();
    if (lockFd_ >= 0)
        ::close(lockFd_); // closing drops the flock
}

std::unique_ptr<Catalog>
Catalog::tryOpen(CatalogOptions options, std::string *error)
{
    RAP_ASSERT(!options.dir.empty(), "catalog needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(options.dir, ec);
    if (ec) {
        if (error != nullptr) {
            *error = "cannot create catalog directory '" +
                     options.dir + "': " + ec.message();
        }
        return nullptr;
    }
    std::unique_ptr<Catalog> catalog(new Catalog(std::move(options)));
    if (!catalog->recover(error))
        return nullptr;
    return catalog;
}

std::unique_ptr<Catalog>
Catalog::open(CatalogOptions options)
{
    std::string error;
    auto catalog = tryOpen(std::move(options), &error);
    if (catalog == nullptr)
        RAP_FATAL("catalog open failed: ", error);
    return catalog;
}

bool
Catalog::recover(std::string *error)
{
    if (!options_.readOnly) {
        // The kernel drops a flock when its holder dies — SIGKILL
        // included — so refusal here always means a *live* writer.
        lockFd_ = ::open(lockPath(options_.dir).c_str(),
                         O_RDWR | O_CREAT | O_CLOEXEC, 0644);
        if (lockFd_ < 0) {
            if (error != nullptr) {
                *error = "cannot open '" + lockPath(options_.dir) +
                         "': " + std::strerror(errno);
            }
            return false;
        }
        if (::flock(lockFd_, LOCK_EX | LOCK_NB) != 0) {
            if (error != nullptr) {
                *error = "catalog '" + options_.dir +
                         "' is already open (flock held)";
            }
            ::close(lockFd_);
            lockFd_ = -1;
            return false;
        }
    }

    const std::string snap_path = snapshotPath(options_.dir);
    if (std::filesystem::exists(snap_path)) {
        const Json snapshot = readJsonFile(snap_path);
        const Json *schema = snapshot.find("schema");
        if (schema == nullptr || schema->asString() != kCatalogSchema) {
            RAP_FATAL("catalog snapshot '", snap_path,
                      "' has wrong schema");
        }
        state_.lastLsn = static_cast<std::uint64_t>(
            snapshot.at("lastLsn").asDouble());
        state_.framesCommitted = static_cast<std::uint64_t>(
            snapshot.at("framesCommitted").asDouble());
        state_.genesis = snapshot.at("genesis");
        for (const Json &entry : snapshot.at("jobs").elements()) {
            state_.jobs[static_cast<int>(entry.at("id").asDouble())] =
                entry.at("record");
        }
        for (const Json &entry : snapshot.at("placements").elements()) {
            state_.placements[static_cast<int>(
                entry.at("id").asDouble())] = entry.at("record");
        }
        for (const Json &entry : snapshot.at("manifests").elements())
            state_.manifests.push_back(entry);
    }
    const std::uint64_t snapshot_lsn = state_.lastLsn;

    const auto wal = readWal(walPath(options_.dir));
    std::uint64_t replayed = 0;
    for (const std::string &payload : wal.records) {
        std::string parse_error;
        const Json txn = Json::parse(payload, &parse_error);
        if (!txn.isObject()) {
            // The checksum passed, so this is not crash damage —
            // something else wrote garbage into the log.
            RAP_FATAL("catalog WAL record is not valid JSON: ",
                      parse_error);
        }
        const auto lsn =
            static_cast<std::uint64_t>(txn.at("lsn").asDouble());
        if (lsn <= snapshot_lsn) {
            // A compaction crashed between the snapshot rename and
            // the WAL reset: the snapshot already covers this record.
            continue;
        }
        RAP_ASSERT(lsn == state_.lastLsn + 1,
                   "catalog WAL gap: expected LSN ",
                   state_.lastLsn + 1, ", found ", lsn);
        applyTransaction(txn);
        recoveredTail_[lsn] = payload;
        ++replayed;
    }
    count(options_.metrics, "ctrl.recovery.replayed", replayed);

    if (wal.tornTail) {
        truncatedTornTail_ = true;
        count(options_.metrics, "ctrl.wal.truncated_records");
    }
    if (!options_.readOnly) {
        // Re-opening the writer at validBytes drops the torn tail.
        wal_ = std::make_unique<WalWriter>(walPath(options_.dir),
                                           wal.validBytes);
    }
    return true;
}

std::string
Catalog::serializeTransaction(const Json &transaction,
                              std::uint64_t lsn)
{
    return stampTransaction(transaction, lsn).dump();
}

std::uint64_t
Catalog::commit(Json transaction)
{
    RAP_ASSERT(!options_.readOnly,
               "commit on a read-only catalog");
    const std::uint64_t lsn = state_.lastLsn + 1;
    const Json stamped = stampTransaction(transaction, lsn);
    const std::string payload = stamped.dump();
    wal_->append(payload);
    if (options_.fsyncOnCommit) {
        wal_->sync();
        count(options_.metrics, "ctrl.wal.syncs");
    }
    count(options_.metrics, "ctrl.wal.appends");
    count(options_.metrics, "ctrl.wal.bytes",
          payload.size() + kWalFrameHeaderBytes);
    // Durable first, applied second: a kill between the two loses
    // only the in-memory view, which recovery rebuilds from the log.
    applyTransaction(stamped);
    ++commitsSinceCompact_;
    if (options_.compactEvery > 0 &&
        commitsSinceCompact_ >= options_.compactEvery) {
        compact();
    }
    return lsn;
}

void
Catalog::applyTransaction(const Json &txn)
{
    const auto lsn = static_cast<std::uint64_t>(txn.at("lsn").asDouble());
    const std::string &kind = txn.at("kind").asString();
    if (kind == "genesis") {
        RAP_ASSERT(!state_.hasGenesis(),
                   "catalog already has a genesis transaction");
        state_.genesis = txn;
        for (const Json &spec : txn.at("jobs").elements()) {
            Json record = Json::object();
            record.set("spec", spec);
            record.set("status", Json("submitted"));
            state_.jobs[static_cast<int>(spec.at("id").asDouble())] =
                std::move(record);
        }
    } else if (kind == "frame") {
        for (const Json &op : txn.at("ops").elements()) {
            const std::string &name = op.at("op").asString();
            if (name == "seal") {
                state_.manifests.push_back(op.at("manifest"));
                continue;
            }
            if (name == "fault")
                continue; // no per-job record
            const int job = static_cast<int>(op.at("job").asDouble());
            const auto it = state_.jobs.find(job);
            RAP_ASSERT(it != state_.jobs.end(),
                       "catalog op for unknown job ", job);
            if (name == "admit" || name == "preempt") {
                it->second.set("status", Json("queued"));
            } else if (name == "place") {
                it->second.set("status", Json("running"));
                state_.placements[job] = op;
            } else if (name == "finish") {
                it->second.set("status", Json("finished"));
            } else {
                RAP_FATAL("unknown catalog op '", name, "'");
            }
        }
        state_.framesCommitted = static_cast<std::uint64_t>(
                                     txn.at("frame").asDouble()) +
                                 1;
    } else {
        RAP_FATAL("unknown catalog transaction kind '", kind, "'");
    }
    state_.lastLsn = lsn;
}

Json
Catalog::snapshotJson() const
{
    Json snapshot = Json::object();
    snapshot.set("schema", Json(kCatalogSchema));
    snapshot.set("lastLsn", Json(state_.lastLsn));
    snapshot.set("framesCommitted", Json(state_.framesCommitted));
    snapshot.set("genesis", state_.genesis);
    Json jobs = Json::array();
    for (const auto &[id, record] : state_.jobs) {
        Json entry = Json::object();
        entry.set("id", Json(id));
        entry.set("record", record);
        jobs.push(std::move(entry));
    }
    snapshot.set("jobs", std::move(jobs));
    Json placements = Json::array();
    for (const auto &[id, record] : state_.placements) {
        Json entry = Json::object();
        entry.set("id", Json(id));
        entry.set("record", record);
        placements.push(std::move(entry));
    }
    snapshot.set("placements", std::move(placements));
    Json manifests = Json::array();
    for (const Json &manifest : state_.manifests)
        manifests.push(manifest);
    snapshot.set("manifests", std::move(manifests));
    return snapshot;
}

void
Catalog::compact()
{
    RAP_ASSERT(!options_.readOnly,
               "compact on a read-only catalog");
    const std::string final_path = snapshotPath(options_.dir);
    const std::string tmp_path = final_path + ".tmp";
    // Write-temp, fsync, rename: the snapshot becomes visible
    // atomically, so recovery sees either the old or the new one —
    // never a half-written file.
    writeJsonFile(snapshotJson(), tmp_path);
    syncPath(tmp_path);
    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        RAP_FATAL("cannot rename catalog snapshot into place: ",
                  std::strerror(errno));
    }
    syncPath(options_.dir);
    // The WAL reset comes last. A crash right before it leaves stale
    // records the next recovery skips by LSN (<= snapshot lastLsn).
    wal_->reset();
    commitsSinceCompact_ = 0;
    count(options_.metrics, "ctrl.snapshot.writes");
}

} // namespace rap::ctrl
