#include "ctrl/wal.hpp"

#include <cerrno>
#include <cstring>

#include "common/log.hpp"
#include "ctrl/crc32.hpp"

namespace rap::ctrl {

namespace {

std::uint32_t
readU32Le(const unsigned char *bytes)
{
    return static_cast<std::uint32_t>(bytes[0]) |
           static_cast<std::uint32_t>(bytes[1]) << 8 |
           static_cast<std::uint32_t>(bytes[2]) << 16 |
           static_cast<std::uint32_t>(bytes[3]) << 24;
}

void
writeU32Le(std::string &out, std::uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xFFu));
    out.push_back(static_cast<char>((value >> 8) & 0xFFu));
    out.push_back(static_cast<char>((value >> 16) & 0xFFu));
    out.push_back(static_cast<char>((value >> 24) & 0xFFu));
}

/**
 * Cap on one record's payload: a length field above this is garbage
 * (bit rot in the header), not a real record.
 */
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

} // namespace

WalReadResult
readWal(const std::string &path, io::IoContext *io)
{
    WalReadResult result;
    std::string raw;
    const auto read = io::readFileBytes(io, path, &raw);
    if (!read.ok())
        return result; // no log yet (or unreadable): empty
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(raw.data());
    std::uint64_t offset = 0;
    while (offset < raw.size()) {
        WalFrameInfo info;
        info.offset = offset;
        if (offset + kWalFrameHeaderBytes > raw.size()) {
            // A crash mid-append persists a prefix; a sub-header
            // remnant can only be the tail of such a write.
            result.tornTail = true;
            result.badReason = "torn header (frame cut short at EOF)";
            result.frames.push_back(info);
            break;
        }
        info.length = readU32Le(bytes + offset);
        info.crcStored = readU32Le(bytes + offset + 4);
        if (info.length > kMaxRecordBytes) {
            // The header is fully on disk, so its length field is the
            // one the writer framed — unless something rotted it. No
            // torn write produces an implausible length.
            result.corruptMidLog = true;
            result.badReason = "implausible length field (" +
                               std::to_string(info.length) +
                               " bytes): header bit rot";
            result.frames.push_back(info);
            break;
        }
        const std::uint64_t end =
            offset + kWalFrameHeaderBytes + info.length;
        if (end > raw.size()) {
            result.tornTail = true;
            result.badReason = "torn payload (" +
                               std::to_string(end - raw.size()) +
                               " bytes missing at EOF)";
            result.frames.push_back(info);
            break;
        }
        info.complete = true;
        std::string payload =
            raw.substr(offset + kWalFrameHeaderBytes, info.length);
        if (crc32(payload) != info.crcStored) {
            // The whole frame is present yet wrong: bit rot, not a
            // crash. Truncating here would silently discard every
            // committed record after it, so it is never the default.
            result.corruptMidLog = true;
            result.badReason = "checksum mismatch on a complete frame";
            result.frames.push_back(info);
            break;
        }
        info.crcOk = true;
        result.frames.push_back(info);
        result.records.push_back(std::move(payload));
        offset = end;
    }
    result.validBytes = offset;
    if (result.damaged()) {
        result.badFrameOffset = offset;
        result.badFrameIndex = result.records.size();
    }
    return result;
}

WalWriter::WalWriter(std::string path, std::unique_ptr<io::File> file,
                     io::IoRetryPolicy retry, std::uint64_t offset)
    : path_(std::move(path)), file_(std::move(file)), retry_(retry),
      size_(offset)
{
}

std::unique_ptr<WalWriter>
WalWriter::tryOpen(const std::string &path, std::uint64_t offset,
                   io::IoContext *io, const io::IoRetryPolicy &retry,
                   std::string *error)
{
    io::IoError io_error;
    auto file =
        io::openFile(io, path, io::OpenMode::ReadWrite, &io_error);
    if (file == nullptr) {
        if (error != nullptr)
            *error = io_error.message();
        return nullptr;
    }
    if (auto status = file->truncate(offset); !status.ok()) {
        if (error != nullptr)
            *error = status.error->message();
        return nullptr;
    }
    return std::unique_ptr<WalWriter>(
        new WalWriter(path, std::move(file), retry, offset));
}

WalWriter::WalWriter(const std::string &path, std::uint64_t offset)
{
    std::string error;
    auto writer =
        tryOpen(path, offset, nullptr, io::IoRetryPolicy{}, &error);
    if (writer == nullptr)
        RAP_FATAL("cannot open WAL '", path, "': ", error);
    path_ = std::move(writer->path_);
    file_ = std::move(writer->file_);
    retry_ = writer->retry_;
    size_ = writer->size_;
}

io::IoStatus
WalWriter::append(const std::string &payload)
{
    RAP_ASSERT(payload.size() <= kMaxRecordBytes,
               "WAL record too large: ", payload.size(), " bytes");
    std::string frame;
    frame.reserve(kWalFrameHeaderBytes + payload.size());
    writeU32Le(frame, static_cast<std::uint32_t>(payload.size()));
    writeU32Le(frame, crc32(payload));
    frame += payload;
    auto status = io::writeFully(*file_, frame.data(), frame.size(),
                                 retry_, &ioStats_);
    if (!status.ok()) {
        // Roll the torn frame back to the last record boundary so a
        // later successful append cannot bury partial bytes mid-log
        // (which the scanner would rightly flag as corruption). Best
        // effort: if even the truncate fails, recovery-on-open will
        // drop the torn tail instead.
        (void)file_->truncate(size_);
        return status;
    }
    size_ += frame.size();
    return status;
}

io::IoStatus
WalWriter::sync()
{
    return io::syncFully(*file_, retry_, &ioStats_);
}

io::IoStatus
WalWriter::reset()
{
    auto status = file_->truncate(0);
    if (status.ok())
        size_ = 0;
    return status;
}

} // namespace rap::ctrl
