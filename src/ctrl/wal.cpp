#include "ctrl/wal.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hpp"
#include "ctrl/crc32.hpp"

namespace rap::ctrl {

namespace {

std::uint32_t
readU32Le(const unsigned char *bytes)
{
    return static_cast<std::uint32_t>(bytes[0]) |
           static_cast<std::uint32_t>(bytes[1]) << 8 |
           static_cast<std::uint32_t>(bytes[2]) << 16 |
           static_cast<std::uint32_t>(bytes[3]) << 24;
}

void
writeU32Le(std::string &out, std::uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xFFu));
    out.push_back(static_cast<char>((value >> 8) & 0xFFu));
    out.push_back(static_cast<char>((value >> 16) & 0xFFu));
    out.push_back(static_cast<char>((value >> 24) & 0xFFu));
}

/**
 * Cap on one record's payload: a length field above this is garbage
 * (a torn header read as length), not a real record.
 */
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

} // namespace

WalReadResult
readWal(const std::string &path)
{
    WalReadResult result;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return result; // no log yet: empty
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(raw.data());
    std::uint64_t offset = 0;
    while (offset + kWalFrameHeaderBytes <= raw.size()) {
        const std::uint32_t length = readU32Le(bytes + offset);
        const std::uint32_t crc = readU32Le(bytes + offset + 4);
        if (length > kMaxRecordBytes)
            break; // garbage header
        const std::uint64_t end =
            offset + kWalFrameHeaderBytes + length;
        if (end > raw.size())
            break; // torn: payload cut short
        std::string payload =
            raw.substr(offset + kWalFrameHeaderBytes, length);
        if (crc32(payload) != crc)
            break; // corrupt payload
        result.records.push_back(std::move(payload));
        offset = end;
    }
    result.validBytes = offset;
    result.tornTail = offset < raw.size();
    return result;
}

WalWriter::WalWriter(const std::string &path, std::uint64_t offset)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) {
        RAP_FATAL("cannot open WAL '", path,
                  "': ", std::strerror(errno));
    }
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
        RAP_FATAL("cannot truncate WAL '", path,
                  "' to ", offset, " bytes: ", std::strerror(errno));
    }
    if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
        RAP_FATAL("cannot seek WAL '", path,
                  "': ", std::strerror(errno));
    }
    size_ = offset;
}

WalWriter::~WalWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
WalWriter::append(const std::string &payload)
{
    RAP_ASSERT(payload.size() <= kMaxRecordBytes,
               "WAL record too large: ", payload.size(), " bytes");
    std::string frame;
    frame.reserve(kWalFrameHeaderBytes + payload.size());
    writeU32Le(frame, static_cast<std::uint32_t>(payload.size()));
    writeU32Le(frame, crc32(payload));
    frame += payload;
    // One write(2) per frame: either the whole frame reaches the
    // kernel or the call fails — a short write on a regular file only
    // happens on ENOSPC-class errors, which are fatal here anyway.
    std::size_t written = 0;
    while (written < frame.size()) {
        const ssize_t n = ::write(fd_, frame.data() + written,
                                  frame.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            RAP_FATAL("WAL append to '", path_,
                      "' failed: ", std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
    size_ += frame.size();
}

void
WalWriter::sync()
{
    if (::fsync(fd_) != 0) {
        RAP_FATAL("WAL fsync of '", path_,
                  "' failed: ", std::strerror(errno));
    }
}

void
WalWriter::reset()
{
    if (::ftruncate(fd_, 0) != 0) {
        RAP_FATAL("WAL reset of '", path_,
                  "' failed: ", std::strerror(errno));
    }
    if (::lseek(fd_, 0, SEEK_SET) < 0) {
        RAP_FATAL("cannot seek WAL '", path_,
                  "': ", std::strerror(errno));
    }
    size_ = 0;
}

} // namespace rap::ctrl
