/**
 * @file
 * Structural diff between two replayed catalog states, rendered as a
 * deterministic multi-line report (`catalog_dump --diff` and the
 * golden test consume it byte-for-byte).
 *
 * The diff is structural, not textual: it walks the record families —
 * genesis, jobs, placements, manifests — and reports what diverged in
 * catalog terms ("job 3: status \"running\" | \"finished\"") instead
 * of dumping two JSON blobs side by side. Records are compared by
 * their deterministic serialization, so "identical" means
 * byte-identical durable content.
 */

#ifndef RAP_CTRL_DIFF_HPP
#define RAP_CTRL_DIFF_HPP

#include <string>

#include "ctrl/catalog.hpp"

namespace rap::ctrl {

/**
 * @return A deterministic line-based report of every structural
 * difference between @p left and @p right, or the empty string when
 * the states are identical.
 */
std::string diffCatalogStates(const CatalogState &left,
                              const CatalogState &right);

} // namespace rap::ctrl

#endif // RAP_CTRL_DIFF_HPP
