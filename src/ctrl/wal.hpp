/**
 * @file
 * The append-only write-ahead log under the fleet catalog.
 *
 * Record framing is fixed and self-describing:
 *
 *   [u32 length LE][u32 crc32(payload) LE][payload bytes]
 *
 * A record is valid only when its full frame is on disk and the
 * payload checksum matches. The scanner distinguishes two kinds of
 * damage, because they demand opposite responses:
 *
 *  - a *torn tail*: the final frame is cut short (header or payload
 *    ends past EOF). That is what a crash mid-append leaves — appends
 *    are sequential, a torn write persists a prefix — so the valid
 *    prefix is intact and the tail is safe to truncate.
 *  - *corruption*: a frame that is fully present but wrong — checksum
 *    mismatch, or a complete header whose length field is garbage.
 *    No crash writes that; it is bit rot or foreign writes, it can sit
 *    anywhere in the log, and truncating it would silently discard
 *    every committed record after it. It surfaces as a structured
 *    verdict (offset, frame index, reason) for the opener to refuse
 *    or explicitly salvage.
 *
 * readWal also reports per-frame health (offset, claimed length,
 * checksum verdict) so `catalog_dump --scan` can show an operator a
 * damaged log without loading it.
 *
 * WalWriter writes each frame through common/io's File layer — short
 * writes healed, EINTR retried forever, transient EIO retried within
 * a bounded budget of deterministic virtual backoff — and reports
 * anything past the budget as a structured IoError instead of
 * aborting, so the catalog above can degrade gracefully when the
 * disk actually dies.
 */

#ifndef RAP_CTRL_WAL_HPP
#define RAP_CTRL_WAL_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io.hpp"

namespace rap::ctrl {

/** Bytes every frame spends on its length + checksum header. */
inline constexpr std::size_t kWalFrameHeaderBytes = 8;

/** Health record for one scanned frame (valid or not). */
struct WalFrameInfo
{
    /** File offset of the frame header. */
    std::uint64_t offset = 0;
    /** Length field as read (claimed payload bytes). */
    std::uint32_t length = 0;
    /** Stored checksum field. */
    std::uint32_t crcStored = 0;
    /** True when the whole frame fits before EOF. */
    bool complete = false;
    /** True when the payload checksum matches (complete frames only). */
    bool crcOk = false;
};

/** Result of scanning a WAL file. */
struct WalReadResult
{
    /** Payloads of every valid record, in append order. */
    std::vector<std::string> records;
    /** File offset just past the last valid frame. */
    std::uint64_t validBytes = 0;
    /** True when the final frame was cut short (truncatable). */
    bool tornTail = false;
    /** True when a fully-present frame is damaged (NOT truncatable). */
    bool corruptMidLog = false;
    /** First bad frame: offset, ordinal, and a human reason. */
    std::uint64_t badFrameOffset = 0;
    std::uint64_t badFrameIndex = 0;
    std::string badReason;
    /** Per-frame health, including the bad frame (scan support). */
    std::vector<WalFrameInfo> frames;

    bool damaged() const { return tornTail || corruptMidLog; }
};

/**
 * Scan @p path (missing file = empty log). Never mutates the file;
 * the catalog decides whether a reported torn tail is truncated or a
 * corrupt frame is refused/salvaged. @p io is the optional
 * fault-injection context (null = plain POSIX).
 */
WalReadResult readWal(const std::string &path,
                      io::IoContext *io = nullptr);

/** Appends CRC-framed records to one WAL file. */
class WalWriter
{
  public:
    /**
     * Open @p path for appending at @p offset (the valid prefix
     * length from readWal); the file is created when missing and
     * truncated to @p offset first, discarding any torn tail.
     * @return nullptr with @p error filled when the disk refuses even
     * the retried open/truncate.
     */
    static std::unique_ptr<WalWriter>
    tryOpen(const std::string &path, std::uint64_t offset,
            io::IoContext *io, const io::IoRetryPolicy &retry,
            std::string *error);

    /** tryOpen with plain POSIX I/O; fatal on failure (test helper). */
    WalWriter(const std::string &path, std::uint64_t offset);

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;

    /**
     * Frame @p payload and write it through, healing short writes and
     * retrying transient errors within the retry budget. On failure
     * the log may hold a torn frame — the next scan truncates it.
     */
    [[nodiscard]] io::IoStatus append(const std::string &payload);

    /** fsync the log (the durability point of a commit), with retry. */
    [[nodiscard]] io::IoStatus sync();

    /** Discard every record (compaction: the snapshot covers them). */
    [[nodiscard]] io::IoStatus reset();

    /** @return Bytes currently in the log. */
    std::uint64_t sizeBytes() const { return size_; }

    /** Retry/give-up tallies accumulated by this writer. */
    const io::IoStats &ioStats() const { return ioStats_; }

  private:
    WalWriter(std::string path, std::unique_ptr<io::File> file,
              io::IoRetryPolicy retry, std::uint64_t offset);

    std::string path_;
    std::unique_ptr<io::File> file_;
    io::IoRetryPolicy retry_;
    io::IoStats ioStats_;
    std::uint64_t size_ = 0;
};

} // namespace rap::ctrl

#endif // RAP_CTRL_WAL_HPP
