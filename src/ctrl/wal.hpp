/**
 * @file
 * The append-only write-ahead log under the fleet catalog.
 *
 * Record framing is fixed and self-describing:
 *
 *   [u32 length LE][u32 crc32(payload) LE][payload bytes]
 *
 * A record is valid only when its full frame is on disk and the
 * payload checksum matches. Reading stops at the first frame that is
 * torn (header or payload cut short by a crash) or corrupt (checksum
 * mismatch); everything before that point is intact — appends are
 * sequential, so a crash can only damage the tail. readWal reports the
 * byte offset of the last valid frame so the opener can truncate the
 * torn tail and continue appending from a clean end.
 *
 * WalWriter writes each frame with a single write(2) straight to the
 * file descriptor — no user-space buffering — so a record handed to
 * append() is in the kernel when append() returns, and on the platter
 * after sync() (the fsync-on-commit knob). Abandoning the process
 * without running destructors loses nothing that append() accepted.
 */

#ifndef RAP_CTRL_WAL_HPP
#define RAP_CTRL_WAL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rap::ctrl {

/** Bytes every frame spends on its length + checksum header. */
inline constexpr std::size_t kWalFrameHeaderBytes = 8;

/** Result of scanning a WAL file. */
struct WalReadResult
{
    /** Payloads of every valid record, in append order. */
    std::vector<std::string> records;
    /** File offset just past the last valid frame. */
    std::uint64_t validBytes = 0;
    /** True when trailing bytes past validBytes were torn/corrupt. */
    bool tornTail = false;
};

/**
 * Scan @p path (missing file = empty log). Never mutates the file;
 * the catalog decides whether to truncate a reported torn tail.
 */
WalReadResult readWal(const std::string &path);

/** Appends CRC-framed records to one WAL file. */
class WalWriter
{
  public:
    /**
     * Open @p path for appending at @p offset (the valid prefix
     * length from readWal); the file is created when missing and
     * truncated to @p offset first, discarding any torn tail. Fatal
     * on I/O errors.
     */
    WalWriter(const std::string &path, std::uint64_t offset);

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;
    ~WalWriter();

    /** Frame @p payload and write it through; fatal on I/O errors. */
    void append(const std::string &payload);

    /** fsync the log (the durability point of a commit). */
    void sync();

    /** Discard every record (compaction: the snapshot now covers them). */
    void reset();

    /** @return Bytes currently in the log. */
    std::uint64_t sizeBytes() const { return size_; }

  private:
    std::string path_;
    int fd_ = -1;
    std::uint64_t size_ = 0;
};

} // namespace rap::ctrl

#endif // RAP_CTRL_WAL_HPP
