/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * ranges — the integrity check framing every WAL record. Table-driven,
 * no hardware dependence, byte-order independent: the checksum of a
 * record is identical on every platform, so catalogs are portable.
 */

#ifndef RAP_CTRL_CRC32_HPP
#define RAP_CTRL_CRC32_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace rap::ctrl {

/** @return CRC-32 of @p size bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t size);

/** @return CRC-32 of a byte string. */
inline std::uint32_t
crc32(const std::string &bytes)
{
    return crc32(bytes.data(), bytes.size());
}

} // namespace rap::ctrl

#endif // RAP_CTRL_CRC32_HPP
