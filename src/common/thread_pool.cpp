#include "common/thread_pool.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/log.hpp"

namespace rap {

namespace {

/** Set while a pool worker (or a participating caller) runs tasks of
 *  the given pool; nested loops on the same pool run inline. */
thread_local const ThreadPool *current_pool = nullptr;

} // namespace

/** One parallelFor invocation: an index space claimed atomically. */
struct ThreadPool::Batch
{
    std::size_t n = 0;
    std::size_t next = 0;      // guarded by the pool mutex
    std::size_t completed = 0; // guarded by the pool mutex
    const std::function<void(std::size_t)> *body = nullptr;
    std::vector<std::exception_ptr> errors; // slot per index
};

struct ThreadPool::State
{
    std::mutex mutex;
    std::condition_variable wake; // workers: new batch or shutdown
    std::condition_variable done; // callers: batch completed
    std::deque<std::shared_ptr<Batch>> queue;
    std::vector<std::thread> workers;
    bool stop = false;
};

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads)
{
    threadCount_ = threads <= 0 ? hardwareThreads() : threads;
    if (threadCount_ == 1)
        return;
    state_ = new State();
    state_->workers.reserve(static_cast<std::size_t>(threadCount_));
    for (int t = 0; t < threadCount_; ++t)
        state_->workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    if (state_ == nullptr)
        return;
    {
        std::lock_guard<std::mutex> guard(state_->mutex);
        RAP_ASSERT(state_->queue.empty(),
                   "thread pool destroyed with pending batches");
        state_->stop = true;
    }
    state_->wake.notify_all();
    for (auto &worker : state_->workers)
        worker.join();
    delete state_;
}

void
ThreadPool::workerLoop()
{
    current_pool = this;
    std::unique_lock<std::mutex> lock(state_->mutex);
    for (;;) {
        state_->wake.wait(lock, [this] {
            return state_->stop || !state_->queue.empty();
        });
        if (state_->stop)
            return;
        auto batch = state_->queue.front();
        while (batch->next < batch->n) {
            const std::size_t i = batch->next++;
            lock.unlock();
            try {
                (*batch->body)(i);
            } catch (...) {
                batch->errors[i] = std::current_exception();
            }
            lock.lock();
            if (++batch->completed == batch->n)
                state_->done.notify_all();
        }
        if (!state_->queue.empty() && state_->queue.front() == batch)
            state_->queue.pop_front();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    // Inline paths: trivial loops, serial pools, and nested calls from
    // a worker of this pool (blocking a worker on its own pool could
    // deadlock once every worker does it).
    if (n <= 1 || state_ == nullptr || current_pool == this) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->body = &body;
    batch->errors.resize(n);

    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->queue.push_back(batch);
    state_->wake.notify_all();

    // The caller participates until the index space is claimed, then
    // waits for stragglers.
    const ThreadPool *previous_pool = current_pool;
    current_pool = this;
    while (batch->next < batch->n) {
        const std::size_t i = batch->next++;
        lock.unlock();
        try {
            body(i);
        } catch (...) {
            batch->errors[i] = std::current_exception();
        }
        lock.lock();
        if (++batch->completed == batch->n)
            state_->done.notify_all();
    }
    if (!state_->queue.empty() && state_->queue.front() == batch)
        state_->queue.pop_front();
    state_->done.wait(lock, [&] { return batch->completed == batch->n; });
    current_pool = previous_pool;
    lock.unlock();

    for (auto &error : batch->errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

} // namespace rap
