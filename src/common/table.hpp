/**
 * @file
 * ASCII table printer used by benchmark harnesses to emit paper-style
 * tables and figure series on stdout.
 */

#ifndef RAP_COMMON_TABLE_HPP
#define RAP_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace rap {

/**
 * A simple left/right aligned ASCII table with a header row.
 *
 * Usage:
 * @code
 *   AsciiTable t({"plan", "throughput"});
 *   t.addRow({"Plan 0", "10.9M/s"});
 *   std::cout << t.render();
 * @endcode
 */
class AsciiTable
{
  public:
    /** Construct with the header labels; column count is fixed from it. */
    explicit AsciiTable(std::vector<std::string> header);

    /** Append one data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** @return The rendered table, including a trailing newline. */
    std::string render() const;

    /** @return Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rap

#endif // RAP_COMMON_TABLE_HPP
