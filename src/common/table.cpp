#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hpp"

namespace rap {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    RAP_ASSERT(!header_.empty(), "table needs at least one column");
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    RAP_ASSERT(row.size() == header_.size(),
               "row arity ", row.size(), " != header arity ",
               header_.size());
    rows_.push_back(std::move(row));
}

std::string
AsciiTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
AsciiTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](std::ostringstream &oss,
                       const std::vector<std::string> &row) {
        oss << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << " " << row[c]
                << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        oss << "\n";
    };

    std::ostringstream oss;
    std::string rule = "+";
    for (std::size_t w : widths)
        rule += std::string(w + 2, '-') + "+";
    rule += "\n";

    oss << rule;
    emitRow(oss, header_);
    oss << rule;
    for (const auto &row : rows_)
        emitRow(oss, row);
    oss << rule;
    return oss.str();
}

} // namespace rap
