/**
 * @file
 * A minimal JSON value type with a deterministic writer and a strict
 * parser.
 *
 * Serialization is the single source of truth for every machine-read
 * artifact the repo emits (RunReport / FleetReport snapshots, the
 * observability metrics export): objects preserve insertion order,
 * doubles render via std::to_chars shortest round-trip, and there is
 * no locale or platform dependence — equal values always serialize to
 * byte-identical text, which is what lets CI diff JSON artifacts
 * across thread counts.
 */

#ifndef RAP_COMMON_JSON_HPP
#define RAP_COMMON_JSON_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rap {

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * One JSON value (null / bool / number / string / array / object).
 *
 * Objects keep keys in insertion order; set() replaces an existing
 * key in place so re-serialization stays stable.
 */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), number_(v) {}
    Json(int v) : Json(static_cast<double>(v)) {}
    Json(std::int64_t v) : Json(static_cast<double>(v)) {}
    Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(const char *s) : Json(std::string(s)) {}

    /** @return An empty array value. */
    static Json array();

    /** @return An empty object value. */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const;
    double asDouble() const;
    const std::string &asString() const;

    /** Array: append one element. */
    void push(Json value);

    /** Object: set @p key (replacing in place when present). */
    void set(const std::string &key, Json value);

    /** @return Array/object element count (0 for scalars). */
    std::size_t size() const;

    /** Array: element @p i (panics when out of range). */
    const Json &at(std::size_t i) const;

    /** Object: value of @p key, or nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** Object: value of @p key (panics when absent). */
    const Json &at(const std::string &key) const;

    /** Object: members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Array: elements in order. */
    const std::vector<Json> &elements() const;

    /**
     * Serialize deterministically. @p indent < 0 renders compact
     * single-line JSON; >= 0 pretty-prints with that many spaces per
     * nesting level (and a trailing newline at top level when pretty).
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse @p text strictly (one value, whole input consumed). On
     * failure returns null and stores a message in @p error when
     * non-null.
     */
    static Json parse(const std::string &text,
                      std::string *error = nullptr);

  private:
    void write(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

/** Read a whole file into a Json value; fatal on I/O or parse error. */
Json readJsonFile(const std::string &path);

/** Write @p value to @p path (pretty, indent 2); fatal on I/O error. */
void writeJsonFile(const Json &value, const std::string &path);

} // namespace rap

#endif // RAP_COMMON_JSON_HPP
