/**
 * @file
 * Logging and error-reporting primitives for the RAP library.
 *
 * Follows the gem5 convention: fatal() reports an unrecoverable *user*
 * error (bad configuration, invalid arguments) and exits with status 1;
 * panic() reports an internal invariant violation (a library bug) and
 * aborts so a core dump or debugger can be attached.
 */

#ifndef RAP_COMMON_LOG_HPP
#define RAP_COMMON_LOG_HPP

#include <sstream>
#include <string>

namespace rap {

/** Severity levels for runtime log messages. */
enum class LogLevel {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4,
};

/**
 * Set the global minimum severity that will be emitted.
 *
 * @param level Messages below this level are suppressed.
 */
void setLogLevel(LogLevel level);

/** @return The current global minimum severity. */
LogLevel logLevel();

namespace detail {

/** Emit one formatted log line to stderr if @p level is enabled. */
void logMessage(LogLevel level, const std::string &msg);

/** Terminate due to a user-level configuration error (exit code 1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate due to an internal invariant violation (abort). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Log at Debug severity; arguments are streamed together. */
template <typename... Args>
void
logDebug(Args &&...args)
{
    detail::logMessage(LogLevel::Debug,
                       detail::concat(std::forward<Args>(args)...));
}

/** Log at Info severity; arguments are streamed together. */
template <typename... Args>
void
logInfo(Args &&...args)
{
    detail::logMessage(LogLevel::Info,
                       detail::concat(std::forward<Args>(args)...));
}

/** Log at Warn severity; arguments are streamed together. */
template <typename... Args>
void
logWarn(Args &&...args)
{
    detail::logMessage(LogLevel::Warn,
                       detail::concat(std::forward<Args>(args)...));
}

/** Log at Error severity; arguments are streamed together. */
template <typename... Args>
void
logError(Args &&...args)
{
    detail::logMessage(LogLevel::Error,
                       detail::concat(std::forward<Args>(args)...));
}

} // namespace rap

/**
 * Report an unrecoverable user error (bad configuration or arguments)
 * and exit with status 1.
 */
#define RAP_FATAL(...)                                                       \
    ::rap::detail::fatalImpl(__FILE__, __LINE__,                             \
                             ::rap::detail::concat(__VA_ARGS__))

/** Report an internal invariant violation (a RAP bug) and abort. */
#define RAP_PANIC(...)                                                       \
    ::rap::detail::panicImpl(__FILE__, __LINE__,                             \
                             ::rap::detail::concat(__VA_ARGS__))

/** Check an internal invariant; panics with the condition text on failure. */
#define RAP_ASSERT(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::rap::detail::panicImpl(                                        \
                __FILE__, __LINE__,                                          \
                ::rap::detail::concat("assertion failed: " #cond " ",       \
                                      ##__VA_ARGS__));                       \
        }                                                                    \
    } while (0)

#endif // RAP_COMMON_LOG_HPP
