/**
 * @file
 * Unit conventions and human-readable formatting.
 *
 * All simulator times are plain doubles in seconds, data volumes are
 * doubles in bytes, and bandwidths are bytes/second. Using doubles keeps
 * the discrete-event math simple; the helpers here document intent.
 */

#ifndef RAP_COMMON_UNITS_HPP
#define RAP_COMMON_UNITS_HPP

#include <string>

namespace rap {

/** Simulated time in seconds. */
using Seconds = double;

/** Data volume in bytes. */
using Bytes = double;

/** Bandwidth in bytes per second. */
using BytesPerSecond = double;

constexpr Seconds operator"" _us(long double v)
{
    return static_cast<Seconds>(v) * 1e-6;
}

constexpr Seconds operator"" _ms(long double v)
{
    return static_cast<Seconds>(v) * 1e-3;
}

constexpr Bytes operator"" _KiB(long double v)
{
    return static_cast<Bytes>(v) * 1024.0;
}

constexpr Bytes operator"" _MiB(long double v)
{
    return static_cast<Bytes>(v) * 1024.0 * 1024.0;
}

constexpr Bytes operator"" _GiB(long double v)
{
    return static_cast<Bytes>(v) * 1024.0 * 1024.0 * 1024.0;
}

/** Format a duration with an auto-selected unit, e.g. "3.21 ms". */
std::string formatSeconds(Seconds t);

/** Format a byte count with an auto-selected unit, e.g. "54.0 MiB". */
std::string formatBytes(Bytes b);

/** Format a rate (items/s) with K/M/G suffixes, e.g. "10.9M". */
std::string formatRate(double per_second);

} // namespace rap

#endif // RAP_COMMON_UNITS_HPP
