/**
 * @file
 * A fixed-size task pool with a deterministic parallel-for/map API.
 *
 * The offline planning phase (capacity profiling, per-GPU fusion
 * planning, the RAP mapping search, co-run scheduling) is
 * embarrassingly parallel across GPUs, but plans and reports must not
 * depend on the thread count: serial and parallel runs of the same
 * configuration must be bit-identical. The pool guarantees this by
 * construction — every task writes into its own submission-indexed
 * slot and reductions happen on the calling thread in submission
 * order, so the interleaving of workers is never observable as long as
 * the tasks themselves are independent.
 *
 * Determinism contract:
 *  - parallelMap returns results in submission (index) order;
 *  - exceptions are delivered as the serial loop would deliver the
 *    first one: the lowest-index exception is rethrown (later tasks
 *    may still have run, unlike the serial loop — tasks must not rely
 *    on earlier indices having failed);
 *  - nested parallelFor calls on the same pool degrade to serial
 *    inline execution on the worker thread, which keeps the pool
 *    deadlock-free without a work-stealing scheduler.
 */

#ifndef RAP_COMMON_THREAD_POOL_HPP
#define RAP_COMMON_THREAD_POOL_HPP

#include <cstddef>
#include <functional>
#include <vector>

namespace rap {

/**
 * Fixed-size worker pool executing index-space loops.
 *
 * A pool of size 1 (or a null pool pointer at call sites that take
 * one) never spawns threads and runs every loop inline — the serial
 * reference behaviour the determinism tests compare against.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 picks hardwareThreads(). A value
     *        of 1 creates no threads (inline execution).
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return Worker count this pool was sized to. */
    int threadCount() const { return threadCount_; }

    /** @return The hardware concurrency (at least 1). */
    static int hardwareThreads();

    /**
     * Run @p body(i) for every i in [0, n), blocking until all
     * complete. The calling thread participates. If any task throws,
     * the exception of the lowest index is rethrown after the loop
     * drains.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Map [0, n) through @p body and return the results in index
     * order, independent of execution interleaving.
     */
    template <typename R>
    std::vector<R>
    parallelMap(std::size_t n,
                const std::function<R(std::size_t)> &body)
    {
        std::vector<R> results(n);
        parallelFor(n, [&](std::size_t i) { results[i] = body(i); });
        return results;
    }

  private:
    struct Batch;
    struct State;

    void workerLoop();

    int threadCount_ = 1;
    State *state_ = nullptr; // pimpl: keeps <thread> out of the header
};

} // namespace rap

#endif // RAP_COMMON_THREAD_POOL_HPP
