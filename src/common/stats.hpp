/**
 * @file
 * Small statistics helpers used by the simulator traces and benchmarks.
 */

#ifndef RAP_COMMON_STATS_HPP
#define RAP_COMMON_STATS_HPP

#include <cstddef>
#include <vector>

namespace rap {

/**
 * Online mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

    /** @return Number of observations. */
    std::size_t count() const { return count_; }

    /** @return Arithmetic mean, or 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** @return Unbiased sample variance, or 0 when fewer than 2 samples. */
    double variance() const;

    /** @return Sample standard deviation (sqrt of variance()). */
    double stddev() const;

    /** @return Smallest observation, or +inf when empty. */
    double min() const { return min_; }

    /** @return Largest observation, or -inf when empty. */
    double max() const { return max_; }

    /** @return Sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    bool any_ = false;
};

/**
 * Compute the q-th percentile (0 <= q <= 100) of a sample set by linear
 * interpolation over the sorted samples (rank = q/100 * (n-1), the
 * NumPy "linear" convention). The input vector is copied; the original
 * order is kept. q=0 and q=100 return the exact minimum and maximum —
 * the interior rank never extrapolates past either end.
 *
 * @return 0 when the sample set is empty.
 */
double percentile(std::vector<double> samples, double q);

/** @return The median (50th percentile) of @p samples. */
double p50(std::vector<double> samples);

/** @return The 95th percentile of @p samples. */
double p95(std::vector<double> samples);

/** @return The 99th percentile (tail latency) of @p samples. */
double p99(std::vector<double> samples);

/** @return Geometric mean of strictly positive samples, or 0 when empty. */
double geoMean(const std::vector<double> &samples);

} // namespace rap

#endif // RAP_COMMON_STATS_HPP
