/**
 * @file
 * Bounded lock-free queues shared by the parallel DES engine
 * (sim/engine.hpp) and the streaming ingest front-end (src/ingest).
 *
 * Two flavours:
 *
 *  - SpscQueue: the classic Lamport single-producer/single-consumer
 *    ring. Wait-free on both sides; one producer thread, one consumer
 *    thread, nothing shared but the two indices.
 *  - MpscQueue: a Vyukov-style bounded multi-producer/single-consumer
 *    ring with per-slot sequence numbers. The engine gives every time
 *    zone one MpscQueue inbox, so Z zones cost O(Z) rings instead of
 *    the O(Z^2) an SPSC grid would need at thousand-GPU scale.
 *
 * Both are fixed-capacity (power of two) and fail the push when full —
 * callers own the overflow policy. Consumers needing a stable order
 * across producers must re-sort on a key carried in T; both current
 * users do (the engine re-sorts inbox messages at window barriers, the
 * ingest stager k-way-merges per-stream rings on the event key).
 */

#ifndef RAP_COMMON_LOCKFREE_QUEUE_HPP
#define RAP_COMMON_LOCKFREE_QUEUE_HPP

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace rap {

/** @return True when @p n is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Bounded single-producer/single-consumer ring buffer.
 *
 * Exactly one thread may call tryPush and exactly one thread may call
 * tryPop; the two may run concurrently. Elements move through the
 * ring in FIFO order.
 */
template <typename T>
class SpscQueue
{
  public:
    /** @param capacity Slot count; must be a power of two. */
    explicit SpscQueue(std::size_t capacity)
        : slots_(capacity), mask_(capacity - 1)
    {
        RAP_ASSERT(isPowerOfTwo(capacity),
                   "SPSC capacity must be a power of two, got ",
                   capacity);
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** @return False when the ring is full (item untouched). */
    bool
    tryPush(T &&item)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head - tail > mask_)
            return false; // full
        slots_[head & mask_] = std::move(item);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** @return False when the ring is empty. */
    bool
    tryPop(T &out)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        if (tail == head)
            return false; // empty
        out = std::move(slots_[tail & mask_]);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    std::size_t capacity() const { return mask_ + 1; }

    /** @return Approximate occupancy (exact when quiescent). */
    std::size_t
    size() const
    {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

  private:
    std::vector<T> slots_;
    std::size_t mask_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

/**
 * Bounded multi-producer/single-consumer ring (Vyukov bounded queue).
 *
 * Any number of threads may call tryPush concurrently; exactly one
 * thread may call tryPop. Per-producer FIFO order is preserved; the
 * interleaving across producers is whatever the race produced, so
 * consumers needing a stable order must re-sort on a key carried in T.
 */
template <typename T>
class MpscQueue
{
  public:
    /** @param capacity Slot count; must be a power of two. */
    explicit MpscQueue(std::size_t capacity)
        : slots_(capacity), mask_(capacity - 1)
    {
        RAP_ASSERT(isPowerOfTwo(capacity),
                   "MPSC capacity must be a power of two, got ",
                   capacity);
        for (std::size_t i = 0; i < capacity; ++i)
            slots_[i].sequence.store(i, std::memory_order_relaxed);
    }

    MpscQueue(const MpscQueue &) = delete;
    MpscQueue &operator=(const MpscQueue &) = delete;

    /** @return False when the ring is full (item untouched). */
    bool
    tryPush(T &&item)
    {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[pos & mask_];
            const std::size_t seq =
                slot.sequence.load(std::memory_order_acquire);
            const std::ptrdiff_t diff =
                static_cast<std::ptrdiff_t>(seq) -
                static_cast<std::ptrdiff_t>(pos);
            if (diff == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                return false; // full
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        Slot &slot = slots_[pos & mask_];
        slot.value = std::move(item);
        slot.sequence.store(pos + 1, std::memory_order_release);
        return true;
    }

    /** @return False when the ring is empty. */
    bool
    tryPop(T &out)
    {
        const std::size_t pos = tail_;
        Slot &slot = slots_[pos & mask_];
        const std::size_t seq =
            slot.sequence.load(std::memory_order_acquire);
        const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                    static_cast<std::ptrdiff_t>(pos + 1);
        if (diff < 0)
            return false; // empty (or producer mid-write)
        out = std::move(slot.value);
        slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
        tail_ = pos + 1;
        return true;
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    struct Slot
    {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    std::vector<Slot> slots_;
    std::size_t mask_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::size_t tail_ = 0;
};

} // namespace rap

#endif // RAP_COMMON_LOCKFREE_QUEUE_HPP
