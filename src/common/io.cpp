#include "common/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hpp"

namespace rap::io {

std::string
ioOpName(IoOp op)
{
    switch (op) {
      case IoOp::Open: return "open";
      case IoOp::Read: return "read";
      case IoOp::Write: return "write";
      case IoOp::Sync: return "sync";
      case IoOp::Truncate: return "truncate";
      case IoOp::Seek: return "seek";
    }
    RAP_PANIC("unknown IoOp ", static_cast<int>(op));
}

bool
IoError::retryable() const
{
    // EINTR is always worth another attempt; EIO may be a transient
    // path failure. ENOSPC / EDQUOT only clear when space frees —
    // retrying inside one operation is noise.
    return errnum == EINTR || errnum == EIO || errnum == EAGAIN;
}

std::string
IoError::message() const
{
    return ioOpName(op) + " '" + path + "' failed at byte " +
           std::to_string(offset) + ": " + std::strerror(errnum) +
           (injected ? " (injected)" : "");
}

bool
IoFaultSchedule::enabled() const
{
    return shortWriteRate > 0.0 || eintrRate > 0.0 ||
           transientEioRate > 0.0 || enospcAfterBytes > 0 ||
           syncFailRate > 0.0;
}

namespace {

/** The real thing: raw descriptors with EINTR-safe syscall loops. */
class PosixFile final : public File
{
  public:
    PosixFile(std::string path, int fd)
        : path_(std::move(path)), fd_(fd)
    {
    }

    ~PosixFile() override
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    std::int64_t
    write(const char *data, std::size_t size, IoError *error) override
    {
        for (;;) {
            const ssize_t n = ::write(fd_, data, size);
            if (n >= 0) {
                offset_ += static_cast<std::uint64_t>(n);
                return n;
            }
            if (errno == EINTR)
                continue; // a signal is not an I/O failure
            fill(error, IoOp::Write);
            return -1;
        }
    }

    std::int64_t
    read(char *data, std::size_t size, IoError *error) override
    {
        for (;;) {
            const ssize_t n = ::read(fd_, data, size);
            if (n >= 0) {
                offset_ += static_cast<std::uint64_t>(n);
                return n;
            }
            if (errno == EINTR)
                continue;
            fill(error, IoOp::Read);
            return -1;
        }
    }

    IoStatus
    sync() override
    {
        while (::fsync(fd_) != 0) {
            if (errno == EINTR)
                continue;
            IoError error;
            fill(&error, IoOp::Sync);
            return IoStatus::fail(std::move(error));
        }
        return IoStatus::success();
    }

    IoStatus
    truncate(std::uint64_t size) override
    {
        while (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
            if (errno == EINTR)
                continue;
            IoError error;
            fill(&error, IoOp::Truncate);
            return IoStatus::fail(std::move(error));
        }
        return seek(size);
    }

    IoStatus
    seek(std::uint64_t offset) override
    {
        if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
            IoError error;
            fill(&error, IoOp::Seek);
            return IoStatus::fail(std::move(error));
        }
        offset_ = offset;
        return IoStatus::success();
    }

    const std::string &path() const override { return path_; }

  private:
    void
    fill(IoError *error, IoOp op) const
    {
        if (error == nullptr)
            return;
        error->op = op;
        error->path = path_;
        error->errnum = errno;
        error->offset = offset_;
        error->injected = false;
    }

    std::string path_;
    int fd_ = -1;
    std::uint64_t offset_ = 0;
};

} // namespace

/**
 * Decorator injecting the shared IoContext schedule's faults ahead of
 * the real operation. Draws are consumed in operation order from the
 * context's single stream, so a fixed call sequence sees a fixed
 * fault sequence.
 */
class FaultyFile final : public File
{
  public:
    FaultyFile(std::unique_ptr<File> inner, IoContext *context)
        : inner_(std::move(inner)), context_(context)
    {
    }

    std::int64_t
    write(const char *data, std::size_t size, IoError *error) override
    {
        auto &state = context_->state_;
        const auto &schedule = context_->schedule_;
        if (armed(state)) {
            if (popPending(state.pendingEintr)) {
                inject(error, IoOp::Write, EINTR);
                return -1;
            }
            if (popPending(state.pendingEio)) {
                inject(error, IoOp::Write, EIO);
                return -1;
            }
            if (schedule.enospcAfterBytes > 0 &&
                state.bytesWritten + size > schedule.enospcAfterBytes) {
                // Partial acceptance up to the budget, like a real
                // filling disk: the torn frame this leaves is exactly
                // what recovery must cope with.
                const std::uint64_t room =
                    schedule.enospcAfterBytes > state.bytesWritten
                        ? schedule.enospcAfterBytes - state.bytesWritten
                        : 0;
                if (room > 0) {
                    const auto n = inner_->write(
                        data, static_cast<std::size_t>(room), error);
                    if (n > 0) {
                        state.bytesWritten +=
                            static_cast<std::uint64_t>(n);
                        return n;
                    }
                }
                inject(error, IoOp::Write, ENOSPC);
                return -1;
            }
            if (schedule.eintrRate > 0.0 &&
                state.rng.bernoulli(schedule.eintrRate)) {
                state.pendingEintr =
                    std::max(0, schedule.eintrBurst - 1);
                inject(error, IoOp::Write, EINTR);
                return -1;
            }
            if (schedule.transientEioRate > 0.0 &&
                state.rng.bernoulli(schedule.transientEioRate)) {
                state.pendingEio =
                    std::max(0, schedule.transientEioBurst - 1);
                inject(error, IoOp::Write, EIO);
                return -1;
            }
            if (schedule.shortWriteRate > 0.0 && size > 1 &&
                state.rng.bernoulli(schedule.shortWriteRate)) {
                // Cut to a seeded strict prefix; the caller's
                // writeFully loop must come back for the rest.
                const auto cut = static_cast<std::size_t>(
                    state.rng.uniformInt(
                        1, static_cast<std::int64_t>(size) - 1));
                ++state.injected;
                const auto n = inner_->write(data, cut, error);
                if (n > 0)
                    state.bytesWritten += static_cast<std::uint64_t>(n);
                return n;
            }
        }
        const auto n = inner_->write(data, size, error);
        if (n > 0)
            state.bytesWritten += static_cast<std::uint64_t>(n);
        return n;
    }

    std::int64_t
    read(char *data, std::size_t size, IoError *error) override
    {
        auto &state = context_->state_;
        const auto &schedule = context_->schedule_;
        if (armed(state)) {
            if (popPending(state.pendingEintr)) {
                inject(error, IoOp::Read, EINTR);
                return -1;
            }
            if (schedule.eintrRate > 0.0 &&
                state.rng.bernoulli(schedule.eintrRate)) {
                state.pendingEintr =
                    std::max(0, schedule.eintrBurst - 1);
                inject(error, IoOp::Read, EINTR);
                return -1;
            }
        }
        return inner_->read(data, size, error);
    }

    IoStatus
    sync() override
    {
        auto &state = context_->state_;
        const auto &schedule = context_->schedule_;
        if (armed(state)) {
            IoError error;
            if (popPending(state.pendingSyncFail)) {
                inject(&error, IoOp::Sync, EIO);
                return IoStatus::fail(std::move(error));
            }
            if (schedule.syncFailRate > 0.0 &&
                state.rng.bernoulli(schedule.syncFailRate)) {
                state.pendingSyncFail =
                    std::max(0, schedule.syncFailBurst - 1);
                inject(&error, IoOp::Sync, EIO);
                return IoStatus::fail(std::move(error));
            }
        }
        return inner_->sync();
    }

    IoStatus
    truncate(std::uint64_t size) override
    {
        // Truncation frees budgeted bytes (the WAL reset after a
        // compaction must un-fill the modelled disk).
        auto &state = context_->state_;
        state.ops += 1;
        if (state.bytesWritten > size)
            state.bytesWritten = size;
        return inner_->truncate(size);
    }

    IoStatus
    seek(std::uint64_t offset) override
    {
        return inner_->seek(offset);
    }

    const std::string &path() const override { return inner_->path(); }

  private:
    /** Count the op; @return true once armAfterOps ops have passed. */
    bool
    armed(IoContext::FaultState &state)
    {
        state.ops += 1;
        return state.ops > context_->schedule_.armAfterOps;
    }

    static bool
    popPending(int &pending)
    {
        if (pending <= 0)
            return false;
        --pending;
        return true;
    }

    void
    inject(IoError *error, IoOp op, int errnum)
    {
        ++context_->state_.injected;
        if (error == nullptr)
            return;
        error->op = op;
        error->path = inner_->path();
        error->errnum = errnum;
        error->offset = context_->state_.bytesWritten;
        error->injected = true;
    }

    std::unique_ptr<File> inner_;
    IoContext *context_;
};

IoContext::IoContext(IoFaultSchedule schedule)
    : schedule_(schedule)
{
    state_.rng = Rng(schedule_.seed);
}

std::unique_ptr<File>
IoContext::open(const std::string &path, OpenMode mode, IoError *error)
{
    auto file = openPosixFile(path, mode, error);
    if (file == nullptr || !schedule_.enabled())
        return file;
    return std::make_unique<FaultyFile>(std::move(file), this);
}

std::unique_ptr<File>
openPosixFile(const std::string &path, OpenMode mode, IoError *error)
{
    int flags = O_CLOEXEC;
    switch (mode) {
      case OpenMode::ReadWrite:
        flags |= O_RDWR | O_CREAT;
        break;
      case OpenMode::Truncate:
        flags |= O_RDWR | O_CREAT | O_TRUNC;
        break;
      case OpenMode::ReadOnly:
        flags |= O_RDONLY;
        break;
    }
    int fd = -1;
    do {
        fd = ::open(path.c_str(), flags, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        if (error != nullptr) {
            error->op = IoOp::Open;
            error->path = path;
            error->errnum = errno;
            error->offset = 0;
            error->injected = false;
        }
        return nullptr;
    }
    return std::make_unique<PosixFile>(path, fd);
}

std::unique_ptr<File>
openFile(IoContext *context, const std::string &path, OpenMode mode,
         IoError *error)
{
    if (context != nullptr)
        return context->open(path, mode, error);
    return openPosixFile(path, mode, error);
}

namespace {

/** Capped exponential virtual backoff before retry @p attempt. */
double
backoffBefore(const IoRetryPolicy &policy, int attempt)
{
    double backoff = policy.backoffBase;
    for (int k = 1; k < attempt; ++k) {
        backoff *= 2.0;
        if (backoff >= policy.backoffCap)
            return policy.backoffCap;
    }
    return std::min(backoff, policy.backoffCap);
}

void
countRetry(IoStats *stats, const IoRetryPolicy &policy, int attempt)
{
    if (stats == nullptr)
        return;
    ++stats->retries;
    stats->virtualBackoffSeconds += backoffBefore(policy, attempt);
}

} // namespace

IoStatus
writeFully(File &file, const char *data, std::size_t size,
           const IoRetryPolicy &policy, IoStats *stats)
{
    std::size_t written = 0;
    int attempts = 0;
    while (written < size) {
        IoError error;
        const auto n =
            file.write(data + written, size - written, &error);
        if (n > 0) {
            written += static_cast<std::size_t>(n);
            attempts = 0; // progress resets the transient budget
            continue;
        }
        if (n == 0) {
            // A zero-byte write on a regular file is a stall, not an
            // error; treat it like a retryable short write.
            error.op = IoOp::Write;
            error.path = file.path();
            error.errnum = EAGAIN;
            error.offset = written;
        }
        if (error.errnum == EINTR) {
            // Signals retry for free, forever: EINTR is delivery
            // timing, not storage health.
            countRetry(stats, policy, 1);
            continue;
        }
        ++attempts;
        if (!error.retryable() || attempts >= policy.maxAttempts) {
            if (stats != nullptr)
                ++stats->gaveUp;
            return IoStatus::fail(std::move(error));
        }
        countRetry(stats, policy, attempts);
    }
    return IoStatus::success();
}

IoStatus
syncFully(File &file, const IoRetryPolicy &policy, IoStats *stats)
{
    for (int attempts = 1;; ++attempts) {
        auto status = file.sync();
        if (status.ok())
            return status;
        if (status.error->errnum == EINTR) {
            countRetry(stats, policy, 1);
            continue;
        }
        if (!status.error->retryable() ||
            attempts >= policy.maxAttempts) {
            if (stats != nullptr)
                ++stats->gaveUp;
            return status;
        }
        countRetry(stats, policy, attempts);
    }
}

IoStatus
readFileBytes(IoContext *context, const std::string &path,
              std::string *out)
{
    out->clear();
    IoError error;
    auto file = openFile(context, path, OpenMode::ReadOnly, &error);
    if (file == nullptr)
        return IoStatus::fail(std::move(error));
    char buffer[1 << 16];
    for (;;) {
        const auto n = file->read(buffer, sizeof(buffer), &error);
        if (n < 0) {
            if (error.errnum == EINTR || error.errnum == EIO ||
                error.errnum == EAGAIN) {
                // Reads sit on the recovery path: be patient with
                // anything that might clear — a retry here costs
                // nothing and salvages the scan.
                continue;
            }
            return IoStatus::fail(std::move(error));
        }
        if (n == 0)
            return IoStatus::success();
        out->append(buffer, static_cast<std::size_t>(n));
    }
}

std::uint64_t
fileSizeBytes(const std::string &path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

bool
truncateFileTo(const std::string &path, std::uint64_t size)
{
    if (fileSizeBytes(path) < size)
        return false;
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    return !ec;
}

bool
flipByteAt(const std::string &path, std::uint64_t offset,
           unsigned char mask)
{
    if (offset >= fileSizeBytes(path) || mask == 0)
        return false;
    IoError error;
    auto file = openPosixFile(path, OpenMode::ReadWrite, &error);
    if (file == nullptr || !file->seek(offset).ok())
        return false;
    char byte = 0;
    if (file->read(&byte, 1, &error) != 1)
        return false;
    byte = static_cast<char>(static_cast<unsigned char>(byte) ^ mask);
    if (!file->seek(offset).ok())
        return false;
    return file->write(&byte, 1, &error) == 1;
}

bool
duplicateTailBytes(const std::string &path, std::uint64_t bytes)
{
    const auto size = fileSizeBytes(path);
    if (bytes == 0 || bytes > size)
        return false;
    std::string raw;
    if (!readFileBytes(nullptr, path, &raw).ok())
        return false;
    const std::string tail =
        raw.substr(raw.size() - static_cast<std::size_t>(bytes));
    IoError error;
    auto file = openPosixFile(path, OpenMode::ReadWrite, &error);
    if (file == nullptr || !file->seek(size).ok())
        return false;
    IoRetryPolicy policy;
    return writeFully(*file, tail.data(), tail.size(), policy, nullptr)
        .ok();
}

} // namespace rap::io
