/**
 * @file
 * Shared helpers for the JsonSerializable round-trip convention
 * (documented in core/serial.hpp, which layers the checkable concept
 * on top). They live in common so every module that serializes —
 * obs's metrics snapshot, sim's hardware specs, core and fleet
 * reports, the ctrl catalog — writes the same dialect:
 *
 *  - a leading `schema` version token, stamped by stampSchema and
 *    checked by requireSchema (absent passes for pre-convention
 *    artifacts; a mismatch is fatal);
 *  - optional fields as explicit null, read back with the find()-based
 *    getters so absent and null both mean "never measured"
 *    (std::nullopt) — never a fabricated zero, never a fatal at().
 */

#ifndef RAP_COMMON_SERIAL_HPP
#define RAP_COMMON_SERIAL_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "common/json.hpp"
#include "common/log.hpp"

namespace rap::serial {

/** Stamp @p token as the object's leading `schema` member. */
inline void
stampSchema(Json &json, const char *token)
{
    json.set("schema", Json(token));
}

/**
 * Check the object's `schema` member against @p token. Absent tokens
 * pass (pre-convention artifacts); mismatched tokens are fatal.
 */
inline void
requireSchema(const Json &json, const char *token)
{
    if (!json.isObject())
        RAP_FATAL(token, " payload must be a JSON object");
    const Json *schema = json.find("schema");
    if (schema != nullptr && schema->asString() != token) {
        RAP_FATAL("expected schema '", token, "', found '",
                  schema->asString(), "'");
    }
}

/** Absent-tolerant optional read: missing or null -> nullopt. */
inline std::optional<double>
getOptionalNumber(const Json &json, const std::string &key)
{
    const Json *value = json.find(key);
    if (value == nullptr || value->isNull())
        return std::nullopt;
    return value->asDouble();
}

/** Write an optional as its value or explicit null. */
inline void
setOptionalNumber(Json &json, const std::string &key,
                  const std::optional<double> &value)
{
    json.set(key, value ? Json(*value) : Json());
}

/** Required numeric reads with the integral casts spelled once. */
inline double
getNumber(const Json &json, const std::string &key)
{
    return json.at(key).asDouble();
}

inline int
getInt(const Json &json, const std::string &key)
{
    return static_cast<int>(json.at(key).asDouble());
}

inline std::int64_t
getInt64(const Json &json, const std::string &key)
{
    return static_cast<std::int64_t>(json.at(key).asDouble());
}

inline std::uint64_t
getUint64(const Json &json, const std::string &key)
{
    return static_cast<std::uint64_t>(json.at(key).asDouble());
}

} // namespace rap::serial

#endif // RAP_COMMON_SERIAL_HPP
