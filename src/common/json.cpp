#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace rap {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/**
 * Shortest round-trip rendering of a double. Integral values inside
 * the exactly-representable range print without an exponent or
 * fractional part so snapshots stay human-readable.
 */
std::string
formatNumber(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "null"; // JSON has no non-finite numbers
    if (v == 0.0)
        return "0"; // covers -0.0: a sign bit is not worth a diff
    constexpr double kExactInt = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && std::fabs(v) < kExactInt) {
        char buf[32];
        const auto res = std::to_chars(
            buf, buf + sizeof(buf), static_cast<long long>(v));
        return std::string(buf, res.ptr);
    }
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    RAP_ASSERT(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

double
Json::asDouble() const
{
    RAP_ASSERT(type_ == Type::Number, "JSON value is not a number");
    return number_;
}

const std::string &
Json::asString() const
{
    RAP_ASSERT(type_ == Type::String, "JSON value is not a string");
    return string_;
}

void
Json::push(Json value)
{
    RAP_ASSERT(type_ == Type::Array, "push on a non-array JSON value");
    array_.push_back(std::move(value));
}

void
Json::set(const std::string &key, Json value)
{
    RAP_ASSERT(type_ == Type::Object, "set on a non-object JSON value");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    RAP_ASSERT(type_ == Type::Array, "index into a non-array");
    RAP_ASSERT(i < array_.size(), "JSON array index out of range");
    return array_[i];
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &member : object_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *value = find(key);
    RAP_ASSERT(value != nullptr, "missing JSON object key: ", key);
    return *value;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    RAP_ASSERT(type_ == Type::Object, "members of a non-object");
    return object_;
}

const std::vector<Json> &
Json::elements() const
{
    RAP_ASSERT(type_ == Type::Array, "elements of a non-array");
    return array_;
}

void
Json::write(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (!pretty)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (type_) {
      case Type::Null: out += "null"; return;
      case Type::Bool: out += bool_ ? "true" : "false"; return;
      case Type::Number: out += formatNumber(number_); return;
      case Type::String:
        out += '"';
        out += jsonEscape(string_);
        out += '"';
        return;
      case Type::Array: {
        if (array_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            array_[i].write(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        return;
      }
      case Type::Object: {
        if (object_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += jsonEscape(object_[i].first);
            out += pretty ? "\": " : "\":";
            object_[i].second.write(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        return;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    if (indent >= 0)
        out += '\n';
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    Json
    parse(std::string *error)
    {
        Json value;
        if (!parseValue(value) ||
            (skipSpace(), pos_ != text_.size())) {
            if (error != nullptr) {
                *error = error_.empty()
                             ? "trailing characters at offset " +
                                   std::to_string(pos_)
                             : error_;
            }
            return Json();
        }
        return value;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (error_.empty()) {
            error_ = message + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    parseLiteral(const char *word, Json value, Json &out)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out = std::move(value);
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // The repo's artifacts are ASCII; encode BMP points
                // as UTF-8 without surrogate handling.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Json &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == 'n')
            return parseLiteral("null", Json(), out);
        if (c == 't')
            return parseLiteral("true", Json(true), out);
        if (c == 'f')
            return parseLiteral("false", Json(false), out);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos_;
            out = Json::array();
            skipSpace();
            if (consume(']'))
                return true;
            while (true) {
                Json element;
                if (!parseValue(element))
                    return false;
                out.push(std::move(element));
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos_;
            out = Json::object();
            skipSpace();
            if (consume('}'))
                return true;
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json value;
                if (!parseValue(value))
                    return false;
                out.set(key, std::move(value));
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return fail("expected ',' or '}'");
            }
        }
        // Number.
        double value = 0.0;
        const char *begin = text_.data() + pos_;
        const char *end = text_.data() + text_.size();
        const auto res = std::from_chars(begin, end, value);
        if (res.ec != std::errc())
            return fail("invalid number");
        pos_ += static_cast<std::size_t>(res.ptr - begin);
        out = Json(value);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    return Parser(text).parse(error);
}

Json
readJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        RAP_FATAL("cannot open JSON file: ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    std::string error;
    Json value = Json::parse(oss.str(), &error);
    if (!error.empty())
        RAP_FATAL("invalid JSON in ", path, ": ", error);
    return value;
}

void
writeJsonFile(const Json &value, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        RAP_FATAL("cannot open JSON output file: ", path);
    out << value.dump(2);
    if (!out)
        RAP_FATAL("failed writing JSON output file: ", path);
}

} // namespace rap
