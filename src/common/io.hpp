/**
 * @file
 * Durable-path I/O with deterministic storage-fault injection.
 *
 * Every byte the control plane persists — the catalog WAL, snapshot
 * compactions, the ingest spill log — flows through the File
 * abstraction here instead of raw syscalls. PosixFile is the real
 * thing (EINTR-safe at every syscall); FaultyFile is a decorator that
 * injects the partial failures production storage actually produces —
 * short writes, EINTR storms, transient EIO, ENOSPC once a byte
 * budget is spent, fsync failure — from a seeded IoFaultSchedule, so
 * every chaos scenario is reproducible from (schedule, seed) alone,
 * exactly the way sim/fault.hpp reproduces device faults.
 *
 * Failures are values, not aborts: operations return an IoStatus
 * carrying a structured IoError (operation, path, errno, offset).
 * writeFully / syncFully layer a bounded retry policy on top — EINTR
 * always retries, transient EIO retries with capped exponential
 * *virtual* backoff (a deterministic accumulator, never a sleep),
 * ENOSPC-class errors give up immediately — and count retries /
 * give-ups into a caller-owned IoStats the durable layers mirror into
 * their obs counters (`ctrl.io.retries`, `ctrl.io.gave_up`).
 *
 * The chaos helpers at the bottom mutate files at rest (truncate a
 * tail, flip a byte, duplicate trailing bytes): the post-crash damage
 * a torn sector or bit rot leaves, applied deterministically by the
 * recovery soak.
 */

#ifndef RAP_COMMON_IO_HPP
#define RAP_COMMON_IO_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"

namespace rap::io {

/** Which operation an IoError came from. */
enum class IoOp {
    Open,
    Read,
    Write,
    Sync,
    Truncate,
    Seek,
};

/** @return Stable lowercase token ("write") for logs and tests. */
std::string ioOpName(IoOp op);

/** One structured I/O failure. */
struct IoError
{
    IoOp op = IoOp::Write;
    /** File the operation targeted. */
    std::string path;
    /** errno value (EIO, ENOSPC, EINTR, ...). */
    int errnum = 0;
    /** Byte offset the operation had reached when it failed. */
    std::uint64_t offset = 0;
    /** True when a FaultyFile injected this error. */
    bool injected = false;

    /** @return True for errors a bounded retry may clear (EINTR/EIO). */
    bool retryable() const;

    /** @return "write '<path>' failed at byte N: <strerror>". */
    std::string message() const;
};

/** Outcome of one I/O operation: ok() or a structured error. */
struct IoStatus
{
    std::optional<IoError> error;

    bool ok() const { return !error.has_value(); }

    static IoStatus success() { return {}; }
    static IoStatus fail(IoError e) { return {std::move(e)}; }
};

/**
 * Minimal file handle the durable layers write through. write() has
 * POSIX short-write semantics on purpose — the fault decorator cuts
 * writes short below the retry loop, which is what makes short-write
 * healing testable.
 */
class File
{
  public:
    virtual ~File() = default;

    /**
     * Write up to @p size bytes at the current offset.
     * @return Bytes written (possibly < size), or -1 with @p error
     * filled.
     */
    virtual std::int64_t write(const char *data, std::size_t size,
                               IoError *error) = 0;

    /**
     * Read up to @p size bytes at the current offset.
     * @return Bytes read (0 = EOF), or -1 with @p error filled.
     */
    virtual std::int64_t read(char *data, std::size_t size,
                              IoError *error) = 0;

    /** Flush to stable storage. */
    virtual IoStatus sync() = 0;

    /** Truncate to @p size bytes and seek there. */
    virtual IoStatus truncate(std::uint64_t size) = 0;

    /** Seek the read/write offset. */
    virtual IoStatus seek(std::uint64_t offset) = 0;

    virtual const std::string &path() const = 0;
};

/** How File::open treats existing bytes. */
enum class OpenMode {
    /** Read/write, created when missing, existing bytes kept. */
    ReadWrite,
    /** Read/write, created when missing, truncated to empty. */
    Truncate,
    /** Read-only; missing file is an Open error. */
    ReadOnly,
};

/**
 * Deterministic storage-fault schedule. All rates are per-operation
 * probabilities drawn from one seeded stream in operation order, so
 * equal (schedule, operation sequence) pairs inject equal faults at
 * any thread count. Zero-initialised = inject nothing.
 */
struct IoFaultSchedule
{
    /** Seed of the per-operation fault draws. */
    std::uint64_t seed = 0x10fa015ULL;
    /**
     * Operations to pass through cleanly before any fault fires —
     * arms the schedule at a chosen commit point.
     */
    std::uint64_t armAfterOps = 0;
    /** Probability a write is cut short (at a seeded fraction). */
    double shortWriteRate = 0.0;
    /** Probability an op fails EINTR; storms burst this many times. */
    double eintrRate = 0.0;
    int eintrBurst = 1;
    /** Probability an op fails transient EIO, bursting this long. */
    double transientEioRate = 0.0;
    int transientEioBurst = 1;
    /**
     * Disk-full model: total bytes accepted across every file sharing
     * the IoContext before writes fail ENOSPC (0 = unlimited).
     */
    std::uint64_t enospcAfterBytes = 0;
    /** Probability an fsync fails EIO, bursting this long. */
    double syncFailRate = 0.0;
    int syncFailBurst = 1;

    /** @return True when any fault can ever fire. */
    bool enabled() const;
};

/** Retry budget for transient failures on durable paths. */
struct IoRetryPolicy
{
    /** Attempts per operation (EINTR retries do not consume these). */
    int maxAttempts = 4;
    /** Virtual backoff before retry k: base * 2^(k-1), capped. */
    double backoffBase = 1e-3;
    double backoffCap = 50e-3;
};

/** Caller-owned tallies the retry helpers update. */
struct IoStats
{
    /** Operations re-attempted after a retryable failure. */
    std::uint64_t retries = 0;
    /** Operations abandoned past the retry budget. */
    std::uint64_t gaveUp = 0;
    /** Deterministic virtual seconds spent backing off (never slept). */
    double virtualBackoffSeconds = 0.0;
};

/**
 * Shared I/O environment: opens files, and when a fault schedule is
 * set, wraps them in FaultyFile decorators sharing one seeded draw
 * stream and one ENOSPC byte budget — "one failing disk", not one
 * failing file. Not thread-safe; durable paths are single-writer.
 */
class IoContext
{
  public:
    IoContext() = default;
    explicit IoContext(IoFaultSchedule schedule);

    IoContext(const IoContext &) = delete;
    IoContext &operator=(const IoContext &) = delete;

    /**
     * Open @p path. On failure returns nullptr with @p error filled
     * (when non-null). The returned file must not outlive the context.
     */
    std::unique_ptr<File> open(const std::string &path, OpenMode mode,
                               IoError *error = nullptr);

    const IoFaultSchedule &schedule() const { return schedule_; }

    /** Total faults injected so far (chaos-bench accounting). */
    std::uint64_t injectedFaults() const { return state_.injected; }

    /** Bytes accepted against the ENOSPC budget so far. */
    std::uint64_t bytesWritten() const { return state_.bytesWritten; }

  private:
    friend class FaultyFile;

    /** Mutable draw/budget state shared by every decorated file. */
    struct FaultState
    {
        Rng rng{0};
        std::uint64_t ops = 0;
        std::uint64_t bytesWritten = 0;
        std::uint64_t injected = 0;
        int pendingEintr = 0;
        int pendingEio = 0;
        int pendingSyncFail = 0;
    };

    IoFaultSchedule schedule_;
    FaultState state_;
};

/**
 * Open @p path without an IoContext: a plain PosixFile (EINTR-safe,
 * no injection). The default for production call sites.
 */
std::unique_ptr<File> openPosixFile(const std::string &path,
                                    OpenMode mode,
                                    IoError *error = nullptr);

/**
 * Open through @p context when non-null, else plain POSIX — the
 * one-liner every durable layer uses.
 */
std::unique_ptr<File> openFile(IoContext *context,
                               const std::string &path, OpenMode mode,
                               IoError *error = nullptr);

/**
 * Write all of @p size bytes, healing short writes, retrying EINTR
 * unconditionally and transient EIO within @p policy's budget
 * (virtual backoff only). ENOSPC-class errors fail immediately —
 * retrying a full disk is noise. @p stats may be null.
 */
IoStatus writeFully(File &file, const char *data, std::size_t size,
                    const IoRetryPolicy &policy, IoStats *stats);

/** sync() with the same retry semantics as writeFully. */
IoStatus syncFully(File &file, const IoRetryPolicy &policy,
                   IoStats *stats);

/**
 * Read the whole file into @p out (EINTR-safe). Missing file is an
 * Open error; the caller decides whether that is fatal.
 */
IoStatus readFileBytes(IoContext *context, const std::string &path,
                       std::string *out);

// ---------------------------------------------------------- chaos
//
// At-rest mutations modelling post-crash damage. All return false
// (untouched) when the file is too small for the request.

/** @return Size of @p path in bytes, or 0 when missing. */
std::uint64_t fileSizeBytes(const std::string &path);

/** Truncate @p path to @p size bytes. */
bool truncateFileTo(const std::string &path, std::uint64_t size);

/** XOR the byte at @p offset with @p mask (default flips bit 6). */
bool flipByteAt(const std::string &path, std::uint64_t offset,
                unsigned char mask = 0x40);

/** Append a copy of the final @p bytes bytes (a replayed tail). */
bool duplicateTailBytes(const std::string &path, std::uint64_t bytes);

} // namespace rap::io

#endif // RAP_COMMON_IO_HPP
