/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All randomness in RAP flows through Rng so that every experiment is
 * reproducible from a single seed. The generator is xoshiro256**, seeded
 * via SplitMix64 as recommended by its authors.
 */

#ifndef RAP_COMMON_RNG_HPP
#define RAP_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace rap {

/**
 * A small, fast, deterministic pseudo-random generator (xoshiro256**).
 *
 * Satisfies the essentials of UniformRandomBitGenerator so it can also be
 * plugged into standard distributions if ever needed, but ships its own
 * distribution helpers to guarantee cross-platform determinism.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** @return The next raw 64-bit value. */
    std::uint64_t next();

    /** Alias for next() so Rng models UniformRandomBitGenerator. */
    result_type operator()() { return next(); }

    /** @return Uniform double in [0, 1). */
    double uniform();

    /** @return Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return Standard normal variate (Box-Muller, deterministic). */
    double normal();

    /** @return Normal variate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** @return Log-normal variate with underlying N(mu, sigma). */
    double logNormal(double mu, double sigma);

    /** @return True with probability @p p. */
    bool bernoulli(double p);

    /**
     * Sample from a Zipf distribution over {0, ..., n-1}.
     *
     * Uses rejection-inversion (Hörmann) so it stays O(1) even for the
     * hundred-million-row hash spaces of the Criteo Terabyte preset.
     *
     * @param n Support size (must be >= 1).
     * @param alpha Skew parameter (> 0); larger means more skewed.
     */
    std::int64_t zipf(std::int64_t n, double alpha);

    /** Fork an independent child stream (for per-column generators). */
    Rng fork();

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            auto j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    bool haveSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

/**
 * Inverse-transform exponential interarrival gap with mean @p mean,
 * hardened for event-stream synthesis: computed as -mean * log1p(-u)
 * so a uniform draw of exactly 0 yields a zero (not infinite or NaN)
 * raw gap, then floored at mean * 1e-9 so no draw can produce a zero
 * or denormal gap that a cumulative arrival clock would absorb —
 * collapsing two events onto one timestamp. The result is always
 * strictly positive and finite for u in [0, 1).
 */
double exponentialGap(double u, double mean);

} // namespace rap

#endif // RAP_COMMON_RNG_HPP
