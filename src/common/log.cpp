#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace rap {

namespace {

std::atomic<LogLevel> global_level{LogLevel::Warn};
std::mutex log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Silent: return "SILENT";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

namespace detail {

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < global_level.load(std::memory_order_relaxed))
        return;
    // Format the whole line first, then emit it as one write under
    // the mutex: concurrent loggers (the planning pool, fleet jobs)
    // must never interleave fragments of two lines.
    std::string line;
    line.reserve(msg.size() + 16);
    line += "[rap:";
    line += levelName(level);
    line += "] ";
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> guard(log_mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[rap:FATAL] %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[rap:PANIC] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

} // namespace detail
} // namespace rap
