#include "common/rng.hpp"

#include <cmath>

#include "common/log.hpp"

namespace rap {

namespace {

/** SplitMix64 step used to expand a single seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    RAP_ASSERT(lo <= hi, "uniformInt requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = (~0ULL) - ((~0ULL) % span) - 1;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw > limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (haveSpareNormal_) {
        haveSpareNormal_ = false;
        return spareNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpareNormal_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::int64_t
Rng::zipf(std::int64_t n, double alpha)
{
    RAP_ASSERT(n >= 1, "zipf support size must be >= 1");
    RAP_ASSERT(alpha > 0.0, "zipf skew must be > 0");
    if (n == 1)
        return 0;

    // Rejection-inversion sampling (Hörmann, 1996) over ranks 1..n.
    const double nd = static_cast<double>(n);
    auto h = [alpha](double x) {
        if (std::abs(alpha - 1.0) < 1e-12)
            return std::log(x);
        return (std::pow(x, 1.0 - alpha) - 1.0) / (1.0 - alpha);
    };
    auto hInv = [alpha](double x) {
        if (std::abs(alpha - 1.0) < 1e-12)
            return std::exp(x);
        return std::pow(1.0 + x * (1.0 - alpha), 1.0 / (1.0 - alpha));
    };

    const double hx0 = h(0.5) - 1.0;
    const double hn = h(nd + 0.5);
    for (;;) {
        const double u = hx0 + uniform() * (hn - hx0);
        const double x = hInv(u);
        const double k = std::floor(x + 0.5);
        const double clamped = std::min(std::max(k, 1.0), nd);
        if (u >= h(clamped + 0.5) - std::pow(clamped, -alpha))
            return static_cast<std::int64_t>(clamped) - 1;
    }
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

double
exponentialGap(double u, double mean)
{
    RAP_ASSERT(mean > 0.0, "exponential gap needs a positive mean");
    RAP_ASSERT(u >= 0.0 && u < 1.0,
               "exponential gap needs a uniform draw in [0, 1)");
    // log1p(-u) is exact near u = 0 and finite for every u < 1, so the
    // raw gap is in [0, ~37 * mean] for 53-bit uniforms — never inf.
    const double gap = -mean * std::log1p(-u);
    return std::max(gap, mean * 1e-9);
}

} // namespace rap
