#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace rap {

namespace {

std::string
formatWithUnit(double value, const char *unit)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g %s", value, unit);
    return buf;
}

} // namespace

std::string
formatSeconds(Seconds t)
{
    const double at = std::fabs(t);
    if (at >= 1.0)
        return formatWithUnit(t, "s");
    if (at >= 1e-3)
        return formatWithUnit(t * 1e3, "ms");
    if (at >= 1e-6)
        return formatWithUnit(t * 1e6, "us");
    return formatWithUnit(t * 1e9, "ns");
}

std::string
formatBytes(Bytes b)
{
    const double ab = std::fabs(b);
    if (ab >= 1024.0 * 1024.0 * 1024.0)
        return formatWithUnit(b / (1024.0 * 1024.0 * 1024.0), "GiB");
    if (ab >= 1024.0 * 1024.0)
        return formatWithUnit(b / (1024.0 * 1024.0), "MiB");
    if (ab >= 1024.0)
        return formatWithUnit(b / 1024.0, "KiB");
    return formatWithUnit(b, "B");
}

std::string
formatRate(double per_second)
{
    const double ar = std::fabs(per_second);
    if (ar >= 1e9)
        return formatWithUnit(per_second / 1e9, "G/s");
    if (ar >= 1e6)
        return formatWithUnit(per_second / 1e6, "M/s");
    if (ar >= 1e3)
        return formatWithUnit(per_second / 1e3, "K/s");
    return formatWithUnit(per_second, "/s");
}

} // namespace rap
