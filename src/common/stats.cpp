#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"

namespace rap {

void
RunningStat::add(double x)
{
    if (!any_) {
        min_ = max_ = x;
        any_ = true;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    // Unbiased (Bessel-corrected) sample variance: callers report the
    // spread of small benchmark sample sets, not of full populations.
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> samples, double q)
{
    RAP_ASSERT(q >= 0.0 && q <= 100.0, "percentile q out of range");
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const auto n = samples.size();
    const double rank = q / 100.0 * static_cast<double>(n - 1);
    // Floating-point q/100 can land the rank a hair above an exact
    // integer (0.95 * 20 rounds to 19.000000000000004), so the index
    // pair is clamped to the sample range instead of trusting ceil()
    // to stay inside it — the nearest-rank variant this replaced read
    // one element past the intended rank on exactly these inputs.
    auto lo = static_cast<std::size_t>(std::floor(rank));
    auto hi = static_cast<std::size_t>(std::ceil(rank));
    lo = std::min(lo, n - 1);
    hi = std::min(hi, n - 1);
    if (lo == hi)
        return samples[lo];
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
p50(std::vector<double> samples)
{
    return percentile(std::move(samples), 50.0);
}

double
p95(std::vector<double> samples)
{
    return percentile(std::move(samples), 95.0);
}

double
p99(std::vector<double> samples)
{
    return percentile(std::move(samples), 99.0);
}

double
geoMean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : samples) {
        RAP_ASSERT(s > 0.0, "geoMean requires positive samples");
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

} // namespace rap
