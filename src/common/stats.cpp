#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"

namespace rap {

void
RunningStat::add(double x)
{
    if (!any_) {
        min_ = max_ = x;
        any_ = true;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    // Unbiased (Bessel-corrected) sample variance: callers report the
    // spread of small benchmark sample sets, not of full populations.
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    RAP_ASSERT(q >= 0.0 && q <= 100.0, "percentile q out of range");
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
geoMean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : samples) {
        RAP_ASSERT(s > 0.0, "geoMean requires positive samples");
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

} // namespace rap
