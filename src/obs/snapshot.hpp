/**
 * @file
 * MetricRegistry exporters: the deterministic JSON snapshot (the
 * `--metrics` artifact CI diffs and schema-checks) and a CSV dump of
 * the recorded time-series.
 *
 * Snapshot schema ("rap.metrics.v1", mirrored in
 * schemas/metrics.schema.json and enforced by tools/validate_metrics):
 *
 *   {"schema": "rap.metrics.v1",
 *    "counters":   [{"name", "labels", "value"}...],
 *    "gauges":     [{"name", "labels", "value"}...],
 *    "histograms": [{"name", "labels", "edges", "counts",
 *                    "count", "sum"}...],
 *    "series":     [{"name", "labels", "points": [[x, y]...]}...],
 *    "spans":      [{"name", "labels", "count", "maxDepth",
 *                    "simSeconds", ("wallSeconds")?}...]}
 *
 * Entries are ordered by (name, rendered labels); spans are aggregated
 * per (name, labels). Wall-clock durations are emitted only when
 * SnapshotOptions::includeWallTime is set — the default snapshot
 * contains only simulation-derived and count-derived values, which is
 * what makes `--jobs 1` and `--jobs 4` runs byte-identical.
 */

#ifndef RAP_OBS_SNAPSHOT_HPP
#define RAP_OBS_SNAPSHOT_HPP

#include <string>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace rap::obs {

/** Snapshot knobs. */
struct SnapshotOptions
{
    /**
     * Include aggregate wall-clock span durations. Off by default:
     * wall time is not reproducible, so it never belongs in an
     * artifact that CI diffs.
     */
    bool includeWallTime = false;
};

/** @return The snapshot as a Json document (schema above). */
Json snapshotJson(const MetricRegistry &registry,
                  SnapshotOptions options = {});

/** Render snapshotJson as pretty-printed text. */
std::string renderSnapshot(const MetricRegistry &registry,
                           SnapshotOptions options = {});

/** Write the snapshot to @p path; fatal on I/O failure. */
void writeSnapshot(const MetricRegistry &registry,
                   const std::string &path,
                   SnapshotOptions options = {});

/**
 * @return The recorded series as CSV text with header
 *         `name,labels,x,y`, one row per point, series ordered by
 *         (name, labels) and points in recording order.
 */
std::string seriesCsv(const MetricRegistry &registry);

/** Write seriesCsv to @p path; fatal on I/O failure. */
void writeSeriesCsv(const MetricRegistry &registry,
                    const std::string &path);

} // namespace rap::obs

#endif // RAP_OBS_SNAPSHOT_HPP
