/**
 * @file
 * The unified observability layer: a per-run metric registry plus
 * RAII span scopes (obs/span.hpp) and exporters (obs/snapshot.hpp).
 *
 * Every run (a single-job simulation, a fleet schedule, one bench
 * sweep) owns its own MetricRegistry — there are no globals, so the
 * fleet scheduler's memoised inner simulations stay byte-identical no
 * matter what the outer run records. Instruments identify themselves
 * by (name, labels), e.g. `sim.device.kernels{gpu=3}`.
 *
 * Hot-path cost: Counter::inc and Histogram::observe are wait-free —
 * each thread updates its own cache-line-padded shard (a relaxed
 * fetch_add; no mutex, no CAS retry against other threads on the
 * counter path), and shards are folded only at snapshot time. The
 * streaming ingest producers put metric updates on their emit path,
 * which is what forced the mutex out; every bench's worker threads
 * benefit the same way.
 *
 * Determinism contract (what lets CI diff snapshots across --jobs):
 *  - counters are unsigned integers and gauges taking max/set are
 *    order-insensitive, so concurrent recording from thread-pool
 *    workers still sums/maxes to the same value;
 *  - one histogram or series instance must only be fed from a single
 *    logical strand (the simulation thread, or one sweep point): its
 *    double accumulations then happen in program order within one
 *    shard, and the shard fold adds the other shards' exact zeros.
 *    Sweep benches get this by scoping instruments with a per-point
 *    `run=` label;
 *  - wall-clock quantities (span durations) are recorded but NEVER
 *    enter the deterministic snapshot unless explicitly requested
 *    (SnapshotOptions::includeWallTime).
 * Exporters sort instruments by (name, labels), so registry creation
 * order — which does vary across thread interleavings — is never
 * observable.
 */

#ifndef RAP_OBS_METRICS_HPP
#define RAP_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rap::obs {

/**
 * Shard count for wait-free Counter/Histogram updates. Threads are
 * assigned shard slots round-robin at first use; two threads may
 * share a slot (updates stay atomic, they just contend on the line),
 * so this bounds memory per instrument, not the thread count.
 */
inline constexpr std::size_t kMetricShards = 16;

/** @return The calling thread's shard slot in [0, kMetricShards). */
std::size_t threadMetricShard();

/**
 * Instrument labels: key-value pairs, kept sorted by key so equal
 * label sets compare and render identically regardless of the order
 * call sites listed them in.
 */
class Labels
{
  public:
    Labels() = default;
    Labels(std::initializer_list<std::pair<std::string, std::string>>
               pairs);

    /** Add (or replace) one label. */
    void set(const std::string &key, std::string value);

    bool empty() const { return pairs_.empty(); }
    const std::vector<std::pair<std::string, std::string>> &
    pairs() const
    {
        return pairs_;
    }

    /** @return "{a=1,b=2}" ("" when empty); the canonical key form. */
    std::string render() const;

    bool operator==(const Labels &other) const = default;
    auto operator<=>(const Labels &other) const = default;

  private:
    std::vector<std::pair<std::string, std::string>> pairs_;
};

/**
 * Monotonic unsigned counter. inc() is wait-free (one relaxed
 * fetch_add on the calling thread's shard); value() folds the shards
 * in slot order. Addition commutes, so concurrent increments from any
 * number of threads sum to the same total.
 */
class Counter
{
  public:
    void inc(std::uint64_t delta = 1)
    {
        shards_[threadMetricShard()].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const auto &shard : shards_)
            total += shard.value.load(std::memory_order_relaxed);
        return total;
    }

  private:
    struct Shard
    {
        alignas(64) std::atomic<std::uint64_t> value{0};
    };
    std::array<Shard, kMetricShards> shards_;
};

/** Last-written double value (set from one strand at a time). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    /** Raise to @p v when larger (commutes; worker-safe). */
    void max(double v)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i < edges.size() counts observations
 * with edges[i-1] <= v < edges[i] (bucket 0: v < edges[0]); the last
 * bucket counts v >= edges.back(). Edges are fixed at creation so
 * snapshots from different runs line up bucket-for-bucket.
 *
 * observe() is wait-free with respect to other threads: it touches
 * only the calling thread's shard (relaxed fetch_add per bucket and
 * count, a CAS loop on the shard-local sum that can only retry
 * against a slot-sharing thread). Accessors fold the shards in slot
 * order and return by value. Under the single-strand determinism
 * contract every observation lands in one shard, so the fold adds
 * exact zeros and reproduces the program-order sum bit-for-bit.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> edges);

    void observe(double v);

    const std::vector<double> &edges() const { return edges_; }
    /** @return Folded per-bucket counts (edges.size() + 1 entries). */
    std::vector<std::uint64_t> bucketCounts() const;
    std::uint64_t count() const;
    double sum() const;

  private:
    struct Shard
    {
        alignas(64) std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
        /** edges.size() + 1 buckets, heap-allocated per shard. */
        std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    };

    std::vector<double> edges_;
    std::array<Shard, kMetricShards> shards_;
};

/**
 * An (x, y) time-series, e.g. per-iteration latency over iteration
 * index or fleet queue depth over the fleet clock. Appended in
 * program order from a single strand; exported verbatim.
 */
class Series
{
  public:
    void append(double x, double y);

    std::vector<std::pair<double, double>> points() const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<double, double>> points_;
};

/**
 * One recorded span occurrence (see obs/span.hpp for the RAII scope).
 * Wall times are seconds since the registry was created; sim times
 * are simulation-clock seconds. Either side may be absent.
 */
struct SpanRecord
{
    std::string name;
    Labels labels;
    /** Nesting depth within the recording thread (0 = outermost). */
    int depth = 0;
    bool hasWall = false;
    double wallBegin = 0.0;
    double wallEnd = 0.0;
    bool hasSim = false;
    double simBegin = 0.0;
    double simEnd = 0.0;
};

/**
 * The per-run instrument registry. Lookup creates on first use;
 * returned references stay valid for the registry's lifetime. Lookup
 * takes the registry mutex — hot paths cache the returned reference
 * once and then update it wait-free.
 */
class MetricRegistry
{
  public:
    MetricRegistry();

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    Counter &counter(const std::string &name, const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});

    /**
     * @p edges must be non-empty and strictly increasing; a second
     * lookup of an existing histogram ignores @p edges.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> edges,
                         const Labels &labels = {});
    Series &series(const std::string &name, const Labels &labels = {});

    /** Record one finished span occurrence (called by Span). */
    void recordSpan(SpanRecord record);

    /** Record a pure sim-time span (no RAII scope needed). */
    void recordSimSpan(const std::string &name, const Labels &labels,
                       double sim_begin, double sim_end);

    /** @return Wall seconds since the registry was created. */
    double wallNow() const;

    /** @return All span occurrences, in recording order. */
    std::vector<SpanRecord> spanRecords() const;

    // Snapshot visitors: entries ordered by (name, rendered labels).
    using Key = std::pair<std::string, Labels>;
    std::vector<std::pair<Key, const Counter *>> counters() const;
    std::vector<std::pair<Key, const Gauge *>> gauges() const;
    std::vector<std::pair<Key, const Histogram *>> histograms() const;
    std::vector<std::pair<Key, const Series *>> seriesEntries() const;

  private:
    template <typename T>
    T &
    lookup(std::map<Key, std::unique_ptr<T>> &table, const Key &key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = table.find(key);
        if (it == table.end())
            it = table.emplace(key, std::make_unique<T>()).first;
        return *it->second;
    }

    mutable std::mutex mutex_;
    std::map<Key, std::unique_ptr<Counter>> counters_;
    std::map<Key, std::unique_ptr<Gauge>> gauges_;
    std::map<Key, std::unique_ptr<Histogram>> histograms_;
    std::map<Key, std::unique_ptr<Series>> series_;
    std::vector<SpanRecord> spans_;
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace rap::obs

#endif // RAP_OBS_METRICS_HPP
