#include "obs/span.hpp"

namespace rap::obs {

namespace {

/** Per-thread count of currently-open spans (any registry). */
thread_local int tl_open_spans = 0;

} // namespace

Span::Span(MetricRegistry *registry, std::string name, Labels labels)
    : registry_(registry)
{
    if (registry_ == nullptr)
        return;
    record_.name = std::move(name);
    record_.labels = std::move(labels);
    record_.depth = tl_open_spans++;
    record_.hasWall = true;
    record_.wallBegin = registry_->wallNow();
}

Span::~Span()
{
    if (registry_ == nullptr)
        return;
    --tl_open_spans;
    record_.wallEnd = registry_->wallNow();
    registry_->recordSpan(std::move(record_));
}

void
Span::annotateSim(double sim_begin, double sim_end)
{
    if (registry_ == nullptr)
        return;
    record_.hasSim = true;
    record_.simBegin = sim_begin;
    record_.simEnd = sim_end;
}

} // namespace rap::obs
