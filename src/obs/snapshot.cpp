#include "obs/snapshot.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/log.hpp"

namespace rap::obs {

namespace {

Json
labelsJson(const Labels &labels)
{
    Json out = Json::object();
    for (const auto &[key, value] : labels.pairs())
        out.set(key, Json(value));
    return out;
}

/** Aggregate of all occurrences of one (name, labels) span. */
struct SpanAggregate
{
    std::uint64_t count = 0;
    int maxDepth = 0;
    double simSeconds = 0.0;
    bool hasSim = false;
    double wallSeconds = 0.0;
    bool hasWall = false;
};

} // namespace

Json
snapshotJson(const MetricRegistry &registry, SnapshotOptions options)
{
    Json doc = Json::object();
    doc.set("schema", Json("rap.metrics.v1"));

    Json counters = Json::array();
    for (const auto &[key, counter] : registry.counters()) {
        Json entry = Json::object();
        entry.set("name", Json(key.first));
        entry.set("labels", labelsJson(key.second));
        entry.set("value", Json(counter->value()));
        counters.push(std::move(entry));
    }
    doc.set("counters", std::move(counters));

    Json gauges = Json::array();
    for (const auto &[key, gauge] : registry.gauges()) {
        Json entry = Json::object();
        entry.set("name", Json(key.first));
        entry.set("labels", labelsJson(key.second));
        entry.set("value", Json(gauge->value()));
        gauges.push(std::move(entry));
    }
    doc.set("gauges", std::move(gauges));

    Json histograms = Json::array();
    for (const auto &[key, histogram] : registry.histograms()) {
        Json entry = Json::object();
        entry.set("name", Json(key.first));
        entry.set("labels", labelsJson(key.second));
        Json edges = Json::array();
        for (double edge : histogram->edges())
            edges.push(Json(edge));
        entry.set("edges", std::move(edges));
        Json counts = Json::array();
        for (std::uint64_t c : histogram->bucketCounts())
            counts.push(Json(c));
        entry.set("counts", std::move(counts));
        entry.set("count", Json(histogram->count()));
        entry.set("sum", Json(histogram->sum()));
        histograms.push(std::move(entry));
    }
    doc.set("histograms", std::move(histograms));

    Json series = Json::array();
    for (const auto &[key, entry_series] : registry.seriesEntries()) {
        Json entry = Json::object();
        entry.set("name", Json(key.first));
        entry.set("labels", labelsJson(key.second));
        Json points = Json::array();
        for (const auto &[x, y] : entry_series->points()) {
            Json point = Json::array();
            point.push(Json(x));
            point.push(Json(y));
            points.push(std::move(point));
        }
        entry.set("points", std::move(points));
        series.push(std::move(entry));
    }
    doc.set("series", std::move(series));

    // Spans aggregate per (name, labels): counts, max depth and summed
    // sim duration all commute, so the result is independent of which
    // worker recorded which occurrence first.
    std::map<MetricRegistry::Key, SpanAggregate> aggregates;
    for (const SpanRecord &record : registry.spanRecords()) {
        SpanAggregate &agg = aggregates[{record.name, record.labels}];
        ++agg.count;
        agg.maxDepth = std::max(agg.maxDepth, record.depth);
        if (record.hasSim) {
            agg.hasSim = true;
            agg.simSeconds += record.simEnd - record.simBegin;
        }
        if (record.hasWall) {
            agg.hasWall = true;
            agg.wallSeconds += record.wallEnd - record.wallBegin;
        }
    }
    Json spans = Json::array();
    for (const auto &[key, agg] : aggregates) {
        Json entry = Json::object();
        entry.set("name", Json(key.first));
        entry.set("labels", labelsJson(key.second));
        entry.set("count", Json(agg.count));
        entry.set("maxDepth", Json(static_cast<std::int64_t>(
                                  agg.maxDepth)));
        entry.set("simSeconds",
                  agg.hasSim ? Json(agg.simSeconds) : Json());
        if (options.includeWallTime)
            entry.set("wallSeconds",
                      agg.hasWall ? Json(agg.wallSeconds) : Json());
        spans.push(std::move(entry));
    }
    doc.set("spans", std::move(spans));

    return doc;
}

std::string
renderSnapshot(const MetricRegistry &registry, SnapshotOptions options)
{
    return snapshotJson(registry, options).dump(2) + "\n";
}

void
writeSnapshot(const MetricRegistry &registry, const std::string &path,
              SnapshotOptions options)
{
    writeJsonFile(snapshotJson(registry, options), path);
}

std::string
seriesCsv(const MetricRegistry &registry)
{
    std::string out = "name,labels,x,y\n";
    for (const auto &[key, series] : registry.seriesEntries()) {
        const std::string labels = key.second.render();
        for (const auto &[x, y] : series->points()) {
            out += key.first;
            out += ',';
            // Label text may contain commas; CSV-quote it.
            out += '"' + labels + '"';
            out += ',';
            out += Json(x).dump();
            out += ',';
            out += Json(y).dump();
            out += '\n';
        }
    }
    return out;
}

void
writeSeriesCsv(const MetricRegistry &registry, const std::string &path)
{
    std::ofstream file(path);
    if (!file)
        RAP_FATAL("cannot open '", path, "' for writing");
    const std::string text = seriesCsv(registry);
    file.write(text.data(),
               static_cast<std::streamsize>(text.size()));
    if (!file)
        RAP_FATAL("failed writing '", path, "'");
}

} // namespace rap::obs
