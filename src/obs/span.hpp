/**
 * @file
 * RAII phase spans recorded into a MetricRegistry.
 *
 * A Span times a scope on the wall clock (planner phases run on the
 * host, outside simulated time) and records one SpanRecord when it
 * closes. Scopes nest: each thread keeps its own active-span depth, so
 * spans opened on thread-pool workers nest correctly within the task
 * that opened them and merge deterministically in the snapshot (the
 * exporter aggregates by name — counts, max depth and sim durations
 * commute; wall durations never enter the deterministic snapshot).
 *
 * Phases that live on the simulated clock (iterations, replans, fleet
 * segments) don't need a scope — record them directly with
 * MetricRegistry::recordSimSpan, or attach sim bounds to a wall span
 * via annotateSim.
 */

#ifndef RAP_OBS_SPAN_HPP
#define RAP_OBS_SPAN_HPP

#include <string>

#include "obs/metrics.hpp"

namespace rap::obs {

/** Wall-clock RAII scope; records into the registry on destruction. */
class Span
{
  public:
    /**
     * Opens the span. Null registry is allowed and makes the span a
     * no-op, so call sites can instrument unconditionally.
     */
    Span(MetricRegistry *registry, std::string name,
         Labels labels = {});

    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach simulated-clock bounds to this occurrence. */
    void annotateSim(double sim_begin, double sim_end);

    /** @return Nesting depth of this span on its thread (0 = outer). */
    int depth() const { return record_.depth; }

  private:
    MetricRegistry *registry_;
    SpanRecord record_;
};

} // namespace rap::obs

#endif // RAP_OBS_SPAN_HPP
