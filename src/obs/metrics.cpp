#include "obs/metrics.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rap::obs {

std::size_t
threadMetricShard()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return slot;
}

Labels::Labels(
    std::initializer_list<std::pair<std::string, std::string>> pairs)
{
    for (const auto &pair : pairs)
        set(pair.first, pair.second);
}

void
Labels::set(const std::string &key, std::string value)
{
    auto it = std::lower_bound(
        pairs_.begin(), pairs_.end(), key,
        [](const auto &pair, const std::string &k) {
            return pair.first < k;
        });
    if (it != pairs_.end() && it->first == key) {
        it->second = std::move(value);
        return;
    }
    pairs_.insert(it, {key, std::move(value)});
}

std::string
Labels::render() const
{
    if (pairs_.empty())
        return "";
    std::string out = "{";
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
        if (i > 0)
            out += ",";
        out += pairs_[i].first + "=" + pairs_[i].second;
    }
    out += "}";
    return out;
}

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    RAP_ASSERT(!edges_.empty(), "histogram needs at least one edge");
    RAP_ASSERT(std::is_sorted(edges_.begin(), edges_.end()) &&
                   std::adjacent_find(edges_.begin(), edges_.end()) ==
                       edges_.end(),
               "histogram edges must be strictly increasing");
    const std::size_t buckets = edges_.size() + 1;
    for (auto &shard : shards_) {
        shard.buckets =
            std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
        for (std::size_t i = 0; i < buckets; ++i)
            shard.buckets[i].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(double v)
{
    // First bucket: v < edges[0]; middle bucket i: edges[i-1] <= v <
    // edges[i]; last bucket: v >= edges.back().
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
    const auto bucket = static_cast<std::size_t>(it - edges_.begin());
    Shard &shard = shards_[threadMetricShard()];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    // The CAS loop only retries against a thread sharing this slot;
    // under the single-strand contract it never loops.
    double cur = shard.sum.load(std::memory_order_relaxed);
    while (!shard.sum.compare_exchange_weak(
        cur, cur + v, std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> folded(edges_.size() + 1, 0);
    for (const auto &shard : shards_) {
        for (std::size_t i = 0; i < folded.size(); ++i) {
            folded[i] +=
                shard.buckets[i].load(std::memory_order_relaxed);
        }
    }
    return folded;
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard.count.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::sum() const
{
    // Fold in slot order: with all observations in one shard (the
    // determinism contract) this adds exact zeros around the one
    // program-order partial sum, so snapshots stay byte-identical.
    double total = 0.0;
    for (const auto &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

void
Series::append(double x, double y)
{
    std::lock_guard<std::mutex> lock(mutex_);
    points_.emplace_back(x, y);
}

std::vector<std::pair<double, double>>
Series::points() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return points_;
}

MetricRegistry::MetricRegistry()
    : epoch_(std::chrono::steady_clock::now())
{
}

Counter &
MetricRegistry::counter(const std::string &name, const Labels &labels)
{
    return lookup(counters_, {name, labels});
}

Gauge &
MetricRegistry::gauge(const std::string &name, const Labels &labels)
{
    return lookup(gauges_, {name, labels});
}

Histogram &
MetricRegistry::histogram(const std::string &name,
                          std::vector<double> edges,
                          const Labels &labels)
{
    const Key key{name, labels};
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(key);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(key,
                          std::make_unique<Histogram>(std::move(edges)))
                 .first;
    }
    return *it->second;
}

Series &
MetricRegistry::series(const std::string &name, const Labels &labels)
{
    return lookup(series_, {name, labels});
}

void
MetricRegistry::recordSpan(SpanRecord record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(record));
}

void
MetricRegistry::recordSimSpan(const std::string &name,
                              const Labels &labels, double sim_begin,
                              double sim_end)
{
    SpanRecord record;
    record.name = name;
    record.labels = labels;
    record.hasSim = true;
    record.simBegin = sim_begin;
    record.simEnd = sim_end;
    recordSpan(std::move(record));
}

double
MetricRegistry::wallNow() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::vector<SpanRecord>
MetricRegistry::spanRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

namespace {

template <typename T>
std::vector<std::pair<MetricRegistry::Key, const T *>>
sortedView(const std::map<MetricRegistry::Key, std::unique_ptr<T>> &table)
{
    std::vector<std::pair<MetricRegistry::Key, const T *>> out;
    out.reserve(table.size());
    for (const auto &[key, value] : table)
        out.emplace_back(key, value.get());
    return out; // std::map iterates in key order already
}

} // namespace

std::vector<std::pair<MetricRegistry::Key, const Counter *>>
MetricRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sortedView(counters_);
}

std::vector<std::pair<MetricRegistry::Key, const Gauge *>>
MetricRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sortedView(gauges_);
}

std::vector<std::pair<MetricRegistry::Key, const Histogram *>>
MetricRegistry::histograms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sortedView(histograms_);
}

std::vector<std::pair<MetricRegistry::Key, const Series *>>
MetricRegistry::seriesEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sortedView(series_);
}

} // namespace rap::obs
