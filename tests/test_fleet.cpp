/**
 * @file
 * Fleet scheduler tests: arrival-trace synthesis, placement policies,
 * the admission queue, end-to-end fleet runs, requeue-and-replan on
 * degraded GPUs, and report determinism across thread counts (the
 * fleet mirror of test_offline_parallel — all comparisons EXPECT_EQ,
 * bit-identical, not merely close).
 */

#include <gtest/gtest.h>

#include "fleet/fleet.hpp"
#include "obs/snapshot.hpp"

namespace rap::fleet {
namespace {

ArrivalTraceOptions
tinyTraceOptions(int jobs = 5)
{
    ArrivalTraceOptions options;
    options.tiny = true;
    options.jobCount = jobs;
    options.meanInterarrival = 0.01;
    options.seed = 0x7e577e5701ULL;
    return options;
}

void
expectSameFleetReport(const FleetReport &a, const FleetReport &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.meanJct, b.meanJct);
    EXPECT_EQ(a.p50Jct, b.p50Jct);
    EXPECT_EQ(a.p95Jct, b.p95Jct);
    EXPECT_EQ(a.maxJct, b.maxJct);
    EXPECT_EQ(a.meanQueueingDelay, b.meanQueueingDelay);
    EXPECT_EQ(a.clusterSmUtil, b.clusterSmUtil);
    EXPECT_EQ(a.clusterBwUtil, b.clusterBwUtil);
    EXPECT_EQ(a.gpuOccupancy, b.gpuOccupancy);
    EXPECT_EQ(a.lostWork, b.lostWork);
    EXPECT_EQ(a.goodputSeconds, b.goodputSeconds);
    EXPECT_EQ(a.requeues, b.requeues);
    EXPECT_EQ(a.crashRequeues, b.crashRequeues);
    EXPECT_EQ(a.simulationsRun, b.simulationsRun);
    EXPECT_EQ(a.serveRequests, b.serveRequests);
    EXPECT_EQ(a.serveBatches, b.serveBatches);
    EXPECT_EQ(a.serveAttained, b.serveAttained);
    EXPECT_EQ(a.serveAttainment, b.serveAttainment);
    EXPECT_EQ(a.serveGoodputRps, b.serveGoodputRps);
    EXPECT_EQ(a.serveP50Latency, b.serveP50Latency);
    EXPECT_EQ(a.serveP95Latency, b.serveP95Latency);
    EXPECT_EQ(a.serveP99Latency, b.serveP99Latency);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
        SCOPED_TRACE("job " + std::to_string(j));
        EXPECT_EQ(a.jobs[j].firstStart, b.jobs[j].firstStart);
        EXPECT_EQ(a.jobs[j].finish, b.jobs[j].finish);
        EXPECT_EQ(a.jobs[j].placements, b.jobs[j].placements);
        EXPECT_EQ(a.jobs[j].requeues, b.jobs[j].requeues);
        EXPECT_EQ(a.jobs[j].crashRequeues, b.jobs[j].crashRequeues);
        EXPECT_EQ(a.jobs[j].serviceTime, b.jobs[j].serviceTime);
        EXPECT_EQ(a.jobs[j].lostWork, b.jobs[j].lostWork);
        EXPECT_EQ(a.jobs[j].lastGpus, b.jobs[j].lastGpus);
        ASSERT_EQ(a.jobs[j].serve.has_value(),
                  b.jobs[j].serve.has_value());
        if (a.jobs[j].serve.has_value()) {
            EXPECT_EQ(a.jobs[j].serve->requests,
                      b.jobs[j].serve->requests);
            EXPECT_EQ(a.jobs[j].serve->attained,
                      b.jobs[j].serve->attained);
            EXPECT_EQ(a.jobs[j].serve->p99, b.jobs[j].serve->p99);
        }
        EXPECT_EQ(a.jobs[j].report.makespan, b.jobs[j].report.makespan);
        EXPECT_EQ(a.jobs[j].report.submittedAt,
                  b.jobs[j].report.submittedAt);
        EXPECT_EQ(a.jobs[j].report.startedAt,
                  b.jobs[j].report.startedAt);
        EXPECT_EQ(a.jobs[j].report.finishedAt,
                  b.jobs[j].report.finishedAt);
    }
    // Rendered artefacts must match byte for byte (the CI diff runs
    // on bench_fleet output built from exactly these renderers).
    EXPECT_EQ(a.renderSummary(), b.renderSummary());
    EXPECT_EQ(a.renderJobs(), b.renderJobs());
}

TEST(FleetJob, ArrivalTraceIsSeededAndOrdered)
{
    const auto a = makeArrivalTrace(tinyTraceOptions(12));
    const auto b = makeArrivalTrace(tinyTraceOptions(12));
    ASSERT_EQ(a.size(), 12u);
    for (std::size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j].id, static_cast<int>(j));
        EXPECT_EQ(a[j].arrival, b[j].arrival);
        EXPECT_EQ(a[j].gpusRequested, b[j].gpusRequested);
        EXPECT_EQ(a[j].planId, b[j].planId);
        EXPECT_EQ(a[j].batchPerGpu, b[j].batchPerGpu);
        EXPECT_GE(a[j].gpusRequested, 1);
        EXPECT_LE(a[j].gpusRequested, 8);
        if (j > 0)
            EXPECT_GE(a[j].arrival, a[j - 1].arrival);
    }

    auto other_options = tinyTraceOptions(12);
    other_options.seed ^= 0xabcdefULL;
    const auto c = makeArrivalTrace(other_options);
    bool any_diff = false;
    for (std::size_t j = 0; j < a.size(); ++j)
        any_diff = any_diff || c[j].arrival != a[j].arrival;
    EXPECT_TRUE(any_diff) << "different seeds gave identical traces";
}

TEST(FleetPlacement, ExclusiveRefusesOccupiedGpus)
{
    std::vector<GpuState> gpus(4);
    gpus[0].residents = 1;
    gpus[0].smUsed = 0.4;
    PlacementOptions options;
    options.policy = PlacementPolicy::ExclusiveFirstFit;

    const auto two = placeJob(options, gpus, 2, {0.3, 0.3});
    ASSERT_TRUE(two.has_value());
    EXPECT_EQ(two->gpuIds, (std::vector<int>{1, 2}));
    EXPECT_EQ(two->envelopes[0].sm, 1.0);

    const auto four = placeJob(options, gpus, 4, {0.3, 0.3});
    EXPECT_FALSE(four.has_value()) << "only three GPUs are free";
}

TEST(FleetPlacement, BestFitPrefersHealthyGpus)
{
    std::vector<GpuState> gpus(3);
    gpus[0].healthSm = 0.6; // degraded
    PlacementOptions options;
    options.policy = PlacementPolicy::ExclusiveBestFit;
    const auto placement = placeJob(options, gpus, 2, {0.3, 0.3});
    ASSERT_TRUE(placement.has_value());
    EXPECT_EQ(placement->gpuIds, (std::vector<int>{1, 2}))
        << "the degraded GPU should be picked last";
}

TEST(FleetPlacement, SharedCoLocatesUnderHeadroom)
{
    std::vector<GpuState> gpus(2);
    gpus[0].residents = 1;
    gpus[0].smUsed = 0.5;
    gpus[0].bwUsed = 0.3;
    PlacementOptions options;
    options.policy = PlacementPolicy::RapShared;
    options.headroom = 0.95;
    options.minEnvelope = 0.3;
    options.demandScale = 1.0; // strict reservation for exact sums

    // A whole free GPU beats any leftover slice: same speed as an
    // exclusive grant.
    const auto whole = placeJob(options, gpus, 1, {0.3, 0.3});
    ASSERT_TRUE(whole.has_value());
    EXPECT_EQ(whole->gpuIds, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(whole->envelopes[0].sm, 1.0);

    // With no free GPU left, the job squeezes in beside the lighter
    // incumbent and receives the leftover slice as its envelope.
    gpus[1].residents = 1;
    gpus[1].smUsed = 0.6;
    gpus[1].bwUsed = 0.6;
    const auto slice = placeJob(options, gpus, 1, {0.3, 0.3});
    ASSERT_TRUE(slice.has_value());
    EXPECT_EQ(slice->gpuIds, (std::vector<int>{0}));
    EXPECT_DOUBLE_EQ(slice->envelopes[0].sm, 0.5);
    EXPECT_DOUBLE_EQ(slice->envelopes[0].bw, 0.7);

    // Nothing fits when every GPU is saturated.
    gpus[0].smUsed = 0.8;
    gpus[1].smUsed = 0.8;
    gpus[1].bwUsed = 0.8;
    const auto none = placeJob(options, gpus, 1, {0.4, 0.4});
    EXPECT_FALSE(none.has_value());
}

TEST(FleetPlacement, SharedRespectsMinEnvelope)
{
    std::vector<GpuState> gpus(1);
    gpus[0].residents = 1;
    gpus[0].smUsed = 0.8;
    PlacementOptions options;
    options.policy = PlacementPolicy::RapShared;
    options.headroom = 1.0;
    options.minEnvelope = 0.3;
    // The 0.1 demand fits under headroom, but the leftover slice
    // (0.2) is below the minimum worth granting.
    EXPECT_FALSE(placeJob(options, gpus, 1, {0.1, 0.1}).has_value());
}

TEST(FleetPlacement, DemandScaleAdmitsInterleavingJobs)
{
    // Two training jobs averaging 0.75 SM can share one GPU: their
    // bursts interleave, so reservations use discounted demand. With
    // strict reservation (scale 1.0) the same pair is refused.
    std::vector<GpuState> gpus(1);
    gpus[0].residents = 1;
    gpus[0].smUsed = 0.6 * 0.75; // incumbent's discounted share
    gpus[0].bwUsed = 0.6 * 0.20;
    PlacementOptions options;
    options.policy = PlacementPolicy::RapShared;

    const auto shared = placeJob(options, gpus, 1, {0.75, 0.20});
    ASSERT_TRUE(shared.has_value());
    EXPECT_DOUBLE_EQ(shared->envelopes[0].sm, 1.0 - 0.6 * 0.75);

    auto strict = options;
    strict.demandScale = 1.0;
    EXPECT_FALSE(placeJob(strict, gpus, 1, {0.75, 0.20}).has_value());
}

TEST(FleetPlacement, DegradedGpuReconcilesReservationsWithHealth)
{
    // Regression: admission bounded reservations by headroom x
    // *degraded* health while the min-envelope floor read the raw
    // free share (health - used, no headroom), so a degraded GPU
    // could admit a job into a slice the admission bound itself said
    // was not reservable. Both checks now share the clamped
    // reservable capacity.
    std::vector<GpuState> gpus(1);
    gpus[0].residents = 1;
    gpus[0].smUsed = 0.2;
    gpus[0].bwUsed = 0.2;
    PlacementOptions options;
    options.policy = PlacementPolicy::RapShared;
    options.headroom = 0.9;
    options.minEnvelope = 0.3;
    options.demandScale = 1.0;

    // Healthy control: 0.9 - 0.2 = 0.7 reservable, well over the
    // floor — the co-location is admitted.
    ASSERT_TRUE(placeJob(options, gpus, 1, {0.25, 0.25}).has_value());

    // A mid-run degradation to 0.55 leaves 0.9 * 0.55 - 0.2 = 0.295
    // reservable: under the 0.3 floor, so the slice is not worth
    // granting — even though the raw free share (0.35) still clears
    // the floor, which is exactly what the old check admitted on.
    gpus[0].healthSm = 0.55;
    gpus[0].healthBw = 0.55;
    EXPECT_FALSE(placeJob(options, gpus, 1, {0.25, 0.25}).has_value());

    // Stale over-reservation: incumbents reserved 0.6 before the GPU
    // degraded to 0.5, so nothing is reservable (clamped to 0, not
    // negative) and even a tiny newcomer is refused.
    gpus[0].smUsed = 0.6;
    gpus[0].healthSm = 0.5;
    options.minEnvelope = 0.0;
    EXPECT_DOUBLE_EQ(gpus[0].reservableSm(options.headroom), 0.0);
    EXPECT_FALSE(placeJob(options, gpus, 1, {0.01, 0.01}).has_value());
}

TEST(FleetQueue, FifoWithFrontReinsertion)
{
    AdmissionQueue queue;
    queue.push({0, 1.0, 0.0, 0});
    queue.push({1, 1.0, 0.1, 0});
    queue.pushFront({2, 0.5, 0.2, 1});
    ASSERT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.jobs()[0].jobId, 2);
    EXPECT_EQ(queue.jobs()[1].jobId, 0);

    const auto middle = queue.take(1);
    EXPECT_EQ(middle.jobId, 0);
    ASSERT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.jobs()[0].jobId, 2);
    EXPECT_EQ(queue.jobs()[1].jobId, 1);
}

TEST(FleetScheduler, AllJobsFinishWithSaneLifecycles)
{
    const auto trace = makeArrivalTrace(tinyTraceOptions(5));
    const auto report =
        FleetRequest(trace)
            .policy(PlacementPolicy::ExclusiveFirstFit)
            .run();

    ASSERT_EQ(report.jobs.size(), trace.size());
    for (const auto &job : report.jobs) {
        SCOPED_TRACE(job.spec.name);
        EXPECT_GE(job.firstStart, job.spec.arrival);
        EXPECT_GT(job.finish, job.firstStart);
        EXPECT_GT(job.serviceTime, 0.0);
        EXPECT_EQ(job.placements, 1);
        EXPECT_EQ(static_cast<int>(job.lastGpus.size()),
                  job.spec.gpusRequested);
        // The lifecycle timestamps flow into the job's RunReport.
        EXPECT_EQ(job.report.submittedAt, job.spec.arrival);
        EXPECT_EQ(job.report.startedAt, job.firstStart);
        EXPECT_EQ(job.report.finishedAt, job.finish);
        EXPECT_EQ(job.report.queueingDelay(), job.queueingDelay());
        EXPECT_EQ(job.report.jobCompletionTime(),
                  job.jobCompletionTime());
    }
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_GT(report.meanJct, 0.0);
    EXPECT_GT(report.clusterSmUtil, 0.0);
    EXPECT_GT(report.gpuOccupancy, 0.0);
    EXPECT_LE(report.gpuOccupancy, 1.0 + 1e-12);
    EXPECT_EQ(report.requeues, 0);
}

TEST(FleetScheduler, SharedPlacementCoLocatesJobs)
{
    const auto trace = makeArrivalTrace(tinyTraceOptions(5));
    const auto report = FleetRequest(trace)
                            .policy(PlacementPolicy::RapShared)
                            .run();
    for (const auto &job : report.jobs) {
        EXPECT_GT(job.finish, 0.0) << job.spec.name;
        EXPECT_GE(job.queueingDelay(), 0.0) << job.spec.name;
    }
    EXPECT_GT(report.makespan, 0.0);
}

TEST(FleetScheduler, DegradeRequeuesAndReplansResidentJobs)
{
    // One long job starts immediately on an idle node; a mid-run SM
    // degradation on its GPU must preempt it, requeue it with its
    // completed fraction, and re-place it against the shrunken
    // envelope — finishing later than the healthy run.
    auto trace = makeArrivalTrace(tinyTraceOptions(2));
    for (auto &spec : trace) {
        spec.gpusRequested = 1;
        spec.planId = 0;
        spec.iterations = 8;
    }
    auto makeRequest = [&] {
        FleetRequest request(trace);
        request.policy(PlacementPolicy::ExclusiveFirstFit);
        return request;
    };
    const auto healthy = makeRequest().run();
    ASSERT_GT(healthy.makespan, 0.0);

    const auto degraded =
        makeRequest()
            .addFault(sim::FaultEvent::smDegrade(
                0, healthy.jobs[0].firstStart +
                       0.5 * healthy.jobs[0].serviceTime,
                0.5))
            .run();

    EXPECT_GE(degraded.requeues, 1);
    const auto &job0 = degraded.jobs[0];
    EXPECT_GE(job0.requeues, 1);
    EXPECT_GE(job0.placements, 2);
    EXPECT_GT(job0.finish, healthy.jobs[0].finish)
        << "losing half the SMs mid-run cannot speed the job up";
    for (const auto &job : degraded.jobs)
        EXPECT_GT(job.finish, 0.0) << job.spec.name;
}

TEST(FleetScheduler, LaterMilderFaultCannotRestoreCapacity)
{
    // Regression: the degrade handler assigned `healthSm = factor`,
    // so a later, milder fault on an already-degraded GPU *raised*
    // its capacity back toward healthy and the re-placed job ran
    // faster than physics allows. Degradations compose by min: after
    // 0.7 then 0.95, the GPU still runs at 0.7.
    auto trace = makeArrivalTrace(tinyTraceOptions(1));
    trace[0].gpusRequested = 1;
    trace[0].planId = 0;
    trace[0].iterations = 8;
    auto makeRequest = [&] {
        FleetRequest request(trace);
        request.policy(PlacementPolicy::ExclusiveFirstFit);
        return request;
    };
    const auto healthy = makeRequest().run();
    const int gpu = healthy.jobs[0].lastGpus.at(0);
    const Seconds start = healthy.jobs[0].firstStart;
    const Seconds segment = healthy.jobs[0].serviceTime;

    const auto first_fault =
        sim::FaultEvent::smDegrade(gpu, start + 0.4 * segment, 0.7);
    const auto single = makeRequest().addFault(first_fault).run();
    ASSERT_GE(single.jobs[0].requeues, 1);

    const auto composed =
        makeRequest()
            .addFault(first_fault)
            .addFault(sim::FaultEvent::smDegrade(
                gpu, start + 0.6 * segment, 0.95))
            .run();

    // The second preemption costs work on its own; what it must NOT
    // do is hand the job a 0.95-health GPU whose faster final segment
    // beats the single-fault run (the restore bug made it finish
    // earlier despite restarting twice).
    EXPECT_GE(composed.jobs[0].requeues, 2);
    EXPECT_GT(composed.jobs[0].finish, single.jobs[0].finish)
        << "a second (milder) fault cannot speed the job up";
}

TEST(FleetScheduler, UncheckpointedPreemptionLosesAllElapsedWork)
{
    // Crediting regression: a preempted job that never checkpoints
    // has no durable progress — it restarts from scratch and every
    // elapsed second of its cut-short segment is lost work.
    auto trace = makeArrivalTrace(tinyTraceOptions(1));
    trace[0].gpusRequested = 1;
    trace[0].planId = 0;
    trace[0].iterations = 8;
    auto makeRequest = [&] {
        FleetRequest request(trace);
        request.policy(PlacementPolicy::ExclusiveFirstFit);
        return request;
    };
    const auto healthy = makeRequest().run();
    const Seconds fault_time = healthy.jobs[0].firstStart +
                               0.5 * healthy.jobs[0].serviceTime;

    const auto degraded =
        makeRequest()
            .addFault(sim::FaultEvent::smDegrade(
                healthy.jobs[0].lastGpus[0], fault_time, 0.5))
            .run();

    const auto &job = degraded.jobs[0];
    ASSERT_GE(job.requeues, 1);
    EXPECT_DOUBLE_EQ(job.lostWork, fault_time - job.firstStart);
    EXPECT_DOUBLE_EQ(degraded.lostWork, job.lostWork);
    EXPECT_DOUBLE_EQ(degraded.goodputSeconds,
                     job.serviceTime - job.lostWork);
}

TEST(FleetScheduler, CheckpointedJobResumesFromDurableFraction)
{
    // The same preemption against a job checkpointing every
    // iteration: progress rounds down to the last sealed 1/8, so only
    // the sub-interval tail is lost — strictly less than the elapsed
    // segment time the uncheckpointed job forfeits.
    auto trace = makeArrivalTrace(tinyTraceOptions(1));
    trace[0].gpusRequested = 1;
    trace[0].planId = 0;
    trace[0].iterations = 8;
    trace[0].checkpointInterval = 1;
    auto makeRequest = [&] {
        FleetRequest request(trace);
        request.policy(PlacementPolicy::ExclusiveFirstFit);
        return request;
    };
    const auto healthy = makeRequest().run();
    const Seconds segment = healthy.jobs[0].serviceTime;
    // 0.4 of the segment elapses: 3 of 8 iterations (0.375) are
    // sealed; the 0.025-segment remainder is forfeited.
    const Seconds fault_time =
        healthy.jobs[0].firstStart + 0.4 * segment;

    const auto degraded =
        makeRequest()
            .addFault(sim::FaultEvent::smDegrade(
                healthy.jobs[0].lastGpus[0], fault_time, 0.5))
            .run();

    const auto &job = degraded.jobs[0];
    ASSERT_GE(job.requeues, 1);
    EXPECT_GT(job.lostWork, 0.0);
    EXPECT_NEAR(job.lostWork, 0.025 * segment, 1e-9);
    EXPECT_LT(job.lostWork, fault_time - job.firstStart);
}

TEST(FleetScheduler, RestartOverheadDelaysTheResumedSegment)
{
    auto trace = makeArrivalTrace(tinyTraceOptions(1));
    trace[0].gpusRequested = 1;
    trace[0].planId = 0;
    trace[0].iterations = 8;
    auto makeRequest = [&] {
        FleetRequest request(trace);
        request.policy(PlacementPolicy::ExclusiveFirstFit);
        return request;
    };
    const auto healthy = makeRequest().run();
    const Seconds fault_time = healthy.jobs[0].firstStart +
                               0.5 * healthy.jobs[0].serviceTime;

    const auto fault = sim::FaultEvent::smDegrade(
        healthy.jobs[0].lastGpus[0], fault_time, 0.5);
    const auto free_restart = makeRequest().addFault(fault).run();
    ASSERT_GE(free_restart.jobs[0].requeues, 1);

    const auto charged =
        makeRequest().addFault(fault).restartOverhead(0.05).run();
    // One resumed segment, so exactly one restart charge lands on the
    // timeline.
    EXPECT_NEAR(charged.jobs[0].finish,
                free_restart.jobs[0].finish + 0.05, 1e-9);
}

TEST(FleetScheduler, DeviceCrashExcludesGpuAndRequeuesResidents)
{
    auto trace = makeArrivalTrace(tinyTraceOptions(1));
    trace[0].gpusRequested = 1;
    trace[0].planId = 0;
    trace[0].iterations = 8;
    const auto healthy =
        FleetRequest(trace)
            .policy(PlacementPolicy::ExclusiveFirstFit)
            .run();
    const int gpu = healthy.jobs[0].lastGpus.at(0);
    const Seconds crash_time = healthy.jobs[0].firstStart +
                               0.5 * healthy.jobs[0].serviceTime;

    // Crashes preempt even with degradation-requeue turned off —
    // there is no way to keep running on a dead GPU.
    obs::MetricRegistry registry;
    const auto report =
        FleetRequest(trace)
            .policy(PlacementPolicy::ExclusiveFirstFit)
            .requeueOnDegrade(false)
            .addFault(sim::FaultEvent::deviceCrash(gpu, crash_time))
            .metrics(&registry)
            .run();

    EXPECT_EQ(report.crashRequeues, 1);
    const auto &job = report.jobs[0];
    EXPECT_EQ(job.crashRequeues, 1);
    EXPECT_GE(job.requeues, 1);
    EXPECT_GT(job.lostWork, 0.0);
    EXPECT_GT(job.finish, healthy.jobs[0].finish);
    for (const int placed : job.lastGpus)
        EXPECT_NE(placed, gpu)
            << "the crashed GPU must be unplaceable";
    const std::string snapshot = obs::snapshotJson(registry).dump(2);
    EXPECT_NE(snapshot.find("fleet.crash_requeues"),
              std::string::npos);
}

TEST(FleetScheduler, ReportBitIdenticalAcrossThreadCounts)
{
    const auto trace = makeArrivalTrace(tinyTraceOptions(6));
    for (const auto policy : {PlacementPolicy::ExclusiveFirstFit,
                              PlacementPolicy::RapShared}) {
        SCOPED_TRACE(policyName(policy));
        // One request, two run() calls: the builder is reusable.
        FleetRequest request(trace);
        request.policy(policy);
        const auto serial = request.run(nullptr);
        ThreadPool pool(4);
        const auto threaded = request.run(&pool);
        expectSameFleetReport(serial, threaded);
    }
}

TEST(FleetPlacement, PolicyIdRoundTrips)
{
    for (auto policy : {PlacementPolicy::ExclusiveFirstFit,
                        PlacementPolicy::ExclusiveBestFit,
                        PlacementPolicy::RapShared}) {
        EXPECT_EQ(policyFromId(policyId(policy)), policy);
    }
    EXPECT_EQ(policyId(PlacementPolicy::RapShared), "rap_shared");
}

TEST(FleetReportJson, RoundTripsExactly)
{
    const auto trace = makeArrivalTrace(tinyTraceOptions(4));
    const auto report = FleetRequest(trace)
                            .policy(PlacementPolicy::RapShared)
                            .run();

    const std::string text = report.toJson().dump(2);
    std::string error;
    const Json reparsed = Json::parse(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    const auto restored = FleetReport::fromJson(reparsed);

    // fromJson(toJson()) reproduces the artifact byte for byte — the
    // property that makes the JSON the single source of truth.
    EXPECT_EQ(restored.toJson().dump(2), text);
    expectSameFleetReport(report, restored);
}

TEST(FleetReportJson, AbsentServeFieldsRoundTripAsNull)
{
    // A training-only fleet has no serving stats: the optional SLO
    // columns must serialize as explicit nulls (never garbage
    // numbers) and come back absent, not zero-valued.
    const auto trace = makeArrivalTrace(tinyTraceOptions(3));
    const auto report =
        FleetRequest(trace)
            .policy(PlacementPolicy::ExclusiveFirstFit)
            .run();
    EXPECT_EQ(report.serveRequests, 0u);
    EXPECT_FALSE(report.serveAttainment.has_value());
    EXPECT_FALSE(report.serveGoodputRps.has_value());
    EXPECT_FALSE(report.serveP50Latency.has_value());
    EXPECT_FALSE(report.serveP95Latency.has_value());
    EXPECT_FALSE(report.serveP99Latency.has_value());

    const Json json = report.toJson();
    for (const char *field :
         {"serveAttainment", "serveGoodputRps", "serveP50Latency",
          "serveP95Latency", "serveP99Latency"}) {
        const Json *value = json.find(field);
        ASSERT_NE(value, nullptr) << field;
        EXPECT_TRUE(value->isNull()) << field;
    }

    const auto restored = FleetReport::fromJson(json);
    EXPECT_FALSE(restored.serveAttainment.has_value());
    EXPECT_FALSE(restored.serveP99Latency.has_value());
    for (const auto &job : restored.jobs)
        EXPECT_FALSE(job.serve.has_value()) << job.spec.name;
    EXPECT_EQ(restored.toJson().dump(2), json.dump(2));
}

TEST(FleetMetrics, SnapshotIsThreadCountInvariant)
{
    const auto trace = makeArrivalTrace(tinyTraceOptions(5));

    auto snapshotFor = [&](ThreadPool *pool) {
        obs::MetricRegistry registry;
        FleetRequest(trace)
            .policy(PlacementPolicy::RapShared)
            .metrics(&registry, "test")
            .run(pool);
        return obs::snapshotJson(registry).dump(2);
    };

    const std::string serial = snapshotFor(nullptr);
    ThreadPool pool(4);
    EXPECT_EQ(snapshotFor(&pool), serial);
    // The scheduler's instruments all made it into the snapshot.
    for (const char *name :
         {"fleet.placements", "fleet.memo.", "fleet.reference_sims",
          "fleet.queue.max_depth", "fleet.queue_depth",
          "fleet.segment", "fleet.run", "fleet.precompute"}) {
        EXPECT_NE(serial.find(name), std::string::npos) << name;
    }
}

bool
hasError(const core::ValidationResult &result,
         const std::string &field)
{
    for (const auto &error : result.errors())
        if (error.field == field)
            return true;
    return false;
}

TEST(FleetRequestValidation, WellFormedRequestValidates)
{
    FleetRequest request(makeArrivalTrace(tinyTraceOptions(3)));
    request.policy(PlacementPolicy::RapShared)
        .restartOverhead(0.05)
        .envelopeQuantum(0.05);
    const auto result = request.validate();
    EXPECT_TRUE(result.ok()) << result.render();
}

TEST(FleetRequestValidation, BadKnobsAreRejectedNotClamped)
{
    FleetRequest request(makeArrivalTrace(tinyTraceOptions(2)));
    request.restartOverhead(-1.0)
        .envelopeQuantum(0.0)
        .crashFaults(/*mtbf=*/0.0, /*seed=*/1, /*horizon=*/-5.0);
    request.options().placement.headroom = 1.5;
    request.options().placement.demandScale = 0.0;
    request.options().engineJobs = -2;

    const auto result = request.validate();
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(hasError(result, "restartOverhead"));
    EXPECT_TRUE(hasError(result, "envelopeQuantum"));
    EXPECT_TRUE(hasError(result, "crashFaults.mtbf"));
    EXPECT_TRUE(hasError(result, "crashFaults.horizon"));
    EXPECT_TRUE(hasError(result, "placement.headroom"));
    EXPECT_TRUE(hasError(result, "placement.demandScale"));
    EXPECT_TRUE(hasError(result, "engineJobs"));
    // Every problem surfaces at once, one rendered line each.
    EXPECT_GE(result.errors().size(), 7u);
    EXPECT_NE(result.render().find("restartOverhead: "),
              std::string::npos);
}

TEST(FleetRequestValidation, MalformedTraceAndFaultsAreNamed)
{
    auto trace = makeArrivalTrace(tinyTraceOptions(2));
    trace[1].id = 7; // ids must stay dense
    FleetRequest request(std::move(trace));
    request.addFault(sim::FaultEvent::smDegrade(99, -1.0, 0.0));

    const auto result = request.validate();
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(hasError(result, "jobs[1].id"));
    EXPECT_TRUE(hasError(result, "faults.events[0].device"));
    EXPECT_TRUE(hasError(result, "faults.events[0].time"));
    EXPECT_TRUE(hasError(result, "faults.events[0].factor"));
}

TEST(FleetRequestValidation, CatalogComboRulesAreEnforced)
{
    // A stop point without any catalog would just lose the run.
    FleetRequest stop_without(makeArrivalTrace(tinyTraceOptions(2)));
    stop_without.stopAfterEvents(4);
    EXPECT_TRUE(
        hasError(stop_without.validate(), "stopAfterEvents"));

    // Durability knobs with no catalog to act on.
    FleetRequest knobs(makeArrivalTrace(tinyTraceOptions(2)));
    knobs.fsyncOnCommit(true).compactEvery(8);
    EXPECT_TRUE(hasError(knobs.validate(), "catalogDir"));

    // An adopted handle and an owned directory cannot both win.
    // validate() only checks the handle's presence, never
    // dereferences it, so a sentinel address is enough here.
    FleetRequest both(makeArrivalTrace(tinyTraceOptions(2)));
    both.catalog(reinterpret_cast<ctrl::Catalog *>(&both))
        .catalogDir("/tmp/unused");
    EXPECT_TRUE(hasError(both.validate(), "catalogDir"));
}

} // namespace
} // namespace rap::fleet
