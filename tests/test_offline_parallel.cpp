/**
 * @file
 * Determinism tests for the parallel offline planning phase.
 *
 * The thread-pool contract promises that serial and multi-threaded
 * runs of the same configuration are bit-identical. These tests pin
 * that down at every level that went parallel: the branch-and-bound
 * fusion solver, planOffline's mapping + per-GPU schedules, and the
 * end-to-end RunReport. All floating-point comparisons use EXPECT_EQ
 * on purpose — bit-identical, not merely close.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/rap.hpp"

namespace rap {
namespace {

void
expectSameSchedule(const core::CoRunSchedule &a,
                   const core::CoRunSchedule &b)
{
    EXPECT_EQ(a.totalPreprocLatency, b.totalPreprocLatency);
    EXPECT_EQ(a.capacityUsed, b.capacityUsed);
    EXPECT_EQ(a.estimatedExposed, b.estimatedExposed);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t k = 0; k < a.kernels.size(); ++k) {
        const auto &ka = a.kernels[k];
        const auto &kb = b.kernels[k];
        EXPECT_EQ(ka.kernel.nodeIds, kb.kernel.nodeIds) << "kernel " << k;
        EXPECT_EQ(ka.kernel.type, kb.kernel.type) << "kernel " << k;
        EXPECT_EQ(ka.kernel.step, kb.kernel.step) << "kernel " << k;
        EXPECT_EQ(ka.kernel.predictedLatency,
                  kb.kernel.predictedLatency)
            << "kernel " << k;
        EXPECT_EQ(ka.opIndex, kb.opIndex) << "kernel " << k;
        EXPECT_EQ(ka.overflow, kb.overflow) << "kernel " << k;
    }
}

void
expectSameReport(const core::RunReport &a, const core::RunReport &b)
{
    EXPECT_EQ(a.system, b.system);
    EXPECT_EQ(a.gpuCount, b.gpuCount);
    EXPECT_EQ(a.batchPerGpu, b.batchPerGpu);
    EXPECT_EQ(a.avgIterationLatency, b.avgIterationLatency);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.avgSmUtil, b.avgSmUtil);
    EXPECT_EQ(a.avgBwUtil, b.avgBwUtil);
    EXPECT_EQ(a.avgGpuBusy, b.avgGpuBusy);
    EXPECT_EQ(a.p2pBytes, b.p2pBytes);
    EXPECT_EQ(a.preprocKernelsPerIter, b.preprocKernelsPerIter);
    EXPECT_EQ(a.predictedExposed, b.predictedExposed);
    EXPECT_EQ(a.preprocLatencyPerIter, b.preprocLatencyPerIter);
}

TEST(OfflineParallel, PlanOfflineMatchesSerial)
{
    auto plan = preproc::makePlan(1);
    preproc::addNgramStress(plan, 3328);
    core::SystemConfig config;
    config.system = core::System::Rap;
    config.gpuCount = 8;

    const auto serial = core::planOffline(config, plan, nullptr);
    ThreadPool pool(4);
    const auto threaded = core::planOffline(config, plan, &pool);

    ASSERT_EQ(serial.mapping.itemsPerGpu.size(),
              threaded.mapping.itemsPerGpu.size());
    for (std::size_t g = 0; g < serial.mapping.itemsPerGpu.size();
         ++g) {
        const auto &ia = serial.mapping.itemsPerGpu[g];
        const auto &ib = threaded.mapping.itemsPerGpu[g];
        ASSERT_EQ(ia.size(), ib.size()) << "gpu " << g;
        for (std::size_t i = 0; i < ia.size(); ++i) {
            EXPECT_EQ(ia[i].featureId, ib[i].featureId);
            EXPECT_EQ(ia[i].batch, ib[i].batch);
        }
    }
    EXPECT_EQ(serial.mapping.commOutBytes, threaded.mapping.commOutBytes);

    ASSERT_EQ(serial.schedules.size(), threaded.schedules.size());
    for (std::size_t g = 0; g < serial.schedules.size(); ++g) {
        SCOPED_TRACE("gpu " + std::to_string(g));
        expectSameSchedule(serial.schedules[g], threaded.schedules[g]);
    }
}

TEST(OfflineParallel, RunReportBitIdenticalAcrossThreadCounts)
{
    auto plan = preproc::makePlan(1);
    preproc::addNgramStress(plan, 3328);
    core::SystemConfig config;
    config.system = core::System::Rap;
    config.gpuCount = 8;
    config.planningThreads = 1;
    const auto serial = core::runSystem(config, plan);
    config.planningThreads = 4;
    const auto threaded = core::runSystem(config, plan);
    expectSameReport(serial, threaded);
}

TEST(OfflineParallel, HybridAndRowWiseSystemsStayDeterministic)
{
    auto plan = preproc::makePlan(1);
    preproc::addNgramStress(plan, 6656);
    for (const auto system :
         {core::System::HybridRap, core::System::Rap}) {
        core::SystemConfig config;
        config.system = system;
        config.gpuCount = 4;
        config.rowWiseThreshold =
            system == core::System::Rap ? 100000 : 0;
        config.planningThreads = 1;
        const auto serial = core::runSystem(config, plan);
        config.planningThreads = 4;
        const auto threaded = core::runSystem(config, plan);
        SCOPED_TRACE(core::systemName(system));
        expectSameReport(serial, threaded);
    }
}

/** Parallel branch-and-bound equals serial on random small DAGs. */
class SolverThreadsTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SolverThreadsTest, ExactSolverBitIdentical)
{
    Rng rng(GetParam());
    milp::FusionProblem problem;
    const int n = static_cast<int>(rng.uniformInt(4, 10));
    for (int i = 0; i < n; ++i) {
        problem.type.push_back(static_cast<int>(rng.uniformInt(0, 2)));
        for (int j = 0; j < i; ++j) {
            if (rng.bernoulli(0.3 / (1.0 + 0.2 * i)))
                problem.deps.emplace_back(i, j);
        }
    }

    milp::SolverOptions serial_options;
    serial_options.threads = 1;
    const auto serial =
        milp::FusionSolver(serial_options).solveExact(problem);
    if (!serial.optimal) {
        // Bit-identity is only promised while the node budget holds
        // (SolverOptions::threads doc); a budget-exhausted instance
        // can legitimately diverge.
        GTEST_SKIP() << "node budget exhausted on this instance";
    }

    for (int threads : {2, 4, 8}) {
        milp::SolverOptions options;
        options.threads = threads;
        const auto parallel =
            milp::FusionSolver(options).solveExact(problem);
        EXPECT_EQ(parallel.step, serial.step) << threads << " threads";
        EXPECT_EQ(parallel.objective, serial.objective);
        EXPECT_EQ(parallel.optimal, serial.optimal);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, SolverThreadsTest,
                         ::testing::Range<std::uint64_t>(1, 26));

} // namespace
} // namespace rap
