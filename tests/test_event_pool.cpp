/**
 * @file
 * Unit tests for the slab-backed event allocator (sim/event_pool.hpp):
 * node reuse, generation-tagged no-ABA handles, reset semantics.
 */

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "sim/event_pool.hpp"

namespace rap::sim {
namespace {

TEST(EventPool, StartsEmpty)
{
    EventPool pool;
    EXPECT_EQ(pool.liveNodes(), 0u);
    EXPECT_EQ(pool.capacity(), 0u);
    EXPECT_FALSE(pool.valid(EventHandle{}));
}

TEST(EventPool, AcquireTakeRoundTrip)
{
    EventPool pool;
    int fired = 0;
    const auto handle = pool.acquire([&] { ++fired; });
    EXPECT_TRUE(pool.valid(handle));
    EXPECT_EQ(pool.liveNodes(), 1u);
    auto fn = pool.take(handle);
    EXPECT_EQ(pool.liveNodes(), 0u);
    EXPECT_FALSE(pool.valid(handle));
    fn();
    EXPECT_EQ(fired, 1);
}

TEST(EventPool, NodesAreRecycledNotGrown)
{
    EventPool pool;
    // Steady-state churn far past one slab's worth of events must
    // never materialise a second slab: one node recycles throughout.
    for (int i = 0; i < 10000; ++i) {
        const auto handle = pool.acquire([] {});
        pool.take(handle)();
    }
    EXPECT_EQ(pool.capacity(), 256u); // exactly one slab
    EXPECT_EQ(pool.liveNodes(), 0u);
}

TEST(EventPool, HandsOutAscendingIndicesWithinASlab)
{
    EventPool pool;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 8; ++i)
        handles.push_back(pool.acquire([] {}));
    for (std::size_t i = 0; i < handles.size(); ++i)
        EXPECT_EQ(handles[i].index, i);
    for (const auto &handle : handles)
        pool.release(handle);
}

TEST(EventPool, GrowsBySlab)
{
    EventPool pool;
    std::vector<EventHandle> handles;
    std::set<std::uint32_t> indices;
    for (int i = 0; i < 300; ++i) {
        handles.push_back(pool.acquire([] {}));
        indices.insert(handles.back().index);
    }
    EXPECT_EQ(pool.capacity(), 512u); // two slabs
    EXPECT_EQ(pool.liveNodes(), 300u);
    EXPECT_EQ(indices.size(), 300u); // all distinct
    for (const auto &handle : handles)
        EXPECT_TRUE(pool.valid(handle));
}

TEST(EventPool, RecycledIndexGetsNewGeneration)
{
    EventPool pool;
    const auto first = pool.acquire([] {});
    pool.release(first);
    const auto second = pool.acquire([] {});
    // Same node recycled, but the stale handle must not alias it.
    EXPECT_EQ(second.index, first.index);
    EXPECT_NE(second.generation, first.generation);
    EXPECT_FALSE(pool.valid(first));
    EXPECT_TRUE(pool.valid(second));
    pool.release(second);
}

TEST(EventPool, ReleaseDropsTheCallback)
{
    // A cancelled event's closure (and everything it captured) must be
    // destroyed by release, not retained until the node is reused.
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    EventPool pool;
    const auto handle = pool.acquire([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired()); // alive inside the pool
    pool.release(handle);
    EXPECT_TRUE(watch.expired());
}

TEST(EventPool, ResetInvalidatesEverything)
{
    EventPool pool;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 20; ++i)
        handles.push_back(pool.acquire([] {}));
    pool.reset();
    EXPECT_EQ(pool.liveNodes(), 0u);
    EXPECT_EQ(pool.capacity(), 256u); // storage kept
    for (const auto &handle : handles)
        EXPECT_FALSE(pool.valid(handle));
    // The pool is immediately reusable.
    int fired = 0;
    const auto fresh = pool.acquire([&] { ++fired; });
    pool.take(fresh)();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(pool.capacity(), 256u);
}

TEST(EventPoolDeath, TakingAStaleHandlePanics)
{
    EventPool pool;
    const auto handle = pool.acquire([] {});
    pool.take(handle);
    EXPECT_DEATH(pool.take(handle), "stale");
}

TEST(EventPoolDeath, TakingARecycledIndexPanics)
{
    EventPool pool;
    const auto first = pool.acquire([] {});
    pool.release(first);
    const auto second = pool.acquire([] {});
    ASSERT_EQ(second.index, first.index);
    EXPECT_DEATH(pool.take(first), "stale");
}

TEST(EventPoolDeath, NullHandlePanics)
{
    EventPool pool;
    EXPECT_DEATH(pool.take(EventHandle{}), "stale or null");
}

} // namespace
} // namespace rap::sim
