/**
 * @file
 * Unit tests for the discrete-event engine and SimEvent.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace rap::sim {
namespace {

TEST(Engine, StartsAtZero)
{
    Engine engine;
    EXPECT_DOUBLE_EQ(engine.now(), 0.0);
    EXPECT_EQ(engine.eventsExecuted(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(2.0, [&] { order.push_back(2); });
    engine.schedule(1.0, [&] { order.push_back(1); });
    engine.schedule(3.0, [&] { order.push_back(3); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(engine.now(), 3.0);
    EXPECT_EQ(engine.eventsExecuted(), 3u);
}

TEST(Engine, TiesBreakBySchedulingOrder)
{
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        engine.schedule(1.0, [&order, i] { order.push_back(i); });
    engine.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents)
{
    Engine engine;
    int fired = 0;
    engine.schedule(1.0, [&] {
        ++fired;
        engine.scheduleAfter(0.5, [&] { ++fired; });
    });
    engine.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(engine.now(), 1.5);
}

TEST(Engine, RunUntilStopsAtDeadline)
{
    Engine engine;
    int fired = 0;
    engine.schedule(1.0, [&] { ++fired; });
    engine.schedule(5.0, [&] { ++fired; });
    engine.runUntil(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(engine.now(), 2.0);
    engine.run();
    EXPECT_EQ(fired, 2);
}

TEST(EngineDeath, SchedulingInThePastPanics)
{
    Engine engine;
    engine.schedule(2.0, [] {});
    engine.run();
    EXPECT_DEATH(engine.schedule(1.0, [] {}), "past");
}

TEST(SimEvent, FireReleasesWaiters)
{
    Engine engine;
    auto event = makeEvent("e");
    int released = 0;
    event->addWaiter(engine, [&] { ++released; });
    event->addWaiter(engine, [&] { ++released; });
    EXPECT_FALSE(event->fired());
    engine.schedule(3.0, [&] { event->fire(engine); });
    engine.run();
    EXPECT_TRUE(event->fired());
    EXPECT_DOUBLE_EQ(event->fireTime(), 3.0);
    EXPECT_EQ(released, 2);
}

TEST(SimEvent, LateWaiterPassesThrough)
{
    Engine engine;
    auto event = makeEvent("e");
    engine.schedule(1.0, [&] { event->fire(engine); });
    engine.run();
    int released = 0;
    event->addWaiter(engine, [&] { ++released; });
    engine.run();
    EXPECT_EQ(released, 1);
}

TEST(SimEvent, DoubleFireIsIdempotent)
{
    Engine engine;
    auto event = makeEvent("e");
    engine.schedule(1.0, [&] { event->fire(engine); });
    engine.schedule(2.0, [&] { event->fire(engine); });
    engine.run();
    EXPECT_DOUBLE_EQ(event->fireTime(), 1.0);
}

} // namespace
} // namespace rap::sim
