/**
 * @file
 * Tests for the fault-injection subsystem (sim/fault.hpp) and the
 * online drift monitor: seeded reproducibility, the hand-computed
 * retry/backoff timeline, capacity degradation mid-kernel, link
 * slowdown, profile degradation math, and the end-to-end claim that
 * replanning strictly improves makespan under mid-run SM degradation.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "sim/cluster.hpp"
#include "sim/fault.hpp"

namespace rap {
namespace {

sim::ClusterSpec
oneGpu()
{
    return sim::dgxA100Spec(1);
}

TEST(FaultInjector, RetryTimelineMatchesHandComputation)
{
    // launch 4us; kernel 100us; every attempt before the third fails.
    // attempt 1: resident at 4, probe 25us -> dies at 29, backoff 20
    // attempt 2: launch at 49, resident at 53, probe -> dies at 78,
    //            backoff min(40, 50) = 40
    // attempt 3: launch at 118, resident at 122, runs 100 -> 222us.
    sim::FaultSpec spec;
    spec.events.push_back(sim::FaultEvent::transientKernel(
        0, 0.0, std::numeric_limits<Seconds>::infinity(), 1.0));
    spec.retry.maxAttempts = 3;
    spec.retry.backoffBase = 20e-6;
    spec.retry.backoffCap = 50e-6;
    spec.retry.detectFraction = 0.25;

    sim::Cluster cluster(oneGpu());
    sim::FaultInjector injector(spec);
    injector.arm(cluster);

    auto &stream = cluster.device(0).newStream("s");
    Seconds end = -1.0;
    stream.pushKernel(sim::KernelDesc::synthetic("k", 100e-6, {0.5, 0.1}),
                      [&] { end = cluster.engine().now(); });
    cluster.run();

    EXPECT_NEAR(end, 222e-6, 1e-9);
    EXPECT_EQ(cluster.device(0).kernelRetries(), 2u);
    EXPECT_NEAR(cluster.device(0).retryBackoffSeconds(), 60e-6, 1e-12);
    EXPECT_EQ(injector.injectedFailures(), 2u);
}

TEST(FaultInjector, FinalAttemptAlwaysSucceeds)
{
    sim::FaultSpec spec;
    spec.events.push_back(sim::FaultEvent::transientKernel(
        0, 0.0, std::numeric_limits<Seconds>::infinity(), 1.0));
    sim::Cluster cluster(oneGpu());
    sim::FaultInjector injector(spec);
    injector.arm(cluster);

    auto &stream = cluster.device(0).newStream("s");
    int completed = 0;
    for (int i = 0; i < 5; ++i) {
        stream.pushKernel(
            sim::KernelDesc::synthetic("k", 50e-6, {0.5, 0.1}),
            [&] { ++completed; });
    }
    cluster.run();
    EXPECT_EQ(completed, 5);
    // Every kernel burns maxAttempts - 1 failures, never more.
    EXPECT_EQ(injector.injectedFailures(),
              5u * static_cast<unsigned>(spec.retry.maxAttempts - 1));
}

TEST(FaultInjector, SeededScheduleIsReproducible)
{
    auto run = [](std::uint64_t seed) {
        sim::FaultSpec spec;
        spec.seed = seed;
        spec.events.push_back(sim::FaultEvent::transientKernel(
            0, 0.0, std::numeric_limits<Seconds>::infinity(), 0.5));
        sim::Cluster cluster(oneGpu());
        sim::FaultInjector injector(spec);
        injector.arm(cluster);
        auto &stream = cluster.device(0).newStream("s");
        for (int i = 0; i < 32; ++i) {
            stream.pushKernel(
                sim::KernelDesc::synthetic("k", 20e-6, {0.5, 0.1}));
        }
        cluster.run();
        return std::pair<Seconds, std::uint64_t>(
            cluster.engine().now(), injector.injectedFailures());
    };
    const auto a = run(7);
    const auto b = run(7);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_GT(a.second, 0u);

    const auto c = run(8);
    EXPECT_NE(a.second, c.second) << "distinct seeds should draw a "
                                     "different failure schedule";
}

TEST(FaultInjector, OutsideWindowNothingFails)
{
    sim::FaultSpec spec;
    spec.events.push_back(
        sim::FaultEvent::transientKernel(0, 1.0, 2.0, 1.0));
    sim::Cluster cluster(oneGpu());
    sim::FaultInjector injector(spec);
    injector.arm(cluster);
    auto &stream = cluster.device(0).newStream("s");
    Seconds end = -1.0;
    stream.pushKernel(sim::KernelDesc::synthetic("k", 100e-6, {0.5, 0.1}),
                      [&] { end = cluster.engine().now(); });
    cluster.run();
    EXPECT_NEAR(end, 104e-6, 1e-9);
    EXPECT_EQ(injector.injectedFailures(), 0u);
}

TEST(FaultInjector, SmDegradeMidKernelIsPiecewise)
{
    // Kernel with SM demand 1.0, 100us of work, resident at t=4us.
    // At t=54us the device drops to half capacity: 50us of work done,
    // the remaining 50us run at rate 0.5 -> finishes at 154us.
    sim::FaultSpec spec;
    spec.events.push_back(sim::FaultEvent::smDegrade(0, 54e-6, 0.5));
    sim::Cluster cluster(oneGpu());
    sim::FaultInjector injector(spec);
    injector.arm(cluster);

    auto &stream = cluster.device(0).newStream("s");
    Seconds end = -1.0;
    stream.pushKernel(sim::KernelDesc::synthetic("k", 100e-6, {1.0, 0.1}),
                      [&] { end = cluster.engine().now(); });
    cluster.run();
    EXPECT_NEAR(end, 154e-6, 1e-9);
    EXPECT_DOUBLE_EQ(cluster.device(0).smCapacity(), 0.5);
}

TEST(FaultInjector, HbmDegradeThrottlesBandwidthBoundKernels)
{
    // BW demand 0.8 against capacity 0.4 -> rate 0.5 from the start.
    sim::FaultSpec spec;
    spec.events.push_back(sim::FaultEvent::hbmDegrade(0, 0.0, 0.4));
    sim::Cluster cluster(oneGpu());
    sim::FaultInjector injector(spec);
    injector.arm(cluster);

    auto &stream = cluster.device(0).newStream("s");
    Seconds end = -1.0;
    stream.pushKernel(sim::KernelDesc::synthetic("k", 100e-6, {0.2, 0.8}),
                      [&] { end = cluster.engine().now(); });
    cluster.run();
    EXPECT_NEAR(end, 4e-6 + 200e-6, 1e-9);
}

TEST(FaultInjector, LinkSlowStretchesCopies)
{
    // 1ms worth of PCIe traffic at full rate takes 2ms at half rate.
    sim::FaultSpec spec;
    spec.events.push_back(sim::FaultEvent::linkSlow(
        0, sim::FaultLink::HostLink, 0.0, 0.5));
    sim::Cluster cluster(oneGpu());
    sim::FaultInjector injector(spec);
    injector.arm(cluster);

    auto &stream = cluster.device(0).newStream("s");
    Seconds end = -1.0;
    stream.pushDelay(10e-6); // let the fault event apply first
    stream.pushCopy(sim::CopyKind::HostToDevice, 25e9 * 1e-3,
                    [&] { end = cluster.engine().now(); });
    cluster.run();
    EXPECT_NEAR(end, 10e-6 + 2e-3 + cluster.spec().pcieLatency, 1e-9);
}

TEST(DegradeProfile, MathMatchesContentionModel)
{
    core::CapacityProfile profile;
    profile.iterationLatency = 300e-6;
    {
        core::OpCapacity op;
        op.name = "mlp";
        op.duration = 100e-6;
        op.capacity = 92e-6;
        op.leftover = {0.4, 0.8}; // SM demand 0.6
        profile.ops.push_back(op);
    }
    {
        core::OpCapacity op;
        op.name = "allreduce";
        op.comm = true;
        op.duration = 200e-6;
        op.capacity = 184e-6;
        op.leftover = {1.0, 0.9}; // no SM demand
        profile.ops.push_back(op);
    }

    const auto degraded = core::degradeProfile(profile, 0.5, 1.0);
    // mlp: rate = 0.5 / 0.6; duration and capacity stretch by 1.2;
    // leftover = capacity - demand * rate = 0.5 - 0.5 = 0.
    EXPECT_NEAR(degraded.ops[0].duration, 120e-6, 1e-12);
    EXPECT_NEAR(degraded.ops[0].capacity, 92e-6 * 1.2, 1e-12);
    EXPECT_NEAR(degraded.ops[0].leftover.sm, 0.0, 1e-12);
    // allreduce: no SM demand -> unchanged duration, leftover clamps
    // to the new envelope.
    EXPECT_NEAR(degraded.ops[1].duration, 200e-6, 1e-12);
    EXPECT_NEAR(degraded.ops[1].leftover.sm, 0.5, 1e-12);
    // Iteration latency scales with the summed op slowdown.
    EXPECT_NEAR(degraded.iterationLatency,
                300e-6 * (320.0 / 300.0), 1e-12);

    // Healthy capacities are the identity.
    const auto same = core::degradeProfile(profile, 1.0, 1.0);
    EXPECT_NEAR(same.ops[0].duration, profile.ops[0].duration, 1e-15);
    EXPECT_NEAR(same.iterationLatency, profile.iterationLatency, 1e-15);
}

TEST(OnlineReplanning, RecoversMakespanUnderSmDegradation)
{
    auto plan = preproc::makePlan(1);
    preproc::addNgramStress(plan, 13312);

    core::SystemConfig config;
    config.system = core::System::Rap;
    config.gpuCount = 8;
    config.iterations = 36;
    config.warmup = 3;

    const auto healthy = core::runSystem(config, plan);
    EXPECT_EQ(healthy.replans, 0);
    EXPECT_GT(healthy.makespan, 0.0);

    sim::FaultSpec faults;
    faults.events.push_back(sim::FaultEvent::smDegrade(
        0, healthy.makespan / 3.0, 0.7));
    config.faults = faults;

    config.replanOnDrift = false;
    const auto stale = core::runSystem(config, plan);
    EXPECT_EQ(stale.replans, 0);
    EXPECT_GT(stale.makespan, healthy.makespan);

    config.replanOnDrift = true;
    const auto replanned = core::runSystem(config, plan);
    EXPECT_GE(replanned.replans, 1);
    EXPECT_LT(replanned.makespan, stale.makespan)
        << "replanning must strictly beat the stale schedule";
    EXPECT_GT(replanned.makespan, healthy.makespan);
}

TEST(OnlineReplanning, HealthyRunNeverTriggers)
{
    const auto plan = preproc::makePlan(0);
    core::SystemConfig config;
    config.system = core::System::Rap;
    config.gpuCount = 4;
    config.iterations = 14;
    config.warmup = 3;
    config.replanOnDrift = true;
    const auto report = core::runSystem(config, plan);
    EXPECT_EQ(report.replans, 0);

    // And the monitor keeps the no-fault timeline untouched.
    config.replanOnDrift = false;
    const auto baseline = core::runSystem(config, plan);
    EXPECT_DOUBLE_EQ(report.makespan, baseline.makespan);
}

TEST(OnlineReplanning, FaultStatsReachTheReport)
{
    const auto plan = preproc::makePlan(0);
    core::SystemConfig config;
    config.system = core::System::Rap;
    config.gpuCount = 2;
    config.iterations = 8;
    config.warmup = 2;
    sim::FaultSpec faults;
    faults.events.push_back(sim::FaultEvent::transientKernel(
        -1, 0.0, std::numeric_limits<Seconds>::infinity(), 0.4));
    config.faults = faults;
    const auto report = core::runSystem(config, plan);
    EXPECT_GT(report.kernelRetries, 0u);
    EXPECT_GT(report.retryBackoffSeconds, 0.0);
}

} // namespace
} // namespace rap
