/**
 * @file
 * Tests for the resource-aware co-running scheduler (Algorithm 1).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/corun_scheduler.hpp"
#include "preproc/plan.hpp"

namespace rap::core {
namespace {

/** A hand-built capacity profile with known envelopes. */
CapacityProfile
syntheticProfile()
{
    CapacityProfile profile;
    auto add = [&](const char *name, Seconds duration, double sm,
                   double bw, bool comm = false) {
        OpCapacity op;
        op.name = name;
        op.comm = comm;
        op.duration = duration;
        op.capacity = duration;
        op.leftover = {sm, bw};
        profile.ops.push_back(op);
    };
    add("lookup", 200e-6, 0.8, 0.4);
    add("a2a", 150e-6, 1.0, 0.9, true);
    add("mlp_fwd", 300e-6, 0.12, 0.8);
    add("mlp_bwd", 600e-6, 0.08, 0.8);
    profile.iterationLatency = 1250e-6;
    return profile;
}

std::vector<FusedKernel>
planKernels(const HorizontalFusionPlanner &planner, int plan_id = 0)
{
    const auto plan = preproc::makePlan(plan_id);
    static std::map<int, preproc::PreprocPlan> cache;
    if (!cache.count(plan_id))
        cache.emplace(plan_id, preproc::makePlan(plan_id));
    return planner.plan(cache.at(plan_id).graph, 4096);
}

TEST(CoRunScheduler, EveryKernelScheduled)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    auto kernels = planKernels(planner);
    const std::size_t node_total = [&] {
        std::size_t n = 0;
        for (const auto &k : kernels)
            n += k.nodeIds.size();
        return n;
    }();

    const auto schedule =
        scheduler.schedule(kernels, syntheticProfile());
    std::size_t scheduled_nodes = 0;
    for (const auto &sk : schedule.kernels)
        scheduled_nodes += sk.kernel.nodeIds.size();
    EXPECT_EQ(scheduled_nodes, node_total);
}

TEST(CoRunScheduler, OpIndicesValid)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    const auto profile = syntheticProfile();
    const auto schedule =
        scheduler.schedule(planKernels(planner), profile);
    for (const auto &sk : schedule.kernels)
        EXPECT_LT(sk.opIndex, profile.ops.size());
}

TEST(CoRunScheduler, LightLoadHasNoExposure)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    const auto schedule =
        scheduler.schedule(planKernels(planner), syntheticProfile());
    EXPECT_DOUBLE_EQ(schedule.estimatedExposed, 0.0);
    EXPECT_GT(schedule.totalPreprocLatency, 0.0);
    for (const auto &sk : schedule.kernels)
        EXPECT_FALSE(sk.overflow);
}

TEST(CoRunScheduler, AssignedKernelsRespectEnvelopes)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    const auto profile = syntheticProfile();
    const auto schedule =
        scheduler.schedule(planKernels(planner), profile);
    for (const auto &sk : schedule.kernels) {
        if (sk.overflow)
            continue;
        const double slow = KernelSharder::slowdown(
            sk.kernel, profile.ops[sk.opIndex].leftover);
        EXPECT_LE(slow, KernelSharder::kMaxSlowdown + 1e-9)
            << sk.kernel.kernel.name << " on "
            << profile.ops[sk.opIndex].name;
    }
}

TEST(CoRunScheduler, OverloadReportsExposure)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    // Shrink the iteration so plan 0 cannot fit at all.
    CapacityProfile tiny;
    OpCapacity op;
    op.name = "op";
    op.duration = 10e-6;
    op.capacity = 10e-6;
    op.leftover = {0.5, 0.5};
    tiny.ops.push_back(op);
    tiny.iterationLatency = 10e-6;
    const auto schedule =
        scheduler.schedule(planKernels(planner), tiny);
    EXPECT_GT(schedule.estimatedExposed, 0.0);
    bool any_overflow = false;
    for (const auto &sk : schedule.kernels)
        any_overflow |= sk.overflow;
    EXPECT_TRUE(any_overflow);
}

TEST(CoRunScheduler, OverflowKernelsChargedLaunchOverhead)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    // Shrink the iteration so every kernel overflows: the exposed
    // estimate must then be the overflow kernels' latencies plus one
    // launch overhead each (they still launch on the training
    // process's launch path).
    CapacityProfile tiny;
    OpCapacity op;
    op.name = "op";
    op.duration = 1e-9;
    op.capacity = 0.0;
    op.leftover = {0.5, 0.5};
    tiny.ops.push_back(op);
    tiny.iterationLatency = 1e-9;
    const auto schedule =
        scheduler.schedule(planKernels(planner), tiny);

    const Seconds launch = planner.spec().kernelLaunchOverhead;
    ASSERT_GT(launch, 0.0);
    Seconds expected = 0.0;
    Seconds bare = 0.0;
    for (const auto &sk : schedule.kernels) {
        ASSERT_TRUE(sk.overflow);
        expected += sk.kernel.predictedLatency + launch;
        bare += sk.kernel.predictedLatency;
    }
    ASSERT_FALSE(schedule.kernels.empty());
    EXPECT_DOUBLE_EQ(schedule.estimatedExposed, expected);
    // The launch charge is visible: exposure strictly exceeds the
    // bare kernel latencies.
    EXPECT_GT(schedule.estimatedExposed, bare);
}

TEST(CoRunScheduler, ShardsWideKernelsAcrossLayers)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    auto kernels = planKernels(planner);
    const std::size_t kernel_count = kernels.size();
    const auto schedule =
        scheduler.schedule(std::move(kernels), syntheticProfile());
    // Sharding may only increase the kernel count.
    EXPECT_GE(schedule.kernelCount(), kernel_count);
}

TEST(CoRunScheduler, CapacityAccountingConsistent)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    const auto profile = syntheticProfile();
    const auto schedule =
        scheduler.schedule(planKernels(planner), profile);
    EXPECT_LE(schedule.capacityUsed,
              profile.totalCapacity() + 1e-9);
    EXPECT_GT(schedule.capacityUsed, 0.0);
}

TEST(CoRunScheduler, EmptyKernelListIsNoOp)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    const auto schedule = scheduler.schedule({}, syntheticProfile());
    EXPECT_TRUE(schedule.kernels.empty());
    EXPECT_DOUBLE_EQ(schedule.totalPreprocLatency, 0.0);
}

TEST(CoRunScheduler, PrefersHighCapacityLayers)
{
    HorizontalFusionPlanner planner(sim::a100Spec());
    CoRunScheduler scheduler(planner);
    const auto profile = syntheticProfile();
    const auto schedule =
        scheduler.schedule(planKernels(planner), profile);
    // mlp_bwd (index 3) has the largest capacity and must host work;
    // plan-0 preprocessing is light, so nothing should land on the
    // low-leftover mlp_fwd before the big layers fill up.
    std::set<std::size_t> used_ops;
    for (const auto &sk : schedule.kernels)
        used_ops.insert(sk.opIndex);
    EXPECT_TRUE(used_ops.count(3) || used_ops.count(1) ||
                used_ops.count(0));
}

} // namespace
} // namespace rap::core
