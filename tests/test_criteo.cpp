/**
 * @file
 * Unit and property tests for the synthetic Criteo dataset generator.
 */

#include <gtest/gtest.h>

#include "data/criteo.hpp"

namespace rap::data {
namespace {

TEST(CriteoSchema, KagglePresetMatchesTable2)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoKaggle);
    EXPECT_EQ(schema.denseCount(), 13u);
    EXPECT_EQ(schema.sparseCount(), 26u);
    EXPECT_EQ(schema.totalHashSize(), 33'700'000);
}

TEST(CriteoSchema, TerabytePresetMatchesTable2)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoTerabyte);
    EXPECT_EQ(schema.denseCount(), 13u);
    EXPECT_EQ(schema.sparseCount(), 26u);
    EXPECT_EQ(schema.totalHashSize(), 177'900'000);
}

TEST(CriteoSchema, HashSizesSkewedDescending)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoTerabyte);
    for (std::size_t i = 1; i < schema.sparseCount(); ++i)
        EXPECT_GE(schema.sparse(i - 1).hashSize,
                  schema.sparse(i).hashSize);
    // Long-tailed: the biggest table dominates the smallest.
    EXPECT_GT(schema.sparse(0).hashSize,
              10 * schema.sparse(25).hashSize);
}

/** Scaled schemas keep the preset's total hash size. */
class ScaledSchemaTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(ScaledSchemaTest, KeepsTotalHash)
{
    const auto [dense, sparse] = GetParam();
    const auto schema =
        makeScaledSchema(DatasetPreset::CriteoTerabyte, dense, sparse);
    EXPECT_EQ(schema.denseCount(), dense);
    EXPECT_EQ(schema.sparseCount(), sparse);
    EXPECT_EQ(schema.totalHashSize(), 177'900'000);
}

INSTANTIATE_TEST_SUITE_P(
    Table3Shapes, ScaledSchemaTest,
    ::testing::Values(std::make_pair(std::size_t{13}, std::size_t{26}),
                      std::make_pair(std::size_t{26}, std::size_t{52}),
                      std::make_pair(std::size_t{52}, std::size_t{104})));

TEST(CriteoGenerator, DeterministicForSeed)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoKaggle);
    CriteoGenerator a(schema, 99);
    CriteoGenerator b(schema, 99);
    auto batch_a = a.generate(64);
    auto batch_b = b.generate(64);
    for (std::size_t r = 0; r < 64; ++r) {
        EXPECT_EQ(batch_a.dense(0).isValid(r),
                  batch_b.dense(0).isValid(r));
        if (batch_a.dense(0).isValid(r)) {
            EXPECT_FLOAT_EQ(batch_a.dense(0).value(r),
                            batch_b.dense(0).value(r));
        }
        ASSERT_EQ(batch_a.sparse(0).listLength(r),
                  batch_b.sparse(0).listLength(r));
    }
}

TEST(CriteoGenerator, DifferentSeedsDiffer)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoKaggle);
    CriteoGenerator a(schema, 1);
    CriteoGenerator b(schema, 2);
    auto batch_a = a.generate(64);
    auto batch_b = b.generate(64);
    int identical = 0;
    for (std::size_t r = 0; r < 64; ++r) {
        identical += batch_a.dense(0).isValid(r) &&
                     batch_b.dense(0).isValid(r) &&
                     batch_a.dense(0).value(r) ==
                         batch_b.dense(0).value(r);
    }
    EXPECT_LT(identical, 8);
}

TEST(CriteoGenerator, NullProbabilityRespected)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoKaggle);
    CriteoGenerator gen(schema, 3);
    gen.setNullProbability(0.25);
    auto batch = gen.generate(4000);
    std::size_t nulls = 0;
    for (std::size_t f = 0; f < batch.denseCount(); ++f)
        nulls += batch.dense(f).nullCount();
    const double frac = static_cast<double>(nulls) /
                        (4000.0 * static_cast<double>(
                                      batch.denseCount()));
    EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(CriteoGenerator, DenseValuesPositiveWhenValid)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoKaggle);
    CriteoGenerator gen(schema, 4);
    auto batch = gen.generate(256);
    for (std::size_t r = 0; r < 256; ++r) {
        if (batch.dense(0).isValid(r))
            EXPECT_GT(batch.dense(0).value(r), 0.0f);
    }
}

TEST(CriteoGenerator, SparseIdsNonNegative)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoTerabyte);
    CriteoGenerator gen(schema, 5);
    auto batch = gen.generate(128);
    for (std::size_t f = 0; f < batch.sparseCount(); ++f) {
        const auto &col = batch.sparse(f);
        for (auto v : col.values())
            EXPECT_GE(v, 0);
    }
}

TEST(CriteoGenerator, ListLengthsTrackSchema)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoTerabyte);
    CriteoGenerator gen(schema, 6);
    auto batch = gen.generate(4000);
    // Feature 4 has the largest configured mean list length (8).
    const double long_avg = batch.sparse(4).avgListLength();
    const double short_avg = batch.sparse(0).avgListLength();
    EXPECT_GT(long_avg, short_avg + 1.0);
}

TEST(CriteoPreset, Names)
{
    EXPECT_EQ(datasetPresetName(DatasetPreset::CriteoKaggle),
              "Criteo Kaggle");
    EXPECT_EQ(datasetPresetName(DatasetPreset::CriteoTerabyte),
              "Criteo Terabyte");
}

} // namespace
} // namespace rap::data
