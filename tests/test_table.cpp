/**
 * @file
 * Unit tests for the ASCII table renderer.
 */

#include <gtest/gtest.h>

#include "common/table.hpp"

namespace rap {
namespace {

TEST(AsciiTable, RendersHeaderAndRows)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const auto out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(AsciiTable, ColumnsAligned)
{
    AsciiTable t({"a", "b"});
    t.addRow({"longvalue", "x"});
    const auto out = t.render();
    // Every rendered line has equal length.
    std::size_t expected = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        const auto nl = out.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        EXPECT_EQ(nl - pos, expected);
        pos = nl + 1;
    }
}

TEST(AsciiTable, NumFormatsPrecision)
{
    EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
}

TEST(AsciiTableDeath, RowArityMismatchPanics)
{
    AsciiTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace rap
