/**
 * @file
 * Tests for resource-aware fused-kernel sharding (§6.2).
 */

#include <gtest/gtest.h>

#include "core/kernel_sharding.hpp"
#include "preproc/plan.hpp"

namespace rap::core {
namespace {

struct Fixture
{
    Fixture()
        : planner(sim::a100Spec()),
          sharder(planner)
    {
        // A wide fused SigridHash over long lists: big SM footprint.
        std::vector<int> ids;
        std::vector<preproc::OpShape> shapes;
        for (int i = 0; i < 64; ++i) {
            ids.push_back(i);
            preproc::OpShape shape;
            shape.rows = 4096;
            shape.width = 1;
            shape.avgListLength = 8.0;
            shapes.push_back(shape);
        }
        wide = planner.materialise(preproc::OpType::SigridHash, ids,
                                   shapes, 0);
    }
    HorizontalFusionPlanner planner;
    KernelSharder sharder;
    FusedKernel wide;
};

TEST(KernelSharder, SlowdownComputation)
{
    Fixture f;
    // Demand known from the cost model; slowdown vs a tight envelope.
    const double demand_sm = f.wide.kernel.demand.sm;
    ASSERT_GT(demand_sm, 0.2);
    const double slow = KernelSharder::slowdown(
        f.wide, sim::ResourceDemand{demand_sm / 2.0, 1.0});
    EXPECT_NEAR(slow, 2.0, 0.05);
    // Roomy envelope: no slowdown.
    EXPECT_DOUBLE_EQ(
        KernelSharder::slowdown(f.wide, sim::ResourceDemand{1.0, 1.0}),
        1.0);
}

TEST(KernelSharder, FitsWhenRoomAndBudgetSuffice)
{
    Fixture f;
    ShardingContext roomy;
    roomy.leftover = {1.0, 1.0};
    roomy.maxLatency = 10 * f.wide.predictedLatency;
    EXPECT_TRUE(f.sharder.fits(f.wide, roomy));

    ShardingContext no_budget = roomy;
    no_budget.maxLatency = f.wide.predictedLatency / 2.0;
    EXPECT_FALSE(f.sharder.fits(f.wide, no_budget));

    ShardingContext starved = roomy;
    starved.leftover = {f.wide.kernel.demand.sm /
                            (KernelSharder::kMaxSlowdown + 1.0),
                        1.0};
    EXPECT_FALSE(f.sharder.fits(f.wide, starved));
}

TEST(KernelSharder, WholeKernelReturnedWhenFitting)
{
    Fixture f;
    ShardingContext roomy;
    roomy.leftover = {1.0, 1.0};
    roomy.maxLatency = 1.0;
    const auto result = f.sharder.shard(f.wide, roomy);
    ASSERT_TRUE(result.fitting.has_value());
    EXPECT_FALSE(result.remainder.has_value());
    EXPECT_EQ(result.fitting->width(), 64);
}

TEST(KernelSharder, SplitsAgainstTightEnvelope)
{
    Fixture f;
    ShardingContext tight;
    tight.leftover = {f.wide.kernel.demand.sm / 4.0, 1.0};
    tight.maxLatency = 1.0;
    const auto result = f.sharder.shard(f.wide, tight);
    ASSERT_TRUE(result.fitting.has_value());
    ASSERT_TRUE(result.remainder.has_value());
    // The pieces partition the members in order.
    EXPECT_EQ(result.fitting->width() + result.remainder->width(), 64);
    EXPECT_EQ(result.fitting->nodeIds.front(), 0);
    EXPECT_EQ(result.remainder->nodeIds.back(), 63);
    // The fitting piece respects the envelope.
    EXPECT_TRUE(f.sharder.fits(*result.fitting, tight));
    // The fitting piece is maximal: one more member would not fit.
    ShardingContext check = tight;
    EXPECT_FALSE(f.sharder.fits(f.wide, check));
}

TEST(KernelSharder, SplitsAgainstLatencyBudget)
{
    Fixture f;
    ShardingContext budget;
    budget.leftover = {1.0, 1.0};
    budget.maxLatency = f.wide.predictedLatency / 3.0;
    const auto result = f.sharder.shard(f.wide, budget);
    ASSERT_TRUE(result.fitting.has_value());
    ASSERT_TRUE(result.remainder.has_value());
    EXPECT_LE(result.fitting->predictedLatency,
              budget.maxLatency + 1e-12);
}

TEST(KernelSharder, NothingFitsReturnsWholeAsRemainder)
{
    Fixture f;
    ShardingContext impossible;
    impossible.leftover = {1e-4, 1e-4};
    impossible.maxLatency = 1e-9;
    const auto result = f.sharder.shard(f.wide, impossible);
    EXPECT_FALSE(result.fitting.has_value());
    ASSERT_TRUE(result.remainder.has_value());
    EXPECT_EQ(result.remainder->width(), 64);
}

TEST(KernelSharder, ShardedPiecesKeepKernelMetadata)
{
    Fixture f;
    ShardingContext tight;
    tight.leftover = {f.wide.kernel.demand.sm / 3.0, 1.0};
    tight.maxLatency = 1.0;
    const auto result = f.sharder.shard(f.wide, tight);
    ASSERT_TRUE(result.fitting.has_value());
    EXPECT_EQ(result.fitting->type, preproc::OpType::SigridHash);
    EXPECT_EQ(result.fitting->step, f.wide.step);
    EXPECT_GT(result.fitting->predictedLatency, 0.0);
    EXPECT_LT(result.fitting->kernel.demand.sm,
              f.wide.kernel.demand.sm);
}

} // namespace
} // namespace rap::core
