/**
 * @file
 * Tests for the Criteo TSV reader/writer (the data-storage substrate).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>

#include "common/rng.hpp"
#include "data/criteo.hpp"
#include "data/criteo_tsv.hpp"

namespace rap::data {
namespace {

Schema
smallSchema()
{
    Schema schema;
    schema.addDense("d0");
    schema.addDense("d1");
    schema.addSparse("s0", 1000, 2.0);
    schema.addSparse("s1", 1000, 1.0);
    return schema;
}

TEST(CriteoTsv, RoundTripPreservesEverything)
{
    const auto schema = smallSchema();
    RecordBatch batch(schema, 3);
    batch.dense(0).set(0, 1.5f);
    batch.dense(0).setNull(1);
    batch.dense(0).set(2, -2.0f);
    batch.dense(1).set(0, 7.0f);
    batch.dense(1).set(1, 8.0f);
    batch.dense(1).set(2, 9.0f);
    SparseColumn s0;
    s0.appendRow({10, 20, 30});
    s0.appendRow({});
    s0.appendRow({5});
    batch.setSparse(0, std::move(s0));
    SparseColumn s1;
    s1.appendRow({1});
    s1.appendRow({2});
    s1.appendRow({});
    batch.setSparse(1, std::move(s1));

    std::stringstream buffer;
    writeCriteoTsv(buffer, batch);
    const auto parsed = readCriteoTsv(buffer, schema);

    ASSERT_EQ(parsed.rows(), 3u);
    EXPECT_FLOAT_EQ(parsed.dense(0).value(0), 1.5f);
    EXPECT_FALSE(parsed.dense(0).isValid(1));
    EXPECT_FLOAT_EQ(parsed.dense(0).value(2), -2.0f);
    EXPECT_FLOAT_EQ(parsed.dense(1).value(2), 9.0f);
    EXPECT_EQ(parsed.sparse(0).listLength(0), 3u);
    EXPECT_EQ(parsed.sparse(0).value(0, 1), 20);
    EXPECT_EQ(parsed.sparse(0).listLength(1), 0u);
    EXPECT_EQ(parsed.sparse(1).value(1, 0), 2);
    EXPECT_EQ(parsed.sparse(1).listLength(2), 0u);
}

TEST(CriteoTsv, GeneratedBatchRoundTrips)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoKaggle);
    CriteoGenerator gen(schema, 31);
    const auto batch = gen.generate(200);

    std::stringstream buffer;
    writeCriteoTsv(buffer, batch);
    const auto parsed = readCriteoTsv(buffer, schema);

    ASSERT_EQ(parsed.rows(), batch.rows());
    for (std::size_t s = 0; s < schema.sparseCount(); ++s) {
        EXPECT_EQ(parsed.sparse(s).values(), batch.sparse(s).values());
        EXPECT_EQ(parsed.sparse(s).offsets(),
                  batch.sparse(s).offsets());
    }
    for (std::size_t f = 0; f < schema.denseCount(); ++f) {
        for (std::size_t r = 0; r < batch.rows(); ++r) {
            ASSERT_EQ(parsed.dense(f).isValid(r),
                      batch.dense(f).isValid(r));
        }
    }
}

TEST(CriteoTsv, MaxRowsLimitsReading)
{
    const auto schema = smallSchema();
    RecordBatch batch(schema, 5);
    std::stringstream buffer;
    writeCriteoTsv(buffer, batch);
    const auto parsed = readCriteoTsv(buffer, schema, 2);
    EXPECT_EQ(parsed.rows(), 2u);
}

TEST(CriteoTsv, SkipsBlankLines)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\t2.0\t3\t4\n\n5.0\t6.0\t7\t8\n");
    const auto parsed = readCriteoTsv(buffer, schema);
    EXPECT_EQ(parsed.rows(), 2u);
    EXPECT_FLOAT_EQ(parsed.dense(0).value(1), 5.0f);
}

TEST(CriteoTsv, CrlfLineEndingsRoundTrip)
{
    const auto schema = smallSchema();
    RecordBatch batch(schema, 3);
    batch.dense(0).set(0, 1.5f);
    batch.dense(0).setNull(1);
    batch.dense(0).set(2, -2.0f);
    batch.dense(1).set(0, 7.0f);
    batch.dense(1).set(1, 8.0f);
    batch.dense(1).set(2, 9.0f);
    SparseColumn s0;
    s0.appendRow({10, 20, 30});
    s0.appendRow({});
    s0.appendRow({5});
    batch.setSparse(0, std::move(s0));
    SparseColumn s1;
    s1.appendRow({1});
    s1.appendRow({2});
    s1.appendRow({}); // trailing field empty: '\r' is all that follows
    batch.setSparse(1, std::move(s1));

    std::stringstream buffer;
    writeCriteoTsv(buffer, batch);
    std::string text = buffer.str();
    // Rewrite to Windows line endings, as a file copied through a
    // CRLF platform would arrive.
    std::string crlf;
    for (char c : text) {
        if (c == '\n')
            crlf += '\r';
        crlf += c;
    }
    std::stringstream crlf_buffer(crlf);
    const auto parsed = readCriteoTsv(crlf_buffer, schema);

    ASSERT_EQ(parsed.rows(), 3u);
    EXPECT_FLOAT_EQ(parsed.dense(0).value(0), 1.5f);
    EXPECT_FALSE(parsed.dense(0).isValid(1));
    EXPECT_FLOAT_EQ(parsed.dense(0).value(2), -2.0f);
    EXPECT_FLOAT_EQ(parsed.dense(1).value(2), 9.0f);
    EXPECT_EQ(parsed.sparse(0).listLength(0), 3u);
    EXPECT_EQ(parsed.sparse(0).value(0, 1), 20);
    EXPECT_EQ(parsed.sparse(1).value(1, 0), 2);
    EXPECT_EQ(parsed.sparse(1).listLength(2), 0u);
}

TEST(CriteoTsvDeath, WrongFieldCountIsFatal)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\t2.0\t3\n");
    EXPECT_EXIT((void)readCriteoTsv(buffer, schema),
                ::testing::ExitedWithCode(1), "fields");
}

TEST(CriteoTsvDeath, MalformedIdIsFatal)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\t2.0\tabc\t4\n");
    EXPECT_EXIT((void)readCriteoTsv(buffer, schema),
                ::testing::ExitedWithCode(1), "malformed");
}

TEST(CriteoTsvDeath, MalformedDenseValueIsFatal)
{
    const auto schema = smallSchema();
    // strtof would silently accept the "1.5" prefix; the reader must
    // reject any trailing garbage in a dense field.
    std::stringstream buffer("1.5abc\t2.0\t3\t4\n");
    EXPECT_EXIT((void)readCriteoTsv(buffer, schema),
                ::testing::ExitedWithCode(1), "malformed dense");
}

TEST(CriteoTsvDeath, NonNumericDenseValueIsFatal)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\tx\t3\t4\n");
    EXPECT_EXIT((void)readCriteoTsv(buffer, schema),
                ::testing::ExitedWithCode(1), "malformed dense");
}

TEST(CriteoTsvChecked, CleanInputHasNoErrors)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\t2.0\t3\t4\n5.0\t6.0\t7\t8\n");
    const auto result = readCriteoTsvChecked(buffer, schema);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.rowsScanned, 2u);
    EXPECT_EQ(result.batch.rows(), 2u);
}

TEST(CriteoTsvChecked, MalformedRowsAreReportedNotFatal)
{
    const auto schema = smallSchema();
    // Row 0 ok; row 1 truncated; row 2 bad dense; row 3 bad sparse;
    // row 4 ok again — the reader keeps rows 0 and 4 and explains
    // the other three.
    std::stringstream buffer("1.0\t2.0\t3\t4\n"
                             "1.0\t2.0\t3\n"
                             "1.0\tx\t3\t4\n"
                             "1.0\t2.0\t3,abc\t4\n"
                             "9.0\t8.0\t7\t6\n");
    const auto result = readCriteoTsvChecked(buffer, schema);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.rowsScanned, 5u);
    ASSERT_EQ(result.batch.rows(), 2u);
    EXPECT_FLOAT_EQ(result.batch.dense(0).value(1), 9.0f);
    ASSERT_EQ(result.errors.size(), 3u);
    EXPECT_EQ(result.errors[0].row, 1u);
    EXPECT_NE(result.errors[0].message.find("fields"),
              std::string::npos);
    EXPECT_EQ(result.errors[1].row, 2u);
    EXPECT_EQ(result.errors[1].field, 1u);
    EXPECT_NE(result.errors[1].message.find("malformed dense"),
              std::string::npos);
    EXPECT_EQ(result.errors[2].row, 3u);
    EXPECT_EQ(result.errors[2].field, 2u);
    EXPECT_NE(result.errors[2].message.find("malformed sparse"),
              std::string::npos);
}

TEST(CriteoTsvChecked, EmbeddedNulIsAStructuredError)
{
    const auto schema = smallSchema();
    std::string text = "1.0\t2.0\t3\t4\n1.0\t2.0\t3\t4\n";
    text[6] = '\0'; // inside row 0's sparse field area
    std::stringstream buffer(text);
    const auto result = readCriteoTsvChecked(buffer, schema);
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_EQ(result.errors[0].row, 0u);
    EXPECT_NE(result.errors[0].message.find("NUL"),
              std::string::npos);
    EXPECT_EQ(result.batch.rows(), 1u);
}

TEST(CriteoTsvChecked, MaxRowsCountsValidRowsOnly)
{
    const auto schema = smallSchema();
    std::stringstream buffer("bad\n"
                             "1.0\t2.0\t3\t4\n"
                             "bad\n"
                             "5.0\t6.0\t7\t8\n"
                             "9.0\t9.0\t9\t9\n");
    const auto result = readCriteoTsvChecked(buffer, schema, 2);
    EXPECT_EQ(result.batch.rows(), 2u);
    EXPECT_EQ(result.errors.size(), 2u);
    EXPECT_FLOAT_EQ(result.batch.dense(0).value(1), 5.0f);
}

TEST(CriteoTsvChecked, SeededCorruptionPropertyHoldsRowAccounting)
{
    // Property: for any seeded corruption of a valid TSV dump, every
    // corrupted row is reported exactly once, every clean row is
    // committed unchanged, and scanned == committed + errors.
    const auto schema = smallSchema();
    for (std::uint64_t seed : {1ULL, 7ULL, 0xc0ffeeULL}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed);
        const std::size_t rows = 64;
        RecordBatch batch(schema, rows);
        for (std::size_t r = 0; r < rows; ++r) {
            batch.dense(0).set(r, static_cast<float>(r));
            batch.dense(1).set(r, 0.5f);
        }
        SparseColumn s0;
        SparseColumn s1;
        for (std::size_t r = 0; r < rows; ++r) {
            s0.appendRow({static_cast<std::int64_t>(r), 7});
            s1.appendRow({static_cast<std::int64_t>(2 * r)});
        }
        batch.setSparse(0, std::move(s0));
        batch.setSparse(1, std::move(s1));

        std::stringstream buffer;
        writeCriteoTsv(buffer, batch);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(buffer, line))
            lines.push_back(line);
        ASSERT_EQ(lines.size(), rows);

        std::set<std::size_t> corrupted;
        for (int k = 0; k < 12; ++k) {
            const auto r = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(rows) - 1));
            if (!corrupted.insert(r).second)
                continue;
            switch (rng.uniformInt(0, 2)) {
              case 0: // truncate: drop the last field
                lines[r] = lines[r].substr(
                    0, lines[r].find_last_of('\t'));
                break;
              case 1: // garbage token in a sparse field
                lines[r] += ",x!";
                break;
              default: // embedded NUL
                lines[r][lines[r].size() / 2] = '\0';
                break;
            }
        }
        std::string corrupted_text;
        for (const auto &l : lines)
            corrupted_text += l + "\n";
        std::stringstream corrupted_in(corrupted_text);
        const auto result =
            readCriteoTsvChecked(corrupted_in, schema);

        EXPECT_EQ(result.rowsScanned, rows);
        EXPECT_EQ(result.errors.size(), corrupted.size());
        EXPECT_EQ(result.batch.rows(), rows - corrupted.size());
        std::set<std::size_t> reported;
        for (const auto &error : result.errors)
            reported.insert(error.row);
        EXPECT_EQ(reported, corrupted);
        // Surviving rows keep their original values, in order.
        std::size_t out = 0;
        for (std::size_t r = 0; r < rows; ++r) {
            if (corrupted.count(r) != 0)
                continue;
            EXPECT_FLOAT_EQ(result.batch.dense(0).value(out),
                            static_cast<float>(r));
            ASSERT_EQ(result.batch.sparse(0).listLength(out), 2u);
            EXPECT_EQ(result.batch.sparse(0).value(out, 0),
                      static_cast<std::int64_t>(r));
            ++out;
        }
    }
}

TEST(CriteoTsv, FileRoundTrip)
{
    const auto schema = smallSchema();
    RecordBatch batch(schema, 4);
    batch.dense(0).set(0, 3.25f);
    const std::string path = "/tmp/rap_tsv_test.tsv";
    writeCriteoTsvFile(path, batch);
    const auto parsed = readCriteoTsvFile(path, schema);
    EXPECT_EQ(parsed.rows(), 4u);
    EXPECT_FLOAT_EQ(parsed.dense(0).value(0), 3.25f);
    std::remove(path.c_str());
}

TEST(CriteoTsvDeath, MissingFileIsFatal)
{
    EXPECT_EXIT((void)readCriteoTsvFile("/nonexistent/x.tsv",
                                        smallSchema()),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace rap::data
