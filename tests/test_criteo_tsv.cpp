/**
 * @file
 * Tests for the Criteo TSV reader/writer (the data-storage substrate).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/criteo.hpp"
#include "data/criteo_tsv.hpp"

namespace rap::data {
namespace {

Schema
smallSchema()
{
    Schema schema;
    schema.addDense("d0");
    schema.addDense("d1");
    schema.addSparse("s0", 1000, 2.0);
    schema.addSparse("s1", 1000, 1.0);
    return schema;
}

TEST(CriteoTsv, RoundTripPreservesEverything)
{
    const auto schema = smallSchema();
    RecordBatch batch(schema, 3);
    batch.dense(0).set(0, 1.5f);
    batch.dense(0).setNull(1);
    batch.dense(0).set(2, -2.0f);
    batch.dense(1).set(0, 7.0f);
    batch.dense(1).set(1, 8.0f);
    batch.dense(1).set(2, 9.0f);
    SparseColumn s0;
    s0.appendRow({10, 20, 30});
    s0.appendRow({});
    s0.appendRow({5});
    batch.setSparse(0, std::move(s0));
    SparseColumn s1;
    s1.appendRow({1});
    s1.appendRow({2});
    s1.appendRow({});
    batch.setSparse(1, std::move(s1));

    std::stringstream buffer;
    writeCriteoTsv(buffer, batch);
    const auto parsed = readCriteoTsv(buffer, schema);

    ASSERT_EQ(parsed.rows(), 3u);
    EXPECT_FLOAT_EQ(parsed.dense(0).value(0), 1.5f);
    EXPECT_FALSE(parsed.dense(0).isValid(1));
    EXPECT_FLOAT_EQ(parsed.dense(0).value(2), -2.0f);
    EXPECT_FLOAT_EQ(parsed.dense(1).value(2), 9.0f);
    EXPECT_EQ(parsed.sparse(0).listLength(0), 3u);
    EXPECT_EQ(parsed.sparse(0).value(0, 1), 20);
    EXPECT_EQ(parsed.sparse(0).listLength(1), 0u);
    EXPECT_EQ(parsed.sparse(1).value(1, 0), 2);
    EXPECT_EQ(parsed.sparse(1).listLength(2), 0u);
}

TEST(CriteoTsv, GeneratedBatchRoundTrips)
{
    const auto schema = makePresetSchema(DatasetPreset::CriteoKaggle);
    CriteoGenerator gen(schema, 31);
    const auto batch = gen.generate(200);

    std::stringstream buffer;
    writeCriteoTsv(buffer, batch);
    const auto parsed = readCriteoTsv(buffer, schema);

    ASSERT_EQ(parsed.rows(), batch.rows());
    for (std::size_t s = 0; s < schema.sparseCount(); ++s) {
        EXPECT_EQ(parsed.sparse(s).values(), batch.sparse(s).values());
        EXPECT_EQ(parsed.sparse(s).offsets(),
                  batch.sparse(s).offsets());
    }
    for (std::size_t f = 0; f < schema.denseCount(); ++f) {
        for (std::size_t r = 0; r < batch.rows(); ++r) {
            ASSERT_EQ(parsed.dense(f).isValid(r),
                      batch.dense(f).isValid(r));
        }
    }
}

TEST(CriteoTsv, MaxRowsLimitsReading)
{
    const auto schema = smallSchema();
    RecordBatch batch(schema, 5);
    std::stringstream buffer;
    writeCriteoTsv(buffer, batch);
    const auto parsed = readCriteoTsv(buffer, schema, 2);
    EXPECT_EQ(parsed.rows(), 2u);
}

TEST(CriteoTsv, SkipsBlankLines)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\t2.0\t3\t4\n\n5.0\t6.0\t7\t8\n");
    const auto parsed = readCriteoTsv(buffer, schema);
    EXPECT_EQ(parsed.rows(), 2u);
    EXPECT_FLOAT_EQ(parsed.dense(0).value(1), 5.0f);
}

TEST(CriteoTsv, CrlfLineEndingsRoundTrip)
{
    const auto schema = smallSchema();
    RecordBatch batch(schema, 3);
    batch.dense(0).set(0, 1.5f);
    batch.dense(0).setNull(1);
    batch.dense(0).set(2, -2.0f);
    batch.dense(1).set(0, 7.0f);
    batch.dense(1).set(1, 8.0f);
    batch.dense(1).set(2, 9.0f);
    SparseColumn s0;
    s0.appendRow({10, 20, 30});
    s0.appendRow({});
    s0.appendRow({5});
    batch.setSparse(0, std::move(s0));
    SparseColumn s1;
    s1.appendRow({1});
    s1.appendRow({2});
    s1.appendRow({}); // trailing field empty: '\r' is all that follows
    batch.setSparse(1, std::move(s1));

    std::stringstream buffer;
    writeCriteoTsv(buffer, batch);
    std::string text = buffer.str();
    // Rewrite to Windows line endings, as a file copied through a
    // CRLF platform would arrive.
    std::string crlf;
    for (char c : text) {
        if (c == '\n')
            crlf += '\r';
        crlf += c;
    }
    std::stringstream crlf_buffer(crlf);
    const auto parsed = readCriteoTsv(crlf_buffer, schema);

    ASSERT_EQ(parsed.rows(), 3u);
    EXPECT_FLOAT_EQ(parsed.dense(0).value(0), 1.5f);
    EXPECT_FALSE(parsed.dense(0).isValid(1));
    EXPECT_FLOAT_EQ(parsed.dense(0).value(2), -2.0f);
    EXPECT_FLOAT_EQ(parsed.dense(1).value(2), 9.0f);
    EXPECT_EQ(parsed.sparse(0).listLength(0), 3u);
    EXPECT_EQ(parsed.sparse(0).value(0, 1), 20);
    EXPECT_EQ(parsed.sparse(1).value(1, 0), 2);
    EXPECT_EQ(parsed.sparse(1).listLength(2), 0u);
}

TEST(CriteoTsvDeath, WrongFieldCountIsFatal)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\t2.0\t3\n");
    EXPECT_EXIT((void)readCriteoTsv(buffer, schema),
                ::testing::ExitedWithCode(1), "fields");
}

TEST(CriteoTsvDeath, MalformedIdIsFatal)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\t2.0\tabc\t4\n");
    EXPECT_EXIT((void)readCriteoTsv(buffer, schema),
                ::testing::ExitedWithCode(1), "malformed");
}

TEST(CriteoTsvDeath, MalformedDenseValueIsFatal)
{
    const auto schema = smallSchema();
    // strtof would silently accept the "1.5" prefix; the reader must
    // reject any trailing garbage in a dense field.
    std::stringstream buffer("1.5abc\t2.0\t3\t4\n");
    EXPECT_EXIT((void)readCriteoTsv(buffer, schema),
                ::testing::ExitedWithCode(1), "malformed dense");
}

TEST(CriteoTsvDeath, NonNumericDenseValueIsFatal)
{
    const auto schema = smallSchema();
    std::stringstream buffer("1.0\tx\t3\t4\n");
    EXPECT_EXIT((void)readCriteoTsv(buffer, schema),
                ::testing::ExitedWithCode(1), "malformed dense");
}

TEST(CriteoTsv, FileRoundTrip)
{
    const auto schema = smallSchema();
    RecordBatch batch(schema, 4);
    batch.dense(0).set(0, 3.25f);
    const std::string path = "/tmp/rap_tsv_test.tsv";
    writeCriteoTsvFile(path, batch);
    const auto parsed = readCriteoTsvFile(path, schema);
    EXPECT_EQ(parsed.rows(), 4u);
    EXPECT_FLOAT_EQ(parsed.dense(0).value(0), 3.25f);
    std::remove(path.c_str());
}

TEST(CriteoTsvDeath, MissingFileIsFatal)
{
    EXPECT_EXIT((void)readCriteoTsvFile("/nonexistent/x.tsv",
                                        smallSchema()),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace rap::data
