/**
 * @file
 * Slow fleet suite: the full-size arrival trace under every policy,
 * the headline acceptance comparison (envelope sharing must beat
 * exclusive placement on mean JCT and cluster utilisation), and a
 * fault storm that degrades several GPUs mid-run.
 */

#include <gtest/gtest.h>

#include "fleet/fleet.hpp"

namespace rap::fleet {
namespace {

std::vector<JobSpec>
fullTrace()
{
    ArrivalTraceOptions options;
    options.jobCount = 14;
    options.meanInterarrival = 0.005;
    return makeArrivalTrace(options);
}

FleetReport
runPolicy(const std::vector<JobSpec> &trace, PlacementPolicy policy,
          ThreadPool &pool)
{
    FleetOptions options;
    options.placement.policy = policy;
    return runFleet(trace, options, &pool);
}

TEST(FleetStress, SharedBeatsExclusiveOnJctAndUtilisation)
{
    const auto trace = fullTrace();
    ThreadPool pool(4);
    const auto exclusive =
        runPolicy(trace, PlacementPolicy::ExclusiveFirstFit, pool);
    const auto best_fit =
        runPolicy(trace, PlacementPolicy::ExclusiveBestFit, pool);
    const auto shared =
        runPolicy(trace, PlacementPolicy::RapShared, pool);

    for (const auto *report : {&exclusive, &best_fit, &shared}) {
        SCOPED_TRACE(policyName(report->policy));
        ASSERT_EQ(report->jobs.size(), trace.size());
        for (const auto &job : report->jobs)
            EXPECT_GT(job.finish, 0.0) << job.spec.name;
        EXPECT_GT(report->makespan, 0.0);
    }

    // The paper's headline at fleet scale: envelope sharing turns
    // queueing delay into co-location, improving both completion time
    // and how much of the node actually does work.
    EXPECT_LT(shared.meanJct, exclusive.meanJct);
    EXPECT_GT(shared.clusterSmUtil, exclusive.clusterSmUtil);
    EXPECT_LT(shared.meanQueueingDelay, exclusive.meanQueueingDelay);
    // Spatial sharing optimises completion time, not makespan: a job
    // that accepted a slice instead of queueing may finish last. Allow
    // a bounded tail stretch.
    EXPECT_LE(shared.makespan, 1.10 * exclusive.makespan);
}

TEST(FleetStress, FaultStormStillFinishesEveryJob)
{
    const auto trace = fullTrace();
    ThreadPool pool(4);
    const auto healthy =
        runPolicy(trace, PlacementPolicy::RapShared, pool);

    FleetOptions options;
    options.placement.policy = PlacementPolicy::RapShared;
    const Seconds span = healthy.makespan;
    options.faults.events.push_back(
        sim::FaultEvent::smDegrade(0, span * 0.2, 0.6));
    options.faults.events.push_back(
        sim::FaultEvent::hbmDegrade(3, span * 0.35, 0.7));
    options.faults.events.push_back(
        sim::FaultEvent::smDegrade(5, span * 0.5, 0.5));
    const auto stormy = runFleet(trace, options, &pool);

    ASSERT_EQ(stormy.jobs.size(), trace.size());
    for (const auto &job : stormy.jobs) {
        SCOPED_TRACE(job.spec.name);
        EXPECT_GT(job.finish, 0.0);
        EXPECT_GE(job.firstStart, job.spec.arrival);
        EXPECT_GT(job.serviceTime, 0.0);
    }
    // Losing capacity can only stretch the schedule.
    EXPECT_GE(stormy.makespan, healthy.makespan);
    // And the storm must actually have preempted someone, or the
    // requeue path went untested.
    EXPECT_GE(stormy.requeues, 1);

    // Degraded runs stay deterministic too.
    const auto again = runFleet(trace, options, &pool);
    EXPECT_EQ(again.makespan, stormy.makespan);
    EXPECT_EQ(again.requeues, stormy.requeues);
    EXPECT_EQ(again.renderSummary(), stormy.renderSummary());
}

} // namespace
} // namespace rap::fleet
