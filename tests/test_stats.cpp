/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace rap {
namespace {

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation)
{
    const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, -3.0};
    RunningStat s;
    double sum = 0.0;
    for (double x : xs) {
        s.add(x);
        sum += x;
    }
    const double mean = sum / static_cast<double>(xs.size());
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size() - 1); // sample variance

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 16.0);
    EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStat, MergeEqualsSequential)
{
    Rng rng(5);
    RunningStat whole, left, right;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.normal(3.0, 7.0);
        whole.add(x);
        (i < 200 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStat, Reset)
{
    RunningStat s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Percentile, Empty)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, MedianAndExtremes)
{
    const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(Percentile, Interpolates)
{
    const std::vector<double> xs = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, SingleSample)
{
    const std::vector<double> xs = {42.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 42.0);
}

TEST(Percentile, ExactRankNotInflatedByFloatDrift)
{
    // Regression: a nearest-rank implementation computed the index as
    // ceil(q * n) with q = 0.95 and n = 20, where 0.95 * 20 rounds to
    // 19.000000000000004 in binary floating point; the ceil pushed the
    // index one past the true rank and overstated the percentile. The
    // interpolated definition lands exactly on rank 0.95 * (n - 1).
    std::vector<double> xs(20);
    for (int i = 0; i < 20; ++i)
        xs[static_cast<std::size_t>(i)] = static_cast<double>(i + 1);
    EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 19.05);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 10.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 20.0);
}

TEST(Percentile, TailHelpersForwardToPercentile)
{
    std::vector<double> xs(101);
    for (int i = 0; i <= 100; ++i)
        xs[static_cast<std::size_t>(i)] = static_cast<double>(i);
    EXPECT_DOUBLE_EQ(p50(xs), 50.0);
    EXPECT_DOUBLE_EQ(p95(xs), 95.0);
    EXPECT_DOUBLE_EQ(p99(xs), 99.0);
    EXPECT_DOUBLE_EQ(p50({}), 0.0);
    EXPECT_DOUBLE_EQ(p95({}), 0.0);
    EXPECT_DOUBLE_EQ(p99({}), 0.0);
}

TEST(GeoMean, Basics)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_NEAR(geoMean({4.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace rap
