/**
 * @file
 * Unit and stress tests for the deterministic thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"

namespace rap {
namespace {

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPool, ZeroPicksHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareThreads());
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        const std::size_t n = 257;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](std::size_t i) { hits[i]++; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, EmptyAndSingletonLoops)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MapReturnsSubmissionOrder)
{
    ThreadPool serial(1);
    ThreadPool parallel(4);
    const std::size_t n = 101;
    const auto square = [](std::size_t i) {
        return static_cast<int>(i * i);
    };
    const auto a = serial.parallelMap<int>(n, square);
    const auto b = parallel.parallelMap<int>(n, square);
    ASSERT_EQ(a.size(), n);
    EXPECT_EQ(a, b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i], static_cast<int>(i * i));
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        try {
            pool.parallelFor(64, [&](std::size_t i) {
                if (i % 7 == 3)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
            });
            FAIL() << "parallelFor swallowed the exception";
        } catch (const std::runtime_error &e) {
            // First throwing index in submission order is 3.
            EXPECT_STREQ(e.what(), "task 3");
        }
    }
}

TEST(ThreadPool, UsableAfterException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     8,
                     [](std::size_t) {
                         throw std::logic_error("boom");
                     }),
                 std::logic_error);
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](std::size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedLoopsRunInline)
{
    ThreadPool pool(4);
    const std::size_t outer = 8;
    const std::size_t inner = 16;
    std::vector<std::atomic<int>> hits(outer * inner);
    pool.parallelFor(outer, [&](std::size_t o) {
        // Nested call on the same pool must degrade to inline serial
        // execution instead of deadlocking on the pool's own workers.
        pool.parallelFor(inner, [&](std::size_t i) {
            hits[o * inner + i]++;
        });
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
}

TEST(ThreadPoolStress, ManyBatchesStayConsistent)
{
    ThreadPool pool(4);
    for (std::size_t n : {1u, 2u, 3u, 17u, 64u, 255u, 1024u}) {
        for (int round = 0; round < 50; ++round) {
            const auto out = pool.parallelMap<std::size_t>(
                n, [](std::size_t i) { return i + 1; });
            const std::size_t sum =
                std::accumulate(out.begin(), out.end(),
                                std::size_t{0});
            EXPECT_EQ(sum, n * (n + 1) / 2) << "n=" << n;
        }
    }
}

TEST(ThreadPoolStress, InterleavedWorkAndExceptions)
{
    ThreadPool pool(4);
    for (int round = 0; round < 100; ++round) {
        if (round % 3 == 0) {
            EXPECT_THROW(
                pool.parallelFor(32,
                                 [&](std::size_t i) {
                                     if (i == 31)
                                         throw std::runtime_error(
                                             "tail");
                                 }),
                std::runtime_error);
        } else {
            std::atomic<int> count{0};
            pool.parallelFor(32, [&](std::size_t) { count++; });
            EXPECT_EQ(count.load(), 32);
        }
    }
}

} // namespace
} // namespace rap
