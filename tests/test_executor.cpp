/**
 * @file
 * Tests for the host graph executor and the shape/latency helpers.
 */

#include <gtest/gtest.h>

#include "data/criteo.hpp"
#include "preproc/executor.hpp"
#include "preproc/plan.hpp"

namespace rap::preproc {
namespace {

TEST(Executor, ApplyGraphIsDeterministic)
{
    const auto plan = makePlan(2);
    data::CriteoGenerator gen_a(plan.schema, 77);
    data::CriteoGenerator gen_b(plan.schema, 77);
    auto batch_a = gen_a.generate(128);
    auto batch_b = gen_b.generate(128);
    applyGraph(plan.graph, batch_a);
    applyGraph(plan.graph, batch_b);
    for (std::size_t f = 0; f < batch_a.denseCount(); ++f) {
        EXPECT_EQ(batch_a.dense(f).values(),
                  batch_b.dense(f).values());
    }
    for (std::size_t s = 0; s < batch_a.sparseCount(); ++s) {
        EXPECT_EQ(batch_a.sparse(s).values(),
                  batch_b.sparse(s).values());
        EXPECT_EQ(batch_a.sparse(s).offsets(),
                  batch_b.sparse(s).offsets());
    }
}

TEST(Executor, AllPlansExecuteOnRealData)
{
    for (int plan_id : {0, 1, 2, 3}) {
        const auto plan = makePlan(plan_id);
        data::CriteoGenerator gen(plan.schema, 5);
        auto batch = gen.generate(64);
        applyGraph(plan.graph, batch);
        EXPECT_EQ(batch.rows(), 64u) << "plan " << plan_id;
        // Every hash-bounded sparse id is inside its hash space.
        for (std::size_t s = 0; s < plan.schema.sparseCount(); ++s) {
            for (auto id : batch.sparse(s).values())
                ASSERT_GE(id, 0) << "plan " << plan_id;
        }
    }
}

TEST(Executor, NodeShapeReflectsSchema)
{
    const auto plan = makePlan(1);
    const auto sparse_nodes =
        plan.graph.featureNodes(sparseFeatureId(plan.schema, 4));
    const auto shape = nodeShape(plan.graph.node(sparse_nodes.front()),
                                 plan.schema, 4096);
    EXPECT_EQ(shape.rows, 4096);
    EXPECT_EQ(shape.width, 1);
    EXPECT_DOUBLE_EQ(shape.avgListLength,
                     plan.schema.sparse(4).avgListLength);
}

TEST(Executor, NgramShapeAccountsForAllInputs)
{
    const auto plan = makePlan(1);
    OpNode ngram;
    ngram.type = OpType::Ngram;
    ngram.inputs = {ColumnRef{data::FeatureKind::Sparse, 4},
                    ColumnRef{data::FeatureKind::Sparse, 5}};
    ngram.output = ngram.inputs.front();
    ngram.featureId = sparseFeatureId(plan.schema, 4);
    const auto shape = nodeShape(ngram, plan.schema, 4096);
    EXPECT_DOUBLE_EQ(shape.avgListLength,
                     plan.schema.sparse(4).avgListLength * 2.0);
}

TEST(Executor, GraphExclusiveLatencyScalesWithPlanSize)
{
    const auto spec = sim::a100Spec();
    const Seconds small =
        graphExclusiveLatency(makePlan(0).graph, 4096, spec);
    const Seconds large =
        graphExclusiveLatency(makePlan(3).graph, 4096, spec);
    EXPECT_GT(small, 0.0);
    EXPECT_GT(large, 3.0 * small);
}

TEST(Executor, GraphExclusiveLatencyScalesWithBatch)
{
    const auto spec = sim::a100Spec();
    const auto plan = makePlan(2);
    EXPECT_GE(graphExclusiveLatency(plan.graph, 65536, spec),
              graphExclusiveLatency(plan.graph, 1024, spec));
}

} // namespace
} // namespace rap::preproc
