/**
 * @file
 * Property-based tests on the simulator's contention model: invariants
 * that must hold for arbitrary randomly generated kernel mixes.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/cluster.hpp"

namespace rap::sim {
namespace {

struct RandomMix
{
    std::vector<KernelDesc> kernels;
    std::vector<int> priorities;
};

RandomMix
makeMix(std::uint64_t seed)
{
    Rng rng(seed);
    RandomMix mix;
    const int n = static_cast<int>(rng.uniformInt(2, 6));
    for (int i = 0; i < n; ++i) {
        mix.kernels.push_back(KernelDesc::synthetic(
            "k" + std::to_string(i),
            rng.uniform(20e-6, 400e-6),
            ResourceDemand{rng.uniform(0.05, 0.95),
                           rng.uniform(0.05, 0.95)}));
        mix.priorities.push_back(
            static_cast<int>(rng.uniformInt(0, 1)));
    }
    return mix;
}

class ContentionPropertyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ContentionPropertyTest, MakespanBounds)
{
    const auto mix = makeMix(GetParam());
    Cluster cluster(dgxA100Spec(1));
    const Seconds launch = cluster.spec().gpu.kernelLaunchOverhead;

    Seconds max_exclusive = 0.0;
    Seconds sum_exclusive = 0.0;
    for (std::size_t i = 0; i < mix.kernels.size(); ++i) {
        auto &stream = cluster.device(0).newStream(
            "s" + std::to_string(i), static_cast<int>(i),
            mix.priorities[i]);
        stream.pushKernel(mix.kernels[i]);
        max_exclusive = std::max(max_exclusive,
                                 mix.kernels[i].exclusiveLatency);
        sum_exclusive += mix.kernels[i].exclusiveLatency;
    }
    cluster.run();
    const Seconds makespan = cluster.engine().now();

    // Lower bound: no kernel can beat its exclusive latency.
    EXPECT_GE(makespan + 1e-12, max_exclusive + launch);
    // Upper bound: even full serialisation (rate floor aside) cannot
    // exceed the sum by more than the starvation allowance.
    EXPECT_LE(makespan, sum_exclusive / 0.02 + launch * 10);
    for (const auto &record : cluster.device(0).trace().kernels()) {
        EXPECT_GE(record.duration() + 1e-12,
                  record.exclusiveLatency);
    }
}

TEST_P(ContentionPropertyTest, UtilisationNeverExceedsCapacity)
{
    const auto mix = makeMix(GetParam());
    Cluster cluster(dgxA100Spec(1));
    for (std::size_t i = 0; i < mix.kernels.size(); ++i) {
        cluster.device(0)
            .newStream("s" + std::to_string(i), static_cast<int>(i),
                       mix.priorities[i])
            .pushKernel(mix.kernels[i]);
    }
    cluster.run();
    for (const auto &segment :
         cluster.device(0).trace().segments()) {
        EXPECT_LE(segment.smUsage, 1.0 + 1e-9);
        EXPECT_LE(segment.bwUsage, 1.0 + 1e-9);
        EXPECT_GE(segment.smUsage, 0.0);
        EXPECT_GE(segment.bwUsage, 0.0);
    }
}

TEST_P(ContentionPropertyTest, HighPriorityNeverStretchedByLow)
{
    const auto mix = makeMix(GetParam());
    Cluster cluster(dgxA100Spec(1));
    // One high-priority kernel against the rest at low priority.
    auto &high = cluster.device(0).newStream("high", 0, 0);
    high.pushKernel(mix.kernels.front());
    for (std::size_t i = 1; i < mix.kernels.size(); ++i) {
        cluster.device(0)
            .newStream("low" + std::to_string(i),
                       static_cast<int>(i), 1)
            .pushKernel(mix.kernels[i]);
    }
    cluster.run();
    for (const auto &record : cluster.device(0).trace().kernels()) {
        if (record.stream == "high")
            EXPECT_NEAR(record.stretch(), 0.0, 1e-9);
    }
}

TEST_P(ContentionPropertyTest, WorkConservation)
{
    // Total useful work (sum of exclusive latencies weighted by
    // demand) equals the integral of recorded usage.
    const auto mix = makeMix(GetParam());
    Cluster cluster(dgxA100Spec(1));
    double expected_sm_area = 0.0;
    for (std::size_t i = 0; i < mix.kernels.size(); ++i) {
        cluster.device(0)
            .newStream("s" + std::to_string(i), static_cast<int>(i),
                       mix.priorities[i])
            .pushKernel(mix.kernels[i]);
        expected_sm_area += mix.kernels[i].exclusiveLatency *
                            mix.kernels[i].demand.sm;
    }
    cluster.run();
    double recorded_area = 0.0;
    for (const auto &segment :
         cluster.device(0).trace().segments()) {
        recorded_area +=
            (segment.end - segment.begin) * segment.smUsage;
    }
    // The capped usage recording may under-report oversubscribed
    // instants, so recorded <= expected always; equality when no
    // instant capped. Allow the cap-induced slack.
    EXPECT_LE(recorded_area, expected_sm_area + 1e-9);
    EXPECT_GE(recorded_area, 0.5 * expected_sm_area);
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, ContentionPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

} // namespace
} // namespace rap::sim
