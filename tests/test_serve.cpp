/**
 * @file
 * Inference-serving tests: hardened exponential gaps, the open-loop
 * time-varying request generator, the max-batch/max-wait batching
 * replay, SLO accounting, and the fleet integration (mixed
 * training + serving traces, SLO admission, JSON round-trips, and
 * thread-count invariance of the serving columns).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "obs/snapshot.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"
#include "serve/slo.hpp"

namespace rap {
namespace {

// ---------------------------------------------------------------- rng

TEST(ExponentialGap, ZeroUniformStillAdvances)
{
    // Regression: the inverse transform -mean*log(1-u) returns exactly
    // 0 at u == 0, which froze the arrival clock and produced
    // duplicate timestamps. The hardened version floors the gap at a
    // strictly positive fraction of the mean.
    const double gap = exponentialGap(0.0, 0.5);
    EXPECT_GT(gap, 0.0);
    EXPECT_DOUBLE_EQ(gap, 0.5 * 1e-9);
}

TEST(ExponentialGap, NearOneUniformStaysFinite)
{
    const double u = std::nextafter(1.0, 0.0);
    const double gap = exponentialGap(u, 2.0);
    EXPECT_TRUE(std::isfinite(gap));
    EXPECT_GT(gap, 0.0);
}

TEST(ExponentialGap, MatchesInverseTransform)
{
    // Away from the floor the hardening must not perturb the draw.
    EXPECT_DOUBLE_EQ(exponentialGap(0.5, 1.0), -std::log1p(-0.5));
    EXPECT_DOUBLE_EQ(exponentialGap(0.5, 3.0),
                     3.0 * exponentialGap(0.5, 1.0));
    EXPECT_LT(exponentialGap(0.25, 1.0), exponentialGap(0.75, 1.0));
}

// ---------------------------------------------------- request traces

TEST(RequestTrace, RateModulationSweepsAroundMean)
{
    serve::RequestTraceOptions options;
    options.qps = 1000.0;
    options.qpsAmplitude = 0.5;
    options.qpsPeriod = 0.02;
    EXPECT_DOUBLE_EQ(serve::rateAt(options, 0.0), 1000.0);
    EXPECT_NEAR(serve::rateAt(options, 0.005), 1500.0, 1e-6);
    EXPECT_NEAR(serve::rateAt(options, 0.015), 500.0, 1e-6);
}

TEST(RequestTrace, SeededAndStrictlyIncreasing)
{
    serve::RequestTraceOptions options;
    options.qps = 5000.0;
    options.duration = 0.02;
    const auto a = serve::makeRequestTrace(options);
    const auto b = serve::makeRequestTrace(options);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(a[i], 0.0);
        EXPECT_LT(a[i], options.duration);
        if (i > 0)
            EXPECT_GT(a[i], a[i - 1]) << "tie at request " << i;
    }

    options.seed ^= 0x1234ULL;
    EXPECT_NE(serve::makeRequestTrace(options), a)
        << "different seeds gave identical request traces";
}

TEST(RequestTrace, AdversarialSeedsNeverProduceTies)
{
    // Regression sweep for the arrival-clock hardening: at high rates
    // the exponential gaps approach the double-precision spacing of
    // the clock, where an unguarded `clock += gap` can round to a
    // duplicate timestamp. Strict monotonicity must hold for every
    // seed, not just the default.
    serve::RequestTraceOptions options;
    options.qps = 2.0e6;
    options.qpsAmplitude = 0.9;
    options.qpsPeriod = 0.001;
    options.duration = 0.002;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        options.seed = 0x5eedba5eULL + seed;
        const auto trace = serve::makeRequestTrace(options);
        ASSERT_GT(trace.size(), 1000u) << "seed " << seed;
        for (std::size_t i = 1; i < trace.size(); ++i) {
            ASSERT_GT(trace[i], trace[i - 1])
                << "seed " << seed << " tie at request " << i;
        }
    }
}

// ---------------------------------------------------------- batching

serve::ServiceModel
testModel()
{
    serve::ServiceModel model;
    model.fullBatchLatency = 0.002;
    model.profileBatch = 256;
    model.fixedFraction = 0.35;
    return model;
}

TEST(ServiceModel, InterpolatesBetweenFixedAndPerRowCost)
{
    const auto model = testModel();
    EXPECT_DOUBLE_EQ(model.serviceSeconds(256), 0.002);
    EXPECT_DOUBLE_EQ(model.serviceSeconds(1),
                     0.002 * (0.35 + 0.65 * (1.0 / 256.0)));
    EXPECT_LT(model.serviceSeconds(1), model.serviceSeconds(256));
    EXPECT_GT(model.serviceSeconds(1), 0.35 * 0.002)
        << "the fixed fraction never amortises away";
}

TEST(BatchReplay, EmptyTraceIsANoOp)
{
    const auto replay = serve::replayBatches({}, {}, testModel(), 1.5);
    EXPECT_TRUE(replay.latencies.empty());
    EXPECT_TRUE(replay.batchSizes.empty());
    EXPECT_DOUBLE_EQ(replay.lastCompletion, 1.5);
}

TEST(BatchReplay, FullBatchLaunchesWithoutWaitingOut)
{
    serve::BatchingWindow window;
    window.maxBatch = 2;
    window.maxWait = 0.01;
    const auto model = testModel();
    const auto replay =
        serve::replayBatches({0.0, 0.001}, window, model, 0.0);
    ASSERT_EQ(replay.batchSizes, (std::vector<int>{2}));
    // The batch launches the instant it fills (at the second
    // arrival), not at the 0.01 wait bound.
    const Seconds done = 0.001 + model.serviceSeconds(2);
    ASSERT_EQ(replay.latencies.size(), 2u);
    EXPECT_DOUBLE_EQ(replay.latencies[0], done);
    EXPECT_DOUBLE_EQ(replay.latencies[1], done - 0.001);
    EXPECT_DOUBLE_EQ(replay.lastCompletion, done);
}

TEST(BatchReplay, LoneRequestLaunchesAtTheWaitBound)
{
    serve::BatchingWindow window;
    window.maxBatch = 64;
    window.maxWait = 0.0005;
    const auto model = testModel();
    const auto replay = serve::replayBatches({0.0}, window, model, 0.0);
    ASSERT_EQ(replay.batchSizes, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(replay.latencies[0],
                     0.0005 + model.serviceSeconds(1));
}

TEST(BatchReplay, BusyExecutorLaunchesBackloggedBatchImmediately)
{
    // Requests that queued while the executor was busy are already
    // past their wait bound: the next batch launches the moment the
    // executor frees up, with everything that has arrived by then.
    serve::BatchingWindow window;
    window.maxBatch = 64;
    window.maxWait = 0.0005;
    const auto model = testModel();
    const auto replay =
        serve::replayBatches({0.0, 0.0001}, window, model, 0.01);
    ASSERT_EQ(replay.batchSizes, (std::vector<int>{2}));
    const Seconds done = 0.01 + model.serviceSeconds(2);
    EXPECT_DOUBLE_EQ(replay.latencies[0], done);
    EXPECT_DOUBLE_EQ(replay.latencies[1], done - 0.0001);
}

TEST(BatchReplay, NeverExceedsMaxBatchAndServesEveryRequest)
{
    serve::RequestTraceOptions options;
    options.qps = 20000.0;
    options.duration = 0.01;
    const auto arrivals = serve::makeRequestTrace(options);
    serve::BatchingWindow window;
    window.maxBatch = 4;
    window.maxWait = 0.0002;
    const auto replay =
        serve::replayBatches(arrivals, window, testModel(), 0.0);
    EXPECT_EQ(replay.latencies.size(), arrivals.size());
    std::size_t batched = 0;
    for (const int size : replay.batchSizes) {
        EXPECT_GE(size, 1);
        EXPECT_LE(size, window.maxBatch);
        batched += static_cast<std::size_t>(size);
    }
    EXPECT_EQ(batched, arrivals.size());
    for (const Seconds latency : replay.latencies)
        EXPECT_GT(latency, 0.0);
}

// --------------------------------------------------------------- slo

TEST(SloStats, CountsAttainmentAgainstTheObjective)
{
    const std::vector<Seconds> latencies = {0.001, 0.002, 0.003,
                                            0.004, 0.005};
    const auto stats = serve::computeSloStats(latencies, 2, 0.003);
    EXPECT_EQ(stats.requests, 5u);
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.attained, 3u);
    EXPECT_DOUBLE_EQ(stats.sloLatency, 0.003);
    EXPECT_DOUBLE_EQ(stats.attainment(), 0.6);
    EXPECT_DOUBLE_EQ(stats.p50, 0.003);
    EXPECT_GT(stats.p99, stats.p95 - 1e-15);
}

TEST(SloStats, EmptyWindowAttainsVacuously)
{
    const auto stats = serve::computeSloStats({}, 0, 0.004);
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_DOUBLE_EQ(stats.attainment(), 1.0);
    EXPECT_DOUBLE_EQ(stats.p50, 0.0);
    EXPECT_DOUBLE_EQ(stats.p99, 0.0);
}

// ------------------------------------------------- fleet integration

fleet::ArrivalTraceOptions
mixedTraceOptions()
{
    fleet::ArrivalTraceOptions options;
    options.tiny = true;
    options.jobCount = 2;
    options.meanInterarrival = 0.004;
    options.seed = 0x7e577e5702ULL;
    options.serving.jobCount = 2;
    options.serving.meanInterarrival = 0.005;
    options.serving.qps = 2000.0;
    options.serving.duration = 0.02;
    return options;
}

TEST(FleetServe, MixedTraceServesEveryRequest)
{
    const auto trace = fleet::makeArrivalTrace(mixedTraceOptions());
    int inference_jobs = 0;
    for (const auto &spec : trace)
        inference_jobs += spec.kind == fleet::JobKind::Inference;
    ASSERT_EQ(inference_jobs, 2);

    const auto report =
        fleet::FleetRequest(trace)
            .policy(fleet::PlacementPolicy::RapShared)
            .run();

    std::uint64_t requests = 0, attained = 0;
    for (const auto &job : report.jobs) {
        SCOPED_TRACE(job.spec.name);
        EXPECT_GT(job.finish, 0.0);
        if (job.spec.kind == fleet::JobKind::Inference) {
            ASSERT_TRUE(job.serve.has_value());
            EXPECT_GT(job.serve->requests, 0u);
            EXPECT_GT(job.serve->batches, 0u);
            EXPECT_LE(job.serve->attained, job.serve->requests);
            EXPECT_GT(job.serve->p50, 0.0);
            EXPECT_LE(job.serve->p50, job.serve->p99);
            EXPECT_DOUBLE_EQ(job.serve->sloLatency,
                             job.spec.sloLatency);
            requests += job.serve->requests;
            attained += job.serve->attained;
        } else {
            EXPECT_FALSE(job.serve.has_value())
                << "training jobs must not report serving stats";
        }
    }
    EXPECT_EQ(report.serveRequests, requests);
    EXPECT_EQ(report.serveAttained, attained);
    EXPECT_GT(report.serveBatches, 0u);
    ASSERT_TRUE(report.serveAttainment.has_value());
    EXPECT_NEAR(*report.serveAttainment,
                static_cast<double>(attained) /
                    static_cast<double>(requests),
                1e-12);
    ASSERT_TRUE(report.serveGoodputRps.has_value());
    EXPECT_GT(*report.serveGoodputRps, 0.0);
    ASSERT_TRUE(report.serveP99Latency.has_value());
    EXPECT_GE(*report.serveP99Latency, *report.serveP50Latency);
}

TEST(FleetServe, ReportJsonRoundTripsServingFields)
{
    const auto trace = fleet::makeArrivalTrace(mixedTraceOptions());
    const auto report =
        fleet::FleetRequest(trace)
            .policy(fleet::PlacementPolicy::RapShared)
            .run();
    ASSERT_GT(report.serveRequests, 0u);

    const std::string text = report.toJson().dump(2);
    std::string error;
    const Json reparsed = Json::parse(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    const auto restored = fleet::FleetReport::fromJson(reparsed);
    EXPECT_EQ(restored.toJson().dump(2), text);

    EXPECT_EQ(restored.serveRequests, report.serveRequests);
    EXPECT_EQ(restored.serveBatches, report.serveBatches);
    EXPECT_EQ(restored.serveAttained, report.serveAttained);
    EXPECT_EQ(restored.serveAttainment, report.serveAttainment);
    EXPECT_EQ(restored.serveGoodputRps, report.serveGoodputRps);
    EXPECT_EQ(restored.serveP50Latency, report.serveP50Latency);
    EXPECT_EQ(restored.serveP95Latency, report.serveP95Latency);
    EXPECT_EQ(restored.serveP99Latency, report.serveP99Latency);
    ASSERT_EQ(restored.jobs.size(), report.jobs.size());
    for (std::size_t j = 0; j < report.jobs.size(); ++j) {
        SCOPED_TRACE("job " + std::to_string(j));
        const auto &a = report.jobs[j];
        const auto &b = restored.jobs[j];
        EXPECT_EQ(b.spec.kind, a.spec.kind);
        EXPECT_EQ(b.spec.requests.qps, a.spec.requests.qps);
        EXPECT_EQ(b.spec.requests.seed, a.spec.requests.seed);
        EXPECT_EQ(b.spec.window.maxBatch, a.spec.window.maxBatch);
        EXPECT_EQ(b.spec.sloLatency, a.spec.sloLatency);
        ASSERT_EQ(b.serve.has_value(), a.serve.has_value());
        if (a.serve.has_value()) {
            EXPECT_EQ(b.serve->requests, a.serve->requests);
            EXPECT_EQ(b.serve->batches, a.serve->batches);
            EXPECT_EQ(b.serve->attained, a.serve->attained);
            EXPECT_EQ(b.serve->p50, a.serve->p50);
            EXPECT_EQ(b.serve->p95, a.serve->p95);
            EXPECT_EQ(b.serve->p99, a.serve->p99);
        }
    }
}

TEST(FleetServe, ServingColumnsAreThreadCountInvariant)
{
    const auto trace = fleet::makeArrivalTrace(mixedTraceOptions());
    fleet::FleetRequest request(trace);
    request.policy(fleet::PlacementPolicy::RapShared);
    const auto serial = request.run(nullptr);
    ThreadPool pool(4);
    const auto threaded = request.run(&pool);
    EXPECT_EQ(serial.toJson().dump(2), threaded.toJson().dump(2));
    EXPECT_EQ(serial.renderSummary(), threaded.renderSummary());
    EXPECT_EQ(serial.renderJobs(), threaded.renderJobs());
}

TEST(FleetServe, UnattainableSloStillDrainsTheQueue)
{
    // An SLO nothing can meet makes the admission gate reject every
    // shared slice; the relaxed drain scan must still place the job
    // (counting the rejections) instead of deadlocking the fleet.
    auto trace_options = mixedTraceOptions();
    trace_options.serving.sloLatency = 1e-6;
    const auto trace = fleet::makeArrivalTrace(trace_options);

    obs::MetricRegistry registry;
    const auto report =
        fleet::FleetRequest(trace)
            .policy(fleet::PlacementPolicy::RapShared)
            .metrics(&registry, "tight_slo")
            .run();

    for (const auto &job : report.jobs)
        EXPECT_GT(job.finish, 0.0) << job.spec.name;
    for (const auto &job : report.jobs) {
        if (job.spec.kind != fleet::JobKind::Inference)
            continue;
        ASSERT_TRUE(job.serve.has_value());
        EXPECT_EQ(job.serve->attained, 0u)
            << "a 1us SLO cannot be attained";
    }
    ASSERT_TRUE(report.serveAttainment.has_value());
    EXPECT_DOUBLE_EQ(*report.serveAttainment, 0.0);
}

} // namespace
} // namespace rap
