/**
 * @file
 * Unit tests for columnar containers.
 */

#include <gtest/gtest.h>

#include "data/column.hpp"

namespace rap::data {
namespace {

TEST(DenseColumn, ConstructedValidAndZero)
{
    DenseColumn col(4);
    EXPECT_EQ(col.size(), 4u);
    for (std::size_t r = 0; r < col.size(); ++r) {
        EXPECT_TRUE(col.isValid(r));
        EXPECT_FLOAT_EQ(col.value(r), 0.0f);
    }
    EXPECT_EQ(col.nullCount(), 0u);
}

TEST(DenseColumn, SetAndNull)
{
    DenseColumn col(3);
    col.set(1, 2.5f);
    col.setNull(2);
    EXPECT_FLOAT_EQ(col.value(1), 2.5f);
    EXPECT_FALSE(col.isValid(2));
    EXPECT_EQ(col.nullCount(), 1u);
    col.set(2, 1.0f); // setting revalidates
    EXPECT_TRUE(col.isValid(2));
    EXPECT_EQ(col.nullCount(), 0u);
}

TEST(DenseColumn, FromValuesAllValid)
{
    DenseColumn col(std::vector<float>{1.0f, 2.0f});
    EXPECT_EQ(col.size(), 2u);
    EXPECT_EQ(col.nullCount(), 0u);
}

TEST(DenseColumn, ByteSizePositive)
{
    DenseColumn col(10);
    EXPECT_GT(col.byteSize(), 0.0);
}

TEST(DenseColumnDeath, MismatchedValidityPanics)
{
    EXPECT_DEATH(DenseColumn(std::vector<float>{1.0f},
                             std::vector<std::uint8_t>{1, 1}),
                 "mismatch");
}

TEST(SparseColumn, EmptyHasZeroRows)
{
    SparseColumn col;
    EXPECT_EQ(col.size(), 0u);
    EXPECT_EQ(col.totalValues(), 0u);
    EXPECT_DOUBLE_EQ(col.avgListLength(), 0.0);
}

TEST(SparseColumn, AppendAndRead)
{
    SparseColumn col;
    col.appendRow({1, 2, 3});
    col.appendRow({});
    col.appendRow({7});
    EXPECT_EQ(col.size(), 3u);
    EXPECT_EQ(col.listLength(0), 3u);
    EXPECT_EQ(col.listLength(1), 0u);
    EXPECT_EQ(col.listLength(2), 1u);
    EXPECT_EQ(col.value(0, 2), 3);
    EXPECT_EQ(col.value(2, 0), 7);
    EXPECT_EQ(col.totalValues(), 4u);
    EXPECT_NEAR(col.avgListLength(), 4.0 / 3.0, 1e-12);
}

TEST(SparseColumn, ArrowLayoutRoundTrip)
{
    SparseColumn col({0, 2, 2, 5}, {10, 11, 20, 21, 22});
    EXPECT_EQ(col.size(), 3u);
    EXPECT_EQ(col.listLength(0), 2u);
    EXPECT_EQ(col.listLength(1), 0u);
    EXPECT_EQ(col.listLength(2), 3u);
    EXPECT_EQ(col.value(2, 1), 21);
}

TEST(SparseColumnDeath, NonMonotoneOffsetsPanic)
{
    EXPECT_DEATH(SparseColumn({0, 3, 2}, {1, 2, 3}), "monotone");
}

TEST(SparseColumnDeath, OffsetsMustEndAtValueCount)
{
    EXPECT_DEATH(SparseColumn({0, 2}, {1, 2, 3}), "value count");
}

TEST(SparseColumnDeath, OutOfRangeAccessPanics)
{
    SparseColumn col;
    col.appendRow({1});
    EXPECT_DEATH((void)col.value(0, 5), "out of range");
    EXPECT_DEATH((void)col.listLength(3), "out of range");
}

TEST(SparseColumn, MutableValuesEditInPlace)
{
    SparseColumn col;
    col.appendRow({5, 6});
    for (auto &v : col.mutableValues())
        v *= 10;
    EXPECT_EQ(col.value(0, 0), 50);
    EXPECT_EQ(col.value(0, 1), 60);
}

} // namespace
} // namespace rap::data
